// Ablations over the design choices DESIGN.md calls out:
//   1. Selection criterion: balanced (Fig. 3) vs compute-only vs
//      bandwidth-only vs random vs static, under load+traffic.
//   2. Fig. 3 variants: paper stop rule vs exhaustive sweep, all-component-
//      edges minbw vs Steiner-restricted minbw (solution quality on random
//      instances, judged by the exact pairwise objective and brute force).
//   3. Remos forecaster: last-value (the paper's choice) vs window-mean vs
//      EWMA at selection time.
//
// Usage: bench_ablation [trials]   (default 12)

#include <cstdio>
#include <cstdlib>

#include "exp/table1.hpp"
#include "select/brute_force.hpp"
#include "select/latency.hpp"
#include "select/objective.hpp"
#include "topo/generators.hpp"
#include "util/table.hpp"

using namespace netsel;
using namespace netsel::exp;

namespace {

void criterion_ablation(int trials) {
  std::printf("-- 1. selection policy spectrum (load+traffic, %d trials) --\n",
              trials);
  util::TextTable t;
  t.header({"app", "random", "static", "auto-compute", "auto-bandwidth",
            "auto-balanced"});
  for (const AppCase& app : {fft_case(), airshed_case()}) {
    std::vector<std::string> row{app.name};
    for (Policy p : {Policy::Random, Policy::Static, Policy::AutoCompute,
                     Policy::AutoBandwidth, Policy::AutoBalanced}) {
      auto stats = run_cell(app, table1_scenario(true, true), p, trials, 900);
      row.push_back(util::fmt(stats.mean(), 1));
    }
    t.row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
}

void fig3_variant_ablation() {
  std::printf(
      "-- 2. Fig. 3 variants on 200 random instances (pairwise objective, "
      "fraction of brute-force optimum) --\n");
  struct Variant {
    const char* name;
    bool exhaustive;
    bool steiner;
  };
  const Variant variants[] = {
      {"paper rule, component edges", false, false},
      {"exhaustive, component edges", true, false},
      {"paper rule, steiner edges", false, true},
      {"exhaustive, steiner edges", true, true},
  };
  util::TextTable t;
  t.header({"variant", "mean frac of optimum", "at optimum", "worst case"});
  for (const Variant& v : variants) {
    util::Rng rng(31337);
    double sum = 0.0, worst = 1.0;
    int optimal = 0;
    const int instances = 200;
    for (int i = 0; i < instances; ++i) {
      topo::RandomTreeOptions topt;
      topt.compute_nodes = 9;
      topt.network_nodes = 3;
      auto g = topo::random_tree(rng, topt);
      remos::NetworkSnapshot snap(g);
      for (auto n : g.compute_nodes())
        snap.set_loadavg(n, rng.uniform(0.0, 2.5));
      for (std::size_t l = 0; l < g.link_count(); ++l) {
        auto id = static_cast<topo::LinkId>(l);
        snap.set_bw(id, rng.uniform(0.05, 1.0) * snap.maxbw(id));
      }
      select::SelectionOptions opt;
      opt.num_nodes = 4;
      opt.exhaustive_balanced = v.exhaustive;
      opt.steiner_restricted = v.steiner;
      auto algo = select::select_balanced(snap, opt);
      opt.steiner_restricted = false;
      auto exact =
          select::brute_force_select(snap, opt, select::Criterion::Balanced);
      double got = select::evaluate_set(snap, algo.nodes, opt).balanced;
      double frac = exact.objective > 0 ? got / exact.objective : 1.0;
      sum += frac;
      worst = std::min(worst, frac);
      if (frac >= 1.0 - 1e-9) ++optimal;
    }
    t.row({v.name, util::fmt(sum / instances, 3),
           util::fmt(100.0 * optimal / instances, 0) + "%",
           util::fmt(worst, 3)});
  }
  std::printf("%s\n", t.render().c_str());
}

void forecaster_ablation(int trials) {
  std::printf("-- 3. Remos forecaster at selection time (load+traffic, %d "
              "trials) --\n",
              trials);
  struct F {
    const char* name;
    remos::ForecasterPtr fc;
  };
  const F forecasters[] = {
      {"last-value (paper)", std::make_shared<remos::LastValue>()},
      {"window-mean (30s)", std::make_shared<remos::WindowMean>()},
      {"ewma(0.3)", std::make_shared<remos::Ewma>(0.3)},
      {"window-max (conservative)", std::make_shared<remos::WindowMax>()},
      {"linear-trend", std::make_shared<remos::LinearTrend>()},
      {"adaptive (NWS-style)", std::make_shared<remos::Adaptive>()},
  };
  util::TextTable t;
  t.header({"forecaster", "FFT auto (s)", "Airshed auto (s)"});
  for (const F& f : forecasters) {
    std::vector<std::string> row{f.name};
    for (const AppCase& app : {fft_case(), airshed_case()}) {
      Scenario s = table1_scenario(true, true);
      s.forecaster = f.fc;
      auto stats = run_cell(app, s, Policy::AutoBalanced, trials, 1100);
      row.push_back(util::fmt(stats.mean(), 1) + " +-" +
                    util::fmt(stats.ci_halfwidth(), 1));
    }
    t.row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
}

void niced_load_ablation(int trials) {
  std::printf(
      "-- 5. equal-priority assumption (§3.1) vs niced background load --\n");
  // The paper's cpu = 1/(1+loadavg) assumes competing jobs share equally.
  // With niced (weight-0.2) background jobs, loadavg still rises by 1 per
  // job but the application keeps far more of the CPU, so the same
  // selection decisions operate on a pessimistic signal. Measured: how
  // much the slowdown shrinks, and whether auto still beats random.
  util::TextTable t;
  t.header({"background priority", "FFT random (s)", "FFT auto (s)",
            "auto gain"});
  for (auto [label, weight] :
       {std::pair<const char*, double>{"equal (paper)", 1.0},
        {"niced (weight 0.2)", 0.2}}) {
    Scenario s = table1_scenario(true, false);
    s.load.job_weight = weight;
    auto rnd = run_cell(fft_case(), s, Policy::Random, trials, 1300);
    auto aut = run_cell(fft_case(), s, Policy::AutoBalanced, trials, 1300);
    t.row({label, util::fmt(rnd.mean(), 1), util::fmt(aut.mean(), 1),
           util::fmt_pct_change(rnd.mean(), aut.mean())});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape: niced background hurts far less in absolute terms;\n"
      "selection still helps (the loadavg signal stays a valid *ordering*\n"
      "of nodes even when its magnitude is pessimistic).\n\n");
}

void latency_extension_demo() {
  std::printf(
      "-- 4. latency-aware extension (paper §3.4 future work) on a WAN-ish "
      "topology --\n");
  // Three campuses joined by high-latency trunks; hosts are idle, so the
  // bandwidth-driven algorithms are indifferent — only the latency-aware
  // selection clusters the job.
  topo::TopologyGraph g;
  std::vector<topo::NodeId> campuses;
  for (int c = 0; c < 3; ++c)
    campuses.push_back(g.add_network("campus" + std::to_string(c)));
  for (int c = 0; c < 3; ++c) {
    topo::TopologyGraph::LinkSpec trunk;
    trunk.capacity_ab = 1e9;
    trunk.latency = 15e-3;
    if (c > 0) g.add_link(campuses[0], campuses[static_cast<std::size_t>(c)], trunk);
    for (int h = 0; h < 4; ++h) {
      auto host = g.add_compute("c" + std::to_string(c) + "h" + std::to_string(h));
      topo::TopologyGraph::LinkSpec access;
      access.capacity_ab = 100e6;
      access.latency = 0.2e-3;
      g.add_link(campuses[static_cast<std::size_t>(c)], host, access);
    }
  }
  g.validate();
  remos::NetworkSnapshot snap(g);
  // The lightest-loaded nodes are scattered one per campus, so purely
  // cpu/bandwidth-driven selection spreads the job across the WAN.
  const double loads[3][4] = {{0.00, 0.03, 0.70, 0.80},
                              {0.01, 0.50, 0.60, 0.70},
                              {0.02, 0.55, 0.65, 0.90}};
  for (int c = 0; c < 3; ++c) {
    for (int h = 0; h < 4; ++h) {
      auto n = g.find_node("c" + std::to_string(c) + "h" + std::to_string(h));
      snap.set_loadavg(*n, loads[c][h]);
    }
  }
  select::SelectionOptions opt;
  opt.num_nodes = 4;
  auto balanced = select::select_balanced(snap, opt);
  auto latency = select::select_min_latency(snap, opt);
  auto show = [&](const char* name, const select::SelectionResult& r) {
    auto ev = select::evaluate_set(snap, r.nodes, opt);
    std::printf("  %-22s max pairwise latency %6.2f ms  (nodes:", name,
                ev.max_pair_latency * 1e3);
    for (auto n : r.nodes) std::printf(" %s", g.node(n).name.c_str());
    std::printf(")\n");
  };
  show("balanced (Fig. 3)", balanced);
  show("min-latency extension", latency);
  auto bounded = select::select_balanced_latency_bound(snap, opt, 1e-3);
  show("balanced + 1ms ceiling", bounded);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 12;
  std::printf("== Ablation studies ==\n\n");
  criterion_ablation(trials);
  fig3_variant_ablation();
  forecaster_ablation(trials);
  niced_load_ablation(trials);
  latency_extension_demo();
  return 0;
}
