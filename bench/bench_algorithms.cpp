// Microbenchmarks of the node-selection algorithms (paper §3.2,
// "Computation complexity"): the paper bounds Fig. 2 / Fig. 3 at O(n^2) and
// notes selection cost was "insignificant in comparison with the execution
// times of the applications". These google-benchmark timings verify the
// scaling over generated topologies from 16 to 4096 nodes and measure the
// O(n) max-compute selection and the exact brute-force reference for
// context.

#include <benchmark/benchmark.h>

#include <memory>

#include "select/algorithms.hpp"
#include "select/brute_force.hpp"
#include "topo/generators.hpp"

using namespace netsel;

namespace {

/// Owns the graph together with the snapshot view into it (NetworkSnapshot
/// references the topology, so the two must travel together).
struct Instance {
  std::unique_ptr<topo::TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

Instance make_instance(int compute_nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  topo::RandomTreeOptions opt;
  opt.compute_nodes = compute_nodes;
  opt.network_nodes = std::max(2, compute_nodes / 4);
  Instance inst;
  inst.graph =
      std::make_unique<topo::TopologyGraph>(topo::random_tree(rng, opt));
  inst.snap = std::make_unique<remos::NetworkSnapshot>(*inst.graph);
  for (auto n : inst.graph->compute_nodes())
    inst.snap->set_loadavg(n, rng.uniform(0.0, 3.0));
  for (std::size_t l = 0; l < inst.graph->link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    inst.snap->set_bw(id, rng.uniform(0.05, 1.0) * inst.snap->maxbw(id));
  }
  return inst;
}

void BM_MaxCompute(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 11);
  const auto& snap = *inst.snap;
  select::SelectionOptions opt;
  opt.num_nodes = 8;
  for (auto _ : state) {
    auto r = select::select_max_compute(snap, opt);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxCompute)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_MaxBandwidth_Fig2(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 12);
  const auto& snap = *inst.snap;
  select::SelectionOptions opt;
  opt.num_nodes = 8;
  for (auto _ : state) {
    auto r = select::select_max_bandwidth(snap, opt);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxBandwidth_Fig2)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

void BM_Balanced_Fig3(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 13);
  const auto& snap = *inst.snap;
  select::SelectionOptions opt;
  opt.num_nodes = 8;
  for (auto _ : state) {
    auto r = select::select_balanced(snap, opt);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Balanced_Fig3)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_Balanced_Fig3_Exhaustive(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 13);
  const auto& snap = *inst.snap;
  select::SelectionOptions opt;
  opt.num_nodes = 8;
  opt.exhaustive_balanced = true;
  for (auto _ : state) {
    auto r = select::select_balanced(snap, opt);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Balanced_Fig3_Exhaustive)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

void BM_BruteForceReference(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 14);
  const auto& snap = *inst.snap;
  select::SelectionOptions opt;
  opt.num_nodes = 4;
  for (auto _ : state) {
    auto r = select::brute_force_select(snap, opt, select::Criterion::Balanced);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BruteForceReference)->DenseRange(8, 24, 4)->Complexity();

// Selection on the paper's actual testbed: the cost that was "insignificant
// in comparison with the execution times of the applications".
void BM_Fig4TestbedSelection(benchmark::State& state) {
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  util::Rng rng(15);
  for (auto n : g.compute_nodes()) snap.set_loadavg(n, rng.uniform(0.0, 2.0));
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    snap.set_bw(id, rng.uniform(0.1, 1.0) * snap.maxbw(id));
  }
  select::SelectionOptions opt;
  opt.num_nodes = 4;
  for (auto _ : state) {
    auto r = select::select_balanced(snap, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig4TestbedSelection);

}  // namespace

BENCHMARK_MAIN();
