// Churn: incremental delta consumption vs. full epoch invalidation, and the
// bounded-migration reselect trade-off, on the 10,000-host fat-tree.
//
// Phase 1 (warm vs cold): a seeded stream of single-sensor deltas
// (link-bandwidth, then node-load) is applied to a snapshot watched by one
// long-lived SelectionContext. After every delta the placement is
// re-evaluated twice: on the warm context (fine-grained invalidation: the
// delta journal is consumed, affected rows repaired in place) and on a
// fresh context (the old behaviour — an opaque epoch bump made every cached
// structure cold). Both evaluations and the deletion orders must be
// bit-identical; the ratio of their mean costs is the headline.
//
// Phase 2 (budget curves): per migration budget, the same delta stream is
// replayed against a private snapshot while api::reselect() keeps a 16-node
// placement alive. With one reselection every 30 simulated seconds, the
// curve reports migrations-per-hour against placement quality (the
// criterion score relative to the unconstrained reselection).
//
// Headline contract (tracked in BENCH_churn.json and checked in CI):
// >= 10x warm-path speedup for single-link bandwidth deltas vs. full
// epoch invalidation on the 10,000-host fat-tree.
//
// Usage: bench_churn [reps] [seed] [--csv] [--check] [--threads N]
//                    [--bench-json PATH] [--metrics-json PATH]
//                    [--chrome-trace PATH]
// Defaults: 3 reps (the delta stream is 20*reps deltas long), seed 4242.
//   --check          CI smoke: a small fat-tree, a mixed delta stream with
//                    structural mutations, asserting the warm context stays
//                    bit-identical to a rebuilt one and that reselect
//                    honours its budget. Exits 2 on any mismatch.
//   --csv            append the machine-readable records after the tables.
//   --bench-json P   write the perf record (warm/cold means, headline,
//                    budget curve, delta counters) to P.
//   --metrics-json P enable the obs registry and write its JSON document to
//                    P after the run.
//   --chrome-trace P enable the obs registry and write recorded spans as
//                    Chrome trace_event JSON to P.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/reselect.hpp"
#include "api/service.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "select/objective.hpp"
#include "topo/synthetic.hpp"
#include "util/rng.hpp"

namespace {

using namespace netsel;
using Clock = std::chrono::steady_clock;

/// Reselection cadence assumed when converting a step count to wall time.
constexpr double kStepSeconds = 30.0;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t counter_value(const char* name) {
  for (const auto& [n, v] : obs::Registry::global().counters())
    if (n == name) return v;
  return 0;
}

std::vector<topo::LinkId> usable_links(const topo::TopologyGraph& g) {
  std::vector<topo::LinkId> out;
  for (std::size_t l = 0; l < g.link_count(); ++l)
    if (!g.link_removed(static_cast<topo::LinkId>(l)))
      out.push_back(static_cast<topo::LinkId>(l));
  return out;
}

std::vector<topo::NodeId> compute_hosts(const topo::TopologyGraph& g) {
  std::vector<topo::NodeId> out;
  for (std::size_t i = 0; i < g.node_count(); ++i)
    if (g.is_compute(static_cast<topo::NodeId>(i)))
      out.push_back(static_cast<topo::NodeId>(i));
  return out;
}

bool same_evaluation(const select::SetEvaluation& a,
                     const select::SetEvaluation& b) {
  return a.connected == b.connected && a.min_cpu == b.min_cpu &&
         a.min_pair_bw == b.min_pair_bw &&
         a.min_pair_bw_fraction == b.min_pair_bw_fraction &&
         a.balanced == b.balanced && a.max_pair_latency == b.max_pair_latency;
}

// ---------------------------------------------------------------------------
// Phase 1: warm vs cold per-delta cost
// ---------------------------------------------------------------------------

enum class DeltaClass { LinkBandwidth, NodeLoad };

struct PhaseResult {
  int deltas = 0;
  double warm_mean_seconds = 0.0;
  double cold_mean_seconds = 0.0;
  bool identical = true;
  double speedup() const {
    return warm_mean_seconds > 0.0 ? cold_mean_seconds / warm_mean_seconds
                                   : 0.0;
  }
};

/// Apply `count` single-sensor deltas of one class; after each, time the
/// placement re-evaluation (deletion-order touch + evaluate_set) on the
/// long-lived context vs. a fresh one, asserting bit-identical results.
PhaseResult run_delta_phase(remos::NetworkSnapshot& snap,
                            const select::SelectionContext& warm,
                            const std::vector<topo::NodeId>& placement,
                            const select::SelectionOptions& opt,
                            DeltaClass cls, util::Rng& rng, int count) {
  obs::Span span("churn.phase", "bench");
  span.arg("class",
           cls == DeltaClass::LinkBandwidth ? "link_bw" : "node_load");
  const auto links = usable_links(snap.graph());
  const auto hosts = compute_hosts(snap.graph());
  PhaseResult out;
  out.deltas = count;
  double warm_total = 0.0, cold_total = 0.0;
  for (int i = 0; i < count; ++i) {
    if (cls == DeltaClass::LinkBandwidth) {
      const auto l = links[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(links.size()) - 1))];
      snap.set_bw(l, rng.uniform(0.05, 1.0) * snap.maxbw(l));
    } else {
      const auto n = hosts[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
      snap.set_loadavg(n, rng.uniform(0.0, 4.0));
    }
    select::SetEvaluation warm_ev, cold_ev;
    std::size_t warm_orders = 0, cold_orders = 0;
    {
      auto t0 = Clock::now();
      warm_orders = warm.links_by_bw().size();
      warm_ev = evaluate_set(warm, placement, opt);
      warm_total += seconds_since(t0);
    }
    {
      // The pre-delta behaviour: an epoch bump invalidated everything, so
      // the next query paid a full rebuild of orders and pair rows.
      auto t0 = Clock::now();
      select::SelectionContext cold(snap);
      cold_orders = cold.links_by_bw().size();
      cold_ev = evaluate_set(cold, placement, opt);
      cold_total += seconds_since(t0);
    }
    if (!same_evaluation(warm_ev, cold_ev) || warm_orders != cold_orders)
      out.identical = false;
  }
  out.warm_mean_seconds = warm_total / count;
  out.cold_mean_seconds = cold_total / count;
  return out;
}

// ---------------------------------------------------------------------------
// Phase 2: placement quality vs migrations per hour
// ---------------------------------------------------------------------------

struct BudgetPoint {
  int budget = 0;  // -1 = unbounded
  int steps = 0;
  long migrations = 0;
  double migrations_per_hour = 0.0;
  /// Mean of objective_after / objective_unbounded over the stream.
  double mean_quality = 0.0;
  double mean_objective = 0.0;
  double reselect_seconds = 0.0;
};

BudgetPoint run_budget_curve(const topo::TopologyGraph& g, std::uint64_t seed,
                             int budget, int steps, int deltas_per_step,
                             int m) {
  obs::Span span("churn.budget", "bench");
  span.arg("budget", std::to_string(budget));
  // A private snapshot so every budget replays the identical delta stream
  // from the identical starting state.
  remos::NetworkSnapshot snap(g);
  remos::apply_synthetic_load(snap, seed + 7);
  select::SelectionContext ctx(snap);
  select::SelectionOptions sopt;
  sopt.num_nodes = m;
  auto init = select::select_nodes(select::Criterion::Balanced, ctx, sopt);
  if (!init.feasible) {
    std::fprintf(stderr, "initial placement infeasible\n");
    std::abort();
  }
  std::vector<topo::NodeId> placement = init.nodes;
  std::sort(placement.begin(), placement.end());

  // A uniform stream over ~11k links would almost never touch the 16 chosen
  // hosts; real churn concentrates where the traffic is. Bias the stream
  // toward the *initial* placement's access links and the shared switch
  // trunks (the initial placement is identical for every budget, so every
  // budget replays the identical stream).
  const auto links = usable_links(g);
  std::vector<topo::LinkId> hot;
  for (topo::NodeId n : placement) {
    const auto span = g.links_of(n);
    hot.insert(hot.end(), span.begin(), span.end());
  }
  std::vector<topo::LinkId> trunks;
  for (topo::LinkId l : links)
    if (!g.is_compute(g.link(l).a) && !g.is_compute(g.link(l).b))
      trunks.push_back(l);
  util::Rng rng(seed ^ 0xC0FFEEull);
  auto pick = [&](const std::vector<topo::LinkId>& pool) {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };
  BudgetPoint out;
  out.budget = budget;
  out.steps = steps;
  for (int step = 0; step < steps; ++step) {
    for (int d = 0; d < deltas_per_step; ++d) {
      const double roll = rng.uniform(0.0, 1.0);
      const topo::LinkId l = roll < 0.4 && !hot.empty()   ? pick(hot)
                             : roll < 0.7 && !trunks.empty() ? pick(trunks)
                                                             : pick(links);
      snap.set_bw(l, rng.uniform(0.02, 1.0) * snap.maxbw(l));
    }
    api::ReselectOptions ropt;
    ropt.max_migrations = budget;
    ropt.criterion = select::Criterion::Balanced;
    auto t0 = Clock::now();
    auto res = api::reselect(ctx, placement, ropt);
    out.reselect_seconds += seconds_since(t0);
    if (!res.feasible) continue;
    placement = res.nodes;
    out.migrations += res.migrations;
    out.mean_quality += res.objective_unbounded > 0.0
                            ? res.objective_after / res.objective_unbounded
                            : 1.0;
    out.mean_objective += res.objective_after;
  }
  out.mean_quality /= steps;
  out.mean_objective /= steps;
  out.migrations_per_hour =
      static_cast<double>(out.migrations) / (steps * kStepSeconds / 3600.0);
  return out;
}

// ---------------------------------------------------------------------------
// --check: correctness smoke on a small fabric, structural deltas included
// ---------------------------------------------------------------------------

int run_check(std::uint64_t seed, int m) {
  int rc = 0;
  auto g = topo::fat_tree(topo::fat_tree_for_hosts(128, 16, 2.0, seed));
  remos::NetworkSnapshot snap(g);
  remos::apply_synthetic_load(snap, seed + 7);
  select::SelectionContext warm(snap);
  select::SelectionOptions opt;
  opt.num_nodes = m;
  auto placement = select::select_nodes(select::Criterion::Balanced, warm, opt)
                       .nodes;
  if (placement.empty()) {
    std::fprintf(stderr, "CHECK FAILED: initial selection infeasible\n");
    return 2;
  }
  util::Rng rng(seed + 11);
  int names = 0;
  for (int step = 0; step < 60; ++step) {
    // A mixed stream: mostly sensor deltas, some structural churn.
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.55) {
      const auto links = usable_links(g);
      const auto l = links[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(links.size()) - 1))];
      snap.set_bw(l, rng.uniform(0.05, 1.0) * snap.maxbw(l));
    } else if (roll < 0.75) {
      const auto hosts = compute_hosts(g);
      snap.set_loadavg(hosts[static_cast<std::size_t>(rng.uniform_int(
                           0, static_cast<std::int64_t>(hosts.size()) - 1))],
                       rng.uniform(0.0, 4.0));
    } else if (roll < 0.85) {
      const auto links = usable_links(g);
      if (links.size() > 32) {
        const auto l = links[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(links.size()) - 1))];
        g.remove_link(l);
        snap.notify_link_removed(l);
      }
    } else if (roll < 0.95) {
      const auto hosts = compute_hosts(g);
      const auto a = hosts[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
      const auto b = hosts[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
      if (a != b) {
        const auto id = g.add_link(a, b, 50.0 * topo::kMbps);
        snap.notify_link_added(id);
      }
    } else {
      const auto id = g.add_compute("churn" + std::to_string(names++));
      snap.notify_node_added(id);
    }

    select::SelectionContext fresh(snap);
    if (warm.links_by_bw() != fresh.links_by_bw() ||
        warm.acyclic() != fresh.acyclic()) {
      std::fprintf(stderr,
                   "CHECK FAILED: step %d: warm orders diverge from rebuild\n",
                   step);
      rc = 2;
      break;
    }
    auto a = select::select_nodes(select::Criterion::Balanced, warm, opt);
    auto b = select::select_nodes(select::Criterion::Balanced, fresh, opt);
    if (a.feasible != b.feasible || a.nodes != b.nodes ||
        a.objective != b.objective) {
      std::fprintf(
          stderr,
          "CHECK FAILED: step %d: warm selection diverges from rebuild\n",
          step);
      rc = 2;
      break;
    }
    if (a.feasible && !same_evaluation(evaluate_set(warm, a.nodes, opt),
                                       evaluate_set(fresh, a.nodes, opt))) {
      std::fprintf(
          stderr,
          "CHECK FAILED: step %d: warm evaluation diverges from rebuild\n",
          step);
      rc = 2;
      break;
    }
  }

  // Reselect must honour its budget (forced replacements aside — the stream
  // above never tombstones placement hosts' access links and selections stay
  // feasible, so none occur here).
  if (rc == 0) {
    select::SelectionContext ctx(snap);
    auto cur = select::select_nodes(select::Criterion::Balanced, ctx, opt);
    const auto hosts = compute_hosts(g);
    std::vector<topo::NodeId> bad(hosts.end() - m, hosts.end());
    for (int budget : {0, 1, 4}) {
      api::ReselectOptions ropt;
      ropt.max_migrations = budget;
      auto res = api::reselect(ctx, bad, ropt);
      if (!res.feasible || res.migrations > budget ||
          res.objective_after + 1e-15 < res.objective_before) {
        std::fprintf(stderr,
                     "CHECK FAILED: reselect budget %d: migrations %d, "
                     "objective %.6g -> %.6g\n",
                     budget, res.migrations, res.objective_before,
                     res.objective_after);
        rc = 2;
      }
    }
    if (cur.feasible) {
      api::ReselectOptions ropt;  // unbounded adopts the optimum
      auto res = api::reselect(ctx, bad, ropt);
      auto sorted = cur.nodes;
      std::sort(sorted.begin(), sorted.end());
      if (!res.feasible || res.nodes != sorted) {
        std::fprintf(stderr,
                     "CHECK FAILED: unbounded reselect != fresh selection\n");
        rc = 2;
      }
    }
  }
  std::fprintf(stderr, rc == 0 ? "check: OK\n" : "check: FAILED\n");
  return rc;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

int write_bench_json(const char* path, std::uint64_t seed, int m, int hosts,
                     std::size_t nodes, std::size_t link_count,
                     const PhaseResult& bw, const PhaseResult& load,
                     const std::vector<BudgetPoint>& curve) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"churn\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"seed\": %llu,\n"
               "  \"m\": %d,\n"
               "  \"nodes\": %zu,\n"
               "  \"links\": %zu,\n"
               "  \"hosts\": %d,\n"
               "  \"step_seconds\": %.0f,\n",
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(seed), m, nodes, link_count,
               hosts, kStepSeconds);
  auto phase = [&](const char* name, const PhaseResult& p, bool comma) {
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"deltas\": %d,\n"
                 "    \"warm_mean_seconds\": %.6f,\n"
                 "    \"cold_mean_seconds\": %.6f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"identical\": %s\n"
                 "  }%s\n",
                 name, p.deltas, p.warm_mean_seconds, p.cold_mean_seconds,
                 p.speedup(), p.identical ? "true" : "false",
                 comma ? "," : "");
  };
  phase("link_bandwidth_deltas", bw, true);
  phase("node_load_deltas", load, true);
  std::fprintf(f,
               "  \"headline\": {\n"
               "    \"contract\": \"warm evaluation after a single-link "
               "bandwidth delta >= 10x faster than full epoch invalidation, "
               "10k-host fat-tree\",\n"
               "    \"speedup\": %.2f,\n"
               "    \"target_speedup\": 10.0,\n"
               "    \"within_target\": %s\n"
               "  },\n"
               "  \"budget_curve\": [\n",
               bw.speedup(), bw.speedup() >= 10.0 ? "true" : "false");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const BudgetPoint& p = curve[i];
    std::fprintf(f,
                 "    { \"budget\": %d, \"steps\": %d, \"migrations\": %ld, "
                 "\"migrations_per_hour\": %.1f, \"mean_quality\": %.4f, "
                 "\"mean_objective\": %.6f, \"reselect_seconds\": %.3f }%s\n",
                 p.budget, p.steps, p.migrations, p.migrations_per_hour,
                 p.mean_quality, p.mean_objective, p.reselect_seconds,
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"metrics\": {\n"
               "    \"deltas_applied\": %llu,\n"
               "    \"rows_repaired\": %llu,\n"
               "    \"rows_invalidated_partial\": %llu,\n"
               "    \"rows_invalidated_full\": %llu\n"
               "  }\n"
               "}\n",
               static_cast<unsigned long long>(
                   counter_value("select.ctx.delta.applied")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.rows.repaired")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.rows.invalidated.partial")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.rows.invalidated.full")));
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}

bool write_obs_exports(const char* metrics_path, const char* trace_path) {
  api::register_service_metrics();
  bool ok = true;
  if (metrics_path) {
    std::ofstream f(metrics_path);
    if (f) {
      obs::write_json(obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", metrics_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      ok = false;
    }
  }
  if (trace_path) {
    std::ofstream f(trace_path);
    if (f) {
      obs::write_chrome_trace(obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", trace_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  std::uint64_t seed = 4242;
  bool csv = false;
  bool check = false;
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      ++i;  // accepted for flag-compatibility; this benchmark is serial
    } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (positional == 0) {
      reps = std::atoi(argv[i]);
      ++positional;
    } else {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[i], nullptr, 10));
      ++positional;
    }
  }
  if (reps < 1) {
    std::fprintf(stderr, "reps must be >= 1\n");
    return 1;
  }
  const int m = 16;
  if (check) return run_check(seed, m);
  if (json_path || metrics_path || trace_path) obs::set_enabled(true);

  std::fprintf(stderr, "bench_churn: generating 10k-host fat-tree (seed "
                       "%llu)...\n",
               static_cast<unsigned long long>(seed));
  auto g = topo::fat_tree(topo::fat_tree_for_hosts(10000, 48, 3.0, seed));
  const int hosts = static_cast<int>(compute_hosts(g).size());
  remos::NetworkSnapshot snap(g);
  remos::apply_synthetic_load(snap, seed + 7);
  select::SelectionContext warm(snap);
  select::SelectionOptions opt;
  opt.num_nodes = m;
  auto init = select::select_nodes(select::Criterion::Balanced, warm, opt);
  if (!init.feasible) {
    std::fprintf(stderr, "initial placement infeasible\n");
    return 1;
  }
  std::vector<topo::NodeId> placement = init.nodes;
  std::sort(placement.begin(), placement.end());

  const int stream = 20 * reps;
  util::Rng rng(seed + 101);
  auto bw_phase = run_delta_phase(snap, warm, placement, opt,
                                  DeltaClass::LinkBandwidth, rng, stream);
  auto load_phase = run_delta_phase(snap, warm, placement, opt,
                                    DeltaClass::NodeLoad, rng, stream);

  std::printf(
      "== Churn on a %zu-node / %d-host fat-tree, m=%d, seed %llu ==\n"
      "   warm = long-lived context consuming the delta journal;\n"
      "   cold = fresh context per delta (full epoch invalidation)\n\n"
      "%-22s %7s %12s %12s %9s %6s\n",
      g.node_count(), hosts, m, static_cast<unsigned long long>(seed),
      "delta class", "deltas", "warm_us", "cold_us", "speedup", "same");
  auto print_phase = [&](const char* name, const PhaseResult& p) {
    std::printf("%-22s %7d %12.1f %12.1f %8.1fx %6s\n", name, p.deltas,
                p.warm_mean_seconds * 1e6, p.cold_mean_seconds * 1e6,
                p.speedup(), p.identical ? "yes" : "NO");
  };
  print_phase("link_bandwidth", bw_phase);
  print_phase("node_load", load_phase);
  std::printf(
      "\nheadline: warm/cold speedup for single-link bandwidth deltas "
      "%.1fx (target >= 10x): %s\n",
      bw_phase.speedup(), bw_phase.speedup() >= 10.0 ? "PASS" : "FAIL");

  // Phase 2: the budget curve, replayed per budget on private snapshots.
  const int steps = 8 * reps;
  const int deltas_per_step = 6;
  std::printf(
      "\n== reselect every %.0f simulated seconds, %d bandwidth deltas per "
      "step, %d steps ==\n"
      "%-10s %12s %16s %14s %14s\n",
      kStepSeconds, deltas_per_step, steps, "budget", "migrations",
      "migrations/hour", "mean_quality", "reselect_ms");
  std::vector<BudgetPoint> curve;
  for (int budget : {0, 1, 2, 4, 8, -1}) {
    curve.push_back(
        run_budget_curve(g, seed, budget, steps, deltas_per_step, m));
    const BudgetPoint& p = curve.back();
    char label[16];
    if (budget < 0)
      std::snprintf(label, sizeof label, "unbounded");
    else
      std::snprintf(label, sizeof label, "%d", budget);
    std::printf("%-10s %12ld %16.1f %14.4f %14.2f\n", label, p.migrations,
                p.migrations_per_hour, p.mean_quality,
                p.reselect_seconds * 1e3);
  }

  if (csv) {
    std::printf("\n-- csv --\nclass,deltas,warm_s,cold_s,speedup,identical\n");
    std::printf("link_bandwidth,%d,%.7f,%.7f,%.2f,%d\n", bw_phase.deltas,
                bw_phase.warm_mean_seconds, bw_phase.cold_mean_seconds,
                bw_phase.speedup(), bw_phase.identical ? 1 : 0);
    std::printf("node_load,%d,%.7f,%.7f,%.2f,%d\n", load_phase.deltas,
                load_phase.warm_mean_seconds, load_phase.cold_mean_seconds,
                load_phase.speedup(), load_phase.identical ? 1 : 0);
    std::printf("budget,steps,migrations,migrations_per_hour,mean_quality,"
                "mean_objective\n");
    for (const BudgetPoint& p : curve)
      std::printf("%d,%d,%ld,%.1f,%.4f,%.6f\n", p.budget, p.steps,
                  p.migrations, p.migrations_per_hour, p.mean_quality,
                  p.mean_objective);
  }
  if (json_path) {
    int rc = write_bench_json(json_path, seed, m, hosts, g.node_count(),
                              g.link_count(), bw_phase, load_phase, curve);
    if (rc != 0) return rc;
  }
  if (!write_obs_exports(metrics_path, trace_path)) return 1;
  if (!bw_phase.identical || !load_phase.identical) return 2;
  return bw_phase.speedup() >= 10.0 ? 0 : 2;
}
