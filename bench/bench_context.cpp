// Microbenchmarks for the SelectionContext layer: what a context build
// costs, what cached bottleneck rows save on repeated evaluate_set queries,
// and how the offline Fig. 2 / Fig. 3 replays compare against the retained
// naive reference loops (select/reference.hpp) that recompute connectivity
// from scratch after every link deletion.
//
// The headline comparison is BM_Fig2_Naive vs BM_Fig2_Context (and the
// Fig. 3 pair) at >= 200 compute nodes.

#include <benchmark/benchmark.h>

#include <memory>

#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "select/objective.hpp"
#include "select/reference.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace netsel;

struct Instance {
  std::unique_ptr<topo::TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

Instance make_instance(int compute_nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  topo::RandomTreeOptions opt;
  opt.compute_nodes = compute_nodes;
  opt.network_nodes = std::max(2, compute_nodes / 4);
  Instance inst;
  inst.graph =
      std::make_unique<topo::TopologyGraph>(topo::random_tree(rng, opt));
  inst.snap = std::make_unique<remos::NetworkSnapshot>(*inst.graph);
  for (auto n : inst.graph->compute_nodes())
    inst.snap->set_loadavg(n, rng.uniform(0.0, 3.0));
  for (std::size_t l = 0; l < inst.graph->link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    inst.snap->set_bw(id, rng.uniform(0.05, 1.0) * inst.snap->maxbw(id));
  }
  return inst;
}

select::SelectionOptions options_for(int m) {
  select::SelectionOptions opt;
  opt.num_nodes = m;
  return opt;
}

void BM_ContextBuild(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    select::SelectionContext ctx(*inst.snap);
    benchmark::DoNotOptimize(ctx.links_by_bw().size());
  }
}
BENCHMARK(BM_ContextBuild)->Range(64, 1024);

void BM_Fig2_Naive(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 11);
  auto opt = options_for(8);
  for (auto _ : state) {
    auto r = select::detail::reference_select_max_bandwidth(*inst.snap, opt);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_Fig2_Naive)->Range(64, 1024)->Unit(benchmark::kMillisecond);

void BM_Fig2_Context(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 11);
  auto opt = options_for(8);
  select::SelectionContext ctx(*inst.snap);
  for (auto _ : state) {
    auto r = select::select_max_bandwidth(ctx, opt);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_Fig2_Context)->Range(64, 1024)->Unit(benchmark::kMillisecond);

void BM_Fig3_Naive(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 11);
  auto opt = options_for(8);
  for (auto _ : state) {
    auto r = select::detail::reference_select_balanced(*inst.snap, opt);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_Fig3_Naive)->Range(64, 1024)->Unit(benchmark::kMillisecond);

void BM_Fig3_Context(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 11);
  auto opt = options_for(8);
  select::SelectionContext ctx(*inst.snap);
  for (auto _ : state) {
    auto r = select::select_balanced(ctx, opt);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_Fig3_Context)->Range(64, 1024)->Unit(benchmark::kMillisecond);

// evaluate_set over one shared context (rows cached across calls) vs the
// naive per-call BFS. Evaluates many distinct subsets, the way the API
// service evaluates several placement groups against one snapshot.
void BM_EvaluateSet_Naive(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 13);
  auto computes = inst.graph->compute_nodes();
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i + 4 < computes.size(); i += 4) {
      std::vector<topo::NodeId> nodes(computes.begin() + i,
                                      computes.begin() + i + 4);
      acc += select::detail::reference_evaluate_set(*inst.snap, nodes)
                 .min_pair_bw;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EvaluateSet_Naive)->Range(64, 512)->Unit(benchmark::kMillisecond);

void BM_EvaluateSet_Context(benchmark::State& state) {
  auto inst = make_instance(static_cast<int>(state.range(0)), 13);
  auto computes = inst.graph->compute_nodes();
  select::SelectionContext ctx(*inst.snap);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i + 4 < computes.size(); i += 4) {
      std::vector<topo::NodeId> nodes(computes.begin() + i,
                                      computes.begin() + i + 4);
      acc += select::evaluate_set(ctx, nodes).min_pair_bw;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EvaluateSet_Context)
    ->Range(64, 512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
