// Optimality-gap certification bench: scores every greedy selector against
// the exact branch-and-bound selector (select/bnb.hpp) on the paper-scale
// synthetic families — family x m in {4,8,16,32,64} x criterion, plus the
// fixed-constraint x prioritization block the paper only sketches — and
// emits the measured gap table. Each cell carries a sound bracket
// greedy <= optimum <= bound and is marked `exact` (the budgeted search
// proved optimality) or with its stop reason (`node_budget`, ...), never
// silently truncated. Deterministic: node budgets only, seeded load,
// serial search — the emitted values are bit-identical across machines,
// so CI gates on them (scripts/check_bench_regression.py, "exact").
//
// Usage: bench_exact [--seed S] [--hosts N] [--budget N] [--csv]
//                    [--no-constraints] [--check] [--bench-json PATH]
//                    [--metrics-json PATH] [--chrome-trace PATH]
// Defaults: seed 7177, 120 hosts per family, 20000 expansions per cell.
//   --check      fast contract smoke for CI: a reduced grid (24 hosts,
//                m in {2,4}) must be sound in every cell (incumbent and
//                greedy never above the bound, certified cells closed),
//                and the B&B must reproduce the brute-force oracle
//                bit-exactly on the small fat-tree at every criterion.
//                Exits non-zero on violation.
//   --csv        append the machine-readable grid after the table.
//   --bench-json P    write the gap record (cells + headline) to P.
//   --metrics-json P  enable the obs registry and write its JSON document
//                     (schema netsel-metrics-v1) to P — populates the
//                     select.bnb.* counters and select.latency_s.bnb.
//   --chrome-trace P  enable the obs registry and write recorded spans as
//                     Chrome trace_event JSON to P.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "exp/exact.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "remos/snapshot.hpp"
#include "select/bnb.hpp"
#include "select/brute_force.hpp"
#include "select/context.hpp"
#include "topo/synthetic.hpp"

namespace {

using netsel::exp::ExactCell;
using netsel::exp::ExactGridOptions;

std::uint64_t counter_value(const char* name) {
  for (const auto& [n, v] : netsel::obs::Registry::global().counters())
    if (n == name) return v;
  return 0;
}

/// Soundness of one cell: nothing ever exceeds the certified bound, and a
/// certified cell is closed (incumbent == bound).
bool cell_sound(const ExactCell& c) {
  if (c.exact_feasible && !(c.exact_value <= c.upper_bound)) return false;
  if (c.greedy_feasible && std::isfinite(c.greedy_value) &&
      !(c.greedy_value <= c.upper_bound))
    return false;
  if (c.certified && c.exact_feasible && c.exact_value != c.upper_bound)
    return false;
  return true;
}

struct Headline {
  std::size_t cells = 0;
  std::size_t exact_cells = 0;
  std::size_t bounded_cells = 0;
  bool sound = true;
  double worst_greedy_ratio = std::numeric_limits<double>::infinity();
  double mean_greedy_ratio = 0.0;
};

Headline summarize(const std::vector<ExactCell>& cells) {
  Headline h;
  h.cells = cells.size();
  std::size_t rated = 0;
  double sum = 0.0;
  for (const ExactCell& c : cells) {
    if (!cell_sound(c)) h.sound = false;
    if (c.certified)
      ++h.exact_cells;
    else
      ++h.bounded_cells;
    const double r = c.greedy_ratio();
    if (!std::isnan(r)) {
      h.worst_greedy_ratio = std::min(h.worst_greedy_ratio, r);
      sum += r;
      ++rated;
    }
  }
  if (rated > 0) h.mean_greedy_ratio = sum / static_cast<double>(rated);
  if (rated == 0) h.worst_greedy_ratio = 0.0;
  return h;
}

void json_number(std::FILE* f, double v) {
  // Regression tooling parses this with json.load: non-finite values must
  // become null, not bare inf tokens.
  if (std::isfinite(v))
    std::fprintf(f, "%.17g", v);
  else
    std::fprintf(f, "null");
}

int write_bench_json(const char* path, const ExactGridOptions& opt,
                     const std::vector<ExactCell>& cells,
                     const Headline& h) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"exact\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"seed\": %llu,\n"
               "  \"hosts\": %d,\n"
               "  \"node_budget\": %llu,\n"
               "  \"cells\": [\n",
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(opt.seed), opt.hosts,
               static_cast<unsigned long long>(opt.node_budget));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ExactCell& c = cells[i];
    std::fprintf(f,
                 "    { \"family\": \"%s\", \"variant\": \"%s\", "
                 "\"criterion\": \"%s\", \"m\": %d, \"pool\": %zu, "
                 "\"greedy_feasible\": %s, \"greedy_value\": ",
                 c.family.c_str(), c.variant.c_str(),
                 netsel::select::criterion_name(c.criterion), c.m, c.pool,
                 c.greedy_feasible ? "true" : "false");
    json_number(f, c.greedy_value);
    std::fprintf(f, ", \"exact_value\": ");
    json_number(f, c.exact_value);
    std::fprintf(f, ", \"upper_bound\": ");
    json_number(f, c.upper_bound);
    std::fprintf(f, ", \"greedy_ratio\": ");
    json_number(f, c.greedy_ratio());
    std::fprintf(f,
                 ", \"certified\": %s, \"stop\": \"%s\", \"expanded\": %llu, "
                 "\"seconds\": %.4f }%s\n",
                 c.certified ? "true" : "false", c.stop.c_str(),
                 static_cast<unsigned long long>(c.expanded), c.seconds,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"headline\": {\n"
               "    \"contract\": \"every family x m x criterion cell "
               "carries a sound bracket greedy <= optimum <= bound; "
               "certified cells are bit-exact brute-force optima\",\n"
               "    \"cells\": %zu,\n"
               "    \"exact_cells\": %zu,\n"
               "    \"bounded_cells\": %zu,\n"
               "    \"sound\": %s,\n"
               "    \"worst_greedy_ratio\": ",
               h.cells, h.exact_cells, h.bounded_cells,
               h.sound ? "true" : "false");
  json_number(f, h.worst_greedy_ratio);
  std::fprintf(f, ",\n    \"mean_greedy_ratio\": ");
  json_number(f, h.mean_greedy_ratio);
  std::fprintf(f,
               "\n  },\n"
               "  \"metrics\": {\n"
               "    \"bnb_selections\": %llu,\n"
               "    \"bnb_expanded\": %llu,\n"
               "    \"bnb_pruned_bound\": %llu,\n"
               "    \"bnb_pruned_lex\": %llu,\n"
               "    \"bnb_certified\": %llu,\n"
               "    \"bnb_budget_hits\": %llu\n"
               "  }\n"
               "}\n",
               static_cast<unsigned long long>(
                   counter_value("select.bnb.selections")),
               static_cast<unsigned long long>(
                   counter_value("select.bnb.expanded")),
               static_cast<unsigned long long>(
                   counter_value("select.bnb.pruned_bound")),
               static_cast<unsigned long long>(
                   counter_value("select.bnb.pruned_lex")),
               static_cast<unsigned long long>(
                   counter_value("select.bnb.certified")),
               static_cast<unsigned long long>(
                   counter_value("select.bnb.budget_hits")));
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}

bool write_obs_exports(const char* metrics_path, const char* trace_path) {
  bool ok = true;
  if (metrics_path) {
    std::ofstream f(metrics_path);
    if (f) {
      netsel::obs::write_json(netsel::obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", metrics_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      ok = false;
    }
  }
  if (trace_path) {
    std::ofstream f(trace_path);
    if (f) {
      netsel::obs::write_chrome_trace(netsel::obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", trace_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      ok = false;
    }
  }
  return ok;
}

/// --check oracle leg: B&B vs brute force on an oracle-reachable fat tree.
int check_oracle(std::uint64_t seed) {
  namespace sel = netsel::select;
  auto ft = netsel::topo::fat_tree_for_hosts(24, 6, 2.0, seed);
  ft.cpu_jitter = 0.3;
  auto g = netsel::topo::fat_tree(ft);
  netsel::remos::NetworkSnapshot snap(g);
  netsel::remos::apply_synthetic_load(snap, seed * 31 + 7);
  sel::SelectionContext ctx(snap);
  int rc = 0;
  for (int m : {2, 4}) {
    sel::SelectionOptions opt;
    opt.num_nodes = m;
    opt.exact.node_budget = 0;
    for (sel::Criterion c :
         {sel::Criterion::MaxCompute, sel::Criterion::MaxBandwidth,
          sel::Criterion::Balanced}) {
      const auto bf = sel::brute_force_select(ctx, opt, c);
      const auto r = sel::branch_and_bound_select(ctx, opt, c);
      if (!r.certified || r.feasible != bf.feasible ||
          r.nodes != bf.nodes || r.objective != bf.objective) {
        std::fprintf(stderr,
                     "FAIL: oracle mismatch m=%d %s (certified=%d)\n", m,
                     sel::criterion_name(c), r.certified ? 1 : 0);
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  ExactGridOptions opt;
  bool csv = false;
  bool check = false;
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--no-constraints") == 0) {
      opt.constraint_cells = false;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      opt.hosts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      opt.node_budget = static_cast<std::uint64_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (opt.hosts < 24 || opt.hosts % 12 != 0) {
    std::fprintf(stderr, "--hosts must be >= 24 and divisible by 12\n");
    return 2;
  }
  if (metrics_path || trace_path) netsel::obs::set_enabled(true);

  if (check) {
    // Reduced grid: small instances, shallow m, tight budget — seconds,
    // not minutes, in a sanitizer build.
    opt.hosts = 24;
    opt.ms = {2, 4};
    opt.node_budget = 5000;
  }
  opt.verbose = true;

  std::vector<netsel::exp::ExactCell> cells;
  {
    netsel::obs::Span span("exact.grid", "bench");
    cells = netsel::exp::run_exact_grid(opt);
  }
  const Headline h = summarize(cells);
  std::printf("%s", netsel::exp::format_exact_grid(cells, opt).c_str());
  std::printf("cells=%zu exact=%zu bounded=%zu sound=%s worst_ratio=%.4f\n",
              h.cells, h.exact_cells, h.bounded_cells,
              h.sound ? "true" : "false", h.worst_greedy_ratio);
  if (csv) std::printf("%s", netsel::exp::exact_grid_csv(cells, opt).c_str());

  int rc = 0;
  if (json_path) rc |= write_bench_json(json_path, opt, cells, h);
  if (!write_obs_exports(metrics_path, trace_path)) rc = 1;

  if (check) {
    if (!h.sound) {
      std::fprintf(stderr, "FAIL: unsound cell in the reduced grid\n");
      rc = 1;
    }
    if (h.exact_cells == 0) {
      std::fprintf(stderr, "FAIL: no cell certified in the reduced grid\n");
      rc = 1;
    }
    rc |= check_oracle(opt.seed);
    std::fprintf(stderr, rc == 0 ? "check OK\n" : "check FAILED\n");
  }
  return rc;
}
