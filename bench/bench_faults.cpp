// Measurement-fault sweep: execution time of the Table-1 FFT workload
// under load + traffic when the Remos measurement plane itself degrades —
// dropped sweeps, per-sensor outages, measurement noise and late sweeps at
// increasing severity — with automatically vs randomly selected nodes.
// Auto policies select through NodeSelectionService, so the degradation
// ladder (full -> smoothed -> prior) is exercised and counted per cell.
//
// Usage: bench_faults [trials] [seed] [--csv] [--threads N] [--check]
//                     [--metrics-json PATH] [--chrome-trace PATH]
// Defaults: 12 trials, seed 2031, serial execution.
//   --threads N  run the grid on an N-worker pool (N < 0: one worker per
//                hardware thread); statistics are bit-identical for any N.
//   --check      verify the no-fault contract and exit non-zero on
//                violation: at severity 0 every auto trial must reproduce
//                run_trial's elapsed time bit-for-bit (the service path
//                changes nothing), and no cell may have lost trials to a
//                thrown selection. Used as the CI smoke step.
//   --csv        append the machine-readable grid after the table.
//   --metrics-json P  enable the obs registry and write its JSON document
//                     (schema netsel-metrics-v1) to P after the run — the
//                     fault sweep populates the remos.* and api.degradation
//                     metrics the Table-1 grid never touches.
//   --chrome-trace P  enable the obs registry and write the recorded spans
//                     as Chrome trace_event JSON to P (load in Perfetto).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "api/service.hpp"
#include "exp/faults.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace {

bool write_obs_exports(const char* metrics_path, const char* trace_path) {
  netsel::api::register_service_metrics();
  bool ok = true;
  if (metrics_path) {
    std::ofstream f(metrics_path);
    if (f) {
      netsel::obs::write_json(netsel::obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", metrics_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      ok = false;
    }
  }
  if (trace_path) {
    std::ofstream f(trace_path);
    if (f) {
      netsel::obs::write_chrome_trace(netsel::obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", trace_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netsel::exp;

  FaultGridOptions opt;
  bool csv = false;
  bool check = false;
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (positional == 0) {
      opt.trials = std::atoi(argv[i]);
      ++positional;
    } else {
      opt.seed = static_cast<std::uint64_t>(std::strtoull(argv[i], nullptr, 10));
      ++positional;
    }
  }
  if (opt.trials < 1) {
    std::fprintf(stderr, "trials must be >= 1\n");
    return 1;
  }
  opt.verbose = true;
  if (metrics_path || trace_path) netsel::obs::set_enabled(true);

  auto rows = run_fault_grid(opt);
  std::printf("%s\n", format_fault_grid(rows, opt).c_str());
  if (csv) std::printf("%s", fault_grid_csv(rows, opt).c_str());
  if (!write_obs_exports(metrics_path, trace_path)) return 1;

  if (check) {
    // No-fault contract: the severity-0 row must be the unperturbed
    // measurement path. Re-derive one auto cell through run_trial (the
    // historical entry point) and require bit-equality, and require that no
    // selection threw anywhere in the grid.
    int rc = 0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].severity != 0.0) continue;
      const Scenario sc = table1_scenario(true, true);
      std::uint64_t s0 = cell_seed(opt.seed, opt.app.name,
                                   Policy::AutoBalanced, 1000 + static_cast<int>(r));
      for (int t = 0; t < opt.trials; ++t) {
        double direct =
            run_trial(opt.app, sc, Policy::AutoBalanced, trial_seed(s0, t))
                .elapsed;
        double via_service =
            run_fault_trial(opt.app, sc, Policy::AutoBalanced, 0.0,
                            trial_seed(s0, t))
                .elapsed;
        if (direct != via_service) {
          std::fprintf(stderr,
                       "CHECK FAILED: severity-0 trial %d: run_trial %.17g != "
                       "fault-path %.17g\n",
                       t, direct, via_service);
          rc = 2;
        }
      }
    }
    for (const FaultRow& row : rows) {
      auto cell_ok = [&](const FaultCell& c, const char* what) {
        // Trials may legitimately fail (max_sim_time pathology) but a
        // selection that *throws* on missing measurements is a bug; those
        // failure notes name the selection stage.
        for (const std::string& note : c.cell.failure_notes) {
          if (note.find("infeasible") != std::string::npos) {
            std::fprintf(stderr,
                         "CHECK FAILED: severity %.2f %s: selection failed "
                         "under faults: %s\n",
                         row.severity, what, note.c_str());
            rc = 2;
          }
        }
      };
      cell_ok(row.random, "random");
      for (const FaultCell& c : row.autos) cell_ok(c, "auto");
    }
    std::fprintf(stderr, rc == 0 ? "check: OK\n" : "check: FAILED\n");
    return rc;
  }
  return 0;
}
