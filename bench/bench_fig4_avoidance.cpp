// Reproduction of the paper's Figure 4 scenario: a bulk traffic stream runs
// from m-16 to m-18 (both on the suez router); the automatic node selection
// procedures, fed by Remos measurements, choose 4 nodes that avoid the
// congested subtree, while random selection regularly lands on it. Prints
// the selections, the resulting FFT execution times, and the annotated
// topology in Graphviz DOT form (the paper's figure shows the chosen nodes
// with bold borders).

#include <cstdio>

#include "appsim/loosely_synchronous.hpp"
#include "appsim/presets.hpp"
#include "load/traffic_generator.hpp"
#include "remos/remos.hpp"
#include "select/algorithms.hpp"
#include "sim/network_sim.hpp"
#include "topo/dot.hpp"
#include "topo/generators.hpp"
#include "util/table.hpp"

using namespace netsel;

namespace {

double run_fft_on(sim::NetworkSim& net, const std::vector<topo::NodeId>& nodes) {
  appsim::LooselySynchronousApp app(net, appsim::fft1k());
  app.start(nodes);
  while (!app.finished()) {
    if (!net.sim().step()) break;
  }
  return app.elapsed();
}

std::string names_of(const topo::TopologyGraph& g,
                     const std::vector<topo::NodeId>& nodes) {
  std::string out = "{";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) out += ", ";
    out += g.node(nodes[i]).name;
  }
  return out + "}";
}

}  // namespace

int main() {
  sim::NetworkSim net(topo::testbed());
  const auto& g = net.topology();
  auto m16 = g.find_node("m-16").value();
  auto m18 = g.find_node("m-18").value();

  // The persistent traffic stream of Fig. 4.
  load::BulkStream stream(net, m16, m18);
  stream.start();

  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(30.0);

  std::printf("Traffic stream m-16 -> m-18 active (%s transferred so far)\n\n",
              util::fmt_bytes(stream.bytes_transferred()).c_str());

  auto snap = remos.snapshot();
  select::SelectionOptions opt;
  opt.num_nodes = 4;

  auto balanced = select::select_balanced(snap, opt);
  auto bandwidth = select::select_max_bandwidth(snap, opt);
  util::Rng rng(4);
  auto random = select::select_random(snap, opt, rng);

  std::printf("auto (balanced, Fig. 3):  %s\n", names_of(g, balanced.nodes).c_str());
  std::printf("auto (max-bw,   Fig. 2):  %s\n", names_of(g, bandwidth.nodes).c_str());
  std::printf("random baseline:          %s\n\n", names_of(g, random.nodes).c_str());

  bool avoided = true;
  for (auto n : balanced.nodes) {
    const std::string& name = g.node(n).name;
    if (name == "m-16" || name == "m-18") avoided = false;
  }
  std::printf("balanced selection avoids the congested endpoints: %s\n",
              avoided ? "YES (matches the paper's figure)" : "NO");

  // Run the FFT on both placements under the live stream.
  double t_auto = run_fft_on(net, balanced.nodes);
  // A deliberately bad placement overlapping the stream's subtree.
  std::vector<topo::NodeId> clash = {m16, m18, g.find_node("m-13").value(),
                                     g.find_node("m-14").value()};
  double t_clash = run_fft_on(net, clash);
  std::printf("\nFFT time on auto-selected nodes: %6.1f s\n", t_auto);
  std::printf("FFT time sharing the stream's subtree: %6.1f s (%.1fx)\n",
              t_clash, t_clash / t_auto);

  topo::DotOptions dot;
  dot.highlight = balanced.nodes;
  dot.graph_name = "figure4";
  std::printf("\n%s\n", topo::to_dot(g, dot).c_str());
  return 0;
}
