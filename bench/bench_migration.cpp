// Dynamic migration experiment (paper §3.3: "The solution procedure can be
// applied directly to the problem of dynamic migration to avoid network
// congestion and busy nodes"). A long-running loosely-synchronous job is
// launched on well-chosen nodes; the background generators keep shifting
// load and traffic underneath it. We compare:
//   - static placement (select once, never move),
//   - migration with the MigrationController (re-select from Remos with the
//     app's own load excluded, move at iteration boundaries with a state
//     transfer cost),
// across several seeds, plus a migration-cost sweep.
//
// Usage: bench_migration [trials]   (default 10)

#include <cstdio>
#include <cstdlib>

#include "api/migration.hpp"
#include "api/service.hpp"
#include "exp/experiment.hpp"
#include "load/load_generator.hpp"
#include "load/traffic_generator.hpp"
#include "topo/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace netsel;

namespace {

appsim::LooselySyncConfig long_running_job() {
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 600;  // ~20 minutes unloaded: long enough for drift
  cfg.phases = {appsim::PhaseSpec{1.2, 2.5e6, appsim::CommPattern::AllToAll}};
  return cfg;
}

struct Outcome {
  double elapsed = 0.0;
  int migrations = 0;
};

Outcome run_once(std::uint64_t seed, bool migrate, double state_bytes) {
  sim::NetworkSim net(topo::testbed());
  util::Rng master(seed);
  exp::Scenario scen = exp::table1_scenario(true, true);
  load::HostLoadGenerator loadgen(net, scen.load, master.fork("load"));
  load::TrafficGenerator trafficgen(net, scen.traffic, master.fork("traffic"));
  remos::Remos remos(net, scen.monitor);
  loadgen.start();
  trafficgen.start();
  remos.start();
  net.sim().run_until(600.0);

  auto snap = remos.snapshot();
  select::SelectionOptions sel;
  sel.num_nodes = 4;
  auto chosen = select::select_balanced(snap, sel);

  appsim::LooselySynchronousApp app(net, long_running_job());
  app.start(chosen.nodes);

  api::MigrationPolicy policy;
  policy.check_interval = 30.0;
  policy.improvement_threshold = 0.6;
  policy.cooldown = 120.0;
  policy.state_bytes_per_node = state_bytes;
  api::MigrationController ctl(remos, app, policy, sel);
  if (migrate) ctl.start();

  while (!app.finished()) {
    if (net.sim().now() > 100000.0 || !net.sim().step()) break;
  }
  return Outcome{app.finished() ? app.elapsed() : -1.0,
                 ctl.migrations_triggered()};
}

}  // namespace

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 10;
  std::printf(
      "== Dynamic migration of a long-running job (600 iterations, "
      "load+traffic drifting) ==\n\n");

  util::OnlineStats stat_fixed, stat_mig;
  util::OnlineStats migrations;
  for (int t = 0; t < trials; ++t) {
    auto seed = static_cast<std::uint64_t>(5000 + t);
    auto fixed = run_once(seed, false, 8e6);
    auto moved = run_once(seed, true, 8e6);
    stat_fixed.add(fixed.elapsed);
    stat_mig.add(moved.elapsed);
    migrations.add(static_cast<double>(moved.migrations));
  }
  util::TextTable t;
  t.header({"placement policy", "mean time (s)", "95% CI", "migrations/run"});
  t.row({"select once, never move", util::fmt(stat_fixed.mean(), 1),
         "+-" + util::fmt(stat_fixed.ci_halfwidth(), 1), "0"});
  t.row({"migration controller", util::fmt(stat_mig.mean(), 1),
         "+-" + util::fmt(stat_mig.ci_halfwidth(), 1),
         util::fmt(migrations.mean(), 1)});
  std::printf("%s\n", t.render().c_str());
  std::printf("migration gain: %s\n\n",
              util::fmt_pct_change(stat_fixed.mean(), stat_mig.mean()).c_str());

  std::printf("-- state-transfer cost sweep (per-node checkpoint size) --\n");
  util::TextTable ct;
  ct.header({"state per node", "mean time (s)", "migrations/run"});
  for (double bytes : {0.0, 8e6, 64e6, 512e6}) {
    util::OnlineStats st, mig;
    for (int i = 0; i < trials; ++i) {
      auto o = run_once(static_cast<std::uint64_t>(6000 + i), true, bytes);
      st.add(o.elapsed);
      mig.add(static_cast<double>(o.migrations));
    }
    ct.row({util::fmt_bytes(bytes), util::fmt(st.mean(), 1),
            util::fmt(mig.mean(), 1)});
  }
  std::printf("%s", ct.render().c_str());
  std::printf(
      "\nExpected shape: migration beats fixed placement for long jobs, and\n"
      "the benefit erodes as checkpoint state grows (the §3.3 trade-off).\n");
  return 0;
}
