// Prioritisation ablation (paper §3.3): the balanced algorithm "is easily
// modified to prioritize the optimization of one by a given factor".
//
// Part 1 isolates the mechanism on a controlled snapshot (idle-but-congested
// nodes vs loaded-but-clean nodes) and shows the factor flipping the chosen
// set, with the paper's "50% CPU == 25% bandwidth" example at kc = 2.
//
// Part 2 is end to end: under heavy load AND heavy traffic (both resources
// scarce — otherwise the factor cannot matter because one term never binds),
// a compute-heavy and a communication-heavy application run on placements
// selected under different priority factors.
//
// Usage: bench_priority [trials]   (default 12)

#include <cstdio>
#include <cstdlib>

#include "exp/experiment.hpp"
#include "select/algorithms.hpp"
#include "select/objective.hpp"
#include "topo/generators.hpp"
#include "util/table.hpp"

using namespace netsel;
using namespace netsel::exp;

namespace {

void snapshot_demo() {
  std::printf("-- 1. decision flip on a controlled snapshot --\n");
  // Pair A: idle cpu (1.0) behind 40/42%-available links.
  // Pair B: 50% cpu on clean links.
  auto g = topo::star(4);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(0, 40e6);
  snap.set_bw(1, 42e6);
  snap.set_cpu(3, 0.5);
  snap.set_cpu(4, 0.5);
  util::TextTable t;
  t.header({"priority", "chosen pair", "objective", "interpretation"});
  for (auto [kc, kb, label] :
       {std::tuple{1.0, 1.0, "neutral"},
        {2.0, 1.0, "cpu x2 (50% cpu == 25% bw)"},
        {1.0, 2.0, "bw x2"}}) {
    select::SelectionOptions opt;
    opt.num_nodes = 2;
    opt.cpu_priority = kc;
    opt.bw_priority = kb;
    auto r = select::select_balanced(snap, opt);
    std::string pair = g.node(r.nodes[0]).name + "," + g.node(r.nodes[1]).name;
    bool idle_pair = r.nodes[0] == 1;
    t.row({label, pair, util::fmt(r.objective, 3),
           idle_pair ? "idle cpu, congested links"
                     : "half cpu, clean links"});
  }
  std::printf("%s\n", t.render().c_str());
}

AppCase compute_heavy() {
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 32;
  cfg.phases = {appsim::PhaseSpec{1.4, 0.25e6, appsim::CommPattern::AllToAll}};
  return AppCase{"compute-heavy", cfg};
}

AppCase comm_heavy() {
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 32;
  cfg.phases = {appsim::PhaseSpec{0.25, 5e6, appsim::CommPattern::AllToAll}};
  return AppCase{"comm-heavy", cfg};
}

void end_to_end(int trials) {
  std::printf(
      "-- 2. end-to-end under scarce cpu AND bandwidth (%d trials) --\n",
      trials);
  const std::uint64_t seed = 4242;
  util::TextTable t;
  t.header({"app", "neutral", "kc=2", "kc=4 (cpu prio)", "kb=2",
            "kb=4 (bw prio)"});
  int placements_changed = 0;
  int placements_total = 0;
  for (const AppCase& app : {compute_heavy(), comm_heavy()}) {
    std::vector<std::string> row{app.name};
    std::vector<std::vector<topo::NodeId>> neutral_nodes;
    for (auto [kc, kb] : {std::pair{1.0, 1.0},
                          {2.0, 1.0},
                          {4.0, 1.0},
                          {1.0, 2.0},
                          {1.0, 4.0}}) {
      Scenario s = table1_scenario(true, true);
      s.load.intensity = 1.5;
      s.traffic.intensity = 2.0;
      s.selection.cpu_priority = kc;
      s.selection.bw_priority = kb;
      util::OnlineStats stats;
      for (int tr = 0; tr < trials; ++tr) {
        auto r = run_trial(app, s, Policy::AutoBalanced,
                           seed + static_cast<std::uint64_t>(tr));
        stats.add(r.elapsed);
        bool neutral = kc == 1.0 && kb == 1.0;
        auto ts = static_cast<std::size_t>(tr);
        if (neutral) {
          if (neutral_nodes.size() <= ts) neutral_nodes.resize(ts + 1);
          neutral_nodes[ts] = r.nodes;
        } else if (ts < neutral_nodes.size() && !neutral_nodes[ts].empty()) {
          ++placements_total;
          if (r.nodes != neutral_nodes[ts]) ++placements_changed;
        }
      }
      row.push_back(util::fmt(stats.mean(), 1) + " +-" +
                    util::fmt(stats.ci_halfwidth(), 1));
    }
    t.row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Placements that differed from the neutral choice: %d of %d.\n\n"
      "Finding (negative result, worth stating): on the Fig. 4 testbed the\n"
      "factor almost never changes the chosen set end to end — with 18\n"
      "hosts behind 3 routers there is nearly always a set that is best on\n"
      "both axes at once, so the min() objective picks it at any priority.\n"
      "The factor matters exactly when idle-but-congested and\n"
      "loaded-but-clean candidates coexist (part 1); the paper presents it\n"
      "as an API knob and reports no end-to-end numbers for it either.\n",
      placements_changed, placements_total);
}

}  // namespace

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 12;
  std::printf("== Priority factor sweep (Fig. 3 objective min(cpu/kc, bw/kb)) ==\n\n");
  snapshot_demo();
  end_to_end(trials);
  return 0;
}
