// Scalability of the selection stack on synthetic datacenter topologies
// (topo/synthetic.hpp): a grid of topology family x node count x criterion,
// timing each selection cold (fresh SelectionContext: deletion orders and
// components built during the call) and warm (orders cached), with
// dominated-candidate pruning on vs off, asserting the two produce
// bit-identical selections. On top of the grid:
//
//   * a kernel section timing the scalar flat-arena bottleneck BFS
//     (topo::bottleneck_row) against the 64-wide batched bitset kernel
//     (topo::batched_bottleneck_rows) on the largest fat-tree, asserting
//     the batch is bit-identical row for row;
//   * a warm_rows thread sweep (1/2/4/... pool workers vs the serial
//     build), asserting every thread count produces bit-identical rows;
//   * with --huge, a ~1,000,000-host three-level fat-tree cell (balanced
//     criterion only) that becomes the headline, plus a pooled-scoring
//     rerun (SelectionContext::set_pool) asserting the threaded selection
//     matches the serial one;
//   * peak-RSS and flat-arena footprint accounting in the JSON record.
//
// Headline contract (tracked in BENCH_scale.json and checked in CI):
// balanced selection on the largest fat-tree in the run, cold,
// single-threaded, in under 1 s.
//
// Usage: bench_scale [reps] [seed] [--csv] [--check] [--threads N]
//                    [--m M] [--huge] [--bench-json PATH]
//                    [--metrics-json PATH] [--chrome-trace PATH]
// Defaults: 3 reps per cell, seed 4242, m = 16.
//   --m M            selection size for every cell (the paper's m).
//   --huge           add the ~1M-host three-level fat-tree cell (balanced
//                    only; the other criteria stay on the grid sizes).
//   --threads N      top of the warm_rows sweep (N < 0: one per hardware
//                    thread, at least 4 so the curve is populated even on
//                    small CI runners; selection itself is always timed
//                    single-threaded except the --huge pooled rerun).
//   --check          CI smoke: run a reduced grid once and exit non-zero if
//                    any pruned selection differs from its unpruned twin,
//                    any generator output fails to round-trip through the
//                    .topo serialiser, the batched kernel differs from the
//                    scalar one, or threaded warm_rows differs from serial.
//                    Tables are skipped.
//   --csv            append the machine-readable grid after the table.
//   --bench-json P   write the perf record (per-cell timings, headline,
//                    kernel speedups, thread curve, memory, counters) to P.
//   --metrics-json P enable the obs registry and write its JSON document
//                    (schema netsel-metrics-v1) to P after the run.
//   --chrome-trace P enable the obs registry and write the recorded spans
//                    as Chrome trace_event JSON to P.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "api/service.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "topo/flat_graph.hpp"
#include "topo/parse.hpp"
#include "topo/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace netsel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t counter_value(const char* name) {
  for (const auto& [n, v] : obs::Registry::global().counters())
    if (n == name) return v;
  return 0;
}

/// Resident-set high-water mark of this process, in bytes (0 where the
/// platform has no getrusage). ru_maxrss is KiB on Linux, bytes on macOS.
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
#endif
  }
#endif
  return 0;
}

struct CaseSpec {
  const char* family;
  topo::TopologyGraph graph;
  double build_seconds = 0.0;
  int hosts = 0;
  /// The --huge cell: cold balanced selection only. The deletion-order
  /// criteria would also finish, but at 1M+ links they dominate the run
  /// without adding coverage beyond the grid sizes.
  bool balanced_only = false;
};

/// The benchmark grid; `reduced` is the --check smoke (small sizes, still
/// one instance of every family so every generator code path runs).
std::vector<CaseSpec> build_cases(std::uint64_t seed, bool reduced,
                                  bool huge) {
  std::vector<CaseSpec> cases;
  auto add = [&](const char* family, topo::TopologyGraph g, double secs,
                 bool balanced_only = false) {
    CaseSpec c{family, std::move(g), secs, 0, balanced_only};
    for (std::size_t i = 0; i < c.graph.node_count(); ++i)
      if (c.graph.is_compute(static_cast<topo::NodeId>(i))) ++c.hosts;
    cases.push_back(std::move(c));
  };
  const std::vector<int> ft_hosts =
      reduced ? std::vector<int>{256} : std::vector<int>{512, 2048, 10000};
  for (int h : ft_hosts) {
    auto t0 = Clock::now();
    auto g = topo::fat_tree(topo::fat_tree_for_hosts(h, 48, 3.0, seed));
    add("fat_tree", std::move(g), seconds_since(t0));
  }
  {
    // Three-level variant: one small instance always (generator coverage),
    // plus the ~1M-host headline cell under --huge.
    auto o = topo::three_level_fat_tree_for_hosts(
        reduced ? 128 : 4096, reduced ? 8 : 24, 3.0, 1024, seed);
    auto t0 = Clock::now();
    auto g = topo::three_level_fat_tree(o);
    add("fat_tree_3l", std::move(g), seconds_since(t0));
  }
  if (huge) {
    auto o = topo::three_level_fat_tree_for_hosts(1000000, 48, 3.0, 1024,
                                                  seed);
    auto t0 = Clock::now();
    auto g = topo::three_level_fat_tree(o);
    add("fat_tree_3l", std::move(g), seconds_since(t0),
        /*balanced_only=*/true);
  }
  struct CampusSize {
    int campuses, buildings, hosts;
  };
  const std::vector<CampusSize> cw = reduced
                                         ? std::vector<CampusSize>{{4, 2, 8}}
                                         : std::vector<CampusSize>{
                                               {8, 4, 16}, {16, 8, 16}};
  for (const auto& s : cw) {
    topo::CampusWanOptions o;
    o.campuses = s.campuses;
    o.buildings_per_campus = s.buildings;
    o.hosts_per_building = s.hosts;
    o.seed = seed;
    auto t0 = Clock::now();
    auto g = topo::campus_wan(o);
    add("campus_wan", std::move(g), seconds_since(t0));
  }
  struct CoreEdgeSize {
    int cores, edges, hosts;
  };
  const std::vector<CoreEdgeSize> ce =
      reduced ? std::vector<CoreEdgeSize>{{8, 16, 128}}
              : std::vector<CoreEdgeSize>{{16, 64, 512}, {32, 128, 2048}};
  for (const auto& s : ce) {
    topo::RandomCoreEdgeOptions o;
    o.core_switches = s.cores;
    o.edge_switches = s.edges;
    o.hosts = s.hosts;
    o.seed = seed;
    auto t0 = Clock::now();
    auto g = topo::random_core_edge(o);
    add("random_core_edge", std::move(g), seconds_since(t0));
  }
  return cases;
}

bool same_selection(const select::SelectionResult& a,
                    const select::SelectionResult& b) {
  return a.feasible == b.feasible && a.nodes == b.nodes &&
         a.min_cpu == b.min_cpu && a.min_bw_fraction == b.min_bw_fraction &&
         a.objective == b.objective && a.iterations == b.iterations;
}

bool same_row(const topo::BottleneckRow& a, const topo::BottleneckRow& b) {
  return a.bottleneck == b.bottleneck && a.bottleneck2 == b.bottleneck2 &&
         a.latency == b.latency && a.reached == b.reached &&
         a.tree_link == b.tree_link && a.order == b.order;
}

struct CriterionTiming {
  select::Criterion criterion;
  double cold_seconds = 0.0;   // first call on a fresh context, pruned
  double warm_seconds = 0.0;   // mean of the remaining reps, pruned
  double naive_seconds = 0.0;  // cold call with pruning disabled
  bool identical = false;
};

struct CellResult {
  const CaseSpec* spec = nullptr;
  std::vector<CriterionTiming> timings;
};

constexpr select::Criterion kCriteria[] = {select::Criterion::MaxCompute,
                                           select::Criterion::MaxBandwidth,
                                           select::Criterion::Balanced};

CellResult run_cell(const CaseSpec& spec, std::uint64_t seed, int m,
                    int reps) {
  obs::Span span("scale.cell", "bench");
  span.arg("family", spec.family);
  span.arg("nodes", std::to_string(spec.graph.node_count()));
  remos::NetworkSnapshot snap(spec.graph);
  remos::apply_synthetic_load(snap, seed + 7);
  CellResult out;
  out.spec = &spec;
  for (select::Criterion c : kCriteria) {
    if (spec.balanced_only && c != select::Criterion::Balanced) continue;
    select::SelectionOptions opt;
    opt.num_nodes = m;
    CriterionTiming t;
    t.criterion = c;
    select::SelectionResult pruned;
    if (spec.balanced_only) {
      // The huge cell: every rep is a fresh context (all cold — the
      // contract is about cold selections), best taken so one noisy
      // scheduler quantum at the ~1 s scale does not decide the record.
      t.cold_seconds = std::numeric_limits<double>::infinity();
      for (int r = 0; r < reps; ++r) {
        select::SelectionContext ctx(snap);
        auto t0 = Clock::now();
        auto again = select::select_nodes(c, ctx, opt);
        t.cold_seconds = std::min(t.cold_seconds, seconds_since(t0));
        if (r == 0)
          pruned = std::move(again);
        else if (!same_selection(pruned, again))
          std::abort();
      }
      t.warm_seconds = t.cold_seconds;
    } else {
      select::SelectionContext ctx(snap);
      auto t0 = Clock::now();
      pruned = select::select_nodes(c, ctx, opt);
      t.cold_seconds = seconds_since(t0);
      if (reps > 1) {
        auto t1 = Clock::now();
        for (int r = 1; r < reps; ++r) {
          auto again = select::select_nodes(c, ctx, opt);
          if (!same_selection(pruned, again)) std::abort();
        }
        t.warm_seconds = seconds_since(t1) / (reps - 1);
      } else {
        t.warm_seconds = t.cold_seconds;
      }
    }
    {
      select::SelectionOptions naive = opt;
      naive.prune_dominated = false;
      select::SelectionContext ctx(snap);
      auto t0 = Clock::now();
      auto unpruned = select::select_nodes(c, ctx, naive);
      t.naive_seconds = seconds_since(t0);
      t.identical = same_selection(pruned, unpruned);
    }
    out.timings.push_back(t);
  }
  return out;
}

// ------------------------------------------------------------------ kernels

/// Scalar vs 64-wide batched bottleneck BFS, 64 rows each, best of three
/// timed reps per variant. Three baselines so the ledger is honest about
/// where time goes on this output-bound workload:
///   graph_scalar  the seed's object-graph kernel (pre-CSR, pre-arena)
///   csr_scalar    the kernel warm_rows used before the flat arena
///   scalar        per-source BFS over the arena (this PR's scalar path)
/// All scalar variants return rows by value (their API forces a fresh
/// allocation per row, as the old warm_rows path paid every epoch); the
/// batched kernel refreshes one preallocated row set in place, which is
/// exactly how the new warm_rows cache refresh drives it. `identical` is
/// the in-bench oracle — a false here is a kernel bug, not a perf miss.
struct KernelResult {
  std::size_t nodes = 0;
  std::size_t links = 0;
  int sources = 0;
  double arena_build_seconds = 0.0;
  std::uint64_t arena_bytes = 0;
  double graph_scalar_seconds = 0.0;
  double csr_scalar_seconds = 0.0;
  double scalar_seconds = 0.0;
  double batched_seconds = 0.0;
  std::uint64_t passes = 0;
  std::uint64_t frontier_words = 0;
  std::uint64_t batched_rows = 0;
  std::uint64_t scalar_fallback_rows = 0;
  bool identical = true;
};

std::vector<topo::NodeId> first_hosts(const topo::TopologyGraph& g,
                                      std::size_t limit) {
  std::vector<topo::NodeId> sources;
  for (std::size_t i = 0; i < g.node_count() && sources.size() < limit; ++i)
    if (g.is_compute(static_cast<topo::NodeId>(i)))
      sources.push_back(static_cast<topo::NodeId>(i));
  return sources;
}

KernelResult time_kernels(const remos::NetworkSnapshot& snap) {
  obs::Span span("scale.kernels", "bench");
  KernelResult r;
  r.nodes = snap.graph().node_count();
  r.links = snap.graph().link_count();
  auto sources = first_hosts(snap.graph(), 64);
  r.sources = static_cast<int>(sources.size());

  select::SelectionContext ctx(snap);
  ctx.csr();  // pre-build the shared adjacency: time the arena alone
  auto t0 = Clock::now();
  const topo::FlatGraph& g = ctx.flat();
  r.arena_build_seconds = seconds_since(t0);
  r.arena_bytes = ctx.arena_bytes();

  constexpr int kReps = 5;
  const std::vector<double>& bw = ctx.link_bw();
  const std::vector<double>& bwf = ctx.link_bwfactor();
  std::vector<topo::BottleneckRow> scalar_rows(sources.size());

  auto best_of = [&](auto&& body) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      auto t = Clock::now();
      body();
      best = std::min(best, seconds_since(t));
    }
    return best;
  };

  r.graph_scalar_seconds = best_of([&] {
    for (std::size_t i = 0; i < sources.size(); ++i)
      scalar_rows[i] = topo::bottleneck_row(snap.graph(), sources[i], bw, bwf);
  });
  r.csr_scalar_seconds = best_of([&] {
    for (std::size_t i = 0; i < sources.size(); ++i)
      scalar_rows[i] = topo::bottleneck_row(ctx.csr(), sources[i], bw, bwf);
  });
  r.scalar_seconds = best_of([&] {
    for (std::size_t i = 0; i < sources.size(); ++i)
      scalar_rows[i] = topo::bottleneck_row(g, sources[i]);
  });

  std::vector<topo::BottleneckRow> batched(sources.size());
  topo::BatchStats st;
  // One untimed warmup sizes the rows; the timed reps then measure the
  // steady-state in-place refresh, stats folded in from the last rep only.
  topo::batched_bottleneck_rows(g, sources, batched, nullptr);
  r.batched_seconds = best_of([&] {
    st = topo::BatchStats{};
    topo::batched_bottleneck_rows(g, sources, batched, &st);
  });
  r.passes = st.passes;
  r.frontier_words = st.frontier_words;
  r.batched_rows = st.batched_rows;
  r.scalar_fallback_rows = st.scalar_fallback_rows;
  for (std::size_t i = 0; i < sources.size(); ++i)
    if (!same_row(scalar_rows[i], batched[i])) r.identical = false;
  return r;
}

// ---------------------------------------------------------- warm_rows sweep

struct SweepPoint {
  int workers = 0;
  double seconds = 0.0;
  bool identical = true;
};

/// Serial warm_rows baseline plus a worker-count curve, every point checked
/// bit-identical against the serial rows. Fresh contexts each so all start
/// cold; csr() prebuilt so the rows alone are timed.
struct WarmRowsResult {
  std::size_t nodes = 0;
  int sources = 0;
  double serial_seconds = 0.0;
  std::vector<SweepPoint> curve;
};

WarmRowsResult time_warm_rows(const remos::NetworkSnapshot& snap,
                              const std::vector<int>& worker_counts) {
  obs::Span span("scale.warm_rows", "bench");
  WarmRowsResult r;
  r.nodes = snap.graph().node_count();
  auto sources = first_hosts(snap.graph(), 64);
  r.sources = static_cast<int>(sources.size());
  select::SelectionContext serial_ctx(snap);
  {
    util::ThreadPool serial(0);
    serial_ctx.csr();
    auto t0 = Clock::now();
    serial_ctx.warm_rows(serial, sources);
    r.serial_seconds = seconds_since(t0);
  }
  for (int w : worker_counts) {
    util::ThreadPool pool(w);
    SweepPoint p;
    p.workers = pool.workers();
    select::SelectionContext ctx(snap);
    ctx.csr();
    auto t0 = Clock::now();
    ctx.warm_rows(pool, sources);
    p.seconds = seconds_since(t0);
    for (topo::NodeId s : sources)
      if (!same_row(serial_ctx.pair_row(s), ctx.pair_row(s)))
        p.identical = false;
    r.curve.push_back(p);
  }
  return r;
}

// ------------------------------------------------------------- pooled rerun

/// Balanced selection on the --huge cell with the context's scoring loops
/// on a pool (SelectionContext::set_pool) vs a serial rerun. The chunked
/// fills are index-deterministic, so the selections must match.
struct PooledSelect {
  int workers = 0;
  double serial_seconds = 0.0;
  double pool_seconds = 0.0;
  bool identical = true;
};

PooledSelect time_pooled_select(const CaseSpec& spec, std::uint64_t seed,
                                int m, int threads) {
  obs::Span span("scale.pooled_select", "bench");
  remos::NetworkSnapshot snap(spec.graph);
  remos::apply_synthetic_load(snap, seed + 7);
  select::SelectionOptions opt;
  opt.num_nodes = m;
  PooledSelect r;
  select::SelectionResult serial;
  {
    select::SelectionContext ctx(snap);
    auto t0 = Clock::now();
    serial = select::select_nodes(select::Criterion::Balanced, ctx, opt);
    r.serial_seconds = seconds_since(t0);
  }
  {
    util::ThreadPool pool(threads);
    r.workers = pool.workers();
    select::SelectionContext ctx(snap);
    ctx.set_pool(&pool);
    auto t0 = Clock::now();
    auto pooled = select::select_nodes(select::Criterion::Balanced, ctx, opt);
    r.pool_seconds = seconds_since(t0);
    r.identical = same_selection(serial, pooled);
  }
  return r;
}

int run_check(std::uint64_t seed, int m, int threads) {
  int rc = 0;
  auto cases = build_cases(seed, /*reduced=*/true, /*huge=*/false);
  for (const CaseSpec& spec : cases) {
    // Generator outputs must round-trip through the .topo serialiser.
    auto text = topo::format_topology(spec.graph);
    auto reparsed = topo::parse_topology(text);
    if (reparsed.node_count() != spec.graph.node_count() ||
        reparsed.link_count() != spec.graph.link_count()) {
      std::fprintf(stderr, "CHECK FAILED: %s does not round-trip via .topo\n",
                   spec.family);
      rc = 2;
    }
    auto cell = run_cell(spec, seed, m, 1);
    for (const CriterionTiming& t : cell.timings) {
      if (!t.identical) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s (%zu nodes) %s: pruned selection "
                     "differs from unpruned\n",
                     spec.family, spec.graph.node_count(),
                     select::criterion_name(t.criterion));
        rc = 2;
      }
    }
    // Batched bitset BFS must be bit-identical to the scalar kernel, and
    // pool-threaded warm_rows to the serial build, on every family.
    remos::NetworkSnapshot snap(spec.graph);
    remos::apply_synthetic_load(snap, seed + 7);
    auto kr = time_kernels(snap);
    if (!kr.identical) {
      std::fprintf(stderr,
                   "CHECK FAILED: %s (%zu nodes): batched bottleneck rows "
                   "differ from scalar\n",
                   spec.family, spec.graph.node_count());
      rc = 2;
    }
    auto wr = time_warm_rows(snap, {threads > 0 ? threads : 2});
    for (const SweepPoint& p : wr.curve) {
      if (!p.identical) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s (%zu nodes): warm_rows with %d "
                     "workers differs from serial\n",
                     spec.family, spec.graph.node_count(), p.workers);
        rc = 2;
      }
    }
  }
  std::fprintf(stderr, rc == 0 ? "check: OK\n" : "check: FAILED\n");
  return rc;
}

bool write_obs_exports(const char* metrics_path, const char* trace_path) {
  // Pre-register the service metrics so the exported document carries the
  // full schema (scripts/check_metrics_json.py requires the degradation
  // ladder), even though this benchmark never places through the service.
  api::register_service_metrics();
  bool ok = true;
  if (metrics_path) {
    std::ofstream f(metrics_path);
    if (f) {
      obs::write_json(obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", metrics_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      ok = false;
    }
  }
  if (trace_path) {
    std::ofstream f(trace_path);
    if (f) {
      obs::write_chrome_trace(obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", trace_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      ok = false;
    }
  }
  return ok;
}

int write_bench_json(const char* path, std::uint64_t seed, int m, int reps,
                     const std::vector<CellResult>& cells,
                     const CriterionTiming* headline,
                     const CaseSpec* headline_spec, const KernelResult& kr,
                     const WarmRowsResult& wr, const PooledSelect* ps) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"scale\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"seed\": %llu,\n"
               "  \"m\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"cells\": [\n",
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(seed), m, reps);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"family\": \"%s\",\n"
                 "      \"nodes\": %zu,\n"
                 "      \"links\": %zu,\n"
                 "      \"hosts\": %d,\n"
                 "      \"build_seconds\": %.4f,\n"
                 "      \"criteria\": {\n",
                 cell.spec->family, cell.spec->graph.node_count(),
                 cell.spec->graph.link_count(), cell.spec->hosts,
                 cell.spec->build_seconds);
    for (std::size_t j = 0; j < cell.timings.size(); ++j) {
      const CriterionTiming& t = cell.timings[j];
      std::fprintf(f,
                   "        \"%s\": { \"cold_seconds\": %.5f, "
                   "\"warm_seconds\": %.5f, \"unpruned_cold_seconds\": %.5f, "
                   "\"identical\": %s }%s\n",
                   select::criterion_name(t.criterion), t.cold_seconds,
                   t.warm_seconds, t.naive_seconds,
                   t.identical ? "true" : "false",
                   j + 1 < cell.timings.size() ? "," : "");
    }
    std::fprintf(f, "      }\n    }%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (headline && headline_spec) {
    std::fprintf(f,
                 "  \"headline\": {\n"
                 "    \"contract\": \"balanced m=%d on the largest fat-tree, "
                 "cold, single-threaded, < 1 s\",\n"
                 "    \"family\": \"%s\",\n"
                 "    \"nodes\": %zu,\n"
                 "    \"hosts\": %d,\n"
                 "    \"cold_seconds\": %.5f,\n"
                 "    \"target_seconds\": 1.0,\n"
                 "    \"within_target\": %s\n"
                 "  },\n",
                 m, headline_spec->family, headline_spec->graph.node_count(),
                 headline_spec->hosts, headline->cold_seconds,
                 headline->cold_seconds < 1.0 ? "true" : "false");
  }
  std::fprintf(
      f,
      "  \"kernels\": {\n"
      "    \"nodes\": %zu,\n"
      "    \"links\": %zu,\n"
      "    \"sources\": %d,\n"
      "    \"arena_build_seconds\": %.5f,\n"
      "    \"arena_bytes\": %llu,\n"
      "    \"graph_scalar_seconds\": %.5f,\n"
      "    \"csr_scalar_seconds\": %.5f,\n"
      "    \"scalar_seconds\": %.5f,\n"
      "    \"batched_seconds\": %.5f,\n"
      "    \"speedup_vs_graph_scalar\": %.2f,\n"
      "    \"speedup_vs_csr_scalar\": %.2f,\n"
      "    \"speedup\": %.2f,\n"
      "    \"passes\": %llu,\n"
      "    \"frontier_words\": %llu,\n"
      "    \"batched_rows\": %llu,\n"
      "    \"scalar_fallback_rows\": %llu,\n"
      "    \"identical\": %s\n"
      "  },\n",
      kr.nodes, kr.links, kr.sources, kr.arena_build_seconds,
      static_cast<unsigned long long>(kr.arena_bytes), kr.graph_scalar_seconds,
      kr.csr_scalar_seconds, kr.scalar_seconds, kr.batched_seconds,
      kr.batched_seconds > 0.0 ? kr.graph_scalar_seconds / kr.batched_seconds
                               : 0.0,
      kr.batched_seconds > 0.0 ? kr.csr_scalar_seconds / kr.batched_seconds
                               : 0.0,
      kr.batched_seconds > 0.0 ? kr.scalar_seconds / kr.batched_seconds : 0.0,
      static_cast<unsigned long long>(kr.passes),
      static_cast<unsigned long long>(kr.frontier_words),
      static_cast<unsigned long long>(kr.batched_rows),
      static_cast<unsigned long long>(kr.scalar_fallback_rows),
      kr.identical ? "true" : "false");
  std::fprintf(f,
               "  \"warm_rows\": {\n"
               "    \"nodes\": %zu,\n"
               "    \"sources\": %d,\n"
               "    \"serial_seconds\": %.5f,\n"
               "    \"curve\": [\n",
               wr.nodes, wr.sources, wr.serial_seconds);
  for (std::size_t i = 0; i < wr.curve.size(); ++i) {
    const SweepPoint& p = wr.curve[i];
    std::fprintf(f,
                 "      { \"workers\": %d, \"seconds\": %.5f, "
                 "\"speedup\": %.2f, \"identical\": %s }%s\n",
                 p.workers, p.seconds,
                 p.seconds > 0.0 ? wr.serial_seconds / p.seconds : 0.0,
                 p.identical ? "true" : "false",
                 i + 1 < wr.curve.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  if (ps) {
    std::fprintf(f,
                 "  \"pooled_balanced\": {\n"
                 "    \"workers\": %d,\n"
                 "    \"serial_cold_seconds\": %.5f,\n"
                 "    \"pool_cold_seconds\": %.5f,\n"
                 "    \"identical\": %s\n"
                 "  },\n",
                 ps->workers, ps->serial_seconds, ps->pool_seconds,
                 ps->identical ? "true" : "false");
  }
  std::fprintf(f,
               "  \"memory\": {\n"
               "    \"peak_rss_bytes\": %llu,\n"
               "    \"arena_bytes\": %llu\n"
               "  },\n"
               "  \"metrics\": {\n"
               "    \"prune_dropped\": %llu,\n"
               "    \"ctx_row_misses\": %llu,\n"
               "    \"ctx_rows_batched\": %llu,\n"
               "    \"ctx_rows_scalar_fallback\": %llu,\n"
               "    \"ctx_batch_passes\": %llu,\n"
               "    \"ctx_batch_frontier_words\": %llu\n"
               "  }\n"
               "}\n",
               static_cast<unsigned long long>(peak_rss_bytes()),
               static_cast<unsigned long long>(kr.arena_bytes),
               static_cast<unsigned long long>(
                   counter_value("select.prune.dropped")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.row_misses")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.rows.batched")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.rows.scalar_fallback")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.batch.passes")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.batch.frontier_words")));
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  std::uint64_t seed = 4242;
  int threads = -1;
  int m = 16;
  bool csv = false;
  bool check = false;
  bool huge = false;
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--huge") == 0) {
      huge = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--m") == 0 && i + 1 < argc) {
      m = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (positional == 0) {
      reps = std::atoi(argv[i]);
      ++positional;
    } else {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[i], nullptr, 10));
      ++positional;
    }
  }
  if (reps < 1) {
    std::fprintf(stderr, "reps must be >= 1\n");
    return 1;
  }
  if (m < 1) {
    std::fprintf(stderr, "m must be >= 1\n");
    return 1;
  }
  if (check) return run_check(seed, m, threads);
  if (json_path || metrics_path || trace_path) obs::set_enabled(true);

  std::fprintf(stderr, "bench_scale: generating topologies (seed %llu)...\n",
               static_cast<unsigned long long>(seed));
  auto cases = build_cases(seed, /*reduced=*/false, huge);

  std::printf(
      "== Selection at scale: synthetic fabrics, m=%d, %d reps, seed %llu ==\n"
      "   cold = fresh context; warm = cached deletion orders;\n"
      "   unpruned = cold with dominated-candidate pruning disabled\n\n"
      "%-18s %8s %8s %8s  %-14s %9s %9s %9s  %s\n",
      m, reps, static_cast<unsigned long long>(seed), "family", "nodes",
      "links", "hosts", "criterion", "cold_ms", "warm_ms", "unpr_ms", "same");
  std::vector<CellResult> cells;
  const CriterionTiming* headline = nullptr;
  const CaseSpec* headline_spec = nullptr;
  bool all_identical = true;
  for (const CaseSpec& spec : cases) {
    cells.push_back(run_cell(spec, seed, m, reps));
    const CellResult& cell = cells.back();
    for (const CriterionTiming& t : cell.timings) {
      std::printf("%-18s %8zu %8zu %8d  %-14s %9.2f %9.2f %9.2f  %s\n",
                  spec.family, spec.graph.node_count(),
                  spec.graph.link_count(), spec.hosts,
                  select::criterion_name(t.criterion), t.cold_seconds * 1e3,
                  t.warm_seconds * 1e3, t.naive_seconds * 1e3,
                  t.identical ? "yes" : "NO");
      all_identical = all_identical && t.identical;
      if (t.criterion == select::Criterion::Balanced &&
          std::strncmp(spec.family, "fat_tree", 8) == 0 &&
          (!headline_spec ||
           spec.graph.node_count() > headline_spec->graph.node_count())) {
        headline = &t;
        headline_spec = &spec;
      }
    }
  }

  // Kernel compare + warm-row thread curve on the largest *two-level*
  // fat-tree: the 64-source batch there is the cold path warm_rows serves
  // in production. (The --huge graph is left to the balanced cell — 64
  // full-graph rows at 1M nodes would time the memory bus, not the kernel.)
  const CaseSpec* largest_ft = nullptr;
  for (const CaseSpec& spec : cases)
    if (std::strcmp(spec.family, "fat_tree") == 0) largest_ft = &spec;
  KernelResult kr;
  WarmRowsResult wr;
  if (largest_ft) {
    remos::NetworkSnapshot snap(largest_ft->graph);
    remos::apply_synthetic_load(snap, seed + 7);
    kr = time_kernels(snap);
    std::printf(
        "\nkernels on %zu-node fat-tree, %d rows (best of 5): graph scalar "
        "%.2f ms, csr scalar %.2f ms, flat scalar %.2f ms, batched %.2f ms "
        "(%.2fx vs graph, %.2fx vs csr, %.2fx vs flat; %llu passes, "
        "%llu frontier words, %llu/%d rows batched)%s\n",
        kr.nodes, kr.sources, kr.graph_scalar_seconds * 1e3,
        kr.csr_scalar_seconds * 1e3, kr.scalar_seconds * 1e3,
        kr.batched_seconds * 1e3,
        kr.batched_seconds > 0.0 ? kr.graph_scalar_seconds / kr.batched_seconds
                                 : 0.0,
        kr.batched_seconds > 0.0 ? kr.csr_scalar_seconds / kr.batched_seconds
                                 : 0.0,
        kr.batched_seconds > 0.0 ? kr.scalar_seconds / kr.batched_seconds
                                 : 0.0,
        static_cast<unsigned long long>(kr.passes),
        static_cast<unsigned long long>(kr.frontier_words),
        static_cast<unsigned long long>(kr.batched_rows), kr.sources,
        kr.identical ? "" : "  IDENTITY FAILED");
    all_identical = all_identical && kr.identical;

    std::vector<int> worker_counts;
    const int top =
        threads > 0 ? threads
                    : static_cast<int>(
                          std::max(4u, std::thread::hardware_concurrency()));
    for (int w = 1; w <= top; w *= 2) worker_counts.push_back(w);
    wr = time_warm_rows(snap, worker_counts);
    std::printf("warm_rows on %zu-node fat-tree: %d rows serial %.2f ms\n",
                wr.nodes, wr.sources, wr.serial_seconds * 1e3);
    for (const SweepPoint& p : wr.curve) {
      std::printf("  %2d workers %8.2f ms (%.2fx)%s\n", p.workers,
                  p.seconds * 1e3,
                  p.seconds > 0.0 ? wr.serial_seconds / p.seconds : 0.0,
                  p.identical ? "" : "  IDENTITY FAILED");
      all_identical = all_identical && p.identical;
    }
  }

  // Pooled-scoring rerun of the headline balanced selection (--huge only:
  // at grid sizes the fills are under the parallel cut-over anyway).
  PooledSelect ps;
  bool have_ps = false;
  if (huge) {
    const CaseSpec* huge_spec = nullptr;
    for (const CaseSpec& spec : cases)
      if (spec.balanced_only) huge_spec = &spec;
    if (huge_spec) {
      ps = time_pooled_select(*huge_spec, seed, m, threads > 0 ? threads : 4);
      have_ps = true;
      std::printf(
          "pooled balanced on %zu-node fat_tree_3l: serial %.1f ms, "
          "%d workers %.1f ms%s\n",
          huge_spec->graph.node_count(), ps.serial_seconds * 1e3, ps.workers,
          ps.pool_seconds * 1e3, ps.identical ? "" : "  IDENTITY FAILED");
      all_identical = all_identical && ps.identical;
    }
  }

  if (headline && headline_spec) {
    std::printf(
        "headline: balanced m=%d on %zu-node %s cold in %.1f ms "
        "(target < 1000 ms): %s\n",
        m, headline_spec->graph.node_count(), headline_spec->family,
        headline->cold_seconds * 1e3,
        headline->cold_seconds < 1.0 ? "PASS" : "FAIL");
  }
  std::printf("peak RSS %.1f MiB, flat arena %.1f MiB\n",
              static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0),
              static_cast<double>(kr.arena_bytes) / (1024.0 * 1024.0));
  if (csv) {
    std::printf("\n-- csv --\nfamily,nodes,links,hosts,criterion,cold_s,"
                "warm_s,unpruned_cold_s,identical\n");
    for (const CellResult& cell : cells)
      for (const CriterionTiming& t : cell.timings)
        std::printf("%s,%zu,%zu,%d,%s,%.5f,%.5f,%.5f,%d\n",
                    cell.spec->family, cell.spec->graph.node_count(),
                    cell.spec->graph.link_count(), cell.spec->hosts,
                    select::criterion_name(t.criterion), t.cold_seconds,
                    t.warm_seconds, t.naive_seconds, t.identical ? 1 : 0);
  }
  // Export the process footprint alongside the context gauges so the
  // metrics document carries it too (scale profile of
  // scripts/check_metrics_json.py).
  obs::Registry::global()
      .gauge("proc.peak_rss_bytes")
      .set(static_cast<double>(peak_rss_bytes()));
  if (json_path) {
    int rc = write_bench_json(json_path, seed, m, reps, cells, headline,
                              headline_spec, kr, wr, have_ps ? &ps : nullptr);
    if (rc != 0) return rc;
  }
  if (!write_obs_exports(metrics_path, trace_path)) return 1;
  return all_identical ? 0 : 2;
}
