// Scalability of the selection stack on synthetic datacenter topologies
// (topo/synthetic.hpp): a grid of topology family x node count x criterion,
// timing each selection cold (fresh SelectionContext: deletion orders and
// components built during the call) and warm (orders cached), with
// dominated-candidate pruning on vs off, asserting the two produce
// bit-identical selections. Also times ThreadPool-parallel pair-row warming
// (SelectionContext::warm_rows) against the serial build on the largest
// fabric.
//
// Headline contract (tracked in BENCH_scale.json and checked in CI):
// balanced selection of m=16 from a ~10,000-host fat-tree in under 1 s
// single-threaded, cold.
//
// Usage: bench_scale [reps] [seed] [--csv] [--check] [--threads N]
//                    [--bench-json PATH] [--metrics-json PATH]
//                    [--chrome-trace PATH]
// Defaults: 3 reps per cell, seed 4242.
//   --threads N      worker count for the warm_rows comparison (N < 0: one
//                    per hardware thread; selection itself is always timed
//                    single-threaded).
//   --check          CI smoke: run a reduced grid once and exit non-zero if
//                    any pruned selection differs from its unpruned twin or
//                    any generator output fails to round-trip through the
//                    .topo serialiser. Tables are skipped.
//   --csv            append the machine-readable grid after the table.
//   --bench-json P   write the perf record (per-cell timings, headline,
//                    warm-row speedup, prune counters) to P.
//   --metrics-json P enable the obs registry and write its JSON document
//                    (schema netsel-metrics-v1) to P after the run.
//   --chrome-trace P enable the obs registry and write the recorded spans
//                    as Chrome trace_event JSON to P.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/service.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "topo/parse.hpp"
#include "topo/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace netsel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t counter_value(const char* name) {
  for (const auto& [n, v] : obs::Registry::global().counters())
    if (n == name) return v;
  return 0;
}

struct CaseSpec {
  const char* family;
  topo::TopologyGraph graph;
  double build_seconds = 0.0;
  int hosts = 0;
};

/// The benchmark grid; `reduced` is the --check smoke (small sizes, still
/// one instance of every family so every generator code path runs).
std::vector<CaseSpec> build_cases(std::uint64_t seed, bool reduced) {
  std::vector<CaseSpec> cases;
  auto add = [&](const char* family, topo::TopologyGraph g, double secs) {
    CaseSpec c{family, std::move(g), secs, 0};
    for (std::size_t i = 0; i < c.graph.node_count(); ++i)
      if (c.graph.is_compute(static_cast<topo::NodeId>(i))) ++c.hosts;
    cases.push_back(std::move(c));
  };
  const std::vector<int> ft_hosts =
      reduced ? std::vector<int>{256} : std::vector<int>{512, 2048, 10000};
  for (int h : ft_hosts) {
    auto t0 = Clock::now();
    auto g = topo::fat_tree(topo::fat_tree_for_hosts(h, 48, 3.0, seed));
    add("fat_tree", std::move(g), seconds_since(t0));
  }
  struct CampusSize {
    int campuses, buildings, hosts;
  };
  const std::vector<CampusSize> cw = reduced
                                         ? std::vector<CampusSize>{{4, 2, 8}}
                                         : std::vector<CampusSize>{
                                               {8, 4, 16}, {16, 8, 16}};
  for (const auto& s : cw) {
    topo::CampusWanOptions o;
    o.campuses = s.campuses;
    o.buildings_per_campus = s.buildings;
    o.hosts_per_building = s.hosts;
    o.seed = seed;
    auto t0 = Clock::now();
    auto g = topo::campus_wan(o);
    add("campus_wan", std::move(g), seconds_since(t0));
  }
  struct CoreEdgeSize {
    int cores, edges, hosts;
  };
  const std::vector<CoreEdgeSize> ce =
      reduced ? std::vector<CoreEdgeSize>{{8, 16, 128}}
              : std::vector<CoreEdgeSize>{{16, 64, 512}, {32, 128, 2048}};
  for (const auto& s : ce) {
    topo::RandomCoreEdgeOptions o;
    o.core_switches = s.cores;
    o.edge_switches = s.edges;
    o.hosts = s.hosts;
    o.seed = seed;
    auto t0 = Clock::now();
    auto g = topo::random_core_edge(o);
    add("random_core_edge", std::move(g), seconds_since(t0));
  }
  return cases;
}

bool same_selection(const select::SelectionResult& a,
                    const select::SelectionResult& b) {
  return a.feasible == b.feasible && a.nodes == b.nodes &&
         a.min_cpu == b.min_cpu && a.min_bw_fraction == b.min_bw_fraction &&
         a.objective == b.objective && a.iterations == b.iterations;
}

struct CriterionTiming {
  select::Criterion criterion;
  double cold_seconds = 0.0;   // first call on a fresh context, pruned
  double warm_seconds = 0.0;   // mean of the remaining reps, pruned
  double naive_seconds = 0.0;  // cold call with pruning disabled
  bool identical = false;
};

struct CellResult {
  const CaseSpec* spec = nullptr;
  std::vector<CriterionTiming> timings;
};

constexpr select::Criterion kCriteria[] = {select::Criterion::MaxCompute,
                                           select::Criterion::MaxBandwidth,
                                           select::Criterion::Balanced};

CellResult run_cell(const CaseSpec& spec, std::uint64_t seed, int m,
                    int reps) {
  obs::Span span("scale.cell", "bench");
  span.arg("family", spec.family);
  span.arg("nodes", std::to_string(spec.graph.node_count()));
  remos::NetworkSnapshot snap(spec.graph);
  remos::apply_synthetic_load(snap, seed + 7);
  CellResult out;
  out.spec = &spec;
  for (select::Criterion c : kCriteria) {
    select::SelectionOptions opt;
    opt.num_nodes = m;
    CriterionTiming t;
    t.criterion = c;
    select::SelectionResult pruned;
    {
      select::SelectionContext ctx(snap);
      auto t0 = Clock::now();
      pruned = select::select_nodes(c, ctx, opt);
      t.cold_seconds = seconds_since(t0);
      if (reps > 1) {
        auto t1 = Clock::now();
        for (int r = 1; r < reps; ++r) {
          auto again = select::select_nodes(c, ctx, opt);
          if (!same_selection(pruned, again)) std::abort();
        }
        t.warm_seconds = seconds_since(t1) / (reps - 1);
      } else {
        t.warm_seconds = t.cold_seconds;
      }
    }
    {
      select::SelectionOptions naive = opt;
      naive.prune_dominated = false;
      select::SelectionContext ctx(snap);
      auto t0 = Clock::now();
      auto unpruned = select::select_nodes(c, ctx, naive);
      t.naive_seconds = seconds_since(t0);
      t.identical = same_selection(pruned, unpruned);
    }
    out.timings.push_back(t);
  }
  return out;
}

/// Time warming `n_sources` pair rows serially vs on the pool, on the given
/// snapshot. Fresh contexts for each so both start cold.
struct WarmRowsResult {
  int sources = 0;
  int pool_workers = 0;
  double serial_seconds = 0.0;
  double pool_seconds = 0.0;
};

WarmRowsResult time_warm_rows(const remos::NetworkSnapshot& snap,
                              int threads) {
  WarmRowsResult r;
  std::vector<topo::NodeId> sources;
  const auto& g = snap.graph();
  for (std::size_t i = 0; i < g.node_count() && sources.size() < 64; ++i)
    if (g.is_compute(static_cast<topo::NodeId>(i)))
      sources.push_back(static_cast<topo::NodeId>(i));
  r.sources = static_cast<int>(sources.size());
  {
    util::ThreadPool serial(0);
    select::SelectionContext ctx(snap);
    ctx.csr();  // pre-build the shared adjacency: time the rows alone
    auto t0 = Clock::now();
    ctx.warm_rows(serial, sources);
    r.serial_seconds = seconds_since(t0);
  }
  {
    util::ThreadPool pool(threads);
    r.pool_workers = pool.workers();
    select::SelectionContext ctx(snap);
    ctx.csr();
    auto t0 = Clock::now();
    ctx.warm_rows(pool, sources);
    r.pool_seconds = seconds_since(t0);
  }
  return r;
}

int run_check(std::uint64_t seed, int m) {
  int rc = 0;
  auto cases = build_cases(seed, /*reduced=*/true);
  for (const CaseSpec& spec : cases) {
    // Generator outputs must round-trip through the .topo serialiser.
    auto text = topo::format_topology(spec.graph);
    auto reparsed = topo::parse_topology(text);
    if (reparsed.node_count() != spec.graph.node_count() ||
        reparsed.link_count() != spec.graph.link_count()) {
      std::fprintf(stderr, "CHECK FAILED: %s does not round-trip via .topo\n",
                   spec.family);
      rc = 2;
    }
    auto cell = run_cell(spec, seed, m, 1);
    for (const CriterionTiming& t : cell.timings) {
      if (!t.identical) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s (%zu nodes) %s: pruned selection "
                     "differs from unpruned\n",
                     spec.family, spec.graph.node_count(),
                     select::criterion_name(t.criterion));
        rc = 2;
      }
    }
  }
  std::fprintf(stderr, rc == 0 ? "check: OK\n" : "check: FAILED\n");
  return rc;
}

bool write_obs_exports(const char* metrics_path, const char* trace_path) {
  // Pre-register the service metrics so the exported document carries the
  // full schema (scripts/check_metrics_json.py requires the degradation
  // ladder), even though this benchmark never places through the service.
  api::register_service_metrics();
  bool ok = true;
  if (metrics_path) {
    std::ofstream f(metrics_path);
    if (f) {
      obs::write_json(obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", metrics_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      ok = false;
    }
  }
  if (trace_path) {
    std::ofstream f(trace_path);
    if (f) {
      obs::write_chrome_trace(obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", trace_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      ok = false;
    }
  }
  return ok;
}

int write_bench_json(const char* path, std::uint64_t seed, int m, int reps,
                     const std::vector<CellResult>& cells,
                     const CriterionTiming* headline,
                     const CaseSpec* headline_spec, const WarmRowsResult& wr) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"scale\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"seed\": %llu,\n"
               "  \"m\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"cells\": [\n",
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(seed), m, reps);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"family\": \"%s\",\n"
                 "      \"nodes\": %zu,\n"
                 "      \"links\": %zu,\n"
                 "      \"hosts\": %d,\n"
                 "      \"build_seconds\": %.4f,\n"
                 "      \"criteria\": {\n",
                 cell.spec->family, cell.spec->graph.node_count(),
                 cell.spec->graph.link_count(), cell.spec->hosts,
                 cell.spec->build_seconds);
    for (std::size_t j = 0; j < cell.timings.size(); ++j) {
      const CriterionTiming& t = cell.timings[j];
      std::fprintf(f,
                   "        \"%s\": { \"cold_seconds\": %.5f, "
                   "\"warm_seconds\": %.5f, \"unpruned_cold_seconds\": %.5f, "
                   "\"identical\": %s }%s\n",
                   select::criterion_name(t.criterion), t.cold_seconds,
                   t.warm_seconds, t.naive_seconds,
                   t.identical ? "true" : "false",
                   j + 1 < cell.timings.size() ? "," : "");
    }
    std::fprintf(f, "      }\n    }%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (headline && headline_spec) {
    std::fprintf(f,
                 "  \"headline\": {\n"
                 "    \"contract\": \"balanced m=%d on the largest fat-tree, "
                 "cold, single-threaded, < 1 s\",\n"
                 "    \"nodes\": %zu,\n"
                 "    \"hosts\": %d,\n"
                 "    \"cold_seconds\": %.5f,\n"
                 "    \"target_seconds\": 1.0,\n"
                 "    \"within_target\": %s\n"
                 "  },\n",
                 m, headline_spec->graph.node_count(), headline_spec->hosts,
                 headline->cold_seconds,
                 headline->cold_seconds < 1.0 ? "true" : "false");
  }
  std::fprintf(f,
               "  \"warm_rows\": {\n"
               "    \"sources\": %d,\n"
               "    \"serial_seconds\": %.5f,\n"
               "    \"pool_workers\": %d,\n"
               "    \"pool_seconds\": %.5f,\n"
               "    \"speedup\": %.2f\n"
               "  },\n"
               "  \"metrics\": {\n"
               "    \"prune_dropped\": %llu,\n"
               "    \"ctx_row_misses\": %llu\n"
               "  }\n"
               "}\n",
               wr.sources, wr.serial_seconds, wr.pool_workers, wr.pool_seconds,
               wr.pool_seconds > 0.0 ? wr.serial_seconds / wr.pool_seconds
                                     : 0.0,
               static_cast<unsigned long long>(
                   counter_value("select.prune.dropped")),
               static_cast<unsigned long long>(
                   counter_value("select.ctx.row_misses")));
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  std::uint64_t seed = 4242;
  int threads = -1;
  bool csv = false;
  bool check = false;
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (positional == 0) {
      reps = std::atoi(argv[i]);
      ++positional;
    } else {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[i], nullptr, 10));
      ++positional;
    }
  }
  if (reps < 1) {
    std::fprintf(stderr, "reps must be >= 1\n");
    return 1;
  }
  const int m = 16;
  if (check) return run_check(seed, m);
  if (json_path || metrics_path || trace_path) obs::set_enabled(true);

  std::fprintf(stderr, "bench_scale: generating topologies (seed %llu)...\n",
               static_cast<unsigned long long>(seed));
  auto cases = build_cases(seed, /*reduced=*/false);

  std::printf(
      "== Selection at scale: synthetic fabrics, m=%d, %d reps, seed %llu ==\n"
      "   cold = fresh context; warm = cached deletion orders;\n"
      "   unpruned = cold with dominated-candidate pruning disabled\n\n"
      "%-18s %7s %7s %7s  %-14s %9s %9s %9s  %s\n",
      m, reps, static_cast<unsigned long long>(seed), "family", "nodes",
      "links", "hosts", "criterion", "cold_ms", "warm_ms", "unpr_ms", "same");
  std::vector<CellResult> cells;
  const CriterionTiming* headline = nullptr;
  const CaseSpec* headline_spec = nullptr;
  bool all_identical = true;
  for (const CaseSpec& spec : cases) {
    cells.push_back(run_cell(spec, seed, m, reps));
    const CellResult& cell = cells.back();
    for (const CriterionTiming& t : cell.timings) {
      std::printf("%-18s %7zu %7zu %7d  %-14s %9.2f %9.2f %9.2f  %s\n",
                  spec.family, spec.graph.node_count(),
                  spec.graph.link_count(), spec.hosts,
                  select::criterion_name(t.criterion), t.cold_seconds * 1e3,
                  t.warm_seconds * 1e3, t.naive_seconds * 1e3,
                  t.identical ? "yes" : "NO");
      all_identical = all_identical && t.identical;
      if (t.criterion == select::Criterion::Balanced &&
          std::strcmp(spec.family, "fat_tree") == 0 &&
          (!headline_spec ||
           spec.graph.node_count() > headline_spec->graph.node_count())) {
        headline = &t;
        headline_spec = &spec;
      }
    }
  }

  // Warm-row scaling on the largest fat-tree (last fat_tree case).
  const CaseSpec* largest_ft = nullptr;
  for (const CaseSpec& spec : cases)
    if (std::strcmp(spec.family, "fat_tree") == 0) largest_ft = &spec;
  WarmRowsResult wr;
  if (largest_ft) {
    remos::NetworkSnapshot snap(largest_ft->graph);
    remos::apply_synthetic_load(snap, seed + 7);
    wr = time_warm_rows(snap, threads);
    std::printf(
        "\nwarm_rows on %zu-node fat-tree: %d rows serial %.2f ms, "
        "%d workers %.2f ms (%.2fx)\n",
        largest_ft->graph.node_count(), wr.sources, wr.serial_seconds * 1e3,
        wr.pool_workers, wr.pool_seconds * 1e3,
        wr.pool_seconds > 0.0 ? wr.serial_seconds / wr.pool_seconds : 0.0);
  }
  if (headline && headline_spec) {
    std::printf(
        "headline: balanced m=%d on %zu-node fat-tree cold in %.1f ms "
        "(target < 1000 ms): %s\n",
        m, headline_spec->graph.node_count(), headline->cold_seconds * 1e3,
        headline->cold_seconds < 1.0 ? "PASS" : "FAIL");
  }
  if (csv) {
    std::printf("\n-- csv --\nfamily,nodes,links,hosts,criterion,cold_s,"
                "warm_s,unpruned_cold_s,identical\n");
    for (const CellResult& cell : cells)
      for (const CriterionTiming& t : cell.timings)
        std::printf("%s,%zu,%zu,%d,%s,%.5f,%.5f,%.5f,%d\n",
                    cell.spec->family, cell.spec->graph.node_count(),
                    cell.spec->graph.link_count(), cell.spec->hosts,
                    select::criterion_name(t.criterion), t.cold_seconds,
                    t.warm_seconds, t.naive_seconds, t.identical ? 1 : 0);
  }
  if (json_path) {
    int rc = write_bench_json(json_path, seed, m, reps, cells, headline,
                              headline_spec, wr);
    if (rc != 0) return rc;
  }
  if (!write_obs_exports(metrics_path, trace_path)) return 1;
  return all_identical ? 0 : 2;
}
