// Sensitivity study (the paper's §4.4 calls for exactly this: "sensitivity
// of automatic node selection to load and traffic on one hand, and
// application length and characteristics on the other"). Sweeps the load
// and traffic generator intensities around the Table-1 operating point and
// reports random vs automatic execution times and the slowdown reduction,
// showing where selection pays off most.
//
// Usage: bench_sensitivity [trials]   (default 10)

#include <cstdio>
#include <cstdlib>

#include "exp/table1.hpp"
#include "util/table.hpp"

using namespace netsel;
using namespace netsel::exp;

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint64_t seed = 77;
  AppCase app = fft_case();
  double ref =
      run_trial(app, table1_scenario(false, false), Policy::AutoBalanced, seed)
          .elapsed;
  std::printf("== Sensitivity of node selection to generator intensity ==\n");
  std::printf("   FFT (1K), %d trials per cell, unloaded reference %.1f s\n\n",
              trials, ref);

  std::printf("-- processor load intensity sweep (traffic off) --\n");
  util::TextTable lt;
  lt.header({"intensity", "offered load/node", "random (s)", "auto (s)",
             "auto gain", "slowdown reduction"});
  for (double intensity : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    Scenario s = table1_scenario(true, false);
    s.load.intensity = intensity;
    auto rnd = run_cell(app, s, Policy::Random, trials, seed);
    auto aut = run_cell(app, s, Policy::AutoBalanced, trials, seed);
    double inc_r = rnd.mean() - ref;
    double inc_a = aut.mean() - ref;
    lt.row({util::fmt(intensity, 2),
            util::fmt(33.6 / 65.0 * intensity, 2),  // mean demand/interarrival
            util::fmt(rnd.mean(), 1), util::fmt(aut.mean(), 1),
            util::fmt_pct_change(rnd.mean(), aut.mean()),
            inc_r > 0 ? util::fmt((1.0 - inc_a / inc_r) * 100, 0) + "%" : "-"});
  }
  std::printf("%s\n", lt.render().c_str());

  std::printf("-- network traffic intensity sweep (load off) --\n");
  util::TextTable tt;
  tt.header({"intensity", "offered Mbps", "random (s)", "auto (s)",
             "auto gain", "slowdown reduction"});
  for (double intensity : {0.25, 0.5, 1.0, 1.5, 2.0}) {
    Scenario s = table1_scenario(false, true);
    s.traffic.intensity = intensity;
    auto rnd = run_cell(app, s, Policy::Random, trials, seed);
    auto aut = run_cell(app, s, Policy::AutoBalanced, trials, seed);
    double inc_r = rnd.mean() - ref;
    double inc_a = aut.mean() - ref;
    tt.row({util::fmt(intensity, 2),
            util::fmt(16e6 * 8.0 / 0.5 * intensity / 1e6, 0),
            util::fmt(rnd.mean(), 1), util::fmt(aut.mean(), 1),
            util::fmt_pct_change(rnd.mean(), aut.mean()),
            inc_r > 0 ? util::fmt((1.0 - inc_a / inc_r) * 100, 0) + "%" : "-"});
  }
  std::printf("%s\n", tt.render().c_str());

  std::printf(
      "-- application length sweep (load+traffic on; does selection decay?) "
      "--\n");
  util::TextTable at;
  at.header({"iterations", "random (s)", "auto (s)", "auto gain"});
  for (int iters : {8, 32, 128}) {
    AppCase scaled = app;
    auto cfg = std::get<appsim::LooselySyncConfig>(scaled.config);
    cfg.iterations = iters;
    scaled.config = cfg;
    Scenario s = table1_scenario(true, true);
    auto rnd = run_cell(scaled, s, Policy::Random, trials, seed);
    auto aut = run_cell(scaled, s, Policy::AutoBalanced, trials, seed);
    at.row({std::to_string(iters), util::fmt(rnd.mean(), 1),
            util::fmt(aut.mean(), 1),
            util::fmt_pct_change(rnd.mean(), aut.mean())});
  }
  std::printf("%s", at.render().c_str());
  std::printf(
      "\nExpected shape: gains grow with intensity while the network/hosts\n"
      "stay schedulable, and shrink for very long runs as conditions drift\n"
      "from the at-launch measurement (the paper's motivation for dynamic\n"
      "migration, reproduced in bench_migration).\n");
  return 0;
}
