// Placement-as-a-service: sustained scheduler throughput and placement
// latency under an open-loop Poisson arrival stream on the 10,000-host
// fat-tree.
//
// The scheduler (sched::SchedulerService) holds the shared cluster snapshot
// and runs the admit -> queue -> place -> release state machine; the
// workload is the appsim-derived paper mix (FFT / Airshed / MRI shapes).
// Every run happens twice in one process — once fanned out over a thread
// pool, once in the serial reference mode — and the two state digests must
// be bit-identical: the speculative placement lanes are partitioned by
// config, not by thread count, and every lane context catches up through
// the snapshot's delta journal (the run_table1 idiom).
//
// Headline contract (tracked in BENCH_service.json and checked in CI):
// the pooled and serial runs are bit-identical, and the scheduler sustains
// > 0 placements/sec with finite p50/p99 placement latency.
//
// Usage: bench_service [jobs] [seed] [--csv] [--check] [--threads N]
//                      [--bench-json PATH] [--metrics-json PATH]
//                      [--chrome-trace PATH] [--timeseries-json PATH]
//                      [--timeseries-csv PATH] [--job-trace PATH]
// Defaults: 300 jobs, seed 4242, hardware threads.
//   --check          CI smoke: a small fat-tree, serial vs 2-thread digest
//                    equality, exclusive-allocation and exact-snapshot-
//                    restore invariants, rebalance and timeout paths
//                    exercised, plus the telemetry contracts: recorders
//                    attached leave the state digest unchanged, and the
//                    job-trace / time-series digests are identical at 1, 2
//                    and 4 placement lanes. Dumps the flight-recorder tail
//                    and exits 2 on any violation.
//   --csv            append machine-readable per-tenant records.
//   --bench-json P   write the perf record (placements/sec, latency
//                    percentiles, job outcomes, ladder counts) to P.
//   --metrics-json P enable the obs registry and write its JSON to P.
//   --chrome-trace P enable the obs registry and write spans to P (with
//                    time-series counter curves and per-job tracks merged
//                    in when those recorders are active).
//   --timeseries-json P  sample the pooled run on a sim-time cadence and
//                    write the netsel-timeseries-v1 document to P.
//   --timeseries-csv P   same samples as a CSV table.
//   --job-trace P    record per-job causal traces and write JSONL to P.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/jobtrace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "remos/snapshot.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "topo/synthetic.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace netsel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// q in [0, 1]; empty-tolerant front end for util::percentile (same linear
/// interpolation every other bench uses).
double percentile(const std::vector<double>& xs, double q) {
  if (xs.empty()) return 0.0;
  return util::percentile(xs, q * 100.0);
}

struct TenantRow {
  int placed = 0;
  int full = 0, smoothed = 0, prior = 0;
  double wait_sum = 0.0;
};

struct RunResult {
  std::uint64_t digest = 0;
  sched::SchedulerStats stats;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  /// Wall-clock placement-decision costs of every placed job, ascending.
  std::vector<double> latencies;
  std::map<std::string, TenantRow> tenants;
  double placements_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(stats.placed) / wall_seconds
               : 0.0;
  }
};

sched::WorkloadConfig workload_config(std::uint64_t seed) {
  sched::WorkloadConfig w;
  w.arrival_rate = 2.0;  // open-loop: 2 jobs per simulated second
  w.seed = seed;
  return w;
}

/// Submit `jobs` Poisson arrivals and drain the scheduler to completion.
/// The middle third of the trace runs under a measurement brownout
/// (coverage 0.75), which the three tenants' policies answer differently:
/// airshed tolerates it (Full), fft falls to Smoothed (default thresholds),
/// mri demands 0.8 coverage and falls all the way to the capacity prior.
RunResult run_scheduler(const topo::TopologyGraph& g, std::uint64_t seed,
                        int jobs, util::ThreadPool* pool,
                        sched::SchedulerConfig cfg,
                        obs::TimeSeriesRecorder* ts = nullptr,
                        obs::JobTraceRecorder* jt = nullptr) {
  cfg.pool = pool;
  cfg.timeseries = ts;
  cfg.job_trace = jt;
  sched::SchedulerService sched(g, cfg);
  remos::apply_synthetic_load(sched.snapshot(), seed + 7);
  {
    sched::TenantPolicy tolerant;
    tolerant.degradation.smoothed_below = 0.7;
    sched.set_tenant_policy("airshed", tolerant);
    sched::TenantPolicy strict;
    strict.degradation.prior_below = 0.8;
    sched.set_tenant_policy("mri", strict);
  }
  sched::JobStream stream(workload_config(seed));

  const auto t0 = Clock::now();
  const double last = stream.feed(sched, jobs);
  sched.run_until(last / 3.0);
  sched.set_measurement_coverage(0.75);
  sched.run_until(2.0 * last / 3.0);
  sched.set_measurement_coverage(1.0);
  sched.drain();
  RunResult out;
  out.wall_seconds = seconds_since(t0);
  out.digest = sched.state_digest();
  out.stats = sched.stats();
  out.sim_seconds = sched.now();
  for (const sched::JobRecord& rec : sched.jobs()) {
    if (rec.start_time < 0.0) continue;
    out.latencies.push_back(rec.placement_seconds);
    TenantRow& row = out.tenants[rec.spec.tenant];
    ++row.placed;
    row.wait_sum += rec.wait_time();
    switch (rec.ladder) {
      case api::DegradationLevel::Full: ++row.full; break;
      case api::DegradationLevel::Smoothed: ++row.smoothed; break;
      case api::DegradationLevel::Prior: ++row.prior; break;
    }
  }
  std::sort(out.latencies.begin(), out.latencies.end());
  return out;
}

// ---------------------------------------------------------------------------
// --check: correctness smoke on a small fabric
// ---------------------------------------------------------------------------

/// Concurrently-running jobs must never share a node (exclusive
/// allocation): check every pair of placed jobs with overlapping
/// [start, finish) intervals for node-set intersection.
bool exclusive_allocations(const std::vector<sched::JobRecord>& jobs) {
  for (std::size_t a = 0; a < jobs.size(); ++a) {
    if (jobs[a].start_time < 0.0) continue;
    for (std::size_t b = a + 1; b < jobs.size(); ++b) {
      if (jobs[b].start_time < 0.0) continue;
      const double a_end = jobs[a].finish_time, b_end = jobs[b].finish_time;
      if (a_end >= 0.0 && a_end <= jobs[b].start_time) continue;
      if (b_end >= 0.0 && b_end <= jobs[a].start_time) continue;
      // Overlapping in time, but migrations may have moved either job's
      // final node set — only flag jobs that never migrated (their record
      // is the full occupancy history).
      if (jobs[a].migrations > 0 || jobs[b].migrations > 0) continue;
      for (topo::NodeId n : jobs[a].nodes)
        if (std::find(jobs[b].nodes.begin(), jobs[b].nodes.end(), n) !=
            jobs[b].nodes.end())
          return false;
    }
  }
  return true;
}

int run_check(std::uint64_t seed) {
  int rc = 0;
  auto g = topo::fat_tree(topo::fat_tree_for_hosts(128, 16, 2.0, seed));

  sched::SchedulerConfig cfg;
  cfg.placement_lanes = 3;
  cfg.backfill_window = 6;
  cfg.schedule_interval = 1.0;   // batched rounds: conflicts can fire
  cfg.max_queue_depth = 24;      // small: exercises admission rejection
  cfg.queue_timeout = 600.0;     // exercises the timeout path
  cfg.rebalance_on_release = true;
  cfg.rebalance_budget = 1;

  // The pre-run sensor state every run starts from (exact-restore oracle).
  remos::NetworkSnapshot reference(g);
  remos::apply_synthetic_load(reference, seed + 7);

  // High arrival pressure on 128 hosts so the queue, the rejection path and
  // the conflict re-placement path all fire.
  auto run_once = [&](util::ThreadPool* pool,
                      obs::TimeSeriesRecorder* ts = nullptr,
                      obs::JobTraceRecorder* jt = nullptr,
                      int lanes = 0) {
    sched::SchedulerConfig run_cfg = cfg;
    run_cfg.pool = pool;
    run_cfg.timeseries = ts;
    run_cfg.job_trace = jt;
    if (lanes > 0) run_cfg.placement_lanes = lanes;
    sched::SchedulerService run(g, run_cfg);
    remos::apply_synthetic_load(run.snapshot(), seed + 7);
    sched::WorkloadConfig w = workload_config(seed);
    w.arrival_rate = 2.0;
    sched::JobStream stream(w);
    stream.feed(run, 80);
    run.drain();

    // Every job reached a terminal state.
    for (const sched::JobRecord& rec : run.jobs())
      if (rec.state == sched::JobState::Submitted ||
          rec.state == sched::JobState::Queued ||
          rec.state == sched::JobState::Running) {
        std::fprintf(stderr, "CHECK FAILED: job %llu not terminal (%s)\n",
                     static_cast<unsigned long long>(rec.id),
                     sched::job_state_name(rec.state));
        rc = 2;
      }
    if (!exclusive_allocations(run.jobs())) {
      std::fprintf(stderr, "CHECK FAILED: concurrent jobs shared a node\n");
      rc = 2;
    }
    // A drained scheduler restores the snapshot exactly.
    for (std::size_t n = 0; n < g.node_count() && rc == 0; ++n)
      if (run.snapshot().cpu(static_cast<topo::NodeId>(n)) !=
          reference.cpu(static_cast<topo::NodeId>(n))) {
        std::fprintf(stderr, "CHECK FAILED: cpu(%zu) not restored\n", n);
        rc = 2;
      }
    for (std::size_t l = 0; l < g.link_count() && rc == 0; ++l) {
      const auto id = static_cast<topo::LinkId>(l);
      if (run.snapshot().bw_dir(id, true) != reference.bw_dir(id, true) ||
          run.snapshot().bw_dir(id, false) != reference.bw_dir(id, false)) {
        std::fprintf(stderr, "CHECK FAILED: bw(%zu) not restored\n", l);
        rc = 2;
      }
    }
    return run.state_digest();
  };

  const std::uint64_t flight_before = obs::FlightRecorder::global().recorded();
  const std::uint64_t serial_digest = run_once(nullptr);
  util::ThreadPool pool(2);
  const std::uint64_t pooled_digest = run_once(&pool);
  if (serial_digest != pooled_digest) {
    std::fprintf(stderr,
                 "CHECK FAILED: serial digest %016llx != 2-thread %016llx\n",
                 static_cast<unsigned long long>(serial_digest),
                 static_cast<unsigned long long>(pooled_digest));
    rc = 2;
  }
  if (obs::FlightRecorder::global().recorded() == flight_before) {
    std::fprintf(stderr,
                 "CHECK FAILED: flight recorder captured no events over a "
                 "full scheduler run\n");
    rc = 2;
  }

  // Telemetry contracts: recorders attached must leave the state digest
  // unchanged (they are pure outputs), and the job-trace / time-series
  // digests must be identical at 1, 2 and 4 placement lanes — lane count
  // partitions speculation but never changes a decision, a sim-time bound
  // or a sample.
  {
    std::uint64_t trace_ref = 0, ts_ref = 0;
    bool first = true;
    for (int lanes : {1, 2, 4}) {
      obs::TimeSeriesRecorder ts(1.0);
      obs::JobTraceRecorder jt;
      const std::uint64_t d = run_once(nullptr, &ts, &jt, lanes);
      if (d != serial_digest) {
        std::fprintf(stderr,
                     "CHECK FAILED: state digest with telemetry at %d lanes "
                     "%016llx != recorder-off %016llx\n",
                     lanes, static_cast<unsigned long long>(d),
                     static_cast<unsigned long long>(serial_digest));
        rc = 2;
      }
      if (jt.traces() == 0 || jt.spans() == 0 || ts.samples() < 2) {
        std::fprintf(stderr,
                     "CHECK FAILED: telemetry run recorded %zu traces / %zu "
                     "spans / %zu samples\n",
                     jt.traces(), jt.spans(), ts.samples());
        rc = 2;
      }
      if (first) {
        trace_ref = jt.digest();
        ts_ref = ts.digest();
        first = false;
      } else if (jt.digest() != trace_ref || ts.digest() != ts_ref) {
        std::fprintf(stderr,
                     "CHECK FAILED: telemetry digests at %d lanes diverged "
                     "(trace %016llx vs %016llx, ts %016llx vs %016llx)\n",
                     lanes, static_cast<unsigned long long>(jt.digest()),
                     static_cast<unsigned long long>(trace_ref),
                     static_cast<unsigned long long>(ts.digest()),
                     static_cast<unsigned long long>(ts_ref));
        rc = 2;
      }
    }
  }

  // Degradation ladder: the same trace placed under collapsed coverage must
  // still place jobs, on the prior rung.
  {
    sched::SchedulerConfig prior_cfg = cfg;
    prior_cfg.pool = nullptr;
    sched::SchedulerService run(g, prior_cfg);
    remos::apply_synthetic_load(run.snapshot(), seed + 7);
    run.set_measurement_coverage(0.1);  // below every prior_below default
    sched::WorkloadConfig w = workload_config(seed);
    w.arrival_rate = 2.0;
    sched::JobStream stream(w);
    stream.feed(run, 20);
    run.drain();
    bool any_prior = false;
    for (const sched::JobRecord& rec : run.jobs())
      if (rec.start_time >= 0.0 &&
          rec.ladder == api::DegradationLevel::Prior)
        any_prior = true;
    if (!any_prior) {
      std::fprintf(stderr,
                   "CHECK FAILED: coverage 0.1 placed nothing on the prior "
                   "rung\n");
      rc = 2;
    }
  }

  if (rc != 0) {
    std::fprintf(stderr, "post-mortem: flight-recorder tail\n");
    obs::FlightRecorder::global().dump(std::cerr);
  }
  std::fprintf(stderr, rc == 0 ? "check: OK\n" : "check: FAILED\n");
  return rc;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

int write_bench_json(const char* path, std::uint64_t seed, int jobs,
                     int threads, int hosts, std::size_t nodes,
                     std::size_t links, const RunResult& pooled,
                     const RunResult& serial, bool identical) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  const sched::SchedulerStats& st = pooled.stats;
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"service\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"threads\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"jobs\": %d,\n"
               "  \"nodes\": %zu,\n"
               "  \"links\": %zu,\n"
               "  \"hosts\": %d,\n"
               "  \"sim_seconds\": %.1f,\n"
               "  \"wall_seconds\": %.3f,\n"
               "  \"outcomes\": {\n"
               "    \"submitted\": %llu,\n"
               "    \"admitted\": %llu,\n"
               "    \"placed\": %llu,\n"
               "    \"completed\": %llu,\n"
               "    \"rejected\": %llu,\n"
               "    \"timed_out\": %llu,\n"
               "    \"conflicts\": %llu,\n"
               "    \"infeasible_attempts\": %llu\n"
               "  },\n",
               std::thread::hardware_concurrency(), threads,
               static_cast<unsigned long long>(seed), jobs, nodes, links,
               hosts, pooled.sim_seconds, pooled.wall_seconds,
               static_cast<unsigned long long>(st.submitted),
               static_cast<unsigned long long>(st.admitted),
               static_cast<unsigned long long>(st.placed),
               static_cast<unsigned long long>(st.completed),
               static_cast<unsigned long long>(st.rejected),
               static_cast<unsigned long long>(st.timed_out),
               static_cast<unsigned long long>(st.conflicts),
               static_cast<unsigned long long>(st.infeasible_attempts));
  std::fprintf(f,
               "  \"headline\": {\n"
               "    \"contract\": \"pooled and serial scheduler runs "
               "bit-identical on the 10k-host fat-tree; sustained placement "
               "throughput with finite tail latency\",\n"
               "    \"placements_per_sec\": %.1f,\n"
               "    \"placement_p50_ms\": %.3f,\n"
               "    \"placement_p99_ms\": %.3f,\n"
               "    \"identical\": %s\n"
               "  },\n"
               "  \"serial\": {\n"
               "    \"placements_per_sec\": %.1f,\n"
               "    \"wall_seconds\": %.3f\n"
               "  },\n"
               "  \"tenants\": [\n",
               pooled.placements_per_sec(),
               percentile(pooled.latencies, 0.50) * 1e3,
               percentile(pooled.latencies, 0.99) * 1e3,
               identical ? "true" : "false", serial.placements_per_sec(),
               serial.wall_seconds);
  std::size_t i = 0;
  for (const auto& [tenant, row] : pooled.tenants) {
    std::fprintf(f,
                 "    { \"tenant\": \"%s\", \"placed\": %d, \"full\": %d, "
                 "\"smoothed\": %d, \"prior\": %d, \"mean_wait_s\": %.2f }%s\n",
                 tenant.c_str(), row.placed, row.full, row.smoothed, row.prior,
                 row.placed > 0 ? row.wait_sum / row.placed : 0.0,
                 ++i < pooled.tenants.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}

/// Write one telemetry artifact via `fn`; returns false on open failure.
template <typename Fn>
bool write_artifact(const char* path, Fn&& fn) {
  if (!path) return true;
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  fn(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return true;
}

bool write_obs_exports(const char* metrics_path, const char* trace_path,
                       const obs::TimeSeriesRecorder* ts,
                       const obs::JobTraceRecorder* jt) {
  sched::register_scheduler_metrics();
  bool ok = write_artifact(metrics_path, [](std::ostream& f) {
    obs::write_json(obs::Registry::global(), f);
  });
  ok = write_artifact(trace_path,
                      [&](std::ostream& f) {
                        obs::write_chrome_trace(obs::Registry::global(), f,
                                                ts, jt);
                      }) &&
       ok;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 300;
  std::uint64_t seed = 4242;
  int threads = -1;
  bool csv = false;
  bool check = false;
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  const char* ts_json_path = nullptr;
  const char* ts_csv_path = nullptr;
  const char* job_trace_path = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeseries-json") == 0 &&
               i + 1 < argc) {
      ts_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeseries-csv") == 0 && i + 1 < argc) {
      ts_csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--job-trace") == 0 && i + 1 < argc) {
      job_trace_path = argv[++i];
    } else if (positional == 0) {
      jobs = std::atoi(argv[i]);
      ++positional;
    } else {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[i], nullptr, 10));
      ++positional;
    }
  }
  if (jobs < 1) {
    std::fprintf(stderr, "jobs must be >= 1\n");
    return 1;
  }
  if (check) return run_check(seed);
  if (json_path || metrics_path || trace_path) obs::set_enabled(true);

  std::fprintf(stderr,
               "bench_service: generating 10k-host fat-tree (seed %llu)...\n",
               static_cast<unsigned long long>(seed));
  auto g = topo::fat_tree(topo::fat_tree_for_hosts(10000, 48, 3.0, seed));
  const int hosts = static_cast<int>(g.compute_node_count());

  sched::SchedulerConfig cfg;
  cfg.placement_lanes = 4;
  cfg.backfill_window = 8;
  // Tick every 2 sim-seconds: rounds batch ~4 Poisson arrivals, so the
  // speculative lanes see real multi-candidate windows.
  cfg.schedule_interval = 2.0;
  // Completions hand their freed capacity to the worst-off running job
  // (bounded migration through api::reselect).
  cfg.rebalance_on_release = true;
  cfg.rebalance_budget = 2;

  // Time-series cadence: one sample per simulated second (the arrival rate
  // is 2 jobs/s, so every sample integrates ~2 decisions). Recorders attach
  // to the pooled (headline) run only; they are pure outputs, so the serial
  // reference digest still has to match.
  std::unique_ptr<obs::TimeSeriesRecorder> ts;
  std::unique_ptr<obs::JobTraceRecorder> jt;
  if (ts_json_path || ts_csv_path) ts = std::make_unique<obs::TimeSeriesRecorder>(1.0);
  if (job_trace_path) jt = std::make_unique<obs::JobTraceRecorder>();

  util::ThreadPool pool(threads);
  std::fprintf(stderr, "bench_service: pooled run (%d workers)...\n",
               pool.workers());
  const RunResult pooled =
      run_scheduler(g, seed, jobs, &pool, cfg, ts.get(), jt.get());
  std::fprintf(stderr, "bench_service: serial reference run...\n");
  const RunResult serial = run_scheduler(g, seed, jobs, nullptr, cfg);
  const bool identical = pooled.digest == serial.digest;

  const sched::SchedulerStats& st = pooled.stats;
  std::printf(
      "== Placement service on a %zu-node / %d-host fat-tree, %d jobs, "
      "seed %llu ==\n"
      "   open-loop Poisson arrivals (%.2f jobs/s), paper mix "
      "(fft/airshed/mri)\n\n",
      g.node_count(), hosts, jobs, static_cast<unsigned long long>(seed),
      workload_config(seed).arrival_rate);
  std::printf("%-26s %12s\n", "outcome", "jobs");
  std::printf("%-26s %12llu\n", "submitted",
              static_cast<unsigned long long>(st.submitted));
  std::printf("%-26s %12llu\n", "placed",
              static_cast<unsigned long long>(st.placed));
  std::printf("%-26s %12llu\n", "completed",
              static_cast<unsigned long long>(st.completed));
  std::printf("%-26s %12llu\n", "rejected",
              static_cast<unsigned long long>(st.rejected));
  std::printf("%-26s %12llu\n", "timed out",
              static_cast<unsigned long long>(st.timed_out));
  std::printf("%-26s %12llu\n", "conflict re-placements",
              static_cast<unsigned long long>(st.conflicts));
  std::printf("%-26s %12llu\n", "infeasible attempts",
              static_cast<unsigned long long>(st.infeasible_attempts));
  std::printf(
      "\nplacements/sec %.1f (serial %.1f)   placement latency p50 %.3f ms, "
      "p99 %.3f ms, max %.3f ms\n",
      pooled.placements_per_sec(), serial.placements_per_sec(),
      percentile(pooled.latencies, 0.50) * 1e3,
      percentile(pooled.latencies, 0.99) * 1e3,
      (pooled.latencies.empty() ? 0.0 : pooled.latencies.back()) * 1e3);
  std::printf("digest pooled %016llx, serial %016llx: %s\n",
              static_cast<unsigned long long>(pooled.digest),
              static_cast<unsigned long long>(serial.digest),
              identical ? "IDENTICAL" : "DIVERGED");
  std::printf("\n%-10s %8s %6s %9s %6s %12s\n", "tenant", "placed", "full",
              "smoothed", "prior", "mean_wait_s");
  for (const auto& [tenant, row] : pooled.tenants)
    std::printf("%-10s %8d %6d %9d %6d %12.2f\n", tenant.c_str(), row.placed,
                row.full, row.smoothed, row.prior,
                row.placed > 0 ? row.wait_sum / row.placed : 0.0);

  if (csv) {
    std::printf(
        "\n-- csv --\ntenant,placed,full,smoothed,prior,mean_wait_s\n");
    for (const auto& [tenant, row] : pooled.tenants)
      std::printf("%s,%d,%d,%d,%d,%.2f\n", tenant.c_str(), row.placed,
                  row.full, row.smoothed, row.prior,
                  row.placed > 0 ? row.wait_sum / row.placed : 0.0);
  }
  if (json_path) {
    int rc = write_bench_json(json_path, seed, jobs, pool.workers(), hosts,
                              g.node_count(), g.link_count(), pooled, serial,
                              identical);
    if (rc != 0) return rc;
  }
  if (!write_obs_exports(metrics_path, trace_path, ts.get(), jt.get()))
    return 1;
  bool artifacts_ok = true;
  if (ts) {
    artifacts_ok &= write_artifact(
        ts_json_path, [&](std::ostream& f) { ts->write_json(f); });
    artifacts_ok &= write_artifact(
        ts_csv_path, [&](std::ostream& f) { ts->write_csv(f); });
  }
  if (jt)
    artifacts_ok &= write_artifact(
        job_trace_path, [&](std::ostream& f) { jt->write_jsonl(f); });
  if (!artifacts_ok) return 1;
  if (!identical) return 2;
  return st.placed > 0 ? 0 : 2;
}
