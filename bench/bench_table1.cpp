// Reproduction of the paper's Table 1: execution time of FFT, Airshed and
// MRI on the simulated Fig. 4 testbed under processor load, network traffic
// and both, with randomly vs automatically selected nodes, plus the
// unloaded reference column — printed side by side with the paper's
// measurements, followed by the "slowdown roughly halved" analysis.
//
// Usage: bench_table1 [trials] [seed] [--csv] [--threads N] [--bench-json PATH]
//                     [--metrics-json PATH] [--chrome-trace PATH]
// Defaults: 25 trials, seed 1999, serial execution.
//   --threads N      run the grid on an N-worker pool (N < 0: one worker per
//                    hardware thread). Statistics are bit-identical to the
//                    serial run for every N (deterministic reduction).
//   --bench-json P   perf mode: time the grid serially and with the pool,
//                    verify the two produce identical statistics, and write
//                    a BENCH JSON record (wall clock, trials/sec, speedup,
//                    headline obs counters) to path P. Tables are skipped.
//   --metrics-json P enable the obs registry and write its JSON document
//                    (schema netsel-metrics-v1) to P after the run.
//   --chrome-trace P enable the obs registry and write the recorded spans
//                    as Chrome trace_event JSON to P (load in Perfetto).
// With --csv, the machine-readable grid is appended after the tables.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "api/service.hpp"
#include "exp/report.hpp"
#include "exp/table1.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace netsel::exp;

std::uint64_t counter_value(const char* name) {
  for (const auto& [n, v] : netsel::obs::Registry::global().counters())
    if (n == name) return v;
  return 0;
}

/// Write the requested obs exports; returns false when a path was not
/// writable. Pre-registers the service metrics so the document always lists
/// the degradation-ladder counters, even for runs that never placed.
bool write_obs_exports(const char* metrics_path, const char* trace_path) {
  netsel::api::register_service_metrics();
  bool ok = true;
  if (metrics_path) {
    std::ofstream f(metrics_path);
    if (f) {
      netsel::obs::write_json(netsel::obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", metrics_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      ok = false;
    }
  }
  if (trace_path) {
    std::ofstream f(trace_path);
    if (f) {
      netsel::obs::write_chrome_trace(netsel::obs::Registry::global(), f);
      std::fprintf(stderr, "wrote %s\n", trace_path);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      ok = false;
    }
  }
  return ok;
}

double time_grid(Table1Options opt, int threads,
                 std::vector<MeasuredRow>* out) {
  opt.threads = threads;
  auto t0 = std::chrono::steady_clock::now();
  auto rows = run_table1(opt);
  auto t1 = std::chrono::steady_clock::now();
  if (out) *out = std::move(rows);
  return std::chrono::duration<double>(t1 - t0).count();
}

bool identical(const std::vector<MeasuredRow>& a,
               const std::vector<MeasuredRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].reference != b[r].reference) return false;
    for (std::size_t c = 0; c < 3; ++c) {
      const MeasuredCell& x1 = a[r].random_sel[c];
      const MeasuredCell& y1 = b[r].random_sel[c];
      const MeasuredCell& x2 = a[r].auto_sel[c];
      const MeasuredCell& y2 = b[r].auto_sel[c];
      if (x1.mean != y1.mean || x1.ci95 != y1.ci95 ||
          x1.trials != y1.trials || x1.failures != y1.failures)
        return false;
      if (x2.mean != y2.mean || x2.ci95 != y2.ci95 ||
          x2.trials != y2.trials || x2.failures != y2.failures)
        return false;
    }
  }
  return true;
}

int bench_json(const Table1Options& opt, int threads, const char* path,
               const char* metrics_path, const char* trace_path) {
  unsigned hw = std::thread::hardware_concurrency();
  int pool_threads = threads != 0 ? threads : -1;
  int effective = pool_threads < 0 ? static_cast<int>(hw == 0 ? 1 : hw)
                                   : pool_threads;
  // 18 measured cells of opt.trials each + 3 single-trial references.
  const int total_trials = 18 * opt.trials + 3;

  // Perf mode always runs instrumented: the headline counters (cache hit
  // rate, pool steals, events/sec) ride along in the BENCH record. The obs
  // layer is observational by contract, so the timings stay honest.
  netsel::obs::set_enabled(true);
  netsel::obs::Registry::global().reset();

  std::fprintf(stderr, "bench_table1: %d trials/cell, seed %llu — serial...\n",
               opt.trials, static_cast<unsigned long long>(opt.seed));
  std::vector<MeasuredRow> serial_rows, par_rows;
  double serial_s = time_grid(opt, 0, &serial_rows);
  std::fprintf(stderr, "  serial: %.2fs — now %d threads...\n", serial_s,
               effective);
  // Reset between runs so the exported metrics describe the parallel run
  // alone (otherwise pool counters would sit next to serial-run cache ones).
  netsel::obs::Registry::global().reset();
  double par_s = time_grid(opt, pool_threads, &par_rows);
  bool same = identical(serial_rows, par_rows);
  double speedup = par_s > 0.0 ? serial_s / par_s : 0.0;
  std::fprintf(stderr, "  %d threads: %.2fs  speedup %.2fx  identical=%s\n",
               effective, par_s, speedup, same ? "true" : "false");

  std::uint64_t row_hits = counter_value("select.ctx.row_hits");
  std::uint64_t row_misses = counter_value("select.ctx.row_misses");
  double hit_rate = row_hits + row_misses > 0
                        ? static_cast<double>(row_hits) /
                              static_cast<double>(row_hits + row_misses)
                        : 0.0;
  std::uint64_t tasks_run = counter_value("pool.tasks_run");
  std::uint64_t steals = counter_value("pool.steals");
  std::uint64_t sim_events = counter_value("sim.events");

  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"table1\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"grid\": {\n"
               "    \"apps\": 3,\n"
               "    \"measured_cells\": 18,\n"
               "    \"references\": 3,\n"
               "    \"trials_per_cell\": %d,\n"
               "    \"total_trials\": %d,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"serial\": { \"seconds\": %.4f, \"trials_per_sec\": %.2f },\n"
               "  \"parallel\": { \"threads\": %d, \"seconds\": %.4f, "
               "\"trials_per_sec\": %.2f },\n"
               "  \"speedup\": %.3f,\n"
               "  \"identical_stats\": %s,\n"
               "  \"metrics\": {\n"
               "    \"ctx_row_hits\": %llu,\n"
               "    \"ctx_row_misses\": %llu,\n"
               "    \"ctx_row_hit_rate\": %.4f,\n"
               "    \"pool_tasks_run\": %llu,\n"
               "    \"pool_steals\": %llu,\n"
               "    \"sim_events\": %llu,\n"
               "    \"sim_events_per_sec\": %.0f\n"
               "  }\n"
               "}\n",
               hw, opt.trials, total_trials,
               static_cast<unsigned long long>(opt.seed), serial_s,
               serial_s > 0.0 ? total_trials / serial_s : 0.0, effective,
               par_s, par_s > 0.0 ? total_trials / par_s : 0.0, speedup,
               same ? "true" : "false",
               static_cast<unsigned long long>(row_hits),
               static_cast<unsigned long long>(row_misses), hit_rate,
               static_cast<unsigned long long>(tasks_run),
               static_cast<unsigned long long>(steals),
               static_cast<unsigned long long>(sim_events),
               par_s > 0.0 ? static_cast<double>(sim_events) / par_s : 0.0);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  if (!write_obs_exports(metrics_path, trace_path)) return 1;
  return same ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netsel::exp;
  Table1Options opt;
  opt.trials = 25;
  bool csv = false;
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (positional == 0) {
      opt.trials = std::atoi(argv[i]);
      ++positional;
    } else {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
      ++positional;
    }
  }
  if (opt.trials < 1) {
    std::fprintf(stderr, "trials must be >= 1\n");
    return 1;
  }
  if (json_path)
    return bench_json(opt, opt.threads, json_path, metrics_path, trace_path);
  if (metrics_path || trace_path) netsel::obs::set_enabled(true);

  opt.verbose = true;
  std::printf(
      "== Table 1: performance with computation load and network traffic ==\n"
      "   (%d trials per cell, seed %llu, %s; paper values from PPoPP'99)\n\n",
      opt.trials, static_cast<unsigned long long>(opt.seed),
      opt.threads == 0 ? "serial" : "thread-pool");
  auto rows = run_table1(opt);
  std::fputs("\n", stdout);
  std::fputs(format_table1(rows).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(format_slowdown_summary(rows).c_str(), stdout);
  if (csv) {
    std::fputs("\n-- csv --\n", stdout);
    std::fputs(table1_csv(rows).c_str(), stdout);
  }
  if (!write_obs_exports(metrics_path, trace_path)) return 1;
  return 0;
}
