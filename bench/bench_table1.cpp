// Reproduction of the paper's Table 1: execution time of FFT, Airshed and
// MRI on the simulated Fig. 4 testbed under processor load, network traffic
// and both, with randomly vs automatically selected nodes, plus the
// unloaded reference column — printed side by side with the paper's
// measurements, followed by the "slowdown roughly halved" analysis.
//
// Usage: bench_table1 [trials] [seed] [--csv]   (defaults: 25, 1999)
// With --csv, the machine-readable grid is appended after the tables.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/report.hpp"
#include "exp/table1.hpp"

int main(int argc, char** argv) {
  using namespace netsel::exp;
  Table1Options opt;
  bool csv = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (positional == 0) {
      opt.trials = std::atoi(argv[i]);
      ++positional;
    } else {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
      ++positional;
    }
  }
  opt.verbose = true;
  if (opt.trials < 1) {
    std::fprintf(stderr, "trials must be >= 1\n");
    return 1;
  }

  std::printf(
      "== Table 1: performance with computation load and network traffic ==\n"
      "   (%d trials per cell, seed %llu; paper values from PPoPP'99)\n\n",
      opt.trials, static_cast<unsigned long long>(opt.seed));
  auto rows = run_table1(opt);
  std::fputs("\n", stdout);
  std::fputs(format_table1(rows).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(format_slowdown_summary(rows).c_str(), stdout);
  if (csv) {
    std::fputs("\n-- csv --\n", stdout);
    std::fputs(table1_csv(rows).c_str(), stdout);
  }
  return 0;
}
