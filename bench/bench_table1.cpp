// Reproduction of the paper's Table 1: execution time of FFT, Airshed and
// MRI on the simulated Fig. 4 testbed under processor load, network traffic
// and both, with randomly vs automatically selected nodes, plus the
// unloaded reference column — printed side by side with the paper's
// measurements, followed by the "slowdown roughly halved" analysis.
//
// Usage: bench_table1 [trials] [seed] [--csv] [--threads N] [--bench-json PATH]
// Defaults: 25 trials, seed 1999, serial execution.
//   --threads N      run the grid on an N-worker pool (N < 0: one worker per
//                    hardware thread). Statistics are bit-identical to the
//                    serial run for every N (deterministic reduction).
//   --bench-json P   perf mode: time the grid serially and with the pool,
//                    verify the two produce identical statistics, and write
//                    a BENCH JSON record (wall clock, trials/sec, speedup)
//                    to path P. Tables are skipped in this mode.
// With --csv, the machine-readable grid is appended after the tables.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "exp/report.hpp"
#include "exp/table1.hpp"

namespace {

using namespace netsel::exp;

double time_grid(Table1Options opt, int threads,
                 std::vector<MeasuredRow>* out) {
  opt.threads = threads;
  auto t0 = std::chrono::steady_clock::now();
  auto rows = run_table1(opt);
  auto t1 = std::chrono::steady_clock::now();
  if (out) *out = std::move(rows);
  return std::chrono::duration<double>(t1 - t0).count();
}

bool identical(const std::vector<MeasuredRow>& a,
               const std::vector<MeasuredRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].reference != b[r].reference) return false;
    for (std::size_t c = 0; c < 3; ++c) {
      const MeasuredCell& x1 = a[r].random_sel[c];
      const MeasuredCell& y1 = b[r].random_sel[c];
      const MeasuredCell& x2 = a[r].auto_sel[c];
      const MeasuredCell& y2 = b[r].auto_sel[c];
      if (x1.mean != y1.mean || x1.ci95 != y1.ci95 ||
          x1.trials != y1.trials || x1.failures != y1.failures)
        return false;
      if (x2.mean != y2.mean || x2.ci95 != y2.ci95 ||
          x2.trials != y2.trials || x2.failures != y2.failures)
        return false;
    }
  }
  return true;
}

int bench_json(const Table1Options& opt, int threads, const char* path) {
  unsigned hw = std::thread::hardware_concurrency();
  int pool_threads = threads != 0 ? threads : -1;
  int effective = pool_threads < 0 ? static_cast<int>(hw == 0 ? 1 : hw)
                                   : pool_threads;
  // 18 measured cells of opt.trials each + 3 single-trial references.
  const int total_trials = 18 * opt.trials + 3;

  std::fprintf(stderr, "bench_table1: %d trials/cell, seed %llu — serial...\n",
               opt.trials, static_cast<unsigned long long>(opt.seed));
  std::vector<MeasuredRow> serial_rows, par_rows;
  double serial_s = time_grid(opt, 0, &serial_rows);
  std::fprintf(stderr, "  serial: %.2fs — now %d threads...\n", serial_s,
               effective);
  double par_s = time_grid(opt, pool_threads, &par_rows);
  bool same = identical(serial_rows, par_rows);
  double speedup = par_s > 0.0 ? serial_s / par_s : 0.0;
  std::fprintf(stderr, "  %d threads: %.2fs  speedup %.2fx  identical=%s\n",
               effective, par_s, speedup, same ? "true" : "false");

  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"table1\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"grid\": {\n"
               "    \"apps\": 3,\n"
               "    \"measured_cells\": 18,\n"
               "    \"references\": 3,\n"
               "    \"trials_per_cell\": %d,\n"
               "    \"total_trials\": %d,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"serial\": { \"seconds\": %.4f, \"trials_per_sec\": %.2f },\n"
               "  \"parallel\": { \"threads\": %d, \"seconds\": %.4f, "
               "\"trials_per_sec\": %.2f },\n"
               "  \"speedup\": %.3f,\n"
               "  \"identical_stats\": %s\n"
               "}\n",
               hw, opt.trials, total_trials,
               static_cast<unsigned long long>(opt.seed), serial_s,
               serial_s > 0.0 ? total_trials / serial_s : 0.0, effective,
               par_s, par_s > 0.0 ? total_trials / par_s : 0.0, speedup,
               same ? "true" : "false");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return same ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netsel::exp;
  Table1Options opt;
  opt.trials = 25;
  bool csv = false;
  const char* json_path = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (positional == 0) {
      opt.trials = std::atoi(argv[i]);
      ++positional;
    } else {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
      ++positional;
    }
  }
  if (opt.trials < 1) {
    std::fprintf(stderr, "trials must be >= 1\n");
    return 1;
  }
  if (json_path) return bench_json(opt, opt.threads, json_path);

  opt.verbose = true;
  std::printf(
      "== Table 1: performance with computation load and network traffic ==\n"
      "   (%d trials per cell, seed %llu, %s; paper values from PPoPP'99)\n\n",
      opt.trials, static_cast<unsigned long long>(opt.seed),
      opt.threads == 0 ? "serial" : "thread-pool");
  auto rows = run_table1(opt);
  std::fputs("\n", stdout);
  std::fputs(format_table1(rows).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(format_slowdown_summary(rows).c_str(), stdout);
  if (csv) {
    std::fputs("\n-- csv --\n", stdout);
    std::fputs(table1_csv(rows).c_str(), stdout);
  }
  return 0;
}
