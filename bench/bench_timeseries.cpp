// Time-series view of the simulated testbed under the §4.2 generators —
// the dynamics behind the paper's premise that "network conditions change
// continuously due to sharing of resources". Records host load averages
// and backbone-link utilisation with the TraceRecorder during a Table-1
// style scenario, prints summary statistics per series and a CSV excerpt
// for plotting.
//
// Usage: bench_timeseries [duration_s]   (default 1800 simulated seconds)

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "exp/experiment.hpp"
#include "load/load_generator.hpp"
#include "load/traffic_generator.hpp"
#include "sim/trace.hpp"
#include "topo/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace netsel;

int main(int argc, char** argv) {
  double duration = argc > 1 ? std::atof(argv[1]) : 1800.0;
  if (duration <= 0.0) {
    std::fprintf(stderr, "duration must be > 0\n");
    return 1;
  }

  sim::NetworkSim net(topo::testbed());
  util::Rng master(12);
  exp::Scenario scen = exp::table1_scenario(true, true);
  load::HostLoadGenerator loadgen(net, scen.load, master.fork("load"));
  load::TrafficGenerator trafficgen(net, scen.traffic, master.fork("traffic"));
  sim::TraceRecorder trace(net, sim::TraceConfig{5.0, true, true});
  loadgen.start();
  trafficgen.start();
  trace.start();
  net.sim().run_until(duration);

  std::printf("== Background dynamics on the simulated testbed ==\n");
  std::printf("   %0.f simulated seconds, %zu samples at 5 s; %llu jobs and "
              "%llu transfers generated\n\n",
              duration, trace.samples(),
              static_cast<unsigned long long>(loadgen.jobs_generated()),
              static_cast<unsigned long long>(trafficgen.messages_generated()));

  auto cols = trace.columns();
  util::TextTable t;
  t.header({"series", "mean", "p95", "max"});
  // Summarise a representative subset: three hosts and the two backbone
  // links (both directions aggregated via max of the two columns).
  auto summarise = [&](const std::string& name, double scale,
                       const char* unit) {
    for (std::size_t c = 1; c < cols.size(); ++c) {
      if (cols[c] != name) continue;
      util::OnlineStats stats;
      std::vector<double> xs;
      for (std::size_t r = 0; r < trace.samples(); ++r) {
        double v = trace.value(r, c - 1) / scale;
        stats.add(v);
        xs.push_back(v);
      }
      std::ostringstream label;
      label << name << " (" << unit << ")";
      t.row({label.str(), util::fmt(stats.mean(), 2),
             util::fmt(util::percentile(xs, 95), 2),
             util::fmt(stats.max(), 2)});
    }
  };
  for (const char* h : {"load:m-1", "load:m-9", "load:m-18"})
    summarise(h, 1.0, "loadavg");
  summarise("bw:panama--gibraltar:fwd", 1e6, "Mbps");
  summarise("bw:panama--gibraltar:rev", 1e6, "Mbps");
  summarise("bw:gibraltar--suez(ATM):fwd", 1e6, "Mbps");
  summarise("bw:gibraltar--suez(ATM):rev", 1e6, "Mbps");
  std::printf("%s\n", t.render().c_str());

  std::printf("Expected shape: heavy-tailed load (p95 >> mean, occasional\n"
              "multi-job pileups) and bursty backbone traffic with elephant\n"
              "flows pinning a trunk for tens of seconds — the conditions\n"
              "that make measurement-driven selection pay off.\n\n");

  // CSV excerpt (first 8 samples, host-load columns only) for plotting.
  std::printf("-- csv excerpt (full series available via sim::TraceRecorder::to_csv) --\n");
  std::printf("time,load:m-1,load:m-9,load:m-18\n");
  std::size_t host_cols[3] = {0, 0, 0};
  int found = 0;
  for (std::size_t c = 1; c < cols.size() && found < 3; ++c) {
    if (cols[c] == "load:m-1") host_cols[0] = c - 1, ++found;
    if (cols[c] == "load:m-9") host_cols[1] = c - 1, ++found;
    if (cols[c] == "load:m-18") host_cols[2] = c - 1, ++found;
  }
  for (std::size_t r = 0; r + 1 < trace.samples() && r < 8; ++r) {
    std::printf("%.0f,%.3f,%.3f,%.3f\n", trace.time_of(r),
                trace.value(r, host_cols[0]), trace.value(r, host_cols[1]),
                trace.value(r, host_cols[2]));
  }
  return 0;
}
