// Reproduction of the paper's Figure 1: a Remos logical topology graph of a
// simple network — switches as boxes, compute nodes as ellipses, links
// labelled with capacity — plus the Fig. 4 testbed graph, both validated
// and emitted as Graphviz DOT. Also demonstrates the snapshot annotation
// (available bandwidth under live traffic) that the node selection
// procedures consume.

#include <cstdio>

#include "remos/remos.hpp"
#include "sim/network_sim.hpp"
#include "topo/dot.hpp"
#include "topo/generators.hpp"
#include "util/table.hpp"

using namespace netsel;

int main() {
  // --- Figure 1: a simple switched network. ---
  topo::TopologyGraph fig1;
  auto sw1 = fig1.add_network("switch-1");
  auto sw2 = fig1.add_network("switch-2");
  auto router = fig1.add_network("router");
  for (int i = 0; i < 3; ++i) {
    auto h = fig1.add_compute("node-" + std::to_string(i + 1));
    fig1.add_link(sw1, h, topo::k100Mbps);
  }
  for (int i = 3; i < 5; ++i) {
    auto h = fig1.add_compute("node-" + std::to_string(i + 1));
    fig1.add_link(sw2, h, topo::k100Mbps);
  }
  fig1.add_link(sw1, router, topo::k100Mbps);
  fig1.add_link(sw2, router, topo::k155Mbps);
  fig1.validate();
  std::printf("== Figure 1: Remos graph of a simple network ==\n");
  std::printf("%zu nodes (%zu compute), %zu links, acyclic=%s\n\n",
              fig1.node_count(), fig1.compute_node_count(), fig1.link_count(),
              fig1.is_acyclic() ? "yes" : "no");
  topo::DotOptions d1;
  d1.graph_name = "figure1";
  std::printf("%s\n", topo::to_dot(fig1, d1).c_str());

  // --- Figure 4 testbed with a live snapshot annotation. ---
  sim::NetworkSim net(topo::testbed());
  const auto& g = net.topology();
  auto m3 = g.find_node("m-3").value();
  auto m15 = g.find_node("m-15").value();
  net.network().start_flow(m3, m15, 1e12, sim::kBackgroundOwner);
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(10.0);
  auto snap = remos.snapshot();

  std::printf("== Figure 4 testbed: measured availability snapshot ==\n");
  util::TextTable t;
  t.header({"Link", "Capacity", "Available", "bwfactor"});
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    if (snap.bwfactor(id) > 0.999) continue;  // print only impacted links
    t.row({g.link(id).name, util::fmt_mbps(snap.maxbw(id)),
           util::fmt_mbps(snap.bw(id)), util::fmt(snap.bwfactor(id), 3)});
  }
  std::printf("%s\n(unlisted links are fully available; the flow m-3 -> m-15 "
              "crosses both routers)\n\n",
              t.render().c_str());

  topo::DotOptions d4;
  d4.graph_name = "figure4_testbed";
  d4.link_labels.resize(g.link_count());
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    d4.link_labels[l] = util::fmt(snap.bw(id) / 1e6, 0) + "/" +
                        util::fmt(snap.maxbw(id) / 1e6, 0) + " Mbps";
  }
  std::printf("%s\n", topo::to_dot(g, d4).c_str());
  return 0;
}
