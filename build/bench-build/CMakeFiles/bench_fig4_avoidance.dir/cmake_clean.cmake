file(REMOVE_RECURSE
  "../bench/bench_fig4_avoidance"
  "../bench/bench_fig4_avoidance.pdb"
  "CMakeFiles/bench_fig4_avoidance.dir/bench_fig4_avoidance.cpp.o"
  "CMakeFiles/bench_fig4_avoidance.dir/bench_fig4_avoidance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
