# Empty compiler generated dependencies file for bench_fig4_avoidance.
# This may be replaced when dependencies are built.
