file(REMOVE_RECURSE
  "../bench/bench_priority"
  "../bench/bench_priority.pdb"
  "CMakeFiles/bench_priority.dir/bench_priority.cpp.o"
  "CMakeFiles/bench_priority.dir/bench_priority.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
