file(REMOVE_RECURSE
  "../bench/bench_timeseries"
  "../bench/bench_timeseries.pdb"
  "CMakeFiles/bench_timeseries.dir/bench_timeseries.cpp.o"
  "CMakeFiles/bench_timeseries.dir/bench_timeseries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
