file(REMOVE_RECURSE
  "CMakeFiles/mri_masterslave.dir/mri_masterslave.cpp.o"
  "CMakeFiles/mri_masterslave.dir/mri_masterslave.cpp.o.d"
  "mri_masterslave"
  "mri_masterslave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_masterslave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
