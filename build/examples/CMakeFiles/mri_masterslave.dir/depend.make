# Empty dependencies file for mri_masterslave.
# This may be replaced when dependencies are built.
