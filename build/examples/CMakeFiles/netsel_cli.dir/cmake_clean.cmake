file(REMOVE_RECURSE
  "CMakeFiles/netsel_cli.dir/netsel_cli.cpp.o"
  "CMakeFiles/netsel_cli.dir/netsel_cli.cpp.o.d"
  "netsel_cli"
  "netsel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
