# Empty dependencies file for netsel_cli.
# This may be replaced when dependencies are built.
