file(REMOVE_RECURSE
  "CMakeFiles/node_count_advisor.dir/node_count_advisor.cpp.o"
  "CMakeFiles/node_count_advisor.dir/node_count_advisor.cpp.o.d"
  "node_count_advisor"
  "node_count_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_count_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
