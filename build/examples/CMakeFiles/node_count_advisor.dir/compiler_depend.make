# Empty compiler generated dependencies file for node_count_advisor.
# This may be replaced when dependencies are built.
