
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/advisor.cpp" "src/api/CMakeFiles/netsel_api.dir/advisor.cpp.o" "gcc" "src/api/CMakeFiles/netsel_api.dir/advisor.cpp.o.d"
  "/root/repo/src/api/appspec.cpp" "src/api/CMakeFiles/netsel_api.dir/appspec.cpp.o" "gcc" "src/api/CMakeFiles/netsel_api.dir/appspec.cpp.o.d"
  "/root/repo/src/api/migration.cpp" "src/api/CMakeFiles/netsel_api.dir/migration.cpp.o" "gcc" "src/api/CMakeFiles/netsel_api.dir/migration.cpp.o.d"
  "/root/repo/src/api/service.cpp" "src/api/CMakeFiles/netsel_api.dir/service.cpp.o" "gcc" "src/api/CMakeFiles/netsel_api.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/netsel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netsel_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/remos/CMakeFiles/netsel_remos.dir/DependInfo.cmake"
  "/root/repo/build/src/select/CMakeFiles/netsel_select.dir/DependInfo.cmake"
  "/root/repo/build/src/appsim/CMakeFiles/netsel_appsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netsel_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
