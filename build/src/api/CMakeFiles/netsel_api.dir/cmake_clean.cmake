file(REMOVE_RECURSE
  "CMakeFiles/netsel_api.dir/advisor.cpp.o"
  "CMakeFiles/netsel_api.dir/advisor.cpp.o.d"
  "CMakeFiles/netsel_api.dir/appspec.cpp.o"
  "CMakeFiles/netsel_api.dir/appspec.cpp.o.d"
  "CMakeFiles/netsel_api.dir/migration.cpp.o"
  "CMakeFiles/netsel_api.dir/migration.cpp.o.d"
  "CMakeFiles/netsel_api.dir/service.cpp.o"
  "CMakeFiles/netsel_api.dir/service.cpp.o.d"
  "libnetsel_api.a"
  "libnetsel_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
