file(REMOVE_RECURSE
  "libnetsel_api.a"
)
