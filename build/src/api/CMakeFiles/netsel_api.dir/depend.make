# Empty dependencies file for netsel_api.
# This may be replaced when dependencies are built.
