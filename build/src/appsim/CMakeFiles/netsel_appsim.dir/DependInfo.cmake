
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appsim/app.cpp" "src/appsim/CMakeFiles/netsel_appsim.dir/app.cpp.o" "gcc" "src/appsim/CMakeFiles/netsel_appsim.dir/app.cpp.o.d"
  "/root/repo/src/appsim/loosely_synchronous.cpp" "src/appsim/CMakeFiles/netsel_appsim.dir/loosely_synchronous.cpp.o" "gcc" "src/appsim/CMakeFiles/netsel_appsim.dir/loosely_synchronous.cpp.o.d"
  "/root/repo/src/appsim/master_slave.cpp" "src/appsim/CMakeFiles/netsel_appsim.dir/master_slave.cpp.o" "gcc" "src/appsim/CMakeFiles/netsel_appsim.dir/master_slave.cpp.o.d"
  "/root/repo/src/appsim/pipeline.cpp" "src/appsim/CMakeFiles/netsel_appsim.dir/pipeline.cpp.o" "gcc" "src/appsim/CMakeFiles/netsel_appsim.dir/pipeline.cpp.o.d"
  "/root/repo/src/appsim/presets.cpp" "src/appsim/CMakeFiles/netsel_appsim.dir/presets.cpp.o" "gcc" "src/appsim/CMakeFiles/netsel_appsim.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/netsel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netsel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netsel_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
