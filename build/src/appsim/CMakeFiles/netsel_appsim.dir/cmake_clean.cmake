file(REMOVE_RECURSE
  "CMakeFiles/netsel_appsim.dir/app.cpp.o"
  "CMakeFiles/netsel_appsim.dir/app.cpp.o.d"
  "CMakeFiles/netsel_appsim.dir/loosely_synchronous.cpp.o"
  "CMakeFiles/netsel_appsim.dir/loosely_synchronous.cpp.o.d"
  "CMakeFiles/netsel_appsim.dir/master_slave.cpp.o"
  "CMakeFiles/netsel_appsim.dir/master_slave.cpp.o.d"
  "CMakeFiles/netsel_appsim.dir/pipeline.cpp.o"
  "CMakeFiles/netsel_appsim.dir/pipeline.cpp.o.d"
  "CMakeFiles/netsel_appsim.dir/presets.cpp.o"
  "CMakeFiles/netsel_appsim.dir/presets.cpp.o.d"
  "libnetsel_appsim.a"
  "libnetsel_appsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_appsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
