file(REMOVE_RECURSE
  "libnetsel_appsim.a"
)
