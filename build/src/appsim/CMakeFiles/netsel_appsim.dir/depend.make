# Empty dependencies file for netsel_appsim.
# This may be replaced when dependencies are built.
