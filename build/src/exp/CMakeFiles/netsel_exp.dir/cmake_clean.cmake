file(REMOVE_RECURSE
  "CMakeFiles/netsel_exp.dir/experiment.cpp.o"
  "CMakeFiles/netsel_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/netsel_exp.dir/report.cpp.o"
  "CMakeFiles/netsel_exp.dir/report.cpp.o.d"
  "CMakeFiles/netsel_exp.dir/table1.cpp.o"
  "CMakeFiles/netsel_exp.dir/table1.cpp.o.d"
  "libnetsel_exp.a"
  "libnetsel_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
