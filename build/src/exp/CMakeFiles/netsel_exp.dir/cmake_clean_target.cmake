file(REMOVE_RECURSE
  "libnetsel_exp.a"
)
