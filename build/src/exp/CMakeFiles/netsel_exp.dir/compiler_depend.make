# Empty compiler generated dependencies file for netsel_exp.
# This may be replaced when dependencies are built.
