
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/load/load_generator.cpp" "src/load/CMakeFiles/netsel_load.dir/load_generator.cpp.o" "gcc" "src/load/CMakeFiles/netsel_load.dir/load_generator.cpp.o.d"
  "/root/repo/src/load/traffic_generator.cpp" "src/load/CMakeFiles/netsel_load.dir/traffic_generator.cpp.o" "gcc" "src/load/CMakeFiles/netsel_load.dir/traffic_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/netsel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netsel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netsel_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
