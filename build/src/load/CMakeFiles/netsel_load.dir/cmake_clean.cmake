file(REMOVE_RECURSE
  "CMakeFiles/netsel_load.dir/load_generator.cpp.o"
  "CMakeFiles/netsel_load.dir/load_generator.cpp.o.d"
  "CMakeFiles/netsel_load.dir/traffic_generator.cpp.o"
  "CMakeFiles/netsel_load.dir/traffic_generator.cpp.o.d"
  "libnetsel_load.a"
  "libnetsel_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
