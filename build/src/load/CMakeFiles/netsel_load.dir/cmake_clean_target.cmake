file(REMOVE_RECURSE
  "libnetsel_load.a"
)
