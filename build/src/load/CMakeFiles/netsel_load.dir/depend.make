# Empty dependencies file for netsel_load.
# This may be replaced when dependencies are built.
