
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/remos/history.cpp" "src/remos/CMakeFiles/netsel_remos.dir/history.cpp.o" "gcc" "src/remos/CMakeFiles/netsel_remos.dir/history.cpp.o.d"
  "/root/repo/src/remos/monitor.cpp" "src/remos/CMakeFiles/netsel_remos.dir/monitor.cpp.o" "gcc" "src/remos/CMakeFiles/netsel_remos.dir/monitor.cpp.o.d"
  "/root/repo/src/remos/remos.cpp" "src/remos/CMakeFiles/netsel_remos.dir/remos.cpp.o" "gcc" "src/remos/CMakeFiles/netsel_remos.dir/remos.cpp.o.d"
  "/root/repo/src/remos/snapshot.cpp" "src/remos/CMakeFiles/netsel_remos.dir/snapshot.cpp.o" "gcc" "src/remos/CMakeFiles/netsel_remos.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/netsel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netsel_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netsel_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
