file(REMOVE_RECURSE
  "CMakeFiles/netsel_remos.dir/history.cpp.o"
  "CMakeFiles/netsel_remos.dir/history.cpp.o.d"
  "CMakeFiles/netsel_remos.dir/monitor.cpp.o"
  "CMakeFiles/netsel_remos.dir/monitor.cpp.o.d"
  "CMakeFiles/netsel_remos.dir/remos.cpp.o"
  "CMakeFiles/netsel_remos.dir/remos.cpp.o.d"
  "CMakeFiles/netsel_remos.dir/snapshot.cpp.o"
  "CMakeFiles/netsel_remos.dir/snapshot.cpp.o.d"
  "libnetsel_remos.a"
  "libnetsel_remos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_remos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
