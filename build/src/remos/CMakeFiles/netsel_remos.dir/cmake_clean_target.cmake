file(REMOVE_RECURSE
  "libnetsel_remos.a"
)
