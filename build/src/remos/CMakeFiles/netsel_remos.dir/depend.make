# Empty dependencies file for netsel_remos.
# This may be replaced when dependencies are built.
