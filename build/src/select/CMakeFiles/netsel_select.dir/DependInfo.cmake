
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/select/balanced.cpp" "src/select/CMakeFiles/netsel_select.dir/balanced.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/balanced.cpp.o.d"
  "/root/repo/src/select/baselines.cpp" "src/select/CMakeFiles/netsel_select.dir/baselines.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/baselines.cpp.o.d"
  "/root/repo/src/select/brute_force.cpp" "src/select/CMakeFiles/netsel_select.dir/brute_force.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/brute_force.cpp.o.d"
  "/root/repo/src/select/latency.cpp" "src/select/CMakeFiles/netsel_select.dir/latency.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/latency.cpp.o.d"
  "/root/repo/src/select/max_bandwidth.cpp" "src/select/CMakeFiles/netsel_select.dir/max_bandwidth.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/max_bandwidth.cpp.o.d"
  "/root/repo/src/select/max_compute.cpp" "src/select/CMakeFiles/netsel_select.dir/max_compute.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/max_compute.cpp.o.d"
  "/root/repo/src/select/objective.cpp" "src/select/CMakeFiles/netsel_select.dir/objective.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/objective.cpp.o.d"
  "/root/repo/src/select/options.cpp" "src/select/CMakeFiles/netsel_select.dir/options.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/options.cpp.o.d"
  "/root/repo/src/select/patterns.cpp" "src/select/CMakeFiles/netsel_select.dir/patterns.cpp.o" "gcc" "src/select/CMakeFiles/netsel_select.dir/patterns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/netsel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netsel_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/remos/CMakeFiles/netsel_remos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netsel_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
