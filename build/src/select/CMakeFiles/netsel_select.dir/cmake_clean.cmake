file(REMOVE_RECURSE
  "CMakeFiles/netsel_select.dir/balanced.cpp.o"
  "CMakeFiles/netsel_select.dir/balanced.cpp.o.d"
  "CMakeFiles/netsel_select.dir/baselines.cpp.o"
  "CMakeFiles/netsel_select.dir/baselines.cpp.o.d"
  "CMakeFiles/netsel_select.dir/brute_force.cpp.o"
  "CMakeFiles/netsel_select.dir/brute_force.cpp.o.d"
  "CMakeFiles/netsel_select.dir/latency.cpp.o"
  "CMakeFiles/netsel_select.dir/latency.cpp.o.d"
  "CMakeFiles/netsel_select.dir/max_bandwidth.cpp.o"
  "CMakeFiles/netsel_select.dir/max_bandwidth.cpp.o.d"
  "CMakeFiles/netsel_select.dir/max_compute.cpp.o"
  "CMakeFiles/netsel_select.dir/max_compute.cpp.o.d"
  "CMakeFiles/netsel_select.dir/objective.cpp.o"
  "CMakeFiles/netsel_select.dir/objective.cpp.o.d"
  "CMakeFiles/netsel_select.dir/options.cpp.o"
  "CMakeFiles/netsel_select.dir/options.cpp.o.d"
  "CMakeFiles/netsel_select.dir/patterns.cpp.o"
  "CMakeFiles/netsel_select.dir/patterns.cpp.o.d"
  "libnetsel_select.a"
  "libnetsel_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
