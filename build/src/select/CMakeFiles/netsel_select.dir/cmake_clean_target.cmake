file(REMOVE_RECURSE
  "libnetsel_select.a"
)
