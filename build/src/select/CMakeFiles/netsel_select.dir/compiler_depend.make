# Empty compiler generated dependencies file for netsel_select.
# This may be replaced when dependencies are built.
