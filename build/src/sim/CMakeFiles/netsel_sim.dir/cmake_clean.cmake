file(REMOVE_RECURSE
  "CMakeFiles/netsel_sim.dir/engine.cpp.o"
  "CMakeFiles/netsel_sim.dir/engine.cpp.o.d"
  "CMakeFiles/netsel_sim.dir/host.cpp.o"
  "CMakeFiles/netsel_sim.dir/host.cpp.o.d"
  "CMakeFiles/netsel_sim.dir/network.cpp.o"
  "CMakeFiles/netsel_sim.dir/network.cpp.o.d"
  "CMakeFiles/netsel_sim.dir/network_sim.cpp.o"
  "CMakeFiles/netsel_sim.dir/network_sim.cpp.o.d"
  "CMakeFiles/netsel_sim.dir/trace.cpp.o"
  "CMakeFiles/netsel_sim.dir/trace.cpp.o.d"
  "libnetsel_sim.a"
  "libnetsel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
