file(REMOVE_RECURSE
  "libnetsel_sim.a"
)
