# Empty compiler generated dependencies file for netsel_sim.
# This may be replaced when dependencies are built.
