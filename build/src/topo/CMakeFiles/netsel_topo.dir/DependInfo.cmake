
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/connectivity.cpp" "src/topo/CMakeFiles/netsel_topo.dir/connectivity.cpp.o" "gcc" "src/topo/CMakeFiles/netsel_topo.dir/connectivity.cpp.o.d"
  "/root/repo/src/topo/dot.cpp" "src/topo/CMakeFiles/netsel_topo.dir/dot.cpp.o" "gcc" "src/topo/CMakeFiles/netsel_topo.dir/dot.cpp.o.d"
  "/root/repo/src/topo/generators.cpp" "src/topo/CMakeFiles/netsel_topo.dir/generators.cpp.o" "gcc" "src/topo/CMakeFiles/netsel_topo.dir/generators.cpp.o.d"
  "/root/repo/src/topo/graph.cpp" "src/topo/CMakeFiles/netsel_topo.dir/graph.cpp.o" "gcc" "src/topo/CMakeFiles/netsel_topo.dir/graph.cpp.o.d"
  "/root/repo/src/topo/parse.cpp" "src/topo/CMakeFiles/netsel_topo.dir/parse.cpp.o" "gcc" "src/topo/CMakeFiles/netsel_topo.dir/parse.cpp.o.d"
  "/root/repo/src/topo/routing.cpp" "src/topo/CMakeFiles/netsel_topo.dir/routing.cpp.o" "gcc" "src/topo/CMakeFiles/netsel_topo.dir/routing.cpp.o.d"
  "/root/repo/src/topo/subgraph.cpp" "src/topo/CMakeFiles/netsel_topo.dir/subgraph.cpp.o" "gcc" "src/topo/CMakeFiles/netsel_topo.dir/subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/netsel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
