file(REMOVE_RECURSE
  "CMakeFiles/netsel_topo.dir/connectivity.cpp.o"
  "CMakeFiles/netsel_topo.dir/connectivity.cpp.o.d"
  "CMakeFiles/netsel_topo.dir/dot.cpp.o"
  "CMakeFiles/netsel_topo.dir/dot.cpp.o.d"
  "CMakeFiles/netsel_topo.dir/generators.cpp.o"
  "CMakeFiles/netsel_topo.dir/generators.cpp.o.d"
  "CMakeFiles/netsel_topo.dir/graph.cpp.o"
  "CMakeFiles/netsel_topo.dir/graph.cpp.o.d"
  "CMakeFiles/netsel_topo.dir/parse.cpp.o"
  "CMakeFiles/netsel_topo.dir/parse.cpp.o.d"
  "CMakeFiles/netsel_topo.dir/routing.cpp.o"
  "CMakeFiles/netsel_topo.dir/routing.cpp.o.d"
  "CMakeFiles/netsel_topo.dir/subgraph.cpp.o"
  "CMakeFiles/netsel_topo.dir/subgraph.cpp.o.d"
  "libnetsel_topo.a"
  "libnetsel_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
