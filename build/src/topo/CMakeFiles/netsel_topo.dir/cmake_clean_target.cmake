file(REMOVE_RECURSE
  "libnetsel_topo.a"
)
