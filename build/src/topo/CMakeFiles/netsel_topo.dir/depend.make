# Empty dependencies file for netsel_topo.
# This may be replaced when dependencies are built.
