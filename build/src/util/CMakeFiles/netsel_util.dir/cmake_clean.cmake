file(REMOVE_RECURSE
  "CMakeFiles/netsel_util.dir/distributions.cpp.o"
  "CMakeFiles/netsel_util.dir/distributions.cpp.o.d"
  "CMakeFiles/netsel_util.dir/log.cpp.o"
  "CMakeFiles/netsel_util.dir/log.cpp.o.d"
  "CMakeFiles/netsel_util.dir/rng.cpp.o"
  "CMakeFiles/netsel_util.dir/rng.cpp.o.d"
  "CMakeFiles/netsel_util.dir/stats.cpp.o"
  "CMakeFiles/netsel_util.dir/stats.cpp.o.d"
  "CMakeFiles/netsel_util.dir/table.cpp.o"
  "CMakeFiles/netsel_util.dir/table.cpp.o.d"
  "libnetsel_util.a"
  "libnetsel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
