file(REMOVE_RECURSE
  "libnetsel_util.a"
)
