# Empty dependencies file for netsel_util.
# This may be replaced when dependencies are built.
