file(REMOVE_RECURSE
  "CMakeFiles/test_appsim.dir/test_appsim.cpp.o"
  "CMakeFiles/test_appsim.dir/test_appsim.cpp.o.d"
  "test_appsim"
  "test_appsim.pdb"
  "test_appsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
