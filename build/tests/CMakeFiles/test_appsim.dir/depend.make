# Empty dependencies file for test_appsim.
# This may be replaced when dependencies are built.
