
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_appsim_contention.cpp" "tests/CMakeFiles/test_appsim_contention.dir/test_appsim_contention.cpp.o" "gcc" "tests/CMakeFiles/test_appsim_contention.dir/test_appsim_contention.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/netsel_api.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/netsel_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/netsel_load.dir/DependInfo.cmake"
  "/root/repo/build/src/select/CMakeFiles/netsel_select.dir/DependInfo.cmake"
  "/root/repo/build/src/remos/CMakeFiles/netsel_remos.dir/DependInfo.cmake"
  "/root/repo/build/src/appsim/CMakeFiles/netsel_appsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netsel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netsel_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netsel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
