file(REMOVE_RECURSE
  "CMakeFiles/test_appsim_contention.dir/test_appsim_contention.cpp.o"
  "CMakeFiles/test_appsim_contention.dir/test_appsim_contention.cpp.o.d"
  "test_appsim_contention"
  "test_appsim_contention.pdb"
  "test_appsim_contention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appsim_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
