# Empty compiler generated dependencies file for test_appsim_contention.
# This may be replaced when dependencies are built.
