file(REMOVE_RECURSE
  "CMakeFiles/test_generators_topo.dir/test_generators_topo.cpp.o"
  "CMakeFiles/test_generators_topo.dir/test_generators_topo.cpp.o.d"
  "test_generators_topo"
  "test_generators_topo.pdb"
  "test_generators_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generators_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
