file(REMOVE_RECURSE
  "CMakeFiles/test_load_generators.dir/test_load_generators.cpp.o"
  "CMakeFiles/test_load_generators.dir/test_load_generators.cpp.o.d"
  "test_load_generators"
  "test_load_generators.pdb"
  "test_load_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
