# Empty dependencies file for test_load_generators.
# This may be replaced when dependencies are built.
