file(REMOVE_RECURSE
  "CMakeFiles/test_owner_attribution.dir/test_owner_attribution.cpp.o"
  "CMakeFiles/test_owner_attribution.dir/test_owner_attribution.cpp.o.d"
  "test_owner_attribution"
  "test_owner_attribution.pdb"
  "test_owner_attribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_owner_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
