# Empty compiler generated dependencies file for test_owner_attribution.
# This may be replaced when dependencies are built.
