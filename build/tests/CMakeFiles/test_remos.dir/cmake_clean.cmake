file(REMOVE_RECURSE
  "CMakeFiles/test_remos.dir/test_remos.cpp.o"
  "CMakeFiles/test_remos.dir/test_remos.cpp.o.d"
  "test_remos"
  "test_remos.pdb"
  "test_remos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
