# Empty compiler generated dependencies file for test_remos.
# This may be replaced when dependencies are built.
