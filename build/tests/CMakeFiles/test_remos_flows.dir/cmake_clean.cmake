file(REMOVE_RECURSE
  "CMakeFiles/test_remos_flows.dir/test_remos_flows.cpp.o"
  "CMakeFiles/test_remos_flows.dir/test_remos_flows.cpp.o.d"
  "test_remos_flows"
  "test_remos_flows.pdb"
  "test_remos_flows[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remos_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
