# Empty compiler generated dependencies file for test_remos_flows.
# This may be replaced when dependencies are built.
