file(REMOVE_RECURSE
  "CMakeFiles/test_select_balanced.dir/test_select_balanced.cpp.o"
  "CMakeFiles/test_select_balanced.dir/test_select_balanced.cpp.o.d"
  "test_select_balanced"
  "test_select_balanced.pdb"
  "test_select_balanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_select_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
