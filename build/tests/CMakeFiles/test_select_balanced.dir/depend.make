# Empty dependencies file for test_select_balanced.
# This may be replaced when dependencies are built.
