file(REMOVE_RECURSE
  "CMakeFiles/test_select_bandwidth.dir/test_select_bandwidth.cpp.o"
  "CMakeFiles/test_select_bandwidth.dir/test_select_bandwidth.cpp.o.d"
  "test_select_bandwidth"
  "test_select_bandwidth.pdb"
  "test_select_bandwidth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_select_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
