# Empty compiler generated dependencies file for test_select_bandwidth.
# This may be replaced when dependencies are built.
