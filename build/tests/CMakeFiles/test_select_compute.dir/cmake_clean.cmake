file(REMOVE_RECURSE
  "CMakeFiles/test_select_compute.dir/test_select_compute.cpp.o"
  "CMakeFiles/test_select_compute.dir/test_select_compute.cpp.o.d"
  "test_select_compute"
  "test_select_compute.pdb"
  "test_select_compute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_select_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
