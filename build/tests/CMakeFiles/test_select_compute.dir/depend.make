# Empty dependencies file for test_select_compute.
# This may be replaced when dependencies are built.
