file(REMOVE_RECURSE
  "CMakeFiles/test_select_general.dir/test_select_general.cpp.o"
  "CMakeFiles/test_select_general.dir/test_select_general.cpp.o.d"
  "test_select_general"
  "test_select_general.pdb"
  "test_select_general[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_select_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
