# Empty compiler generated dependencies file for test_select_general.
# This may be replaced when dependencies are built.
