file(REMOVE_RECURSE
  "CMakeFiles/test_select_properties.dir/test_select_properties.cpp.o"
  "CMakeFiles/test_select_properties.dir/test_select_properties.cpp.o.d"
  "test_select_properties"
  "test_select_properties.pdb"
  "test_select_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_select_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
