# Empty dependencies file for test_select_properties.
# This may be replaced when dependencies are built.
