file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_host.dir/test_weighted_host.cpp.o"
  "CMakeFiles/test_weighted_host.dir/test_weighted_host.cpp.o.d"
  "test_weighted_host"
  "test_weighted_host.pdb"
  "test_weighted_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
