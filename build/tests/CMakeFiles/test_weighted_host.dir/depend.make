# Empty dependencies file for test_weighted_host.
# This may be replaced when dependencies are built.
