// Airshed pollution-modelling campaign: run several 6-hour Airshed
// simulations back to back on the shared testbed, selecting nodes fresh
// before each run through the application-spec interface (§2.1) — the
// workflow a scientist would use on the CMU testbed. Demonstrates:
//   - AppSpec with a loosely-synchronous pattern and 5-node requirement,
//   - NodeSelectionService placement from live Remos measurements,
//   - per-run placement changing as background conditions move.

#include <cstdio>

#include "api/service.hpp"
#include "appsim/loosely_synchronous.hpp"
#include "appsim/presets.hpp"
#include "exp/experiment.hpp"
#include "load/load_generator.hpp"
#include "load/traffic_generator.hpp"
#include "topo/generators.hpp"
#include "util/table.hpp"

using namespace netsel;

int main() {
  sim::NetworkSim net(topo::testbed());
  util::Rng master(2026);

  // Background activity per the paper's §4.2 generators.
  exp::Scenario scen = exp::table1_scenario(true, true);
  load::HostLoadGenerator loadgen(net, scen.load, master.fork("load"));
  load::TrafficGenerator trafficgen(net, scen.traffic, master.fork("traffic"));
  remos::Remos remos(net);
  loadgen.start();
  trafficgen.start();
  remos.start();
  net.sim().run_until(600.0);

  api::NodeSelectionService service(remos);
  api::AppSpec spec =
      api::AppSpec::spmd("airshed", 5, api::AppPattern::LooselySynchronous);
  spec.groups[0].required_tags = {"alpha"};  // Airshed is built for Alphas

  std::printf("== Airshed campaign: 5 runs with per-run node selection ==\n\n");
  util::TextTable t;
  t.header({"run", "selected nodes", "execution time"});
  for (int run = 0; run < 5; ++run) {
    auto placement = service.place(spec);
    if (!placement.feasible) {
      std::fprintf(stderr, "placement failed: %s\n", placement.note.c_str());
      return 1;
    }
    auto nodes = placement.flat();
    std::string names;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i) names += " ";
      names += net.topology().node(nodes[i]).name;
    }

    appsim::LooselySynchronousApp app(net, appsim::airshed());
    app.start(nodes);
    while (!app.finished()) {
      if (!net.sim().step()) break;
    }
    t.row({std::to_string(run + 1), names, util::fmt(app.elapsed(), 1) + " s"});
    // Let the network drift before the next campaign run.
    net.sim().run_until(net.sim().now() + 120.0);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("(150 s is the unloaded reference; placements move as load and\n"
              "traffic shift between runs.)\n");
  return 0;
}
