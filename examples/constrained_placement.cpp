// Constrained placement through the application-spec interface (§2.1 and
// §3.3): a client-server imaging service where
//   - the server group (1 node) must run on specific licensed hosts and is
//     placed first (higher priority),
//   - the client group (3 nodes) requires the "alpha" architecture tag,
//   - the application demands at least 50 Mbps between any selected nodes
//     and at least 40% available CPU ("fixed computation and communication
//     requirements").
// Shows a feasible placement under light load, then how the fixed
// requirements make the placement infeasible when the testbed saturates.

#include <cstdio>

#include "api/service.hpp"
#include "load/load_generator.hpp"
#include "topo/generators.hpp"

using namespace netsel;

namespace {

api::AppSpec imaging_service() {
  api::AppSpec spec;
  spec.name = "imaging-service";
  spec.pattern = api::AppPattern::ClientServer;
  api::NodeGroup server;
  server.name = "server";
  server.count = 1;
  server.allowed_hosts = {"m-7", "m-8"};  // licence lives on these hosts
  server.placement_priority = 10;
  api::NodeGroup clients;
  clients.name = "clients";
  clients.count = 3;
  clients.required_tags = {"alpha"};
  spec.groups = {server, clients};
  spec.min_bw_bps = 50e6;
  spec.min_cpu_fraction = 0.40;
  return spec;
}

void show(const sim::NetworkSim& net, const api::Placement& p) {
  if (!p.feasible) {
    std::printf("  INFEASIBLE: %s\n", p.note.c_str());
    return;
  }
  std::printf("  server:  %s\n",
              net.topology().node(p.group_nodes[0][0]).name.c_str());
  std::printf("  clients:");
  for (auto n : p.group_nodes[1])
    std::printf(" %s", net.topology().node(n).name.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  sim::NetworkSim net(topo::testbed());
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(5.0);
  api::NodeSelectionService service(remos);
  auto spec = imaging_service();

  std::printf("== Constrained client-server placement ==\n\n");
  std::printf("idle testbed:\n");
  show(net, service.place(spec));

  // Saturate the whole testbed with competing jobs: every node ends up
  // below the 40% CPU floor and placement must be refused, not degraded.
  for (auto n : net.topology().compute_nodes()) {
    net.host(n).submit(1e9, sim::kBackgroundOwner);
    net.host(n).submit(1e9, sim::kBackgroundOwner);
  }
  net.sim().run_until(900.0);
  remos.monitor().poll_once();
  std::printf("\nafter saturating every host (load average ~2):\n");
  show(net, service.place(spec));

  // Relax the CPU floor: the spec becomes feasible again, taking the least
  // bad nodes.
  spec.min_cpu_fraction = 0.0;
  std::printf("\nsame conditions with the CPU floor removed:\n");
  show(net, service.place(spec));
  return 0;
}
