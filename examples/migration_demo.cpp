// Dynamic migration demo (paper §3.3): a long-running loosely-synchronous
// job starts on the best available nodes; 5 minutes in, heavy external jobs
// land on two of them. The MigrationController, querying Remos with the
// application's own load excluded, detects the degradation and moves the
// job (paying a state-transfer cost) — and the run finishes far sooner
// than it would have on the original nodes.

#include <cstdio>

#include "api/migration.hpp"
#include "remos/remos.hpp"
#include "select/algorithms.hpp"
#include "sim/network_sim.hpp"
#include "topo/generators.hpp"

using namespace netsel;

namespace {

appsim::LooselySyncConfig job() {
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 900;
  cfg.phases = {appsim::PhaseSpec{1.0, 1e6, appsim::CommPattern::AllToAll}};
  return cfg;
}

double run(bool with_migration) {
  sim::NetworkSim net(topo::testbed());
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(10.0);

  select::SelectionOptions sel;
  sel.num_nodes = 4;
  auto chosen = select::select_balanced(remos.snapshot(), sel);

  appsim::LooselySynchronousApp app(net, job());
  app.start(chosen.nodes);

  api::MigrationPolicy policy;
  policy.check_interval = 20.0;
  policy.improvement_threshold = 0.5;
  policy.state_bytes_per_node = 16e6;
  policy.cooldown = 60.0;
  api::MigrationController controller(remos, app, policy, sel);
  if (with_migration) controller.start();

  // The hotspot: at t=300 two of the job's nodes each receive two large
  // competing jobs that persist for the rest of the run.
  net.sim().schedule_at(300.0, [&net, &app] {
    for (std::size_t i = 0; i < 2; ++i) {
      net.host(app.placement()[i]).submit(1e9, sim::kBackgroundOwner);
      net.host(app.placement()[i]).submit(1e9, sim::kBackgroundOwner);
    }
  });

  while (!app.finished() && net.sim().step()) {
  }
  if (with_migration) {
    std::printf("  migrations triggered: %d (job moved to ",
                controller.migrations_triggered());
    for (auto n : app.placement())
      std::printf("%s ", net.topology().node(n).name.c_str());
    std::printf(")\n");
  }
  return app.elapsed();
}

}  // namespace

int main() {
  std::printf("== Dynamic migration of a long-running job ==\n");
  std::printf("900 iterations (~15 min unloaded); hotspot lands on 2 of its "
              "4 nodes at t=300 s\n\n");
  std::printf("without migration:\n");
  double fixed = run(false);
  std::printf("  completion: %.1f s\n\n", fixed);
  std::printf("with MigrationController:\n");
  double moved = run(true);
  std::printf("  completion: %.1f s\n\n", moved);
  std::printf("improvement: %.1f%%\n", (fixed - moved) / fixed * 100.0);
  return 0;
}
