// Magnetic-resonance-imaging task farm (the paper's third application):
// a master distributes per-image processing tasks to slaves, which is
// "a master-slave protocol ... that automatically adapts if a compute or
// communication step slows down" (§4.3). This example shows that
// adaptivity directly: one slave's host is loaded mid-run and the farm
// shifts work to the others — then contrasts a placement chosen by the
// balanced algorithm with one that includes a known-busy node.

#include <cstdio>

#include "appsim/master_slave.hpp"
#include "appsim/presets.hpp"
#include "remos/remos.hpp"
#include "select/algorithms.hpp"
#include "sim/network_sim.hpp"
#include "topo/generators.hpp"
#include "util/table.hpp"

using namespace netsel;

namespace {

void report(const sim::NetworkSim& net, const appsim::MasterSlaveApp& app,
            const std::vector<topo::NodeId>& nodes) {
  std::printf("  master %s; per-slave task counts:",
              net.topology().node(nodes[0]).name.c_str());
  const auto& per = app.per_slave_completed();
  for (std::size_t s = 0; s < per.size(); ++s) {
    std::printf("  %s=%d", net.topology().node(nodes[s + 1]).name.c_str(),
                per[s]);
  }
  std::printf("\n  total time: %.1f s\n\n", app.elapsed());
}

}  // namespace

int main() {
  std::printf("== MRI task farm (epi dataset, 240 images, 3 slaves) ==\n\n");

  // --- Run 1: idle testbed, farm balances evenly. ---
  {
    sim::NetworkSim net(topo::testbed());
    auto cfg = appsim::mri();
    appsim::MasterSlaveApp app(net, cfg);
    std::vector<topo::NodeId> nodes;
    for (const char* n : {"m-1", "m-2", "m-3", "m-4"})
      nodes.push_back(net.topology().find_node(n).value());
    app.start(nodes);
    while (!app.finished() && net.sim().step()) {
    }
    std::printf("idle testbed:\n");
    report(net, app, nodes);
  }

  // --- Run 2: slave m-4 gets hit by external load mid-run; the farm
  // adapts by itself (no migration needed). ---
  {
    sim::NetworkSim net(topo::testbed());
    appsim::MasterSlaveApp app(net, appsim::mri());
    std::vector<topo::NodeId> nodes;
    for (const char* n : {"m-1", "m-2", "m-3", "m-4"})
      nodes.push_back(net.topology().find_node(n).value());
    net.sim().schedule_at(120.0, [&] {
      // Two long jobs land on m-4 and stay for the rest of the run.
      net.host(nodes[3]).submit(1e9, sim::kBackgroundOwner);
      net.host(nodes[3]).submit(1e9, sim::kBackgroundOwner);
    });
    app.start(nodes);
    while (!app.finished() && net.sim().step()) {
    }
    std::printf("m-4 loaded 3x from t=120 s (farm self-balances):\n");
    report(net, app, nodes);
  }

  // --- Run 3: node selection avoids the busy node up front. ---
  {
    sim::NetworkSim net(topo::testbed());
    auto m4 = net.topology().find_node("m-4").value();
    net.host(m4).submit(1e9, sim::kBackgroundOwner);
    net.host(m4).submit(1e9, sim::kBackgroundOwner);
    remos::Remos remos(net);
    net.sim().run_until(600.0);
    remos.start();
    select::SelectionOptions opt;
    opt.num_nodes = 4;
    auto chosen = select::select_balanced(remos.snapshot(), opt);
    appsim::MasterSlaveApp app(net, appsim::mri());
    app.start(chosen.nodes);
    while (!app.finished() && net.sim().step()) {
    }
    std::printf("automatic selection with m-4 already busy:\n");
    report(net, app, chosen.nodes);
  }
  return 0;
}
