// netsel_cli — node selection from the command line.
//
// Reads a topology description (see topo/parse.hpp for the format), applies
// dynamic availability overrides, and runs the selection procedures —
// usable as a standalone placement tool for any network you can describe.
//
// Usage:
//   netsel_cli --topology FILE --nodes M [options]
//
// Options:
//   --criterion compute|bandwidth|balanced|latency   (default balanced)
//   --load NODE=LOADAVG          repeatable: set a node's load average
//   --bw LINKNAME=BW             repeatable: set a link's available bw
//                                (e.g. --bw m-1--panama=20Mbps)
//   --min-bw BW                  fixed bandwidth requirement (§3.3)
//   --min-cpu FRACTION           fixed cpu requirement (§3.3)
//   --cpu-priority K / --bw-priority K               (§3.3)
//   --max-latency T              latency ceiling, e.g. 5ms (extension)
//   --exhaustive                 exhaustive Fig. 3 sweep variant
//   --dot                        emit Graphviz DOT with selection highlighted
//
// Example:
//   netsel_cli --topology testbed.topo --nodes 4 --load m-16=2.0
//              --bw suez--m-18=5Mbps --criterion balanced --dot

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"
#include "select/latency.hpp"
#include "select/objective.hpp"
#include "topo/dot.hpp"
#include "topo/parse.hpp"

using namespace netsel;

namespace {

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "netsel_cli: %s\n", message.c_str());
  std::exit(1);
}

std::optional<topo::LinkId> find_link(const topo::TopologyGraph& g,
                                      const std::string& name) {
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    if (g.link(static_cast<topo::LinkId>(l)).name == name)
      return static_cast<topo::LinkId>(l);
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology_path;
  std::string criterion = "balanced";
  int m = 0;
  std::vector<std::pair<std::string, double>> loads;
  std::vector<std::pair<std::string, double>> bws;
  select::SelectionOptions opt;
  double max_latency = -1.0;
  bool dot = false;

  auto next_arg = [&](int& i) -> std::string {
    if (++i >= argc) die("missing value after " + std::string(argv[i - 1]));
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    try {
      if (a == "--topology") {
        topology_path = next_arg(i);
      } else if (a == "--nodes") {
        m = std::stoi(next_arg(i));
      } else if (a == "--criterion") {
        criterion = next_arg(i);
      } else if (a == "--load") {
        std::string kv = next_arg(i);
        auto eq = kv.find('=');
        if (eq == std::string::npos) die("--load needs NODE=LOADAVG");
        loads.emplace_back(kv.substr(0, eq), std::stod(kv.substr(eq + 1)));
      } else if (a == "--bw") {
        std::string kv = next_arg(i);
        auto eq = kv.find('=');
        if (eq == std::string::npos) die("--bw needs LINKNAME=BW");
        bws.emplace_back(kv.substr(0, eq),
                         topo::parse_bandwidth(kv.substr(eq + 1)));
      } else if (a == "--min-bw") {
        opt.min_bw_bps = topo::parse_bandwidth(next_arg(i));
      } else if (a == "--min-cpu") {
        opt.min_cpu_fraction = std::stod(next_arg(i));
      } else if (a == "--cpu-priority") {
        opt.cpu_priority = std::stod(next_arg(i));
      } else if (a == "--bw-priority") {
        opt.bw_priority = std::stod(next_arg(i));
      } else if (a == "--max-latency") {
        max_latency = topo::parse_duration(next_arg(i));
      } else if (a == "--exhaustive") {
        opt.exhaustive_balanced = true;
      } else if (a == "--dot") {
        dot = true;
      } else {
        die("unknown option '" + a + "' (see the header of netsel_cli.cpp)");
      }
    } catch (const std::exception& e) {
      die("bad argument for " + a + ": " + e.what());
    }
  }
  if (topology_path.empty()) die("--topology is required");
  if (m < 1) die("--nodes M (>= 1) is required");

  std::ifstream in(topology_path);
  if (!in) die("cannot open " + topology_path);
  std::stringstream buffer;
  buffer << in.rdbuf();

  topo::TopologyGraph g;
  try {
    g = topo::parse_topology(buffer.str());
  } catch (const std::exception& e) {
    die(topology_path + ": " + e.what());
  }

  remos::NetworkSnapshot snap(g);
  for (const auto& [name, load] : loads) {
    auto n = g.find_node(name);
    if (!n) die("--load: unknown node '" + name + "'");
    snap.set_loadavg(*n, load);
  }
  for (const auto& [name, bw] : bws) {
    auto l = find_link(g, name);
    if (!l) die("--bw: unknown link '" + name + "' (names are a--b or the link's name= option)");
    snap.set_bw(*l, bw);
  }

  opt.num_nodes = m;
  select::SelectionResult result;
  try {
    if (criterion == "compute") {
      result = select::select_max_compute(snap, opt);
    } else if (criterion == "bandwidth") {
      result = select::select_max_bandwidth(snap, opt);
    } else if (criterion == "balanced") {
      result = max_latency >= 0.0
                   ? select::select_balanced_latency_bound(snap, opt, max_latency)
                   : select::select_balanced(snap, opt);
    } else if (criterion == "latency") {
      result = select::select_min_latency(snap, opt);
    } else {
      die("unknown criterion '" + criterion + "'");
    }
  } catch (const std::exception& e) {
    die(std::string("selection failed: ") + e.what());
  }

  if (!result.feasible) {
    std::fprintf(stderr, "infeasible: %s\n", result.note.c_str());
    return 2;
  }
  std::printf("selected %zu node(s):", result.nodes.size());
  for (auto n : result.nodes) std::printf(" %s", g.node(n).name.c_str());
  std::printf("\n");
  auto ev = select::evaluate_set(snap, result.nodes, opt);
  std::printf("min cpu availability:      %.3f\n", ev.min_cpu);
  if (result.nodes.size() > 1) {
    std::printf("min pairwise bandwidth:    %.1f Mbps (fraction %.3f)\n",
                ev.min_pair_bw / 1e6, ev.min_pair_bw_fraction);
    std::printf("max pairwise latency:      %.3f ms\n",
                ev.max_pair_latency * 1e3);
  }
  std::printf("objective value:           %.4g\n", result.objective);
  if (!result.note.empty()) std::printf("note: %s\n", result.note.c_str());
  if (dot) {
    topo::DotOptions d;
    d.highlight = result.nodes;
    std::printf("\n%s", topo::to_dot(g, d).c_str());
  }
  return 0;
}
