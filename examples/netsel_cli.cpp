// netsel_cli — node selection from the command line.
//
// Reads a topology description (see topo/parse.hpp for the format), applies
// dynamic availability overrides, and runs the selection procedures —
// usable as a standalone placement tool for any network you can describe.
//
// Usage:
//   netsel_cli --topology FILE --nodes M [options]
//   netsel_cli --generate SPEC [--emit-topo | --nodes M [options]]
//   netsel_cli obs [--jobs N] [--seed S] [--tail K]
//              [--timeseries-json P] [--timeseries-csv P] [--job-trace P]
//              [--chrome-trace P]
//
// The `obs` subcommand runs a small deterministic scheduler scenario on a
// 128-host fat-tree with the full telemetry stack attached (time-series
// recorder, per-job causal traces, flight recorder), prints a summary and
// the flight-recorder tail, and optionally writes the artifacts — the
// quickest way to see docs/OBSERVABILITY.md's formats without a bench run.
//
// Options:
//   --generate SPEC              synthesise a topology instead of reading
//                                one (topo/synthetic.hpp). SPEC is
//                                FAMILY[:key=value,...] with families
//                                  fat-tree   keys hosts, ports, oversub, seed
//                                  campus-wan keys campuses, buildings,
//                                             hosts, seed
//                                  core-edge  keys cores, edges, hosts, seed
//                                e.g. --generate fat-tree:hosts=512,oversub=3
//   --emit-topo                  print the topology in .topo format (see
//                                docs/TOPO_FORMAT.md) and exit; combine with
//                                --generate to materialise synthetic fabrics
//                                (examples/topologies/fat_tree_small.topo is
//                                made this way)
//   --criterion compute|bandwidth|balanced|latency   (default balanced)
//   --load NODE=LOADAVG          repeatable: set a node's load average
//   --bw LINKNAME=BW             repeatable: set a link's available bw
//                                (e.g. --bw m-1--panama=20Mbps)
//   --min-bw BW                  fixed bandwidth requirement (§3.3)
//   --min-cpu FRACTION           fixed cpu requirement (§3.3)
//   --cpu-priority K / --bw-priority K               (§3.3)
//   --max-latency T              latency ceiling, e.g. 5ms (extension)
//   --exhaustive                 exhaustive Fig. 3 sweep variant
//   --dot                        emit Graphviz DOT with selection highlighted
//
// Example:
//   netsel_cli --topology testbed.topo --nodes 4 --load m-16=2.0
//              --bw suez--m-18=5Mbps --criterion balanced --dot

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/jobtrace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "remos/snapshot.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "select/algorithms.hpp"
#include "select/latency.hpp"
#include "select/objective.hpp"
#include "topo/dot.hpp"
#include "topo/parse.hpp"
#include "topo/synthetic.hpp"

using namespace netsel;

namespace {

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "netsel_cli: %s\n", message.c_str());
  std::exit(1);
}

std::optional<topo::LinkId> find_link(const topo::TopologyGraph& g,
                                      const std::string& name) {
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    if (g.link(static_cast<topo::LinkId>(l)).name == name)
      return static_cast<topo::LinkId>(l);
  }
  return std::nullopt;
}

/// Parse a --generate SPEC (FAMILY[:key=value,...]) and build the topology.
topo::TopologyGraph generate_topology(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  std::vector<std::pair<std::string, double>> kv;
  if (colon != std::string::npos) {
    std::stringstream rest(spec.substr(colon + 1));
    std::string item;
    while (std::getline(rest, item, ',')) {
      const auto eq = item.find('=');
      if (eq == std::string::npos)
        die("--generate: expected key=value, got '" + item + "'");
      kv.emplace_back(item.substr(0, eq), std::stod(item.substr(eq + 1)));
    }
  }
  auto take = [&](const char* key, double fallback) {
    for (auto& [k, v] : kv)
      if (k == key) {
        k.clear();  // consumed
        return v;
      }
    return fallback;
  };
  topo::TopologyGraph g;
  if (family == "fat-tree") {
    g = topo::fat_tree(topo::fat_tree_for_hosts(
        static_cast<int>(take("hosts", 64)),
        static_cast<int>(take("ports", 48)), take("oversub", 3.0),
        static_cast<std::uint64_t>(take("seed", 1))));
  } else if (family == "campus-wan") {
    topo::CampusWanOptions o;
    o.campuses = static_cast<int>(take("campuses", o.campuses));
    o.buildings_per_campus =
        static_cast<int>(take("buildings", o.buildings_per_campus));
    o.hosts_per_building =
        static_cast<int>(take("hosts", o.hosts_per_building));
    o.seed = static_cast<std::uint64_t>(take("seed", 1));
    g = topo::campus_wan(o);
  } else if (family == "core-edge") {
    topo::RandomCoreEdgeOptions o;
    o.core_switches = static_cast<int>(take("cores", o.core_switches));
    o.edge_switches = static_cast<int>(take("edges", o.edge_switches));
    o.hosts = static_cast<int>(take("hosts", o.hosts));
    o.seed = static_cast<std::uint64_t>(take("seed", 1));
    g = topo::random_core_edge(o);
  } else {
    die("--generate: unknown family '" + family +
        "' (fat-tree, campus-wan, core-edge)");
  }
  for (const auto& [k, v] : kv)
    if (!k.empty()) die("--generate: unknown key '" + k + "' for " + family);
  return g;
}

/// `netsel_cli obs`: run a deterministic scheduler scenario with the full
/// telemetry stack attached, print a summary plus the flight-recorder tail,
/// and optionally write the artifacts.
int run_obs(int argc, char** argv) {
  int jobs = 40;
  std::uint64_t seed = 4242;
  std::size_t tail = 16;
  const char* ts_json = nullptr;
  const char* ts_csv = nullptr;
  const char* jt_path = nullptr;
  const char* trace_path = nullptr;
  auto next_arg = [&](int& i) -> const char* {
    if (++i >= argc) die("missing value after " + std::string(argv[i - 1]));
    return argv[i];
  };
  for (int i = 2; i < argc; ++i) {
    try {
      if (std::strcmp(argv[i], "--jobs") == 0) {
        jobs = std::stoi(next_arg(i));
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        seed = std::stoull(next_arg(i));
      } else if (std::strcmp(argv[i], "--tail") == 0) {
        tail = static_cast<std::size_t>(std::stoul(next_arg(i)));
      } else if (std::strcmp(argv[i], "--timeseries-json") == 0) {
        ts_json = next_arg(i);
      } else if (std::strcmp(argv[i], "--timeseries-csv") == 0) {
        ts_csv = next_arg(i);
      } else if (std::strcmp(argv[i], "--job-trace") == 0) {
        jt_path = next_arg(i);
      } else if (std::strcmp(argv[i], "--chrome-trace") == 0) {
        trace_path = next_arg(i);
      } else {
        die("obs: unknown option '" + std::string(argv[i]) + "'");
      }
    } catch (const std::exception& e) {
      die("obs: bad argument for " + std::string(argv[i - 1]) + ": " +
          e.what());
    }
  }
  if (jobs < 1) die("obs: --jobs must be >= 1");

  auto g = topo::fat_tree(topo::fat_tree_for_hosts(128, 16, 2.0, seed));
  obs::TimeSeriesRecorder ts(1.0);
  obs::JobTraceRecorder jt;

  sched::SchedulerConfig cfg;
  cfg.placement_lanes = 2;
  cfg.backfill_window = 6;
  cfg.schedule_interval = 1.0;
  cfg.max_queue_depth = 24;
  cfg.queue_timeout = 600.0;
  cfg.rebalance_on_release = true;
  cfg.rebalance_budget = 1;
  cfg.timeseries = &ts;
  cfg.job_trace = &jt;
  sched::SchedulerService sched(g, cfg);
  remos::apply_synthetic_load(sched.snapshot(), seed + 7);
  sched::WorkloadConfig w;
  w.arrival_rate = 2.0;
  w.seed = seed;
  sched::JobStream stream(w);
  stream.feed(sched, jobs);
  sched.drain();

  const sched::SchedulerStats st = sched.stats();
  std::printf(
      "obs scenario: %d jobs on a %zu-node fat-tree, seed %llu\n"
      "  placed %llu, completed %llu, rejected %llu, timed out %llu, "
      "conflicts %llu\n"
      "  state digest      %016llx\n"
      "  time series       %zu series, %zu samples (cadence %.1fs, "
      "%llu dropped), digest %016llx\n"
      "  job traces        %zu traces, %zu spans, digest %016llx\n"
      "  flight recorder   %llu events recorded (capacity %zu)\n\n",
      jobs, g.node_count(), static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(st.placed),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.timed_out),
      static_cast<unsigned long long>(st.conflicts),
      static_cast<unsigned long long>(sched.state_digest()), ts.series_count(),
      ts.samples(), ts.cadence(),
      static_cast<unsigned long long>(ts.dropped()),
      static_cast<unsigned long long>(ts.digest()), jt.traces(), jt.spans(),
      static_cast<unsigned long long>(jt.digest()),
      static_cast<unsigned long long>(obs::FlightRecorder::global().recorded()),
      obs::FlightRecorder::global().capacity());
  std::printf("flight-recorder tail (last %zu):\n", tail);
  obs::FlightRecorder::global().dump(std::cout, tail);

  auto write_to = [&](const char* path, auto&& fn) {
    if (!path) return;
    std::ofstream f(path);
    if (!f) die("obs: cannot open " + std::string(path) + " for writing");
    fn(f);
    std::fprintf(stderr, "wrote %s\n", path);
  };
  write_to(ts_json, [&](std::ostream& os) { ts.write_json(os); });
  write_to(ts_csv, [&](std::ostream& os) { ts.write_csv(os); });
  write_to(jt_path, [&](std::ostream& os) { jt.write_jsonl(os); });
  write_to(trace_path, [&](std::ostream& os) {
    obs::write_chrome_trace(obs::Registry::global(), os, &ts, &jt);
  });
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "obs") == 0) return run_obs(argc, argv);
  std::string topology_path;
  std::string generate_spec;
  std::string criterion = "balanced";
  bool emit_topo = false;
  int m = 0;
  std::vector<std::pair<std::string, double>> loads;
  std::vector<std::pair<std::string, double>> bws;
  select::SelectionOptions opt;
  double max_latency = -1.0;
  bool dot = false;

  auto next_arg = [&](int& i) -> std::string {
    if (++i >= argc) die("missing value after " + std::string(argv[i - 1]));
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    try {
      if (a == "--topology") {
        topology_path = next_arg(i);
      } else if (a == "--generate") {
        generate_spec = next_arg(i);
      } else if (a == "--emit-topo") {
        emit_topo = true;
      } else if (a == "--nodes") {
        m = std::stoi(next_arg(i));
      } else if (a == "--criterion") {
        criterion = next_arg(i);
      } else if (a == "--load") {
        std::string kv = next_arg(i);
        auto eq = kv.find('=');
        if (eq == std::string::npos) die("--load needs NODE=LOADAVG");
        loads.emplace_back(kv.substr(0, eq), std::stod(kv.substr(eq + 1)));
      } else if (a == "--bw") {
        std::string kv = next_arg(i);
        auto eq = kv.find('=');
        if (eq == std::string::npos) die("--bw needs LINKNAME=BW");
        bws.emplace_back(kv.substr(0, eq),
                         topo::parse_bandwidth(kv.substr(eq + 1)));
      } else if (a == "--min-bw") {
        opt.min_bw_bps = topo::parse_bandwidth(next_arg(i));
      } else if (a == "--min-cpu") {
        opt.min_cpu_fraction = std::stod(next_arg(i));
      } else if (a == "--cpu-priority") {
        opt.cpu_priority = std::stod(next_arg(i));
      } else if (a == "--bw-priority") {
        opt.bw_priority = std::stod(next_arg(i));
      } else if (a == "--max-latency") {
        max_latency = topo::parse_duration(next_arg(i));
      } else if (a == "--exhaustive") {
        opt.exhaustive_balanced = true;
      } else if (a == "--dot") {
        dot = true;
      } else {
        die("unknown option '" + a + "' (see the header of netsel_cli.cpp)");
      }
    } catch (const std::exception& e) {
      die("bad argument for " + a + ": " + e.what());
    }
  }
  if (topology_path.empty() == generate_spec.empty())
    die("exactly one of --topology / --generate is required");
  if (!emit_topo && m < 1) die("--nodes M (>= 1) is required");

  topo::TopologyGraph g;
  if (!generate_spec.empty()) {
    g = generate_topology(generate_spec);
  } else {
    std::ifstream in(topology_path);
    if (!in) die("cannot open " + topology_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      g = topo::parse_topology(buffer.str());
    } catch (const std::exception& e) {
      die(topology_path + ": " + e.what());
    }
  }
  if (emit_topo) {
    std::printf("%s", topo::format_topology(g).c_str());
    return 0;
  }

  remos::NetworkSnapshot snap(g);
  for (const auto& [name, load] : loads) {
    auto n = g.find_node(name);
    if (!n) die("--load: unknown node '" + name + "'");
    snap.set_loadavg(*n, load);
  }
  for (const auto& [name, bw] : bws) {
    auto l = find_link(g, name);
    if (!l) die("--bw: unknown link '" + name + "' (names are a--b or the link's name= option)");
    snap.set_bw(*l, bw);
  }

  opt.num_nodes = m;
  select::SelectionResult result;
  try {
    if (criterion == "compute") {
      result = select::select_max_compute(snap, opt);
    } else if (criterion == "bandwidth") {
      result = select::select_max_bandwidth(snap, opt);
    } else if (criterion == "balanced") {
      result = max_latency >= 0.0
                   ? select::select_balanced_latency_bound(snap, opt, max_latency)
                   : select::select_balanced(snap, opt);
    } else if (criterion == "latency") {
      result = select::select_min_latency(snap, opt);
    } else {
      die("unknown criterion '" + criterion + "'");
    }
  } catch (const std::exception& e) {
    die(std::string("selection failed: ") + e.what());
  }

  if (!result.feasible) {
    std::fprintf(stderr, "infeasible: %s\n", result.note.c_str());
    return 2;
  }
  std::printf("selected %zu node(s):", result.nodes.size());
  for (auto n : result.nodes) std::printf(" %s", g.node(n).name.c_str());
  std::printf("\n");
  auto ev = select::evaluate_set(snap, result.nodes, opt);
  std::printf("min cpu availability:      %.3f\n", ev.min_cpu);
  if (result.nodes.size() > 1) {
    std::printf("min pairwise bandwidth:    %.1f Mbps (fraction %.3f)\n",
                ev.min_pair_bw / 1e6, ev.min_pair_bw_fraction);
    std::printf("max pairwise latency:      %.3f ms\n",
                ev.max_pair_latency * 1e3);
  }
  std::printf("objective value:           %.4g\n", result.objective);
  if (!result.note.empty()) std::printf("note: %s\n", result.note.c_str());
  if (dot) {
    topo::DotOptions d;
    d.highlight = result.nodes;
    std::printf("\n%s", topo::to_dot(g, d).c_str());
  }
  return 0;
}
