// Choosing the number of nodes, not just the set (paper §3.4, "Variable
// number of execution nodes"): a strong-scaling FFT-like job divides 96
// cpu-seconds of work per iteration across m nodes but pays an all-to-all
// transpose whose cost grows with m. The advisor couples the balanced
// selection procedure with the performance model and sweeps m — then we
// *run* the simulated application at every m to verify the advice.

#include <cstdio>

#include "api/advisor.hpp"
#include "remos/remos.hpp"
#include "sim/network_sim.hpp"
#include "topo/generators.hpp"
#include "util/table.hpp"

using namespace netsel;

namespace {

appsim::LooselySyncConfig strong_scaling_fft(int m) {
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = m;
  cfg.iterations = 10;
  cfg.phases = {
      appsim::PhaseSpec{96.0 / m, 16e6, appsim::CommPattern::AllToAll}};
  return cfg;
}

double run_at(int m) {
  sim::NetworkSim net(topo::testbed());
  appsim::LooselySynchronousApp app(net, strong_scaling_fft(m));
  auto nodes = net.topology().compute_nodes();
  nodes.resize(static_cast<std::size_t>(m));
  app.start(nodes);
  while (!app.finished() && net.sim().step()) {
  }
  return app.elapsed();
}

}  // namespace

int main() {
  sim::NetworkSim net(topo::testbed());
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(5.0);
  auto snap = remos.snapshot();

  api::NodeCountOptions opt;
  opt.min_nodes = 2;
  opt.max_nodes = 16;
  auto choice = api::choose_node_count(
      std::function<appsim::LooselySyncConfig(int)>(strong_scaling_fft), snap,
      opt);
  if (!choice.feasible) {
    std::fprintf(stderr, "advisor found no feasible node count\n");
    return 1;
  }

  std::printf("== Node-count advisor: strong-scaling FFT on the testbed ==\n\n");
  util::TextTable t;
  t.header({"m", "predicted (s)", "simulated (s)", ""});
  for (int m = opt.min_nodes; m <= opt.max_nodes; ++m) {
    double predicted =
        choice.predictions[static_cast<std::size_t>(m - opt.min_nodes)];
    double simulated = run_at(m);
    t.row({std::to_string(m), util::fmt(predicted, 1),
           util::fmt(simulated, 1), m == choice.num_nodes ? "<- chosen" : ""});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("advisor chose m = %d predicting %.1f s\n", choice.num_nodes,
              choice.predicted_seconds);
  return 0;
}
