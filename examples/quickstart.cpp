// Quickstart: the full netsel pipeline in ~60 lines.
//
// 1. Build the paper's Fig. 4 testbed (18 Alphas, 3 routers) as a simulated
//    network.
// 2. Turn on background host load and network traffic (§4.2 generators).
// 3. Start the Remos monitor and query a logical-topology snapshot.
// 4. Select 4 nodes with the balanced algorithm (Fig. 3) and compare with a
//    random placement by running the FFT workload on both.

#include <cstdio>

#include "appsim/loosely_synchronous.hpp"
#include "appsim/presets.hpp"
#include "exp/experiment.hpp"
#include "load/load_generator.hpp"
#include "load/traffic_generator.hpp"
#include "remos/remos.hpp"
#include "select/algorithms.hpp"
#include "sim/network_sim.hpp"
#include "topo/generators.hpp"

using namespace netsel;

int main() {
  const std::uint64_t seed = 42;

  // One trial with automatic selection, one with random, same seed => same
  // background load and traffic in both runs.
  exp::AppCase fft = exp::fft_case();
  exp::Scenario scenario = exp::table1_scenario(/*load_on=*/true,
                                                /*traffic_on=*/true);

  exp::TrialResult automatic =
      exp::run_trial(fft, scenario, exp::Policy::AutoBalanced, seed);
  exp::TrialResult random =
      exp::run_trial(fft, scenario, exp::Policy::Random, seed);

  auto print = [](const char* label, const exp::TrialResult& r,
                  const topo::TopologyGraph& g) {
    std::printf("%-10s placed on {", label);
    for (std::size_t i = 0; i < r.nodes.size(); ++i)
      std::printf("%s%s", i ? ", " : "", g.node(r.nodes[i]).name.c_str());
    std::printf("}  ->  %.1f s\n", r.elapsed);
  };
  topo::TopologyGraph g = topo::testbed();
  print("automatic", automatic, g);
  print("random", random, g);
  std::printf("\nimprovement: %.1f%%\n",
              (random.elapsed - automatic.elapsed) / random.elapsed * 100.0);
  return 0;
}
