// Data-parallel pipeline placement (§3.4 custom execution patterns; the
// latency-throughput structure of the authors' pipeline work): a 4-stage
// video-analysis pipeline — capture -> detect -> track -> encode — streams
// 120 frames across the testbed while a bulk transfer congests part of it.
// Compares a naive placement (first four hosts, spanning the congested
// trunk) against select_pipeline's placement, and reports the
// latency/throughput numbers the pattern is about.

#include <cstdio>

#include "appsim/pipeline.hpp"
#include "load/traffic_generator.hpp"
#include "remos/remos.hpp"
#include "select/patterns.hpp"
#include "sim/network_sim.hpp"
#include "topo/generators.hpp"

using namespace netsel;

namespace {

appsim::PipelineConfig video() {
  appsim::PipelineConfig cfg;
  cfg.num_items = 120;
  // capture is cheap, detection is the hot stage, tracking medium,
  // encoding cheap; frames shrink as they move down the pipeline.
  cfg.stage_work = {0.2, 1.5, 0.8, 0.3};
  cfg.transfer_bytes = {6e6, 6e6, 2e6};
  return cfg;
}

struct Outcome {
  double elapsed;
  double latency;
  double throughput;
};

Outcome run(const std::vector<topo::NodeId>& nodes) {
  sim::NetworkSim net(topo::testbed());
  // The interference: a persistent bulk stream congesting panama--gibraltar.
  auto m1 = net.topology().find_node("m-1").value();
  auto m7 = net.topology().find_node("m-7").value();
  load::BulkStream stream(net, m1, m7);
  stream.start();

  appsim::PipelineApp app(net, video());
  app.start(nodes);
  while (!app.finished() && net.sim().step()) {
  }
  return Outcome{app.elapsed(), app.first_item_latency(), app.throughput()};
}

}  // namespace

int main() {
  sim::NetworkSim net(topo::testbed());
  auto m1 = net.topology().find_node("m-1").value();
  auto m7 = net.topology().find_node("m-7").value();
  load::BulkStream stream(net, m1, m7);
  stream.start();
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(20.0);

  auto cfg = video();
  select::PipelineOptions opt;
  opt.stage_work = cfg.stage_work;
  opt.transfer_bytes = cfg.transfer_bytes;
  auto placed = select::select_pipeline(remos.snapshot(), opt);
  if (!placed.feasible) {
    std::fprintf(stderr, "pipeline placement failed: %s\n", placed.note.c_str());
    return 1;
  }

  // Naive: the first four hosts — m-2 m-3 m-4 m-5 would stay on panama, so
  // make the naive chain span the congested trunk like an uninformed
  // round-robin allocator would.
  std::vector<topo::NodeId> naive;
  for (const char* n : {"m-2", "m-8", "m-3", "m-9"})
    naive.push_back(net.topology().find_node(n).value());

  std::printf("== 4-stage video pipeline under a bulk m-1 -> m-7 stream ==\n\n");
  auto show = [&](const char* label, const std::vector<topo::NodeId>& nodes,
                  const Outcome& o) {
    std::printf("%-18s stages:", label);
    for (auto n : nodes)
      std::printf(" %s", net.topology().node(n).name.c_str());
    std::printf("\n  %-16s total %.1f s, first-frame latency %.2f s, "
                "throughput %.2f frames/s\n\n",
                "", o.elapsed, o.latency, o.throughput);
  };
  show("pipeline-aware", placed.stage_nodes, run(placed.stage_nodes));
  std::printf("  (predicted steady-state period %.2f s/frame)\n\n",
              placed.predicted_period);
  show("naive cross-trunk", naive, run(naive));
  return 0;
}
