#!/usr/bin/env bash
# Regenerate BENCH_churn.json: build Release, run the incremental-delta
# churn benchmark on the 10k-host fat-tree (warm journal consumption vs
# full epoch invalidation per delta, then the reselect budget curve), and
# write the perf record to the repo root. The record carries the headline
# contract — warm evaluation after a single-link bandwidth delta at least
# 10x faster than a cold rebuild — plus the migrations-per-hour vs quality
# curve and the delta/repair counters. The full metrics document and Chrome
# trace land next to it (metrics_churn.json, trace_churn.json — load the
# latter in Perfetto).
#
# Usage: scripts/bench_churn_json.sh [reps]
#   reps  stream-length multiplier: 20*reps deltas per class and 8*reps
#         reselect steps per budget (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$(nproc)" --target bench_churn >/dev/null
./build/bench/bench_churn "$REPS" 4242 \
  --bench-json BENCH_churn.json \
  --metrics-json metrics_churn.json --chrome-trace trace_churn.json
python3 scripts/check_metrics_json.py --profile churn \
  metrics_churn.json trace_churn.json
cat BENCH_churn.json
