#!/usr/bin/env bash
# Regenerate BENCH_exact.json: build Release, run the optimality-gap
# certification grid (family x m in {4,8,16,32,64} x criterion plus the
# fixed-constraint x prioritization block) and write the gap record to the
# repo root. Every cell carries a sound bracket greedy <= optimum <= bound
# from the branch-and-bound selector under a deterministic node budget —
# marked exact when the search proved optimality, else with its stop
# reason. The record is bit-identical across machines (node budgets only,
# no wall-clock budgets), so the regression gate compares its cell and
# soundness fields directly. The metrics document lands next to it
# (metrics_exact.json: the select.bnb.* counters and B&B latency
# histogram).
#
# Usage: scripts/bench_exact_json.sh [budget]
#   budget  node-expansion budget per cell (default 20000)
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET="${1:-20000}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$(nproc)" --target bench_exact >/dev/null
./build/bench/bench_exact --budget "$BUDGET" \
  --bench-json BENCH_exact.json --metrics-json metrics_exact.json
python3 scripts/check_metrics_json.py --profile exact metrics_exact.json
cat BENCH_exact.json
