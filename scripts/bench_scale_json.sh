#!/usr/bin/env bash
# Regenerate BENCH_scale.json: build Release, run the synthetic-topology
# scalability grid (topology family x node count x criterion, pruned vs
# unpruned, cold vs warm), and write the perf record to the repo root. The
# record carries the headline contract — balanced m=64 on a ~1M-host
# three-level fat-tree, cold, single-threaded, under 1 s — plus the kernel
# comparison (graph/csr/flat scalar vs 64-wide batched bitset BFS), the
# warm_rows thread-scaling curve, and peak RSS / arena bytes. The full
# metrics document and Chrome trace land next to it (metrics_scale.json,
# trace_scale.json — load the latter in Perfetto).
#
# Usage: scripts/bench_scale_json.sh [reps] [threads]
#   reps     repetitions per cell after the cold call (default 3)
#   threads  top of the warm_rows worker sweep (default -1: one per
#            hardware thread; selection itself is always single-threaded)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"
THREADS="${2:--1}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$(nproc)" --target bench_scale >/dev/null
./build/bench/bench_scale "$REPS" 4242 --m 64 --huge --threads "$THREADS" \
  --bench-json BENCH_scale.json \
  --metrics-json metrics_scale.json --chrome-trace trace_scale.json
python3 scripts/check_metrics_json.py --profile scale \
  metrics_scale.json trace_scale.json
cat BENCH_scale.json
