#!/usr/bin/env bash
# Regenerate BENCH_scale.json: build Release, run the synthetic-topology
# scalability grid (topology family x node count x criterion, pruned vs
# unpruned, cold vs warm), and write the perf record to the repo root. The
# record carries the headline contract — balanced m=16 on a ~10,000-host
# fat-tree, cold, single-threaded, under 1 s — plus the warm_rows pool
# speedup and the select.prune.dropped counter. The full metrics document
# and Chrome trace land next to it (metrics_scale.json, trace_scale.json —
# load the latter in Perfetto).
#
# Usage: scripts/bench_scale_json.sh [reps] [threads]
#   reps     repetitions per cell after the cold call (default 3)
#   threads  worker count for the warm_rows comparison (default -1: one per
#            hardware thread; selection itself is always single-threaded)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"
THREADS="${2:--1}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$(nproc)" --target bench_scale >/dev/null
./build/bench/bench_scale "$REPS" 4242 --threads "$THREADS" \
  --bench-json BENCH_scale.json \
  --metrics-json metrics_scale.json --chrome-trace trace_scale.json
python3 scripts/check_metrics_json.py --profile scale \
  metrics_scale.json trace_scale.json
cat BENCH_scale.json
