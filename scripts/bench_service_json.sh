#!/usr/bin/env bash
# Regenerate BENCH_service.json: build Release, run the placement-service
# scheduler loop on the 10k-host fat-tree (open-loop Poisson arrivals of the
# appsim paper mix through the admit -> queue -> place -> release state
# machine, pooled and serial in one process), and write the perf record to
# the repo root. The record carries the headline contract — the pooled and
# serial runs bit-identical, with sustained placements/sec and p50/p99
# placement latency — plus job outcomes and the per-tenant degradation
# table. The metrics document and Chrome trace land next to it
# (metrics_service.json, trace_service.json — load the latter in Perfetto).
#
# Usage: scripts/bench_service_json.sh [jobs]
#   jobs  arrivals submitted to the scheduler (default 300)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-300}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$(nproc)" --target bench_service >/dev/null
./build/bench/bench_service "$JOBS" 4242 \
  --bench-json BENCH_service.json \
  --metrics-json metrics_service.json --chrome-trace trace_service.json
python3 scripts/check_metrics_json.py --profile service \
  metrics_service.json trace_service.json
cat BENCH_service.json
