#!/usr/bin/env bash
# Regenerate BENCH_table1.json: build Release, time the Table-1 grid
# serially and on the thread pool, verify bit-identical statistics, and
# write the perf record to the repo root. The record's "metrics" section
# carries the headline obs counters of the parallel run (SelectionContext
# row-cache hit rate, pool tasks/steals, simulator events/sec); the full
# metrics document and Chrome trace land next to it for inspection
# (metrics_table1.json, trace_table1.json — load the latter in Perfetto).
#
# Usage: scripts/bench_table1_json.sh [trials-per-cell] [threads]
#   trials-per-cell  default 25 (the EXPERIMENTS.md grid)
#   threads          default -1 (one worker per hardware thread)
set -euo pipefail
cd "$(dirname "$0")/.."

TRIALS="${1:-25}"
THREADS="${2:--1}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$(nproc)" --target bench_table1 >/dev/null
./build/bench/bench_table1 "$TRIALS" 1999 --threads "$THREADS" \
  --bench-json BENCH_table1.json \
  --metrics-json metrics_table1.json --chrome-trace trace_table1.json
python3 scripts/check_metrics_json.py metrics_table1.json trace_table1.json
cat BENCH_table1.json
