#!/usr/bin/env python3
"""Tolerance-based comparator of fresh bench JSON against the committed
BENCH_*.json baselines — the CI regression gate.

Usage:
  check_bench_regression.py [--tolerance F] NAME FRESH BASELINE \
                            [NAME FRESH BASELINE ...]

Each triplet names the benchmark (table1 | scale | churn | service |
exact), the
freshly produced JSON and the committed baseline. Two kinds of rules run
per benchmark:

  * boolean contracts — machine-independent correctness flags the fresh run
    must reproduce whenever the baseline asserts them (bit-identical
    serial-vs-pooled digests, within-target latencies). These never get
    tolerance: a flipped contract is a regression no matter the hardware.
  * ratio guards — throughput/latency fields compared as fresh/baseline
    ratios with deliberately generous windows (CI machines differ from the
    machine that produced the committed baselines by far more than any real
    regression we want to catch silently). --tolerance F (default 1.0)
    scales the windows further: min ratios divide by F, max ratios multiply.

Exits non-zero listing every violated rule; prints one line per rule
otherwise. Missing fields fail loudly — a baseline/bench schema drift must
not silently disable the gate.
"""

import json
import sys

# (path, kind, limit): kind "bool_true" requires the fresh flag to be true
# whenever the baseline's is; "min_ratio" requires fresh/baseline >= limit;
# "max_ratio" requires fresh/baseline <= limit. Rate fields use ~5x windows
# (cross-machine), the churn speedup is itself a same-machine ratio so its
# window is tighter.
RULES = {
    "table1": [
        ("identical_stats", "bool_true", None),
        ("parallel.trials_per_sec", "min_ratio", 0.2),
    ],
    "scale": [
        ("headline.within_target", "bool_true", None),
        ("headline.cold_seconds", "max_ratio", 5.0),
    ],
    "churn": [
        ("headline.within_target", "bool_true", None),
        ("headline.speedup", "min_ratio", 1.0 / 3.0),
    ],
    "service": [
        ("headline.identical", "bool_true", None),
        ("headline.placements_per_sec", "min_ratio", 0.2),
        ("headline.placement_p99_ms", "max_ratio", 5.0),
    ],
    # The exact grid is deterministic (node budgets, no wall-clock budgets),
    # so its cell counts are machine-independent: the fresh run must cover at
    # least as many cells and certify at least as many of them as the
    # committed baseline, and every cell's bracket must stay sound.
    "exact": [
        ("headline.sound", "bool_true", None),
        ("headline.cells", "min_ratio", 1.0),
        ("headline.exact_cells", "min_ratio", 1.0),
    ],
}


def lookup(doc, path):
    cur = doc
    for key in path.split("."):
        if not isinstance(cur, dict) or key not in cur:
            return None
        cur = cur[key]
    return cur


def check_one(name, fresh_path, baseline_path, tolerance, failures):
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)
    for path, kind, limit in RULES[name]:
        fv = lookup(fresh, path)
        bv = lookup(baseline, path)
        label = f"{name}:{path}"
        if fv is None or bv is None:
            failures.append(
                f"{label}: field missing "
                f"(fresh={fv!r}, baseline={bv!r}) — schema drift?"
            )
            continue
        if kind == "bool_true":
            if bv is True and fv is not True:
                failures.append(
                    f"{label}: baseline asserts the contract, fresh run "
                    f"reports {fv!r}"
                )
            else:
                print(f"check_bench_regression: {label}: OK ({fv!r})")
            continue
        if not isinstance(fv, (int, float)) or not isinstance(bv, (int, float)):
            failures.append(f"{label}: non-numeric ({fv!r} vs {bv!r})")
            continue
        if bv == 0:
            failures.append(f"{label}: baseline value is 0, ratio undefined")
            continue
        ratio = fv / bv
        if kind == "min_ratio":
            lo = limit / tolerance
            if ratio < lo:
                failures.append(
                    f"{label}: {fv:g} is {ratio:.3f}x the baseline {bv:g} "
                    f"(floor {lo:.3f}x)"
                )
            else:
                print(
                    f"check_bench_regression: {label}: OK "
                    f"({ratio:.3f}x >= {lo:.3f}x)"
                )
        elif kind == "max_ratio":
            hi = limit * tolerance
            if ratio > hi:
                failures.append(
                    f"{label}: {fv:g} is {ratio:.3f}x the baseline {bv:g} "
                    f"(ceiling {hi:.3f}x)"
                )
            else:
                print(
                    f"check_bench_regression: {label}: OK "
                    f"({ratio:.3f}x <= {hi:.3f}x)"
                )


def main(argv):
    args = argv[1:]
    tolerance = 1.0
    if args and args[0] == "--tolerance":
        if len(args) < 2:
            print(__doc__, file=sys.stderr)
            return 2
        tolerance = float(args[1])
        if tolerance <= 0:
            print("--tolerance must be positive", file=sys.stderr)
            return 2
        args = args[2:]
    if not args or len(args) % 3 != 0:
        print(__doc__, file=sys.stderr)
        return 2
    failures = []
    for i in range(0, len(args), 3):
        name, fresh, baseline = args[i : i + 3]
        if name not in RULES:
            print(f"unknown benchmark {name!r}", file=sys.stderr)
            return 2
        check_one(name, fresh, baseline, tolerance, failures)
    if failures:
        for msg in failures:
            print(f"check_bench_regression: FAIL: {msg}", file=sys.stderr)
        return 1
    print("check_bench_regression: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
