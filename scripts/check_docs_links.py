#!/usr/bin/env python3
"""Check that intra-repo links and file references in the Markdown docs
resolve.

Scans the repo's committed *.md files (top level, docs/, .github/) for

  * inline Markdown links [text](target) — http(s)/mailto links are
    ignored, anchors are stripped, everything else must exist relative to
    the linking file (or the repo root as a fallback);
  * backtick references like `src/select/prune.hpp`, `docs/TOPO_FORMAT.md`
    or `scripts/check_docs_links.py` — single-token paths with a known
    directory prefix and file extension must exist.

Exits non-zero listing every broken reference. Run from anywhere:

  python3 scripts/check_docs_links.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Committed Markdown roots (build/ output and similar are never scanned).
DOC_GLOBS = ["*.md", "docs/*.md", ".github/**/*.md"]
# Generated reference material (paper/snippet retrieval dumps) is not ours
# to fix and may cite assets that were never retrieved.
SKIP = {"PAPERS.md", "SNIPPETS.md", "PAPER.md", "ISSUE.md"}

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `path/to/file.ext` with a recognisable top-level prefix.
BACKTICK_PATH = re.compile(
    r"`((?:src|docs|tests|bench|examples|scripts|\.github)/[A-Za-z0-9_\-./]+"
    r"\.[A-Za-z0-9]+)`"
)
# `a/b.{hpp,cpp}`-style brace shorthand used throughout the docs.
BRACES = re.compile(r"\{([^}]*)\}")


def expand_braces(path):
    m = BRACES.search(path)
    if not m:
        return [path]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(path[: m.start()] + alt + path[m.end() :]))
    return out


def resolves(target, base):
    candidates = [base / target, ROOT / target]
    return any(c.exists() for c in candidates)


def main():
    broken = []
    files = sorted(
        {f for g in DOC_GLOBS for f in ROOT.glob(g) if f.name not in SKIP}
    )
    if not files:
        print("check_docs_links: no Markdown files found", file=sys.stderr)
        return 2
    for md in files:
        text = md.read_text(encoding="utf-8")
        rel = md.relative_to(ROOT)
        for lineno, line in enumerate(text.splitlines(), 1):
            targets = []
            for m in INLINE_LINK.finditer(line):
                t = m.group(1)
                if t.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                targets.append(t.split("#")[0])
            for m in BACKTICK_PATH.finditer(line):
                targets.extend(expand_braces(m.group(1)))
            for t in targets:
                if t and not resolves(t, md.parent):
                    broken.append(f"{rel}:{lineno}: broken reference '{t}'")
    if broken:
        print("check_docs_links: FAIL", file=sys.stderr)
        for b in broken:
            print(f"  {b}", file=sys.stderr)
        return 1
    print(f"check_docs_links: OK ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
