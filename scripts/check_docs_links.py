#!/usr/bin/env python3
"""Check that intra-repo links, file references and heading anchors in the
Markdown docs resolve.

Scans the repo's committed *.md files (top level, docs/, .github/) for

  * inline Markdown links [text](target) — http(s)/mailto links are
    ignored, everything else must exist relative to the linking file (or
    the repo root as a fallback);
  * anchor fragments — `[x](#section)` must name a heading in the same
    file, and `[x](docs/FOO.md#section)` must name a heading in the linked
    Markdown file. Anchors are derived from headings the way GitHub does
    it: lowercase, punctuation stripped, spaces to hyphens, duplicate
    headings suffixed -1, -2, ...;
  * backtick references like `src/select/prune.hpp`, `docs/TOPO_FORMAT.md`
    or `scripts/check_docs_links.py` — single-token paths with a known
    directory prefix and file extension must exist.

Fenced code blocks are ignored, both as link sources and when collecting
headings. Exits non-zero listing every broken reference. Run from
anywhere:

  python3 scripts/check_docs_links.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Committed Markdown roots (build/ output and similar are never scanned).
DOC_GLOBS = ["*.md", "docs/*.md", ".github/**/*.md"]
# Generated reference material (paper/snippet retrieval dumps) is not ours
# to fix and may cite assets that were never retrieved.
SKIP = {"PAPERS.md", "SNIPPETS.md", "PAPER.md", "ISSUE.md"}

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `path/to/file.ext` with a recognisable top-level prefix.
BACKTICK_PATH = re.compile(
    r"`((?:src|docs|tests|bench|examples|scripts|\.github)/[A-Za-z0-9_\-./]+"
    r"\.[A-Za-z0-9]+)`"
)
# `a/b.{hpp,cpp}`-style brace shorthand used throughout the docs.
BRACES = re.compile(r"\{([^}]*)\}")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
FENCE = re.compile(r"^\s*(```|~~~)")


def expand_braces(path):
    m = BRACES.search(path)
    if not m:
        return [path]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(path[: m.start()] + alt + path[m.end() :]))
    return out


def resolve(target, base):
    for c in (base / target, ROOT / target):
        if c.exists():
            return c
    return None


def slugify(heading):
    """GitHub's heading -> anchor id transform (close enough for our docs):
    drop inline markup, lowercase, strip punctuation, spaces to hyphens."""
    text = re.sub(r"\[([^\]]*)\]\([^)\s]*\)", r"\1", heading)
    text = text.replace("`", "")
    text = re.sub(r"[*_]{1,2}", "", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(md, cache):
    """All anchor ids defined by a Markdown file, duplicate-suffixed the way
    GitHub does (second 'Notes' heading becomes notes-1, and so on)."""
    if md not in cache:
        anchors, counts, in_fence = set(), {}, False
        for line in md.read_text(encoding="utf-8").splitlines():
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if not m:
                continue
            slug = slugify(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[md] = anchors
    return cache[md]


def main():
    broken = []
    anchor_cache = {}
    files = sorted(
        {f for g in DOC_GLOBS for f in ROOT.glob(g) if f.name not in SKIP}
    )
    if not files:
        print("check_docs_links: no Markdown files found", file=sys.stderr)
        return 2
    for md in files:
        text = md.read_text(encoding="utf-8")
        rel = md.relative_to(ROOT)
        in_fence = False
        for lineno, line in enumerate(text.splitlines(), 1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            targets = []
            frags = []  # (resolved markdown Path, fragment)
            for m in INLINE_LINK.finditer(line):
                t = m.group(1)
                if t.startswith(("http://", "https://", "mailto:")):
                    continue
                if t.startswith("#"):
                    frags.append((md, t[1:]))
                    continue
                path, _, frag = t.partition("#")
                targets.append(path)
                if frag:
                    dest = resolve(path, md.parent)
                    if dest is not None and dest.suffix == ".md":
                        frags.append((dest, frag))
            for m in BACKTICK_PATH.finditer(line):
                targets.extend(expand_braces(m.group(1)))
            for t in targets:
                if t and resolve(t, md.parent) is None:
                    broken.append(f"{rel}:{lineno}: broken reference '{t}'")
            for dest, frag in frags:
                if frag not in heading_anchors(dest, anchor_cache):
                    where = (
                        "" if dest == md
                        else f" in {dest.relative_to(ROOT)}"
                    )
                    broken.append(
                        f"{rel}:{lineno}: broken anchor '#{frag}'{where}"
                    )
    if broken:
        print("check_docs_links: FAIL", file=sys.stderr)
        for b in broken:
            print(f"  {b}", file=sys.stderr)
        return 1
    print(f"check_docs_links: OK ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
