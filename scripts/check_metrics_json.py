#!/usr/bin/env python3
"""Schema check for the obs metrics JSON document (and optionally a Chrome
trace) written by the bench binaries' --metrics-json / --chrome-trace flags.

Usage: check_metrics_json.py [--profile NAME] METRICS_JSON [CHROME_TRACE_JSON]

Profiles pick the required metric set for the producing benchmark:
  table1 (default)  simulation grids: bench_table1 / bench_faults
  scale             selection-only runs: bench_scale (no simulator, no
                    experiment harness, hence no sim.*/exp.* counters)
  churn             delta-stream runs: bench_churn (adds the incremental
                    invalidation counters and the CSR patch histogram)
  service           scheduler-loop runs: bench_service (adds the sched.*
                    state-machine counters, the placement-latency and
                    queue-wait histograms, the obs.ts.* / obs.trace.* /
                    obs.flight.* telemetry mirrors, and requires the
                    10k-host candidate-set histogram to stay out of its
                    overflow bucket)
  exact             optimality-gap certification runs: bench_exact (the
                    select.bnb.* branch-and-bound search counters and the
                    B&B latency histogram; select.selections covers both
                    the exact searches and their greedy warm starts)
  timeseries        the positional file is a netsel-timeseries-v1 document
                    (bench_service --timeseries-json): validates monotone
                    sim time, sample-count vs cadence consistency, and the
                    counter delta-decode round trip (first + sum(deltas)
                    == last, len(deltas) == samples - 1)

Exits non-zero with a message on the first violation. Used by CI after the
bench smoke runs, and by scripts/bench_table1_json.sh /
scripts/bench_scale_json.sh / scripts/bench_churn_json.sh.
"""

import json
import sys

SCHEMA = "netsel-metrics-v1"

# Counters/histograms every instrumented run of the given profile must
# register (values may be 0 — e.g. the degradation counters are
# pre-registered by the bench even when no placement ran through the
# service).
PROFILES = {
    "table1": {
        "counters": [
            "select.ctx.row_hits",
            "select.ctx.row_misses",
            "api.degradation.full",
            "api.degradation.smoothed",
            "api.degradation.prior",
            "pool.tasks_run",
            "pool.steals",
            "sim.events",
            "exp.trials",
        ],
        "histograms": [
            "exp.cell_s",
            "select.latency_s.balanced",
        ],
    },
    "scale": {
        "counters": [
            "select.ctx.row_hits",
            "select.ctx.row_misses",
            "select.ctx.rows.batched",
            "select.ctx.rows.scalar_fallback",
            "select.ctx.batch.passes",
            "select.ctx.batch.frontier_words",
            "select.prune.dropped",
            "select.selections",
            "api.degradation.full",
            "api.degradation.smoothed",
            "api.degradation.prior",
        ],
        "histograms": [
            "select.latency_s.balanced",
            "select.latency_s.max_bandwidth",
            "select.latency_s.max_compute",
        ],
        "gauges": [
            "proc.peak_rss_bytes",
            "select.ctx.arena_bytes",
        ],
    },
    "churn": {
        "counters": [
            "select.ctx.row_hits",
            "select.ctx.row_misses",
            "select.ctx.invalidations",
            "select.ctx.delta.applied",
            "select.ctx.rows.repaired",
            "select.ctx.rows.invalidated.partial",
            "select.ctx.rows.invalidated.full",
            "api.reselect.calls",
            "api.reselect.migrations",
            "api.degradation.full",
            "api.degradation.smoothed",
            "api.degradation.prior",
        ],
        "histograms": [
            "select.ctx.csr_patch_s",
            "select.latency_s.balanced",
        ],
    },
    "exact": {
        "counters": [
            "select.bnb.selections",
            "select.bnb.expanded",
            "select.bnb.pushed",
            "select.bnb.pruned_bound",
            "select.bnb.pruned_lex",
            "select.bnb.pool_dominated",
            "select.bnb.open_dropped",
            "select.bnb.certified",
            "select.bnb.budget_hits",
            "select.selections",
            "select.ctx.row_hits",
            "select.ctx.row_misses",
        ],
        "histograms": [
            "select.latency_s.bnb",
        ],
    },
    "service": {
        "counters": [
            "sched.jobs.submitted",
            "sched.jobs.admitted",
            "sched.jobs.rejected",
            "sched.jobs.timeout",
            "sched.jobs.placed",
            "sched.jobs.completed",
            "sched.place.conflicts",
            "sched.place.infeasible",
            "sched.rebalance.attempts",
            "sched.rebalance.migrations",
            "sched.ladder.full",
            "sched.ladder.smoothed",
            "sched.ladder.prior",
            "api.reselect.calls",
            "api.reselect.migrations",
            "api.degradation.full",
            "api.degradation.smoothed",
            "api.degradation.prior",
            "select.ctx.row_hits",
            "select.ctx.row_misses",
            "select.selections",
            "obs.ts.samples",
            "obs.ts.dropped",
            "obs.trace.traces",
            "obs.trace.spans",
            "obs.flight.events",
        ],
        "histograms": [
            "sched.placement_latency_s",
            "sched.queue_wait_s",
            "api.candidate_set_size",
            "select.latency_s.balanced",
        ],
        "gauges": [
            "sched.queue.depth",
            "sched.jobs.running",
            "obs.ts.series",
        ],
    },
}

TS_SCHEMA = "netsel-timeseries-v1"


def fail(msg):
    print(f"check_metrics_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics(path, profile):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}: 'counters' missing or not an object")
    for name in PROFILES[profile]["counters"]:
        if name not in counters:
            fail(f"{path}: required counter {name!r} missing")
        if not isinstance(counters[name], int) or counters[name] < 0:
            fail(f"{path}: counter {name!r} is not a non-negative integer")

    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        fail(f"{path}: 'histograms' missing or not an object")
    for name in PROFILES[profile]["histograms"]:
        if name not in hists:
            fail(f"{path}: required histogram {name!r} missing")
    for name, h in hists.items():
        bounds, counts = h.get("bounds"), h.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(f"{path}: histogram {name!r} lacks bounds/counts lists")
        if len(counts) != len(bounds) + 1:
            fail(
                f"{path}: histogram {name!r}: len(counts)={len(counts)} "
                f"!= len(bounds)+1={len(bounds) + 1}"
            )
        if bounds != sorted(bounds):
            fail(f"{path}: histogram {name!r}: bounds not ascending")
        if h.get("count") != sum(counts):
            fail(
                f"{path}: histogram {name!r}: count={h.get('count')} "
                f"!= sum(counts)={sum(counts)}"
            )

    if profile == "service":
        # The candidate-set histogram's exponential buckets (2 .. 2^20) must
        # cover the 10k-host profile: a populated overflow bucket means the
        # bounds regressed (the old linear buckets topped out at 32).
        h = hists.get("api.candidate_set_size", {})
        counts = h.get("counts") or [0]
        if h.get("count", 0) == 0:
            fail(f"{path}: api.candidate_set_size recorded no observations")
        if counts[-1] != 0:
            fail(
                f"{path}: api.candidate_set_size overflowed its bucket "
                f"bounds ({counts[-1]} observations past "
                f"{h.get('bounds', [0])[-1]})"
            )

    gauge_names = PROFILES[profile].get("gauges", [])
    if gauge_names:
        gauges = doc.get("gauges")
        if not isinstance(gauges, dict):
            fail(f"{path}: 'gauges' missing or not an object")
        for name in gauge_names:
            if name not in gauges:
                fail(f"{path}: required gauge {name!r} missing")
            if not isinstance(gauges[name], (int, float)) or gauges[name] < 0:
                fail(f"{path}: gauge {name!r} is not a non-negative number")

    if not isinstance(doc.get("spans"), int):
        fail(f"{path}: 'spans' missing or not an integer")
    print(
        f"check_metrics_json: {path}: OK "
        f"({len(counters)} counters, {len(hists)} histograms, "
        f"{doc['spans']} spans)"
    )


def check_timeseries(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != TS_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {TS_SCHEMA!r}")
    cadence = doc.get("cadence_s")
    if not isinstance(cadence, (int, float)) or cadence <= 0:
        fail(f"{path}: cadence_s missing or not positive")
    samples = doc.get("samples")
    dropped = doc.get("dropped")
    if not isinstance(samples, int) or samples < 0:
        fail(f"{path}: 'samples' missing or negative")
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"{path}: 'dropped' missing or negative")
    t_first, t_last = doc.get("t_first"), doc.get("t_last")
    if samples == 0:
        if doc.get("series"):
            fail(f"{path}: zero samples but non-empty series")
        print(f"check_metrics_json: {path}: OK (empty time series)")
        return
    # Sim time is monotone by construction: boundary i sits at i * cadence.
    # With `dropped` rows evicted, the first retained row is boundary
    # `dropped` and the last is boundary dropped + samples - 1.
    tol = 1e-9 * max(1.0, abs(t_last or 0.0))
    if abs(t_first - dropped * cadence) > tol:
        fail(
            f"{path}: t_first={t_first} inconsistent with "
            f"dropped={dropped} * cadence={cadence}"
        )
    if abs(t_last - (t_first + (samples - 1) * cadence)) > tol:
        fail(
            f"{path}: t_last={t_last} != t_first + (samples-1)*cadence "
            f"(monotone cadence grid violated)"
        )
    series = doc.get("series")
    if not isinstance(series, dict) or not series:
        fail(f"{path}: 'series' missing or empty despite {samples} samples")
    for name, s in series.items():
        kind = s.get("type")
        if kind == "counter":
            deltas = s.get("deltas")
            if not isinstance(deltas, list) or len(deltas) != samples - 1:
                fail(
                    f"{path}: counter {name!r}: len(deltas)="
                    f"{None if not isinstance(deltas, list) else len(deltas)} "
                    f"!= samples-1={samples - 1}"
                )
            first, last = s.get("first"), s.get("last")
            if first + sum(deltas) != last:
                fail(
                    f"{path}: counter {name!r}: delta decode "
                    f"first+sum(deltas)={first + sum(deltas)} != last={last}"
                )
        elif kind == "gauge":
            values = s.get("values")
            if not isinstance(values, list) or len(values) != samples:
                fail(
                    f"{path}: gauge {name!r}: len(values)="
                    f"{None if not isinstance(values, list) else len(values)} "
                    f"!= samples={samples}"
                )
        else:
            fail(f"{path}: series {name!r} has unknown type {kind!r}")
    print(
        f"check_metrics_json: {path}: OK "
        f"({len(series)} series, {samples} samples, {dropped} dropped)"
    )


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' missing, not a list, or empty")
    complete = 0
    for ev in events:
        if "ph" not in ev or "name" not in ev:
            fail(f"{path}: event without ph/name: {ev!r}")
        if ev["ph"] == "X":
            complete += 1
            for key in ("ts", "dur", "pid", "tid"):
                if key not in ev:
                    fail(f"{path}: complete event missing {key!r}: {ev!r}")
    if complete == 0:
        fail(f"{path}: no complete ('ph':'X') events recorded")
    print(f"check_metrics_json: {path}: OK ({complete} complete events)")


def main(argv):
    args = argv[1:]
    profile = "table1"
    if args and args[0] == "--profile":
        if len(args) < 2 or (args[1] not in PROFILES and args[1] != "timeseries"):
            print(__doc__, file=sys.stderr)
            return 2
        profile = args[1]
        args = args[2:]
    if len(args) < 1 or len(args) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if profile == "timeseries":
        check_timeseries(args[0])
        if len(args) == 2:
            check_trace(args[1])
        return 0
    check_metrics(args[0], profile)
    if len(args) == 2:
        check_trace(args[1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
