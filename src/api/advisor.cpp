#include "api/advisor.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

#include "select/context.hpp"
#include "select/objective.hpp"

namespace netsel::api {

namespace {

/// The (src, dst) messages a pattern sends on a placement.
std::vector<std::pair<topo::NodeId, topo::NodeId>> pattern_messages(
    appsim::CommPattern pattern, const std::vector<topo::NodeId>& nodes) {
  std::vector<std::pair<topo::NodeId, topo::NodeId>> msgs;
  const int m = static_cast<int>(nodes.size());
  switch (pattern) {
    case appsim::CommPattern::None:
      break;
    case appsim::CommPattern::AllToAll:
      for (int i = 0; i < m; ++i)
        for (int j = 0; j < m; ++j)
          if (i != j)
            msgs.emplace_back(nodes[static_cast<std::size_t>(i)],
                              nodes[static_cast<std::size_t>(j)]);
      break;
    case appsim::CommPattern::Ring:
      for (int i = 0; i < m; ++i)
        msgs.emplace_back(nodes[static_cast<std::size_t>(i)],
                          nodes[static_cast<std::size_t>((i + 1) % m)]);
      break;
    case appsim::CommPattern::Gather:
      for (int i = 1; i < m; ++i)
        msgs.emplace_back(nodes[static_cast<std::size_t>(i)], nodes[0]);
      break;
    case appsim::CommPattern::Broadcast:
      for (int i = 1; i < m; ++i)
        msgs.emplace_back(nodes[0], nodes[static_cast<std::size_t>(i)]);
      break;
  }
  return msgs;
}

/// Communication-phase estimate on the actual placement: count how many of
/// the pattern's concurrent messages traverse each link direction and take
/// the worst direction's drain time, count * bits / available. This
/// captures concentration on shared trunks (e.g. a cross-router all-to-all
/// pushes every cross pair through one backbone link), which a plain
/// bottleneck-bandwidth model misses.
double comm_phase_seconds(appsim::CommPattern pattern, double bytes,
                          const remos::NetworkSnapshot& snap,
                          const std::vector<topo::NodeId>& nodes) {
  if (pattern == appsim::CommPattern::None || bytes <= 0.0 ||
      nodes.size() < 2)
    return 0.0;
  const auto& g = snap.graph();
  std::vector<double> dir_load(g.link_count() * 2, 0.0);
  for (const auto& [src, dst] : pattern_messages(pattern, nodes)) {
    auto links = select::bfs_path(g, src, dst);
    topo::NodeId u = src;
    for (topo::LinkId l : links) {
      const topo::Link& lk = g.link(l);
      bool forward = lk.a == u;
      dir_load[static_cast<std::size_t>(l) * 2 + (forward ? 0 : 1)] += 1.0;
      u = g.other_end(l, u);
    }
  }
  double worst = 0.0;
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    for (bool forward : {true, false}) {
      double count = dir_load[l * 2 + (forward ? 0 : 1)];
      if (count == 0.0) continue;
      double avail = snap.bw_dir(static_cast<topo::LinkId>(l), forward);
      if (avail <= 0.0) return std::numeric_limits<double>::infinity();
      worst = std::max(worst, count * bytes * 8.0 / avail);
    }
  }
  return worst;
}

}  // namespace

double predict_loosely_synchronous(const appsim::LooselySyncConfig& cfg,
                                   const select::SelectionContext& ctx,
                                   const std::vector<topo::NodeId>& nodes,
                                   const select::SelectionOptions& opt) {
  if (static_cast<int>(nodes.size()) != cfg.num_nodes)
    throw std::invalid_argument("predict: node count mismatch");
  auto ev = select::evaluate_set(ctx, nodes, opt);
  if (!ev.connected) return std::numeric_limits<double>::infinity();
  double per_iteration = 0.0;
  for (const auto& phase : cfg.phases) {
    if (phase.work_per_node > 0.0) {
      if (ev.min_cpu <= 0.0) return std::numeric_limits<double>::infinity();
      per_iteration += phase.work_per_node / ev.min_cpu;
    }
    per_iteration += comm_phase_seconds(phase.pattern, phase.bytes_per_message,
                                        ctx.snapshot(), nodes);
  }
  return per_iteration * cfg.iterations;
}

double predict_loosely_synchronous(const appsim::LooselySyncConfig& cfg,
                                   const remos::NetworkSnapshot& snap,
                                   const std::vector<topo::NodeId>& nodes,
                                   const select::SelectionOptions& opt) {
  select::SelectionContext ctx(snap);
  return predict_loosely_synchronous(cfg, ctx, nodes, opt);
}

double predict_master_slave(const appsim::MasterSlaveConfig& cfg,
                            const select::SelectionContext& ctx,
                            const std::vector<topo::NodeId>& nodes,
                            const select::SelectionOptions& opt) {
  const auto& snap = ctx.snapshot();
  if (static_cast<int>(nodes.size()) != cfg.num_nodes)
    throw std::invalid_argument("predict: node count mismatch");
  const int slaves = cfg.num_nodes - 1;
  topo::NodeId master = nodes[0];
  // Worst-case synchronized transfers: all slaves' inputs share the
  // master's path concurrently (observed on the simulated testbed — slaves
  // with equal cycle lengths stay phase-locked), so each transfer sees
  // 1/slaves of the path bandwidth.
  double throughput = 0.0;  // tasks per second, summed over slaves
  for (int s = 0; s < slaves; ++s) {
    topo::NodeId slave = nodes[static_cast<std::size_t>(s) + 1];
    double cpu = snap.cpu_reference(slave, opt.reference_cpu_capacity);
    if (cpu <= 0.0) continue;
    auto path = select::evaluate_set(ctx, {master, slave}, opt);
    if (!path.connected || path.min_pair_bw <= 0.0)
      return std::numeric_limits<double>::infinity();
    double share = path.min_pair_bw / static_cast<double>(slaves);
    double cycle = cfg.task_work / cpu;
    if (cfg.input_bytes > 0.0) cycle += cfg.input_bytes * 8.0 / share;
    if (cfg.output_bytes > 0.0) cycle += cfg.output_bytes * 8.0 / share;
    throughput += 1.0 / cycle;
  }
  if (throughput <= 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(cfg.num_tasks) / throughput;
}

double predict_master_slave(const appsim::MasterSlaveConfig& cfg,
                            const remos::NetworkSnapshot& snap,
                            const std::vector<topo::NodeId>& nodes,
                            const select::SelectionOptions& opt) {
  select::SelectionContext ctx(snap);
  return predict_master_slave(cfg, ctx, nodes, opt);
}

namespace {

template <typename Config, typename Predictor>
NodeCountChoice choose_impl(const std::function<Config(int)>& config_for_m,
                            const remos::NetworkSnapshot& snap,
                            const NodeCountOptions& opt, Predictor predict) {
  if (opt.min_nodes < 1 || opt.max_nodes < opt.min_nodes)
    throw std::invalid_argument("choose_node_count: bad node range");
  // One context for the whole m-sweep: every selection and prediction below
  // runs against the same snapshot.
  select::SelectionContext ctx(snap);
  NodeCountChoice choice;
  double best = std::numeric_limits<double>::infinity();
  for (int m = opt.min_nodes; m <= opt.max_nodes; ++m) {
    Config cfg = config_for_m(m);
    if (cfg.num_nodes != m)
      throw std::invalid_argument(
          "choose_node_count: config_for_m(m) must request m nodes");
    select::SelectionOptions sel = opt.selection;
    sel.num_nodes = m;
    auto selected = select::select_nodes(opt.criterion, ctx, sel);
    if (!selected.feasible) {
      choice.predictions.push_back(std::numeric_limits<double>::infinity());
      continue;
    }
    double predicted = predict(cfg, ctx, selected.nodes, sel);
    choice.predictions.push_back(predicted);
    if (predicted < best) {
      best = predicted;
      choice.feasible = true;
      choice.num_nodes = m;
      choice.nodes = std::move(selected.nodes);
      choice.predicted_seconds = predicted;
    }
  }
  return choice;
}

}  // namespace

NodeCountChoice choose_node_count(
    const std::function<appsim::LooselySyncConfig(int)>& config_for_m,
    const remos::NetworkSnapshot& snap, const NodeCountOptions& opt) {
  return choose_impl<appsim::LooselySyncConfig>(
      config_for_m, snap, opt,
      [](const appsim::LooselySyncConfig& cfg,
         const select::SelectionContext& c,
         const std::vector<topo::NodeId>& nodes,
         const select::SelectionOptions& o) {
        return predict_loosely_synchronous(cfg, c, nodes, o);
      });
}

NodeCountChoice choose_node_count(
    const std::function<appsim::MasterSlaveConfig(int)>& config_for_m,
    const remos::NetworkSnapshot& snap, const NodeCountOptions& opt) {
  return choose_impl<appsim::MasterSlaveConfig>(
      config_for_m, snap, opt,
      [](const appsim::MasterSlaveConfig& cfg,
         const select::SelectionContext& c,
         const std::vector<topo::NodeId>& nodes,
         const select::SelectionOptions& o) {
        return predict_master_slave(cfg, c, nodes, o);
      });
}

namespace {

/// The m eligible compute nodes nearest to `center` by hop count (ties by
/// cpu, then id) — clustered candidates that keep the application's own
/// traffic off shared trunks. Empty when fewer than m are reachable.
std::vector<topo::NodeId> hop_cluster(const remos::NetworkSnapshot& snap,
                                      const select::SelectionOptions& opt,
                                      topo::NodeId center, int m) {
  const auto& g = snap.graph();
  std::vector<int> hops(g.node_count(), -1);
  std::queue<topo::NodeId> q;
  hops[static_cast<std::size_t>(center)] = 0;
  q.push(center);
  while (!q.empty()) {
    topo::NodeId u = q.front();
    q.pop();
    for (topo::LinkId l : g.links_of(u)) {
      topo::NodeId v = g.other_end(l, u);
      if (hops[static_cast<std::size_t>(v)] != -1) continue;
      hops[static_cast<std::size_t>(v)] = hops[static_cast<std::size_t>(u)] + 1;
      q.push(v);
    }
  }
  std::vector<topo::NodeId> pool;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (hops[i] != -1 && select::node_eligible(snap, id, opt))
      pool.push_back(id);
  }
  if (static_cast<int>(pool.size()) < m) return {};
  std::stable_sort(pool.begin(), pool.end(), [&](topo::NodeId a, topo::NodeId b) {
    int ha = hops[static_cast<std::size_t>(a)];
    int hb = hops[static_cast<std::size_t>(b)];
    if (ha != hb) return ha < hb;
    return select::node_cpu(snap, a, opt) > select::node_cpu(snap, b, opt);
  });
  pool.resize(static_cast<std::size_t>(m));
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace

ModelPlacement place_with_model(const appsim::LooselySyncConfig& cfg,
                                const remos::NetworkSnapshot& snap,
                                const select::SelectionOptions& base) {
  select::SelectionOptions opt = base;
  opt.num_nodes = cfg.num_nodes;

  // Shared across the three selection procedures, every hop-cluster
  // candidate evaluation, and the model ranking below.
  select::SelectionContext ctx(snap);

  struct Candidate {
    std::string source;
    std::vector<topo::NodeId> nodes;
  };
  std::vector<Candidate> candidates;
  auto add = [&](const char* source, select::SelectionResult r) {
    if (r.feasible) candidates.push_back({source, std::move(r.nodes)});
  };
  add("balanced", select::select_balanced(ctx, opt));
  add("max-compute", select::select_max_compute(ctx, opt));
  add("max-bandwidth", select::select_max_bandwidth(ctx, opt));
  for (std::size_t c = 0; c < snap.graph().node_count(); ++c) {
    auto center = static_cast<topo::NodeId>(c);
    auto nodes = hop_cluster(snap, opt, center, cfg.num_nodes);
    if (!nodes.empty())
      candidates.push_back(
          {"cluster@" + snap.graph().node(center).name, std::move(nodes)});
  }

  ModelPlacement best;
  double best_time = std::numeric_limits<double>::infinity();
  for (auto& cand : candidates) {
    double t = predict_loosely_synchronous(cfg, ctx, cand.nodes, opt);
    if (t < best_time) {
      best_time = t;
      best.feasible = true;
      best.nodes = std::move(cand.nodes);
      best.predicted_seconds = t;
      best.source = std::move(cand.source);
    }
  }
  return best;
}

}  // namespace netsel::api
