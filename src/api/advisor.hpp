#pragma once
// Variable number of execution nodes — the paper's §3.4: "The decision
// procedures developed in this research can be applied to the problem of
// finding the number *and* the set of nodes for execution, but do not solve
// the entire problem. These techniques have to be coupled with methods for
// performance estimation."
//
// This module supplies the missing piece: closed-form performance models
// for the two application structures (validated against the simulator in
// the tests), and an advisor that couples them with the selection
// procedures — for each candidate m it selects the best m nodes from the
// current snapshot, predicts the completion time on them, and returns the
// (m, node set) with the best prediction.

#include <functional>

#include "appsim/loosely_synchronous.hpp"
#include "appsim/master_slave.hpp"
#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"

namespace netsel::api {

/// Predicted completion time (seconds) of a loosely-synchronous application
/// on `nodes` under the given snapshot. Model: every iteration's compute
/// phase is gated by the slowest node (work / min available cpu), and each
/// communication phase by the set's bottleneck available bandwidth with the
/// pattern's concurrency factor (all-to-all loads an access link with m-1
/// concurrent messages; ring with 1; gather/broadcast with m-1 on the root).
double predict_loosely_synchronous(const appsim::LooselySyncConfig& cfg,
                                   const remos::NetworkSnapshot& snap,
                                   const std::vector<topo::NodeId>& nodes,
                                   const select::SelectionOptions& opt = {});
/// Context form: repeated predictions against one snapshot (the advisor's
/// m-sweep, the model-refined placement) share the context's cached
/// bottleneck rows instead of re-running a BFS per node pair.
double predict_loosely_synchronous(const appsim::LooselySyncConfig& cfg,
                                   const select::SelectionContext& ctx,
                                   const std::vector<topo::NodeId>& nodes,
                                   const select::SelectionOptions& opt = {});

/// Predicted completion time of a master-slave farm: tasks are spread over
/// slaves in proportion to their available cpu; each slave's task cycle is
/// input transfer + compute + output transfer at its own available rates.
double predict_master_slave(const appsim::MasterSlaveConfig& cfg,
                            const remos::NetworkSnapshot& snap,
                            const std::vector<topo::NodeId>& nodes,
                            const select::SelectionOptions& opt = {});
double predict_master_slave(const appsim::MasterSlaveConfig& cfg,
                            const select::SelectionContext& ctx,
                            const std::vector<topo::NodeId>& nodes,
                            const select::SelectionOptions& opt = {});

struct NodeCountChoice {
  bool feasible = false;
  int num_nodes = 0;
  std::vector<topo::NodeId> nodes;
  double predicted_seconds = 0.0;
  /// Prediction per candidate m (index 0 = min_nodes), for reporting.
  std::vector<double> predictions;
};

struct NodeCountOptions {
  int min_nodes = 2;
  int max_nodes = 8;
  select::Criterion criterion = select::Criterion::Balanced;
  select::SelectionOptions selection;  ///< num_nodes is overwritten per m
};

/// Choose the number of nodes and the node set jointly: the caller supplies
/// the application shape as a function of m (strong scaling, master-slave
/// farm width, ...), the advisor couples selection with prediction.
NodeCountChoice choose_node_count(
    const std::function<appsim::LooselySyncConfig(int)>& config_for_m,
    const remos::NetworkSnapshot& snap, const NodeCountOptions& opt);

NodeCountChoice choose_node_count(
    const std::function<appsim::MasterSlaveConfig(int)>& config_for_m,
    const remos::NetworkSnapshot& snap, const NodeCountOptions& opt);

struct ModelPlacement {
  bool feasible = false;
  std::vector<topo::NodeId> nodes;
  double predicted_seconds = 0.0;
  /// Which candidate generator produced the winner (diagnostics).
  std::string source;
};

/// Model-refined placement, addressing the paper's §3.4 limitation
/// ("Simultaneous traffic streams": availability between node pairs is
/// computed independently, so an application whose own concurrent messages
/// share a link can be misled). Generates candidate node sets from the
/// selection procedures (balanced, max-compute, max-bandwidth) plus
/// hop-clustered sets around each network node, then ranks them with the
/// placement-aware performance model — which does account for the
/// application's own concurrent flows on shared links.
ModelPlacement place_with_model(const appsim::LooselySyncConfig& cfg,
                                const remos::NetworkSnapshot& snap,
                                const select::SelectionOptions& base = {});

}  // namespace netsel::api
