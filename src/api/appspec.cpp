#include "api/appspec.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace netsel::api {

namespace {
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}
}  // namespace

const char* degradation_level_name(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::Full: return "full";
    case DegradationLevel::Smoothed: return "smoothed";
    case DegradationLevel::Prior: return "prior";
  }
  return "?";
}

int AppSpec::total_nodes() const {
  int t = 0;
  for (const auto& g : groups) t += g.count;
  return t;
}

AppSpec AppSpec::spmd(std::string name, int nodes, AppPattern pattern) {
  AppSpec spec;
  spec.name = std::move(name);
  spec.pattern = pattern;
  NodeGroup g;
  g.name = "workers";
  g.count = nodes;
  spec.groups.push_back(std::move(g));
  return spec;
}

void AppSpec::validate() const {
  if (groups.empty())
    throw std::invalid_argument("AppSpec: at least one node group required");
  for (const auto& g : groups) {
    if (g.count < 1)
      throw std::invalid_argument("AppSpec: group '" + g.name +
                                  "' must request >= 1 node");
  }
  if (cpu_priority <= 0.0 || bw_priority <= 0.0)
    throw std::invalid_argument("AppSpec: priorities must be > 0");
  if (min_bw_bps < 0.0 || min_cpu_fraction < 0.0 ||
      min_free_memory_bytes < 0.0)
    throw std::invalid_argument("AppSpec: requirements must be >= 0");
}

std::vector<topo::NodeId> Placement::flat() const {
  std::vector<topo::NodeId> out;
  for (const auto& g : group_nodes) out.insert(out.end(), g.begin(), g.end());
  return out;
}

std::string explain_report(const Placement& p, const topo::TopologyGraph& g) {
  std::ostringstream os;
  os << "placement '" << (p.app.empty() ? "app" : p.app) << "' ("
     << (p.criterion.empty() ? "?" : p.criterion) << "): "
     << (p.feasible ? "feasible" : "infeasible");
  if (!p.feasible && !p.note.empty()) os << " -- " << p.note;
  os << "\n";
  os << "  measurements: " << degradation_level_name(p.degradation)
     << " (coverage " << fmt(p.measurement_coverage) << ")";
  if (!p.degradation_reason.empty()) os << " -- " << p.degradation_reason;
  os << "\n";
  for (const auto& gi : p.groups) {
    os << "  group '" << gi.group << "': ";
    if (gi.nodes.empty()) {
      os << "no nodes";
      if (!gi.note.empty()) os << " -- " << gi.note;
      os << "\n";
      continue;
    }
    for (std::size_t i = 0; i < gi.nodes.size(); ++i) {
      if (i) os << ", ";
      const auto& node = g.node(gi.nodes[i]);
      os << (node.name.empty()
                 ? "n" + std::to_string(static_cast<std::size_t>(gi.nodes[i]))
                 : node.name);
    }
    os << " (" << gi.nodes.size() << " of " << gi.candidates
       << " candidates)\n";
    // The balanced objective is min(cpu/kc, bw_fraction/kb): whichever term
    // is smaller is the one the application is actually limited by.
    double cpu_term = gi.min_cpu / p.cpu_priority;
    double bw_term = gi.min_bw_fraction / p.bw_priority;
    bool cpu_binding = cpu_term <= bw_term;
    os << "    min cpu " << fmt(gi.min_cpu) << " (/" << fmt(p.cpu_priority)
       << " = " << fmt(cpu_term) << (cpu_binding ? " [binding]" : "")
       << "), min bw fraction " << fmt(gi.min_bw_fraction) << " (/"
       << fmt(p.bw_priority) << " = " << fmt(bw_term)
       << (cpu_binding ? "" : " [binding]") << "), min pair bw "
       << fmt(gi.min_pair_bw) << " bps, objective " << fmt(gi.objective)
       << "\n";
    if (!gi.note.empty()) os << "    note: " << gi.note << "\n";
  }
  return os.str();
}

}  // namespace netsel::api
