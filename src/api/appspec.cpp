#include "api/appspec.hpp"

#include <stdexcept>

namespace netsel::api {

const char* degradation_level_name(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::Full: return "full";
    case DegradationLevel::Smoothed: return "smoothed";
    case DegradationLevel::Prior: return "prior";
  }
  return "?";
}

int AppSpec::total_nodes() const {
  int t = 0;
  for (const auto& g : groups) t += g.count;
  return t;
}

AppSpec AppSpec::spmd(std::string name, int nodes, AppPattern pattern) {
  AppSpec spec;
  spec.name = std::move(name);
  spec.pattern = pattern;
  NodeGroup g;
  g.name = "workers";
  g.count = nodes;
  spec.groups.push_back(std::move(g));
  return spec;
}

void AppSpec::validate() const {
  if (groups.empty())
    throw std::invalid_argument("AppSpec: at least one node group required");
  for (const auto& g : groups) {
    if (g.count < 1)
      throw std::invalid_argument("AppSpec: group '" + g.name +
                                  "' must request >= 1 node");
  }
  if (cpu_priority <= 0.0 || bw_priority <= 0.0)
    throw std::invalid_argument("AppSpec: priorities must be > 0");
  if (min_bw_bps < 0.0 || min_cpu_fraction < 0.0 ||
      min_free_memory_bytes < 0.0)
    throw std::invalid_argument("AppSpec: requirements must be >= 0");
}

std::vector<topo::NodeId> Placement::flat() const {
  std::vector<topo::NodeId> out;
  for (const auto& g : group_nodes) out.insert(out.end(), g.begin(), g.end());
  return out;
}

}  // namespace netsel::api
