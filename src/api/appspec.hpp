#pragma once
// Application specification interface (paper §2.1): "the number of nodes
// required for execution, the nature of main computation and communication
// patterns (e.g. all-to-all or master-slave), relative priority of
// communication and computation, different node groups within an
// application (e.g. client and server groups), specific requirements of
// different groups (e.g. a server may be compiled only for Alpha
// architecture or must run on some specific machines)."

#include <optional>
#include <string>
#include <vector>

#include "topo/graph.hpp"

namespace netsel::api {

/// Coarse communication structure of the application.
enum class AppPattern {
  LooselySynchronous,  ///< barrier-synchronised compute + comm (FFT, Airshed)
  MasterSlave,         ///< adaptive task farm (MRI)
  ClientServer,        ///< server group + client group
  Custom,
};

/// A group of application processes with common placement requirements.
struct NodeGroup {
  std::string name;
  int count = 1;
  /// Nodes in this group must carry all of these tags (e.g. {"alpha"}).
  std::vector<std::string> required_tags;
  /// If non-empty, the group may only run on these named hosts.
  std::vector<std::string> allowed_hosts;
  /// Groups needing the strongest nodes first get priority in assignment
  /// (e.g. a server group); higher = assigned earlier.
  int placement_priority = 0;
};

struct AppSpec {
  std::string name = "app";
  AppPattern pattern = AppPattern::LooselySynchronous;
  /// Node groups; their counts sum to the total node requirement. A spec
  /// with a single anonymous group is the common SPMD case.
  std::vector<NodeGroup> groups;
  /// Relative priority of computation vs communication (§3.3): 1.0 means
  /// balanced; 2.0 means 50% CPU is treated like 25% bandwidth.
  double cpu_priority = 1.0;
  double bw_priority = 1.0;
  /// Optional fixed requirements (§3.3, plus the §3.4 memory extension).
  double min_bw_bps = 0.0;
  double min_cpu_fraction = 0.0;
  double min_free_memory_bytes = 0.0;

  /// Total nodes across groups.
  int total_nodes() const;
  /// Convenience: a single-group SPMD spec.
  static AppSpec spmd(std::string name, int nodes, AppPattern pattern);
  /// Throws std::invalid_argument when the spec is inconsistent.
  void validate() const;
};

/// How much measured state backed a placement decision. The service walks
/// this ladder down as measurement coverage drops (see DegradationPolicy):
/// Full trusts the caller's forecaster; Smoothed re-queries with an
/// averaging forecaster and a staleness bound so isolated dropped samples
/// are bridged and stalled sensors answer their fallback; Prior abandons
/// measurements for the capacity/zero-load prior (every node unloaded,
/// every link at capacity) — selection still returns a sane, connected
/// placement instead of throwing or trusting garbage.
enum class DegradationLevel { Full = 0, Smoothed = 1, Prior = 2 };

const char* degradation_level_name(DegradationLevel level);

/// Per-group diagnostics behind a placement decision (the "explain" data):
/// what the group could have run on, what it got, and the achieved figures
/// of merit. Purely observational — callers that ignore it see exactly the
/// placement they always did.
struct GroupPlacementInfo {
  std::string group;                 ///< group name from the AppSpec
  std::vector<topo::NodeId> nodes;   ///< chosen nodes, selection order
  std::size_t candidates = 0;        ///< eligible nodes the group saw
  /// Achieved figures: minimum fractional cpu and minimum fractional
  /// pairwise bandwidth over the chosen set, plus the bottleneck pairwise
  /// bandwidth in bits/second and the criterion value maximised.
  double min_cpu = 0.0;
  double min_bw_fraction = 0.0;
  double min_pair_bw = 0.0;
  double objective = 0.0;
  std::string note;  ///< algorithm note (e.g. infeasibility reason)
};

/// A completed placement: nodes per group, in group order.
struct Placement {
  bool feasible = false;
  std::vector<std::vector<topo::NodeId>> group_nodes;
  std::string note;
  /// Degradation decision taken for the query behind this placement.
  DegradationLevel degradation = DegradationLevel::Full;
  /// Fraction of Remos sensors with a fresh sample at query time.
  double measurement_coverage = 1.0;
  /// Explain data: application name, criterion used ("client-server" for
  /// the pattern-aware two-group path), why the degradation rung was
  /// chosen, and per-group diagnostics in group order.
  std::string app;
  std::string criterion;
  std::string degradation_reason;
  /// Priorities the spec placed with (needed to show the binding term).
  double cpu_priority = 1.0;
  double bw_priority = 1.0;
  std::vector<GroupPlacementInfo> groups;

  /// Flattened placement in group order.
  std::vector<topo::NodeId> flat() const;
};

/// Render a human-readable report of a placement decision: chosen nodes by
/// name, per-group achieved figures with the binding term (the smaller of
/// cpu/kc and bw-fraction/kb) marked, and the degradation-ladder reasoning.
std::string explain_report(const Placement& p, const topo::TopologyGraph& g);

}  // namespace netsel::api
