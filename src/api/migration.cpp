#include "api/migration.hpp"

#include <stdexcept>

#include "select/context.hpp"
#include "util/log.hpp"

namespace netsel::api {

MigrationController::MigrationController(remos::Remos& remos,
                                         appsim::LooselySynchronousApp& app,
                                         MigrationPolicy policy,
                                         select::SelectionOptions base_options)
    : remos_(&remos), app_(&app), policy_(policy), base_(std::move(base_options)) {
  if (policy_.check_interval <= 0.0)
    throw std::invalid_argument("MigrationPolicy: check_interval must be > 0");
  if (policy_.improvement_threshold < 0.0)
    throw std::invalid_argument("MigrationPolicy: threshold must be >= 0");
  base_.num_nodes = app.required_nodes();
}

void MigrationController::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  schedule_next();
}

void MigrationController::stop() {
  running_ = false;
  ++epoch_;
}

void MigrationController::schedule_next() {
  std::uint64_t my_epoch = epoch_;
  remos_->monitor().net().sim().schedule_after(
      policy_.check_interval, [this, my_epoch] {
        if (!running_ || epoch_ != my_epoch) return;
        if (app_->finished()) {
          running_ = false;
          return;
        }
        check();
        schedule_next();
      });
}

void MigrationController::check() {
  ++checks_;
  double now = remos_->monitor().net().sim().now();
  if (now - last_migration_time_ < policy_.cooldown) return;

  // Query with the application's own load and traffic excluded (§3.3).
  remos::QueryOptions q;
  q.exclude_owner = app_->owner();
  auto snap = remos_->snapshot(q);
  // Selection and both evaluations below share one context (same snapshot).
  select::SelectionContext ctx(snap);

  auto best = select::select_nodes(policy_.criterion, ctx, base_);
  if (!best.feasible) return;

  // Compare both placements by the same yardstick (exact pairwise
  // evaluation), not the algorithm's internal bookkeeping value.
  auto pick = [&](const select::SetEvaluation& ev) {
    switch (policy_.criterion) {
      case select::Criterion::MaxCompute: return ev.min_cpu;
      case select::Criterion::MaxBandwidth: return ev.min_pair_bw;
      case select::Criterion::Balanced: return ev.balanced;
    }
    return ev.balanced;
  };
  double current_objective =
      pick(select::evaluate_set(ctx, app_->placement(), base_));
  double best_objective = pick(select::evaluate_set(ctx, best.nodes, base_));

  if (best_objective >
      current_objective * (1.0 + policy_.improvement_threshold)) {
    NETSEL_LOG_INFO << "migration triggered at t=" << now << " for app '"
                    << app_->name() << "': objective " << current_objective
                    << " -> " << best_objective;
    app_->migrate(best.nodes, policy_.state_bytes_per_node);
    ++migrations_;
    last_migration_time_ = now;
  } else {
    NETSEL_LOG_DEBUG << "migration check at t=" << now << ": current "
                     << current_objective << ", best " << best_objective
                     << " (below threshold)";
  }
}

}  // namespace netsel::api
