#pragma once
// MigrationController: applies the node-selection procedures "directly to
// the problem of dynamic migration to avoid network congestion and busy
// nodes" (paper §3.3). Periodically re-evaluates a running
// loosely-synchronous application's placement against the current best
// selection — with the application's own load and traffic excluded from the
// query, as the paper requires — and triggers migration when the predicted
// improvement clears a threshold.

#include "appsim/loosely_synchronous.hpp"
#include "remos/remos.hpp"
#include "select/algorithms.hpp"
#include "select/objective.hpp"

namespace netsel::api {

struct MigrationPolicy {
  double check_interval = 30.0;  ///< seconds between re-evaluations
  /// Trigger when best objective > current objective * (1 + threshold);
  /// guards against thrashing on measurement noise.
  double improvement_threshold = 0.5;
  /// Bytes of state each migrating rank ships to its new node.
  double state_bytes_per_node = 8e6;
  /// Minimum time between two migrations.
  double cooldown = 60.0;
  select::Criterion criterion = select::Criterion::Balanced;
};

class MigrationController {
 public:
  MigrationController(remos::Remos& remos, appsim::LooselySynchronousApp& app,
                      MigrationPolicy policy = {},
                      select::SelectionOptions base_options = {});

  /// Begin periodic checks (call after the app has started).
  void start();
  void stop();

  int migrations_triggered() const { return migrations_; }
  int checks_performed() const { return checks_; }

 private:
  void schedule_next();
  void check();

  remos::Remos* remos_;
  appsim::LooselySynchronousApp* app_;
  MigrationPolicy policy_;
  select::SelectionOptions base_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;
  int migrations_ = 0;
  int checks_ = 0;
  double last_migration_time_ = -1e18;
};

}  // namespace netsel::api
