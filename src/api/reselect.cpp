#include "api/reselect.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "select/context.hpp"
#include "select/objective.hpp"

namespace netsel::api {

namespace {

obs::Counter& reselect_calls() {
  static obs::Counter& c = obs::Registry::global().counter("api.reselect.calls");
  return c;
}
obs::Counter& reselect_migrations() {
  static obs::Counter& c =
      obs::Registry::global().counter("api.reselect.migrations");
  return c;
}

bool contains(const std::vector<topo::NodeId>& v, topo::NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

std::vector<topo::NodeId> sorted_difference(std::vector<topo::NodeId> a,
                                            std::vector<topo::NodeId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<topo::NodeId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

double criterion_score(select::Criterion c, const select::SetEvaluation& ev) {
  if (!ev.connected) return 0.0;
  switch (c) {
    case select::Criterion::MaxCompute: return ev.min_cpu;
    case select::Criterion::MaxBandwidth: return ev.min_pair_bw;
    case select::Criterion::Balanced: return ev.balanced;
  }
  return 0.0;
}

ReselectResult reselect(const select::SelectionContext& ctx,
                        const std::vector<topo::NodeId>& current,
                        const ReselectOptions& opt) {
  reselect_calls().inc();
  reselect_migrations();  // register even when no swap happens
  if (current.empty())
    throw std::invalid_argument("reselect: current placement is empty");
  const std::size_t m = current.size();
  select::SelectionOptions sopt = opt.selection;
  sopt.num_nodes = static_cast<int>(m);

  const auto score = [&](const std::vector<topo::NodeId>& nodes) {
    return criterion_score(opt.criterion, evaluate_set(ctx, nodes, sopt));
  };

  ReselectResult res;
  // A current member may have been torn out of the topology entirely
  // (NodeRemoved delta); such a placement cannot be evaluated — score 0.
  const bool current_evaluable =
      std::all_of(current.begin(), current.end(), [&](topo::NodeId n) {
        return ctx.graph().is_compute(n);
      });
  res.objective_before = current_evaluable ? score(current) : 0.0;

  // Members that are no longer eligible (host tombstoned, below the cpu or
  // memory requirements) must be replaced regardless of budget.
  const std::vector<char> eligible = ctx.eligibility(sopt);
  std::vector<topo::NodeId> kept;
  for (topo::NodeId n : current)
    if (eligible[static_cast<std::size_t>(n)]) kept.push_back(n);
  std::sort(kept.begin(), kept.end());

  const select::SelectionResult best =
      select::select_nodes(opt.criterion, ctx, sopt);
  if (!best.feasible) {
    res.nodes = current;
    res.kept_current = true;
    // The kept placement is what keeps running; score it so callers can
    // still see its quality (0 only when a member left the topology).
    res.objective_after = res.objective_before;
    res.note = "reselect: unconstrained selection infeasible, keeping "
               "current placement (" + best.note + ")";
    return res;
  }
  res.objective_unbounded = score(best.nodes);

  std::vector<topo::NodeId> chosen;
  if (opt.max_migrations < 0) {
    chosen = best.nodes;
    res.note = "unbounded: adopted optimum";
  } else {
    chosen = kept;
    // Candidates come from the unconstrained optimum: the bounded result
    // interpolates between "keep everything" and that set.
    std::vector<topo::NodeId> candidates;
    for (topo::NodeId n : best.nodes)
      if (!contains(chosen, n)) candidates.push_back(n);
    std::sort(candidates.begin(), candidates.end());

    // Forced replacements first: refill to m, each time taking the
    // candidate that maximises the score (ties -> lowest id).
    while (chosen.size() < m) {
      std::size_t pick = candidates.size();
      double pick_score = -1.0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        chosen.push_back(candidates[i]);
        const double s = score(chosen);
        chosen.pop_back();
        if (pick == candidates.size() || s > pick_score) {
          pick = i;
          pick_score = s;
        }
      }
      if (pick == candidates.size()) break;  // not enough eligible candidates
      chosen.push_back(candidates[pick]);
      std::sort(chosen.begin(), chosen.end());
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (chosen.size() < m) {
      res.nodes = current;
      res.kept_current = true;
      res.objective_after = res.objective_before;
      res.note = "reselect: cannot refill forced replacements, keeping "
                 "current placement";
      return res;
    }

    // Bounded improvement swaps: what is left of the budget after forced
    // replacements (which may already exceed it).
    const int forced = static_cast<int>(m - kept.size());
    int remaining = std::max(0, opt.max_migrations - forced);
    double cur_score = score(chosen);
    while (remaining > 0 && !candidates.empty()) {
      std::size_t best_out = chosen.size(), best_in = candidates.size();
      double best_score = cur_score;
      for (std::size_t o = 0; o < chosen.size(); ++o) {
        if (!contains(current, chosen[o])) continue;  // only migrate originals
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          std::vector<topo::NodeId> trial = chosen;
          trial[o] = candidates[i];
          const double s = score(trial);
          if (s > best_score + opt.min_improvement) {
            best_score = s;
            best_out = o;
            best_in = i;
          }
        }
      }
      if (best_out == chosen.size()) break;  // no swap improves enough
      chosen[best_out] = candidates[best_in];
      std::sort(chosen.begin(), chosen.end());
      candidates.erase(candidates.begin() +
                       static_cast<std::ptrdiff_t>(best_in));
      cur_score = best_score;
      --remaining;
    }
    res.note = "bounded: budget " + std::to_string(opt.max_migrations) +
               ", forced " + std::to_string(forced);
  }

  std::sort(chosen.begin(), chosen.end());
  res.feasible = true;
  res.nodes = chosen;
  res.migrated_in = sorted_difference(chosen, current);
  res.migrated_out = sorted_difference(current, chosen);
  res.migrations = static_cast<int>(res.migrated_in.size());
  res.objective_after = score(chosen);
  reselect_migrations().inc(static_cast<std::uint64_t>(res.migrations));
  return res;
}

}  // namespace netsel::api
