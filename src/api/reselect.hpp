#pragma once
// Churn-aware re-placement (§3.3 dynamic reselection, bounded): given an
// application's current node set and a fresh SelectionContext, compute a
// replacement set that keeps as much of the current placement as the
// migration budget demands. Full re-selection (the MigrationController's
// baseline) treats every reselection as free; real migrations move process
// state, so operators cap migrations-per-decision and accept a placement
// between "keep everything" and the unconstrained optimum.
//
// The bounded algorithm is keep-k-of-m: run the unconstrained selection,
// then greedily swap current members for members of that optimal set, one
// swap at a time, always taking the swap that most improves the criterion
// score (ties: lowest outgoing id, then lowest incoming id), until the
// budget is exhausted or no swap improves by more than min_improvement.
// Members that became ineligible (host removed, below requirements) are
// replaced first; such forced replacements always happen, count against the
// reported migration count, and may exceed the budget.

#include <string>
#include <vector>

#include "select/algorithms.hpp"
#include "select/options.hpp"
#include "topo/graph.hpp"

namespace netsel::select {
class SelectionContext;
struct SetEvaluation;
}

namespace netsel::api {

struct ReselectOptions {
  /// Maximum migrations (nodes swapped in) per reselection; < 0 = unbounded
  /// (adopt the unconstrained optimum, like the MigrationController).
  int max_migrations = -1;
  /// A swap must improve the criterion score by more than this to be taken.
  double min_improvement = 0.0;
  select::Criterion criterion = select::Criterion::Balanced;
  /// num_nodes is overridden with the current set's size.
  select::SelectionOptions selection;
};

struct ReselectResult {
  bool feasible = false;
  /// Early-exit signal: re-selection could not run (unconstrained selection
  /// infeasible, or forced replacements could not be refilled) and `nodes`
  /// is the *unchanged current placement*, still in force. Distinguishes
  /// "kept a valid placement" (kept_current, objective_after scores the
  /// kept set) from a placement that was actually re-solved (feasible).
  /// A scheduler's release/rebalance path keeps the job where it runs when
  /// this is set instead of treating the decision as a failure.
  bool kept_current = false;
  /// The new placement (ascending node ids).
  std::vector<topo::NodeId> nodes;
  /// nodes \ current and current \ nodes (ascending).
  std::vector<topo::NodeId> migrated_in;
  std::vector<topo::NodeId> migrated_out;
  int migrations = 0;
  /// Criterion score (evaluate_set-based) of the current set, the returned
  /// set, and the unconstrained optimum — the quality-vs-migration
  /// trade-off in one record. On a kept_current exit objective_after equals
  /// objective_before (the kept set is the returned set); it is 0 only when
  /// that set is genuinely unevaluable (a member was removed from the
  /// topology).
  double objective_before = 0.0;
  double objective_after = 0.0;
  double objective_unbounded = 0.0;
  std::string note;
};

/// Criterion score of an evaluated set: min_cpu for MaxCompute, min pairwise
/// bandwidth for MaxBandwidth, the balanced objective otherwise; 0 when the
/// set is not connected through usable links.
double criterion_score(select::Criterion c, const select::SetEvaluation& ev);

/// Bounded re-placement of `current` (its size fixes m). Pure function of
/// the context's snapshot; deterministic.
ReselectResult reselect(const select::SelectionContext& ctx,
                        const std::vector<topo::NodeId>& current,
                        const ReselectOptions& opt);

}  // namespace netsel::api
