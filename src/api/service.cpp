#include "api/service.hpp"

#include <algorithm>
#include <numeric>

#include "select/context.hpp"
#include "select/patterns.hpp"

namespace netsel::api {

select::Criterion default_criterion(AppPattern p) {
  switch (p) {
    case AppPattern::LooselySynchronous: return select::Criterion::Balanced;
    case AppPattern::MasterSlave: return select::Criterion::Balanced;
    case AppPattern::ClientServer: return select::Criterion::Balanced;
    case AppPattern::Custom: return select::Criterion::Balanced;
  }
  return select::Criterion::Balanced;
}

namespace {

/// Eligibility mask for one group: untaken compute nodes matching its tags
/// and host list.
std::vector<char> group_mask(const topo::TopologyGraph& g,
                             const NodeGroup& group,
                             const std::vector<char>& taken) {
  std::vector<char> mask(g.node_count(), 0);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (!g.is_compute(n) || taken[i]) continue;
    const topo::Node& node = g.node(n);
    bool ok = true;
    for (const auto& tag : group.required_tags) {
      if (!node.has_tag(tag)) {
        ok = false;
        break;
      }
    }
    if (ok && !group.allowed_hosts.empty()) {
      ok = std::find(group.allowed_hosts.begin(), group.allowed_hosts.end(),
                     node.name) != group.allowed_hosts.end();
    }
    mask[i] = ok ? 1 : 0;
  }
  return mask;
}

}  // namespace

remos::NetworkSnapshot NodeSelectionService::degraded_snapshot(
    const remos::QueryOptions& query, const DegradationPolicy& policy,
    DegradationLevel& level, remos::QueryQuality& quality) const {
  if (policy.prior_below > policy.smoothed_below)
    throw std::invalid_argument(
        "DegradationPolicy: prior_below must be <= smoothed_below");
  remos::QueryOptions probe = query;
  quality = remos::QueryQuality{};
  probe.quality = &quality;
  auto snap = remos_->snapshot(probe);
  if (query.quality) *query.quality = quality;

  double coverage = quality.coverage();
  level = coverage < policy.prior_below      ? DegradationLevel::Prior
          : coverage < policy.smoothed_below ? DegradationLevel::Smoothed
                                             : DegradationLevel::Full;
  switch (level) {
    case DegradationLevel::Full:
      // The probe query *is* the answer: attaching quality never changes
      // values, so this path is bit-identical to the policy-less service.
      return snap;
    case DegradationLevel::Smoothed: {
      remos::QueryOptions smoothed = query;
      smoothed.quality = nullptr;
      smoothed.forecaster = policy.smoothed_forecaster
                                ? policy.smoothed_forecaster
                                : std::make_shared<remos::WindowMean>();
      smoothed.max_sample_age =
          policy.smoothed_max_age > 0.0
              ? policy.smoothed_max_age
              : remos_->monitor().config().history_window;
      return remos_->snapshot(smoothed);
    }
    case DegradationLevel::Prior:
      // Too little measured state to be worth smoothing: the constructor's
      // capacity/zero-load prior (cpu 1, links at capacity, memory free).
      return remos::NetworkSnapshot(remos_->topology());
  }
  return snap;
}

Placement NodeSelectionService::place(const AppSpec& spec,
                                      const ServiceOptions& opt) const {
  spec.validate();
  const auto& g = remos_->topology();
  DegradationLevel level = DegradationLevel::Full;
  remos::QueryQuality quality;
  auto snap = degraded_snapshot(opt.query, opt.degradation, level, quality);

  // Client-server specs with exactly two groups use the pattern-aware
  // extension (§3.4): the higher-priority group is the server side, chosen
  // for maximum compute; clients are scored by the server->client
  // *directional* bandwidth.
  if (spec.pattern == AppPattern::ClientServer && spec.groups.size() == 2 &&
      !opt.criterion.has_value()) {
    std::size_t si =
        spec.groups[0].placement_priority >= spec.groups[1].placement_priority
            ? 0
            : 1;
    std::size_t ci = 1 - si;
    std::vector<char> none(g.node_count(), 0);
    select::ClientServerOptions cso;
    cso.num_servers = spec.groups[si].count;
    cso.num_clients = spec.groups[ci].count;
    cso.cpu_priority = spec.cpu_priority;
    cso.bw_priority = spec.bw_priority;
    cso.server_eligible = group_mask(g, spec.groups[si], none);
    cso.client_eligible = group_mask(g, spec.groups[ci], none);
    auto r = select::select_client_server(snap, cso);
    Placement placement;
    placement.degradation = level;
    placement.measurement_coverage = quality.coverage();
    placement.group_nodes.resize(2);
    if (!r.feasible) {
      placement.note = r.note;
      return placement;
    }
    placement.feasible = true;
    placement.group_nodes[si] = std::move(r.servers);
    placement.group_nodes[ci] = std::move(r.clients);
    return placement;
  }

  select::Criterion criterion =
      opt.criterion.value_or(default_criterion(spec.pattern));

  // Stable order: higher placement_priority first.
  std::vector<std::size_t> order(spec.groups.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spec.groups[a].placement_priority > spec.groups[b].placement_priority;
  });

  Placement placement;
  placement.degradation = level;
  placement.measurement_coverage = quality.coverage();
  placement.group_nodes.resize(spec.groups.size());
  std::vector<char> taken(g.node_count(), 0);

  // One context for all groups: they share the snapshot, so the deletion
  // orders and bottleneck rows are computed once (only the eligibility mask
  // differs per group, and that is per-call state).
  select::SelectionContext ctx(snap);

  for (std::size_t gi : order) {
    const NodeGroup& group = spec.groups[gi];
    select::SelectionOptions sel;
    sel.num_nodes = group.count;
    sel.cpu_priority = spec.cpu_priority;
    sel.bw_priority = spec.bw_priority;
    sel.min_bw_bps = spec.min_bw_bps;
    sel.min_cpu_fraction = spec.min_cpu_fraction;
    sel.min_free_memory_bytes = spec.min_free_memory_bytes;
    sel.eligible = group_mask(g, group, taken);
    auto result = select::select_nodes(criterion, ctx, sel);
    if (!result.feasible) {
      placement.feasible = false;
      placement.note = "group '" + group.name + "': " +
                       (result.note.empty() ? "infeasible" : result.note);
      return placement;
    }
    for (topo::NodeId n : result.nodes) taken[static_cast<std::size_t>(n)] = 1;
    placement.group_nodes[gi] = std::move(result.nodes);
  }
  placement.feasible = true;
  return placement;
}

select::SelectionResult NodeSelectionService::select(
    int m, select::Criterion c, const remos::QueryOptions& q) const {
  DegradationLevel level = DegradationLevel::Full;
  remos::QueryQuality quality;
  auto snap = degraded_snapshot(q, DegradationPolicy{}, level, quality);
  select::SelectionOptions sel;
  sel.num_nodes = m;
  auto result = select::select_nodes(c, snap, sel);
  if (level != DegradationLevel::Full) {
    if (!result.note.empty()) result.note += "; ";
    result.note += std::string("degraded: ") + degradation_level_name(level);
  }
  return result;
}

}  // namespace netsel::api
