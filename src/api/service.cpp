#include "api/service.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "obs/metrics.hpp"
#include "select/context.hpp"
#include "select/objective.hpp"
#include "select/patterns.hpp"

namespace netsel::api {

namespace {

struct ServiceMetrics {
  obs::Counter& placements;
  obs::Counter& placements_infeasible;
  obs::Counter& degradation_full;
  obs::Counter& degradation_smoothed;
  obs::Counter& degradation_prior;
  obs::Histogram& candidate_set_size;

  obs::Counter& degradation(DegradationLevel level) {
    switch (level) {
      case DegradationLevel::Full: return degradation_full;
      case DegradationLevel::Smoothed: return degradation_smoothed;
      case DegradationLevel::Prior: return degradation_prior;
    }
    return degradation_full;
  }
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics m{
      obs::Registry::global().counter("api.placements"),
      obs::Registry::global().counter("api.placements_infeasible"),
      obs::Registry::global().counter("api.degradation.full"),
      obs::Registry::global().counter("api.degradation.smoothed"),
      obs::Registry::global().counter("api.degradation.prior"),
      // Exponential: candidate sets range from a handful of pinned hosts to
      // every host of a ~1M-host fabric; 2, 4, ..., 2^20 covers the largest
      // generated topology without dumping everything in the overflow bucket.
      obs::Registry::global().histogram("api.candidate_set_size",
                                        obs::exp_buckets(2.0, 2.0, 20)),
  };
  return m;
}

std::string coverage_reason(double coverage, DegradationLevel level,
                            const DegradationPolicy& policy) {
  char buf[160];
  switch (level) {
    case DegradationLevel::Full:
      std::snprintf(buf, sizeof(buf),
                    "coverage %.2f >= smoothed_below %.2f -> measured "
                    "snapshot",
                    coverage, policy.smoothed_below);
      break;
    case DegradationLevel::Smoothed:
      std::snprintf(buf, sizeof(buf),
                    "coverage %.2f < smoothed_below %.2f -> smoothed "
                    "forecaster",
                    coverage, policy.smoothed_below);
      break;
    case DegradationLevel::Prior:
      std::snprintf(buf, sizeof(buf),
                    "coverage %.2f < prior_below %.2f -> capacity prior",
                    coverage, policy.prior_below);
      break;
  }
  return buf;
}

std::size_t mask_count(const std::vector<char>& mask) {
  return static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), char(1)));
}

}  // namespace

void register_service_metrics() { (void)service_metrics(); }

select::Criterion default_criterion(AppPattern p) {
  switch (p) {
    case AppPattern::LooselySynchronous: return select::Criterion::Balanced;
    case AppPattern::MasterSlave: return select::Criterion::Balanced;
    case AppPattern::ClientServer: return select::Criterion::Balanced;
    case AppPattern::Custom: return select::Criterion::Balanced;
  }
  return select::Criterion::Balanced;
}

namespace {

/// Eligibility mask for one group: untaken compute nodes matching its tags
/// and host list.
std::vector<char> group_mask(const topo::TopologyGraph& g,
                             const NodeGroup& group,
                             const std::vector<char>& taken) {
  std::vector<char> mask(g.node_count(), 0);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (!g.is_compute(n) || taken[i]) continue;
    const topo::Node& node = g.node(n);
    bool ok = true;
    for (const auto& tag : group.required_tags) {
      if (!node.has_tag(tag)) {
        ok = false;
        break;
      }
    }
    if (ok && !group.allowed_hosts.empty()) {
      ok = std::find(group.allowed_hosts.begin(), group.allowed_hosts.end(),
                     node.name) != group.allowed_hosts.end();
    }
    mask[i] = ok ? 1 : 0;
  }
  return mask;
}

}  // namespace

remos::NetworkSnapshot NodeSelectionService::degraded_snapshot(
    const remos::QueryOptions& query, const DegradationPolicy& policy,
    DegradationLevel& level, remos::QueryQuality& quality) const {
  if (policy.prior_below > policy.smoothed_below)
    throw std::invalid_argument(
        "DegradationPolicy: prior_below must be <= smoothed_below");
  remos::QueryOptions probe = query;
  quality = remos::QueryQuality{};
  probe.quality = &quality;
  auto snap = remos_->snapshot(probe);
  if (query.quality) *query.quality = quality;

  double coverage = quality.coverage();
  level = coverage < policy.prior_below      ? DegradationLevel::Prior
          : coverage < policy.smoothed_below ? DegradationLevel::Smoothed
                                             : DegradationLevel::Full;
  // Every ladder decision is counted here, whichever entry point asked
  // (place, select, or a diagnostic caller).
  service_metrics().degradation(level).inc();
  switch (level) {
    case DegradationLevel::Full:
      // The probe query *is* the answer: attaching quality never changes
      // values, so this path is bit-identical to the policy-less service.
      return snap;
    case DegradationLevel::Smoothed: {
      remos::QueryOptions smoothed = query;
      smoothed.quality = nullptr;
      smoothed.forecaster = policy.smoothed_forecaster
                                ? policy.smoothed_forecaster
                                : std::make_shared<remos::WindowMean>();
      smoothed.max_sample_age =
          policy.smoothed_max_age > 0.0
              ? policy.smoothed_max_age
              : remos_->monitor().config().history_window;
      return remos_->snapshot(smoothed);
    }
    case DegradationLevel::Prior:
      // Too little measured state to be worth smoothing: the constructor's
      // capacity/zero-load prior (cpu 1, links at capacity, memory free).
      return remos::NetworkSnapshot(remos_->topology());
  }
  return snap;
}

Placement NodeSelectionService::place(const AppSpec& spec,
                                      const ServiceOptions& opt) const {
  spec.validate();
  const auto& g = remos_->topology();
  ServiceMetrics& metrics = service_metrics();
  metrics.placements.inc();
  obs::Span span("api.place", "api",
                 remos_->monitor().net().sim().now());
  span.arg("app", spec.name);
  DegradationLevel level = DegradationLevel::Full;
  remos::QueryQuality quality;
  auto snap = degraded_snapshot(opt.query, opt.degradation, level, quality);
  if (span.active())
    span.arg("degradation", degradation_level_name(level));

  // Client-server specs with exactly two groups use the pattern-aware
  // extension (§3.4): the higher-priority group is the server side, chosen
  // for maximum compute; clients are scored by the server->client
  // *directional* bandwidth.
  if (spec.pattern == AppPattern::ClientServer && spec.groups.size() == 2 &&
      !opt.criterion.has_value()) {
    std::size_t si =
        spec.groups[0].placement_priority >= spec.groups[1].placement_priority
            ? 0
            : 1;
    std::size_t ci = 1 - si;
    std::vector<char> none(g.node_count(), 0);
    select::ClientServerOptions cso;
    cso.num_servers = spec.groups[si].count;
    cso.num_clients = spec.groups[ci].count;
    cso.cpu_priority = spec.cpu_priority;
    cso.bw_priority = spec.bw_priority;
    cso.server_eligible = group_mask(g, spec.groups[si], none);
    cso.client_eligible = group_mask(g, spec.groups[ci], none);
    metrics.candidate_set_size.observe(
        static_cast<double>(mask_count(cso.server_eligible)));
    metrics.candidate_set_size.observe(
        static_cast<double>(mask_count(cso.client_eligible)));
    auto r = select::select_client_server(snap, cso);
    Placement placement;
    placement.degradation = level;
    placement.measurement_coverage = quality.coverage();
    placement.app = spec.name;
    placement.criterion = "client-server";
    placement.degradation_reason =
        coverage_reason(quality.coverage(), level, opt.degradation);
    placement.cpu_priority = spec.cpu_priority;
    placement.bw_priority = spec.bw_priority;
    placement.group_nodes.resize(2);
    placement.groups.resize(2);
    placement.groups[si].group = spec.groups[si].name;
    placement.groups[ci].group = spec.groups[ci].name;
    placement.groups[si].candidates = mask_count(cso.server_eligible);
    placement.groups[ci].candidates = mask_count(cso.client_eligible);
    if (span.active()) span.arg("criterion", placement.criterion);
    if (!r.feasible) {
      // Same shape as the generic multi-group path: every group that could
      // not be placed carries the algorithm note, and the top-level note
      // names the groups. Server and client selection are one joint
      // decision here, so both groups failed together.
      const std::string why = r.note.empty() ? "infeasible" : r.note;
      placement.groups[si].note = why;
      placement.groups[ci].note = why;
      placement.note = "group '" + spec.groups[si].name + "' + '" +
                       spec.groups[ci].name + "': " + why;
      metrics.placements_infeasible.inc();
      if (span.active()) span.arg("feasible", "false");
      return placement;
    }
    placement.feasible = true;
    placement.group_nodes[si] = std::move(r.servers);
    placement.group_nodes[ci] = std::move(r.clients);
    // Per-group achieved figures come from the generic set evaluation on
    // the same snapshot (observational only — the decision was r's).
    select::SelectionContext csx(snap);
    select::SelectionOptions ev_opt;
    ev_opt.cpu_priority = spec.cpu_priority;
    ev_opt.bw_priority = spec.bw_priority;
    for (std::size_t gi : {si, ci}) {
      auto& info = placement.groups[gi];
      info.nodes = placement.group_nodes[gi];
      auto ev = select::evaluate_set(csx, info.nodes, ev_opt);
      info.min_cpu = ev.min_cpu;
      info.min_bw_fraction = ev.min_pair_bw_fraction;
      info.min_pair_bw = ev.min_pair_bw;
      info.objective = gi == ci ? r.objective : ev.balanced;
    }
    if (span.active()) span.arg("feasible", "true");
    return placement;
  }

  select::Criterion criterion =
      opt.criterion.value_or(default_criterion(spec.pattern));
  if (span.active()) span.arg("criterion", select::criterion_name(criterion));

  // Stable order: higher placement_priority first.
  std::vector<std::size_t> order(spec.groups.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spec.groups[a].placement_priority > spec.groups[b].placement_priority;
  });

  Placement placement;
  placement.degradation = level;
  placement.measurement_coverage = quality.coverage();
  placement.app = spec.name;
  placement.criterion = select::criterion_name(criterion);
  placement.degradation_reason =
      coverage_reason(quality.coverage(), level, opt.degradation);
  placement.cpu_priority = spec.cpu_priority;
  placement.bw_priority = spec.bw_priority;
  placement.group_nodes.resize(spec.groups.size());
  placement.groups.resize(spec.groups.size());
  for (std::size_t gi = 0; gi < spec.groups.size(); ++gi)
    placement.groups[gi].group = spec.groups[gi].name;
  std::vector<char> taken(g.node_count(), 0);

  // One context for all groups: they share the snapshot, so the deletion
  // orders and bottleneck rows are computed once (only the eligibility mask
  // differs per group, and that is per-call state).
  select::SelectionContext ctx(snap);

  for (std::size_t gi : order) {
    const NodeGroup& group = spec.groups[gi];
    select::SelectionOptions sel;
    sel.num_nodes = group.count;
    sel.cpu_priority = spec.cpu_priority;
    sel.bw_priority = spec.bw_priority;
    sel.min_bw_bps = spec.min_bw_bps;
    sel.min_cpu_fraction = spec.min_cpu_fraction;
    sel.min_free_memory_bytes = spec.min_free_memory_bytes;
    sel.exact = opt.exact;
    sel.eligible = group_mask(g, group, taken);
    GroupPlacementInfo& info = placement.groups[gi];
    info.candidates = mask_count(sel.eligible);
    metrics.candidate_set_size.observe(static_cast<double>(info.candidates));
    auto result = select::select_nodes(criterion, ctx, sel);
    info.min_cpu = result.min_cpu;
    info.min_bw_fraction = result.min_bw_fraction;
    info.objective = result.objective;
    info.note = result.note;
    if (!result.feasible) {
      placement.feasible = false;
      placement.note = "group '" + group.name + "': " +
                       (result.note.empty() ? "infeasible" : result.note);
      metrics.placements_infeasible.inc();
      if (span.active()) span.arg("feasible", "false");
      return placement;
    }
    // The bits/second bottleneck is not on SelectionResult; the context's
    // cached rows make this re-evaluation O(set^2) lookups.
    info.min_pair_bw = select::evaluate_set(ctx, result.nodes, sel).min_pair_bw;
    info.nodes = result.nodes;
    for (topo::NodeId n : result.nodes) taken[static_cast<std::size_t>(n)] = 1;
    placement.group_nodes[gi] = std::move(result.nodes);
  }
  placement.feasible = true;
  if (span.active()) span.arg("feasible", "true");
  return placement;
}

select::SelectionResult NodeSelectionService::select(
    int m, select::Criterion c, const ServiceOptions& opt) const {
  DegradationLevel level = DegradationLevel::Full;
  remos::QueryQuality quality;
  auto snap = degraded_snapshot(opt.query, opt.degradation, level, quality);
  select::SelectionOptions sel;
  sel.num_nodes = m;
  sel.exact = opt.exact;
  // The same context path every other entry point takes (place, reselect):
  // cached deletion orders and bottleneck rows, bit-identical results.
  select::SelectionContext ctx(snap);
  auto result = select::select_nodes(c, ctx, sel);
  if (level != DegradationLevel::Full) {
    if (!result.note.empty()) result.note += "; ";
    result.note += std::string("degraded: ") + degradation_level_name(level);
  }
  return result;
}

select::SelectionResult NodeSelectionService::select(
    int m, select::Criterion c, const remos::QueryOptions& q) const {
  ServiceOptions opt;
  opt.query = q;
  return select(m, c, opt);
}

ReselectResult NodeSelectionService::reselect(
    const std::vector<topo::NodeId>& current, const ReselectOptions& ropt,
    const ServiceOptions& opt) const {
  DegradationLevel level = DegradationLevel::Full;
  remos::QueryQuality quality;
  auto snap = degraded_snapshot(opt.query, opt.degradation, level, quality);
  select::SelectionContext ctx(snap);
  auto result = api::reselect(ctx, current, ropt);
  if (level != DegradationLevel::Full) {
    if (!result.note.empty()) result.note += "; ";
    result.note += std::string("degraded: ") + degradation_level_name(level);
  }
  return result;
}

}  // namespace netsel::api
