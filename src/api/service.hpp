#pragma once
// NodeSelectionService: the glue of the paper's framework (§2) — takes an
// application specification, queries Remos for the network state, and runs
// the appropriate selection procedure, honouring per-group placement
// constraints (tags, pinned hosts) and group priorities.

#include "api/appspec.hpp"
#include "remos/remos.hpp"
#include "select/algorithms.hpp"

namespace netsel::api {

struct ServiceOptions {
  /// Criterion override; unset -> chosen from the app pattern
  /// (master-slave and loosely-synchronous default to Balanced).
  std::optional<select::Criterion> criterion;
  remos::QueryOptions query;
};

/// Default criterion for an application pattern.
select::Criterion default_criterion(AppPattern p);

class NodeSelectionService {
 public:
  explicit NodeSelectionService(remos::Remos& remos) : remos_(&remos) {}

  /// Select nodes for every group of the spec. Groups are placed in
  /// descending placement_priority (stable within equal priority); each
  /// group sees only nodes not taken by earlier groups.
  Placement place(const AppSpec& spec, const ServiceOptions& opt = {}) const;

  /// Single-group convenience: select m nodes for a pattern.
  select::SelectionResult select(int m, select::Criterion c,
                                 const remos::QueryOptions& q = {}) const;

 private:
  remos::Remos* remos_;
};

}  // namespace netsel::api
