#pragma once
// NodeSelectionService: the glue of the paper's framework (§2) — takes an
// application specification, queries Remos for the network state, and runs
// the appropriate selection procedure, honouring per-group placement
// constraints (tags, pinned hosts) and group priorities.

#include "api/appspec.hpp"
#include "api/reselect.hpp"
#include "remos/remos.hpp"
#include "select/algorithms.hpp"

namespace netsel::api {

/// Graceful-degradation policy for selection under partial or stale
/// measurements. The service probes the snapshot query's QueryQuality and
/// walks the ladder: coverage >= smoothed_below keeps the caller's query
/// untouched (Full, bit-identical to the policy-less behaviour);
/// below it the query is re-run with an averaging forecaster and a
/// staleness bound (Smoothed); below prior_below the measurements are
/// abandoned for the capacity/zero-load prior snapshot (Prior). Selection
/// never throws because of missing measurements at any level.
struct DegradationPolicy {
  /// Coverage below this switches to the smoothing forecaster.
  double smoothed_below = 0.9;
  /// Coverage below this abandons measurements for the prior snapshot.
  double prior_below = 0.4;
  /// Forecaster for the Smoothed level; null -> WindowMean (bridges
  /// isolated dropped samples and averages out measurement noise).
  remos::ForecasterPtr smoothed_forecaster;
  /// Staleness bound applied at the Smoothed level; 0 -> the monitor's
  /// history window (a sensor silent for a full window answers its
  /// fallback — the per-sensor prior — instead of replaying old samples).
  double smoothed_max_age = 0.0;
};

struct ServiceOptions {
  /// Criterion override; unset -> chosen from the app pattern
  /// (master-slave and loosely-synchronous default to Balanced).
  std::optional<select::Criterion> criterion;
  remos::QueryOptions query;
  DegradationPolicy degradation;
  /// Exact branch-and-bound mode (select/bnb.hpp), forwarded verbatim to
  /// every group's SelectionOptions. Off by default: placements keep the
  /// greedy fast paths; enable for certified-optimal (or certified-bound)
  /// placements of small groups.
  select::ExactOptions exact;
};

/// Default criterion for an application pattern.
select::Criterion default_criterion(AppPattern p);

/// Pre-register the service's observability metrics (degradation-rung
/// counters, candidate-set histogram, placement counters) in the global
/// registry so exporters list them with zero values even before any
/// placement ran. Idempotent and cheap; called automatically on first use.
void register_service_metrics();

class NodeSelectionService {
 public:
  explicit NodeSelectionService(remos::Remos& remos) : remos_(&remos) {}

  /// Select nodes for every group of the spec. Groups are placed in
  /// descending placement_priority (stable within equal priority); each
  /// group sees only nodes not taken by earlier groups. The degradation
  /// decision and measurement coverage are recorded on the Placement.
  Placement place(const AppSpec& spec, const ServiceOptions& opt = {}) const;

  /// Single-group convenience: select m nodes for a pattern. Honours the
  /// caller's ServiceOptions (degradation policy and query, like place())
  /// and runs through the shared SelectionContext path; a degraded
  /// selection is annotated in the result note. The explicit criterion
  /// argument wins over opt.criterion.
  select::SelectionResult select(int m, select::Criterion c,
                                 const ServiceOptions& opt = {}) const;
  /// Back-compatible form: a bare query under the default policy.
  select::SelectionResult select(int m, select::Criterion c,
                                 const remos::QueryOptions& q) const;

  /// Churn-aware bounded re-placement (api/reselect.hpp) of a running
  /// application's node set, against the degradation ladder's snapshot:
  /// keep-k-of-m with a migration budget instead of the MigrationController's
  /// free full re-selection.
  ReselectResult reselect(const std::vector<topo::NodeId>& current,
                          const ReselectOptions& ropt,
                          const ServiceOptions& opt = {}) const;

  /// The degradation ladder itself (shared by place/select, exposed for
  /// diagnostics): probe query quality, pick the level, and return the
  /// snapshot selection should run on. `quality` reflects the probe query.
  remos::NetworkSnapshot degraded_snapshot(const remos::QueryOptions& query,
                                           const DegradationPolicy& policy,
                                           DegradationLevel& level,
                                           remos::QueryQuality& quality) const;

 private:
  remos::Remos* remos_;
};

}  // namespace netsel::api
