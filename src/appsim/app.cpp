#include "appsim/app.hpp"

#include <stdexcept>

namespace netsel::appsim {

Application::Application(sim::NetworkSim& net, std::string name)
    : net_(net), name_(std::move(name)), owner_(net.new_owner()) {}

void Application::start(std::vector<topo::NodeId> nodes,
                        std::function<void()> on_finish) {
  if (state_ != AppState::Idle)
    throw std::logic_error("Application::start: already started");
  if (static_cast<int>(nodes.size()) != required_nodes())
    throw std::invalid_argument("Application::start: placement size must be " +
                                std::to_string(required_nodes()));
  for (topo::NodeId n : nodes) {
    if (!net_.has_host(n))
      throw std::invalid_argument("Application::start: node has no host");
  }
  placement_ = std::move(nodes);
  on_finish_ = std::move(on_finish);
  state_ = AppState::Running;
  start_time_ = net_.sim().now();
  run();
}

double Application::elapsed() const {
  if (state_ != AppState::Finished)
    throw std::logic_error("Application::elapsed: not finished");
  return finish_time_ - start_time_;
}

void Application::set_placement(std::vector<topo::NodeId> nodes) {
  if (nodes.size() != placement_.size())
    throw std::invalid_argument("set_placement: size change not allowed");
  placement_ = std::move(nodes);
}

void Application::finish() {
  if (state_ != AppState::Running)
    throw std::logic_error("Application::finish: not running");
  state_ = AppState::Finished;
  finish_time_ = net_.sim().now();
  if (on_finish_) on_finish_();
}

}  // namespace netsel::appsim
