#pragma once
// Application execution framework on the simulated testbed.
//
// An Application is placed on a set of compute nodes and drives jobs
// (compute phases) and flows (communication phases) through the NetworkSim.
// Its jobs and flows carry the application's owner tag, so they show up in
// Remos measurements like any real workload — and can be excluded from
// queries for migration decisions (§3.3).

#include <functional>
#include <string>
#include <vector>

#include "sim/network_sim.hpp"
#include "topo/graph.hpp"

namespace netsel::appsim {

enum class AppState { Idle, Running, Finished };

class Application {
 public:
  explicit Application(sim::NetworkSim& net, std::string name);
  virtual ~Application() = default;
  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  /// Place the application on `nodes` and begin execution at the current
  /// simulation time. `on_finish` fires once, when the run completes.
  void start(std::vector<topo::NodeId> nodes,
             std::function<void()> on_finish = {});

  AppState state() const { return state_; }
  bool finished() const { return state_ == AppState::Finished; }
  /// Wall-clock (simulated) execution time; valid once finished.
  double elapsed() const;
  double start_time() const { return start_time_; }

  /// The nodes the application currently occupies (updated by migration).
  const std::vector<topo::NodeId>& placement() const { return placement_; }
  sim::OwnerTag owner() const { return owner_; }
  const std::string& name() const { return name_; }

  /// Number of nodes this application requires.
  virtual int required_nodes() const = 0;

 protected:
  /// Subclass hook: begin executing on placement().
  virtual void run() = 0;
  /// Subclass calls this exactly once when its work completes.
  void finish();
  /// Subclass hook for migration: record the new working placement so
  /// placement() stays truthful for observers (e.g. MigrationController).
  void set_placement(std::vector<topo::NodeId> nodes);

  sim::NetworkSim& net_;

 private:
  std::string name_;
  sim::OwnerTag owner_;
  AppState state_ = AppState::Idle;
  std::vector<topo::NodeId> placement_;
  std::function<void()> on_finish_;
  double start_time_ = 0.0;
  double finish_time_ = 0.0;
};

}  // namespace netsel::appsim
