#include "appsim/loosely_synchronous.hpp"

#include <stdexcept>

namespace netsel::appsim {

LooselySynchronousApp::LooselySynchronousApp(sim::NetworkSim& net,
                                             LooselySyncConfig cfg,
                                             std::string name)
    : Application(net, std::move(name)), cfg_(std::move(cfg)) {
  if (cfg_.num_nodes < 1)
    throw std::invalid_argument("LooselySynchronousApp: need >= 1 node");
  if (cfg_.iterations < 1)
    throw std::invalid_argument("LooselySynchronousApp: need >= 1 iteration");
  if (cfg_.phases.empty())
    throw std::invalid_argument("LooselySynchronousApp: need >= 1 phase");
  for (const auto& p : cfg_.phases) {
    if (p.work_per_node < 0.0 || p.bytes_per_message < 0.0)
      throw std::invalid_argument("LooselySynchronousApp: negative phase spec");
    if (p.pattern != CommPattern::None && p.bytes_per_message > 0.0 &&
        cfg_.num_nodes < 2)
      throw std::invalid_argument(
          "LooselySynchronousApp: communication needs >= 2 nodes");
  }
}

void LooselySynchronousApp::migrate(std::vector<topo::NodeId> new_nodes,
                                    double state_bytes_per_node) {
  if (static_cast<int>(new_nodes.size()) != cfg_.num_nodes)
    throw std::invalid_argument("migrate: placement size mismatch");
  if (state_bytes_per_node < 0.0)
    throw std::invalid_argument("migrate: negative state size");
  migration_pending_ = true;
  migration_target_ = std::move(new_nodes);
  migration_state_bytes_ = state_bytes_per_node;
}

void LooselySynchronousApp::run() {
  nodes_ = placement();
  begin_iteration();
}

void LooselySynchronousApp::begin_iteration() {
  phase_index_ = 0;
  begin_phase();
}

void LooselySynchronousApp::begin_phase() {
  const PhaseSpec& p = cfg_.phases[phase_index_];
  if (p.work_per_node > 0.0) {
    start_compute();
  } else if (p.pattern != CommPattern::None && p.bytes_per_message > 0.0) {
    start_comm();
  } else {
    phase_done();
  }
}

void LooselySynchronousApp::start_compute() {
  const PhaseSpec& p = cfg_.phases[phase_index_];
  outstanding_ = cfg_.num_nodes;
  for (topo::NodeId n : nodes_) {
    net_.host(n).submit(p.work_per_node, owner(), [this](sim::JobId) {
      if (--outstanding_ == 0) {
        const PhaseSpec& ph = cfg_.phases[phase_index_];
        if (ph.pattern != CommPattern::None && ph.bytes_per_message > 0.0) {
          start_comm();
        } else {
          phase_done();
        }
      }
    });
  }
}

void LooselySynchronousApp::start_comm() {
  const PhaseSpec& p = cfg_.phases[phase_index_];
  std::vector<std::pair<topo::NodeId, topo::NodeId>> msgs;
  const int m = cfg_.num_nodes;
  switch (p.pattern) {
    case CommPattern::None:
      break;
    case CommPattern::AllToAll:
      for (int i = 0; i < m; ++i)
        for (int j = 0; j < m; ++j)
          if (i != j)
            msgs.emplace_back(nodes_[static_cast<std::size_t>(i)],
                              nodes_[static_cast<std::size_t>(j)]);
      break;
    case CommPattern::Ring:
      for (int i = 0; i < m; ++i)
        msgs.emplace_back(nodes_[static_cast<std::size_t>(i)],
                          nodes_[static_cast<std::size_t>((i + 1) % m)]);
      break;
    case CommPattern::Gather:
      for (int i = 1; i < m; ++i)
        msgs.emplace_back(nodes_[static_cast<std::size_t>(i)], nodes_[0]);
      break;
    case CommPattern::Broadcast:
      for (int i = 1; i < m; ++i)
        msgs.emplace_back(nodes_[0], nodes_[static_cast<std::size_t>(i)]);
      break;
  }
  if (msgs.empty()) {
    phase_done();
    return;
  }
  outstanding_ = static_cast<int>(msgs.size());
  for (const auto& [src, dst] : msgs) {
    net_.network().start_flow(src, dst, p.bytes_per_message, owner(),
                              [this](sim::FlowId) {
                                if (--outstanding_ == 0) phase_done();
                              });
  }
}

void LooselySynchronousApp::phase_done() {
  ++phase_index_;
  if (phase_index_ < cfg_.phases.size()) {
    begin_phase();
  } else {
    iteration_done();
  }
}

void LooselySynchronousApp::iteration_done() {
  ++iterations_done_;
  if (iterations_done_ >= cfg_.iterations) {
    finish();
    return;
  }
  if (migration_pending_) {
    start_migration();
  } else {
    begin_iteration();
  }
}

void LooselySynchronousApp::start_migration() {
  migration_pending_ = false;
  auto target = std::move(migration_target_);
  // Transfer each rank's state from its old node to its new node; ranks
  // staying put migrate for free.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> moves;
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (target[i] != nodes_[i] && migration_state_bytes_ > 0.0)
      moves.emplace_back(nodes_[i], target[i]);
  }
  nodes_ = std::move(target);
  set_placement(nodes_);
  ++migrations_done_;
  if (moves.empty()) {
    begin_iteration();
    return;
  }
  outstanding_ = static_cast<int>(moves.size());
  for (const auto& [src, dst] : moves) {
    net_.network().start_flow(src, dst, migration_state_bytes_, owner(),
                              [this](sim::FlowId) {
                                if (--outstanding_ == 0) begin_iteration();
                              });
  }
}

}  // namespace netsel::appsim
