#pragma once
// Loosely-synchronous parallel application model — the structure of the
// paper's FFT and Airshed codes: barrier-separated compute and
// communication phases repeated for a number of iterations, where "any
// computation or communication step can become a bottleneck" (§4.3). This
// is why these codes suffer ~3x slowdowns under load+traffic and why node
// selection helps them most.
//
// Supports migration at iteration boundaries (natural checkpoints): the
// pending placement takes effect after per-node state transfer flows
// complete, implementing the paper's §3.3 "dynamic migration" use case.

#include <vector>

#include "appsim/app.hpp"

namespace netsel::appsim {

enum class CommPattern {
  None,      ///< compute-only phase
  AllToAll,  ///< every ordered pair exchanges a message (FFT transpose)
  Ring,      ///< node i sends to node (i+1) mod m (boundary exchange)
  Gather,    ///< every node sends to node 0 (reduction / I/O phase)
  Broadcast, ///< node 0 sends to every other node
};

struct PhaseSpec {
  /// Reference-CPU-seconds of computation per node in this phase.
  double work_per_node = 0.0;
  /// Bytes per message in the communication pattern.
  double bytes_per_message = 0.0;
  CommPattern pattern = CommPattern::None;
};

struct LooselySyncConfig {
  int num_nodes = 4;
  int iterations = 1;
  std::vector<PhaseSpec> phases;
};

class LooselySynchronousApp final : public Application {
 public:
  LooselySynchronousApp(sim::NetworkSim& net, LooselySyncConfig cfg,
                        std::string name = "loosely-synchronous");

  int required_nodes() const override { return cfg_.num_nodes; }
  int iterations_completed() const { return iterations_done_; }

  /// Request migration to `new_nodes` (same count). Takes effect at the
  /// next iteration boundary: each rank transfers `state_bytes_per_node`
  /// from its old node to its new node, then execution continues. A second
  /// request before the first is applied replaces it.
  void migrate(std::vector<topo::NodeId> new_nodes,
               double state_bytes_per_node);

  int migrations_completed() const { return migrations_done_; }

 protected:
  void run() override;

 private:
  void begin_iteration();
  void begin_phase();
  void start_compute();
  void start_comm();
  void phase_done();
  void iteration_done();
  void start_migration();

  LooselySyncConfig cfg_;
  std::vector<topo::NodeId> nodes_;  // current working placement
  int iterations_done_ = 0;
  std::size_t phase_index_ = 0;
  int outstanding_ = 0;

  bool migration_pending_ = false;
  std::vector<topo::NodeId> migration_target_;
  double migration_state_bytes_ = 0.0;
  int migrations_done_ = 0;
};

}  // namespace netsel::appsim
