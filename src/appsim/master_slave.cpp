#include "appsim/master_slave.hpp"

#include <stdexcept>

namespace netsel::appsim {

MasterSlaveApp::MasterSlaveApp(sim::NetworkSim& net, MasterSlaveConfig cfg,
                               std::string name)
    : Application(net, std::move(name)), cfg_(cfg) {
  if (cfg_.num_nodes < 2)
    throw std::invalid_argument("MasterSlaveApp: need a master and >= 1 slave");
  if (cfg_.num_tasks < 1)
    throw std::invalid_argument("MasterSlaveApp: need >= 1 task");
  if (cfg_.task_work <= 0.0)
    throw std::invalid_argument("MasterSlaveApp: task_work must be > 0");
  if (cfg_.input_bytes < 0.0 || cfg_.output_bytes < 0.0)
    throw std::invalid_argument("MasterSlaveApp: negative message size");
  if (cfg_.window < 1)
    throw std::invalid_argument("MasterSlaveApp: window must be >= 1");
}

const std::vector<int>& MasterSlaveApp::per_slave_completed() const {
  per_slave_.assign(slaves_.size(), 0);
  for (std::size_t s = 0; s < slaves_.size(); ++s)
    per_slave_[s] = slaves_[s].completed;
  return per_slave_;
}

void MasterSlaveApp::run() {
  slaves_.assign(static_cast<std::size_t>(cfg_.num_nodes - 1), SlaveState{});
  // Prime every slave with up to `window` tasks; inputs prefetch while the
  // slave computes, so window > 1 hides transfer time behind computation.
  for (std::size_t s = 0; s < slaves_.size(); ++s) {
    for (int w = 0; w < cfg_.window; ++w) assign_next(s);
  }
}

void MasterSlaveApp::assign_next(std::size_t slave_index) {
  if (tasks_assigned_ >= cfg_.num_tasks) return;
  ++tasks_assigned_;
  topo::NodeId master = placement()[0];
  topo::NodeId slave = placement()[slave_index + 1];
  if (cfg_.input_bytes > 0.0 && master != slave) {
    net_.network().start_flow(
        master, slave, cfg_.input_bytes, owner(),
        [this, slave_index](sim::FlowId) { on_input_arrived(slave_index); });
  } else {
    on_input_arrived(slave_index);
  }
}

void MasterSlaveApp::on_input_arrived(std::size_t slave_index) {
  slaves_[slave_index].ready += 1;
  maybe_start_compute(slave_index);
}

void MasterSlaveApp::maybe_start_compute(std::size_t slave_index) {
  SlaveState& st = slaves_[slave_index];
  if (st.computing || st.ready == 0) return;
  st.ready -= 1;
  st.computing = true;
  topo::NodeId slave = placement()[slave_index + 1];
  net_.host(slave).submit(
      cfg_.task_work, owner(),
      [this, slave_index](sim::JobId) { on_task_computed(slave_index); });
}

void MasterSlaveApp::on_task_computed(std::size_t slave_index) {
  slaves_[slave_index].computing = false;
  maybe_start_compute(slave_index);  // next prefetched input, if any
  topo::NodeId master = placement()[0];
  topo::NodeId slave = placement()[slave_index + 1];
  if (cfg_.output_bytes > 0.0 && master != slave) {
    net_.network().start_flow(
        slave, master, cfg_.output_bytes, owner(),
        [this, slave_index](sim::FlowId) { on_result_arrived(slave_index); });
  } else {
    on_result_arrived(slave_index);
  }
}

void MasterSlaveApp::on_result_arrived(std::size_t slave_index) {
  slaves_[slave_index].completed += 1;
  ++tasks_completed_;
  if (tasks_completed_ >= cfg_.num_tasks) {
    finish();
    return;
  }
  assign_next(slave_index);
}

}  // namespace netsel::appsim
