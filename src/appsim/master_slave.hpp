#pragma once
// Master-slave task-farm application model — the structure of the paper's
// MRI code: "MRI uses a master-slave protocol for compute intensive regions
// that automatically adapts if a compute or communication step slows down"
// (§4.3). A slow slave simply completes fewer tasks, so the impact of load
// and traffic is much smaller than for loosely-synchronous codes — the
// paper's Table 1 shows at most ~25% degradation for MRI vs ~300% for FFT.

#include <vector>

#include "appsim/app.hpp"

namespace netsel::appsim {

struct MasterSlaveConfig {
  /// Total nodes including the master (placement[0] is the master).
  int num_nodes = 4;
  /// Number of independent work units (e.g. images of the epi dataset).
  int num_tasks = 128;
  /// Reference-CPU-seconds per task on a slave.
  double task_work = 4.0;
  /// Bytes sent master -> slave per task (input chunk).
  double input_bytes = 1e6;
  /// Bytes sent slave -> master per task (result).
  double output_bytes = 2.5e5;
  /// Tasks a slave may hold concurrently (prefetch window; 1 = classic
  /// request-response farming).
  int window = 1;
};

class MasterSlaveApp final : public Application {
 public:
  MasterSlaveApp(sim::NetworkSim& net, MasterSlaveConfig cfg,
                 std::string name = "master-slave");

  int required_nodes() const override { return cfg_.num_nodes; }
  int tasks_completed() const { return tasks_completed_; }
  /// Tasks each slave finished — shows the farm's self-balancing.
  const std::vector<int>& per_slave_completed() const;

 protected:
  void run() override;

 private:
  struct SlaveState {
    /// Inputs received and waiting for the CPU (the slave computes one
    /// task at a time; prefetched inputs queue here).
    int ready = 0;
    bool computing = false;
    int completed = 0;
  };

  void assign_next(std::size_t slave_index);
  void on_input_arrived(std::size_t slave_index);
  void maybe_start_compute(std::size_t slave_index);
  void on_task_computed(std::size_t slave_index);
  void on_result_arrived(std::size_t slave_index);

  MasterSlaveConfig cfg_;
  int tasks_assigned_ = 0;
  int tasks_completed_ = 0;
  std::vector<SlaveState> slaves_;
  mutable std::vector<int> per_slave_;  // materialised view for accessors
};

}  // namespace netsel::appsim
