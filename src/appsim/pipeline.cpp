#include "appsim/pipeline.hpp"

#include <stdexcept>

namespace netsel::appsim {

PipelineApp::PipelineApp(sim::NetworkSim& net, PipelineConfig cfg,
                         std::string name)
    : Application(net, std::move(name)), cfg_(std::move(cfg)) {
  if (cfg_.num_items < 1)
    throw std::invalid_argument("PipelineApp: need >= 1 item");
  if (cfg_.stage_work.size() < 2)
    throw std::invalid_argument("PipelineApp: need >= 2 stages");
  if (cfg_.transfer_bytes.size() != cfg_.stage_work.size() - 1)
    throw std::invalid_argument(
        "PipelineApp: transfer_bytes must have stages-1 entries");
  for (double w : cfg_.stage_work) {
    if (w <= 0.0)
      throw std::invalid_argument("PipelineApp: stage work must be > 0");
  }
  for (double b : cfg_.transfer_bytes) {
    if (b < 0.0)
      throw std::invalid_argument("PipelineApp: negative transfer size");
  }
}

double PipelineApp::first_item_latency() const {
  if (first_done_time_ < 0.0)
    throw std::logic_error("PipelineApp: no item completed yet");
  return first_done_time_ - start_time();
}

double PipelineApp::throughput() const {
  return static_cast<double>(cfg_.num_items) / elapsed();
}

void PipelineApp::run() {
  stages_.assign(static_cast<std::size_t>(cfg_.num_stages()), Stage{});
  feed_source();
}

void PipelineApp::feed_source() {
  // The source stage pulls the next item as soon as it is free; all items
  // are available from the start (a camera/file reader at stage 0).
  if (items_injected_ >= cfg_.num_items) return;
  enqueue(0, items_injected_++);
}

void PipelineApp::enqueue(std::size_t stage, int item) {
  stages_[stage].queue.push_back(item);
  maybe_start(stage);
}

void PipelineApp::maybe_start(std::size_t stage) {
  Stage& st = stages_[stage];
  if (st.busy || st.queue.empty()) return;
  int item = st.queue.front();
  st.queue.erase(st.queue.begin());
  st.busy = true;
  net_.host(placement()[stage]).submit(
      cfg_.stage_work[stage], owner(),
      [this, stage, item](sim::JobId) { stage_computed(stage, item); });
}

void PipelineApp::stage_computed(std::size_t stage, int item) {
  stages_[stage].busy = false;
  maybe_start(stage);
  if (stage == 0) feed_source();

  if (stage + 1 >= stages_.size()) {
    item_done(item);
    return;
  }
  double bytes = cfg_.transfer_bytes[stage];
  topo::NodeId src = placement()[stage];
  topo::NodeId dst = placement()[stage + 1];
  if (bytes > 0.0 && src != dst) {
    net_.network().start_flow(src, dst, bytes, owner(),
                              [this, stage, item](sim::FlowId) {
                                enqueue(stage + 1, item);
                              });
  } else {
    enqueue(stage + 1, item);
  }
}

void PipelineApp::item_done(int item) {
  (void)item;
  ++items_completed_;
  if (first_done_time_ < 0.0) first_done_time_ = net_.sim().now();
  if (items_completed_ >= cfg_.num_items) finish();
}

}  // namespace netsel::appsim
