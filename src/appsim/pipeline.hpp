#pragma once
// Data-parallel pipeline application model. The paper's related-work
// anchors include the authors' own latency-throughput tradeoff study for
// data-parallel pipelines [23], and §3.4 calls for richer execution
// patterns; this model supplies the pipeline pattern: a chain of stages,
// one per node, where items stream through stage computations and
// stage-to-stage transfers. Steady-state throughput is gated by the
// slowest stage *or* slowest inter-stage link — which is what makes
// placement interesting (see select::select_pipeline).

#include <vector>

#include "appsim/app.hpp"

namespace netsel::appsim {

struct PipelineConfig {
  /// Items to push through the pipeline.
  int num_items = 64;
  /// Reference-CPU-seconds per item per stage; size = number of stages.
  std::vector<double> stage_work;
  /// Bytes transferred between consecutive stages; size = stages - 1.
  std::vector<double> transfer_bytes;

  int num_stages() const { return static_cast<int>(stage_work.size()); }
};

class PipelineApp final : public Application {
 public:
  PipelineApp(sim::NetworkSim& net, PipelineConfig cfg,
              std::string name = "pipeline");

  int required_nodes() const override { return cfg_.num_stages(); }
  int items_completed() const { return items_completed_; }

  /// Simulated time from start until the FIRST item left the pipeline
  /// (the latency metric of the latency-throughput tradeoff); valid once
  /// at least one item completed.
  double first_item_latency() const;
  /// Items per second over the whole run; valid once finished.
  double throughput() const;

 protected:
  void run() override;

 private:
  void feed_source();
  void enqueue(std::size_t stage, int item);
  void maybe_start(std::size_t stage);
  void stage_computed(std::size_t stage, int item);
  void item_done(int item);

  PipelineConfig cfg_;
  int items_injected_ = 0;
  int items_completed_ = 0;
  double first_done_time_ = -1.0;
  struct Stage {
    std::vector<int> queue;  // FIFO of item ids awaiting compute
    bool busy = false;
  };
  std::vector<Stage> stages_;
};

}  // namespace netsel::appsim
