#include "appsim/presets.hpp"

namespace netsel::appsim {

// Calibration notes (4 nodes on one 100 Mbps switch, idle testbed):
// all-to-all of `s` bytes/pair with 4 nodes puts 3 concurrent flows on each
// access-link direction, so every flow gets ~33 Mbps and the phase takes
// s * 8 * 3 / 100e6 seconds. With s = 2.5 MB that is 0.60 s; adding 0.90 s
// of compute gives a 1.50 s iteration and 32 * 1.5 = 48 s total.
LooselySyncConfig fft1k() {
  LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 32;
  cfg.phases = {
      PhaseSpec{0.90, 2.5e6, CommPattern::AllToAll},
  };
  return cfg;
}

// 12 half-hour steps; per step: transport (4.2 s compute + 12 MB ring
// boundary exchange, ~0.96 s on an idle switch), chemistry (5.5 s compute),
// and a gather of 6 MB from 4 ranks into rank 0 (~1.92 s on the shared
// master down-link) — about 12.6 s per step, ~150 s total.
LooselySyncConfig airshed() {
  LooselySyncConfig cfg;
  cfg.num_nodes = 5;
  cfg.iterations = 12;
  cfg.phases = {
      PhaseSpec{4.2, 12e6, CommPattern::Ring},
      PhaseSpec{5.5, 0.0, CommPattern::None},
      PhaseSpec{0.0, 6e6, CommPattern::Gather},
  };
  return cfg;
}

// 240 images; per image ~4 MB input, 5.55 s of processing, 1 MB result.
// Three slaves pipeline independently; per-slave cycle is roughly
// ~1.2 s of transfers + 5.55 s compute: 240 * 6.75 / 3 = 540 s.
MasterSlaveConfig mri() {
  MasterSlaveConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_tasks = 240;
  cfg.task_work = 5.55;
  cfg.input_bytes = 4e6;
  cfg.output_bytes = 1e6;
  cfg.window = 1;
  return cfg;
}

}  // namespace netsel::appsim
