#pragma once
// Workload presets modelling the paper's three applications (§4.3),
// calibrated so the unloaded, well-placed execution times on the simulated
// Fig. 4 testbed approximate the paper's reference column of Table 1:
// FFT 48 s, Airshed 150 s, MRI 540 s. EXPERIMENTS.md records the measured
// calibration.

#include "appsim/loosely_synchronous.hpp"
#include "appsim/master_slave.hpp"

namespace netsel::appsim {

/// 2-D FFT of a 1K x 1K complex grid on 4 nodes, 32 iterations. Each
/// iteration computes the row/column FFTs then performs the transpose —
/// an all-to-all where each node ships 3/4 of its 5 MB block, ~1.25 MB to
/// each peer. Loosely synchronous: the slowest node or busiest path gates
/// every iteration.
LooselySyncConfig fft1k();

/// Airshed pollution modelling, 6 simulated hours on 5 nodes. Each of the
/// 12 half-hour steps runs a transport phase (compute + ring boundary
/// exchange), a chemistry phase (compute-dominated), and a concentration
/// I/O phase (gather to rank 0).
LooselySyncConfig airshed();

/// Magnetic resonance imaging (epi dataset) on 4 nodes: a master farms
/// per-image processing tasks to 3 slaves; the protocol self-balances when
/// a slave or its path slows down.
MasterSlaveConfig mri();

}  // namespace netsel::appsim
