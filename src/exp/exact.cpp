#include "exp/exact.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>

#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"
#include "select/bnb.hpp"
#include "select/context.hpp"
#include "topo/synthetic.hpp"

namespace netsel::exp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct FamilyInstance {
  std::string name;
  std::unique_ptr<topo::TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

std::vector<FamilyInstance> build_families(const ExactGridOptions& opt) {
  std::vector<FamilyInstance> out;
  {
    auto ft = topo::fat_tree_for_hosts(opt.hosts, 12, 2.0, opt.seed);
    ft.cpu_jitter = 0.3;
    FamilyInstance f;
    f.name = "fat_tree";
    f.graph = std::make_unique<topo::TopologyGraph>(topo::fat_tree(ft));
    out.push_back(std::move(f));
  }
  {
    topo::CampusWanOptions cw;
    cw.campuses = 3;
    cw.buildings_per_campus = 4;
    cw.hosts_per_building = opt.hosts / 12;
    cw.seed = opt.seed;
    FamilyInstance f;
    f.name = "campus_wan";
    f.graph = std::make_unique<topo::TopologyGraph>(topo::campus_wan(cw));
    out.push_back(std::move(f));
  }
  {
    topo::RandomCoreEdgeOptions ce;
    ce.core_switches = 6;
    ce.edge_switches = 16;
    ce.hosts = opt.hosts;
    ce.seed = opt.seed;
    FamilyInstance f;
    f.name = "random_core_edge";
    f.graph =
        std::make_unique<topo::TopologyGraph>(topo::random_core_edge(ce));
    out.push_back(std::move(f));
  }
  for (auto& f : out) {
    f.snap = std::make_unique<remos::NetworkSnapshot>(*f.graph);
    remos::apply_synthetic_load(*f.snap, opt.seed * 31 + 7);
  }
  return out;
}

ExactCell run_cell(const select::SelectionContext& ctx,
                   const std::string& family, const std::string& variant,
                   select::Criterion c, const select::SelectionOptions& sel,
                   const ExactGridOptions& opt) {
  ExactCell cell;
  cell.family = family;
  cell.variant = variant;
  cell.m = sel.num_nodes;
  cell.criterion = c;

  // The greedy answer, scored on the exact pairwise scale.
  const auto greedy = select::select_nodes(c, ctx, sel);
  cell.greedy_feasible = greedy.feasible;
  if (greedy.feasible)
    cell.greedy_value = select::exact_set_value(ctx, sel, c, greedy.nodes);

  select::SelectionOptions exact = sel;
  exact.exact.node_budget = opt.node_budget;
  exact.exact.max_open = opt.max_open;
  const auto t0 = std::chrono::steady_clock::now();
  const auto bnb = select::branch_and_bound_select(ctx, exact, c);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  cell.seconds = dt.count();
  cell.exact_feasible = bnb.feasible;
  cell.exact_value = bnb.objective;
  cell.upper_bound = bnb.upper_bound;
  cell.certified = bnb.certified;
  cell.stop = select::bnb_stop_name(bnb.stop);
  cell.expanded = bnb.stats.expanded;
  cell.pushed = bnb.stats.pushed;
  cell.pool = bnb.stats.pool_size;
  if (opt.verbose)
    std::fprintf(stderr, "  %s %s m=%d %s: ratio=%.4f %s (%llu expanded)\n",
                 family.c_str(), select::criterion_name(c), cell.m,
                 variant.empty() ? "base" : variant.c_str(),
                 cell.greedy_ratio(), cell.certified ? "exact" : "bound",
                 static_cast<unsigned long long>(cell.expanded));
  return cell;
}

}  // namespace

double ExactCell::greedy_ratio() const {
  if (!greedy_feasible || !std::isfinite(greedy_value) ||
      !std::isfinite(upper_bound) || upper_bound <= 0.0)
    return std::numeric_limits<double>::quiet_NaN();
  return greedy_value / upper_bound;
}

double ExactCell::bracket_ratio() const {
  if (!exact_feasible || !std::isfinite(exact_value) ||
      !std::isfinite(upper_bound) || upper_bound <= 0.0)
    return std::numeric_limits<double>::quiet_NaN();
  return exact_value / upper_bound;
}

std::vector<ExactCell> run_exact_grid(const ExactGridOptions& opt) {
  std::vector<ExactCell> cells;
  auto families = build_families(opt);
  for (const auto& f : families) {
    select::SelectionContext ctx(*f.snap);
    if (opt.verbose) std::fprintf(stderr, "%s:\n", f.name.c_str());
    for (int m : opt.ms) {
      for (select::Criterion c :
           {select::Criterion::MaxCompute, select::Criterion::MaxBandwidth,
            select::Criterion::Balanced}) {
        select::SelectionOptions sel;
        sel.num_nodes = m;
        cells.push_back(run_cell(ctx, f.name, "", c, sel, opt));
      }
    }
  }
  if (opt.constraint_cells) {
    // Fixed-constraint x prioritization block (paper Sec. 3.3): balanced
    // criterion on the fat-tree instance at m = 8.
    const auto& f = families[0];
    select::SelectionContext ctx(*f.snap);
    struct Combo {
      const char* name;
      double cpu_p, bw_p, min_bw;
    };
    const Combo combos[] = {
        {"cpu1_bw1", 1.0, 1.0, 0.0},
        {"cpu2_bw1", 2.0, 1.0, 0.0},
        {"cpu1_bw2", 1.0, 2.0, 0.0},
        {"cpu1_bw1_min40", 1.0, 1.0, 40 * topo::kMbps},
        {"cpu2_bw1_min40", 2.0, 1.0, 40 * topo::kMbps},
        {"cpu1_bw2_min40", 1.0, 2.0, 40 * topo::kMbps},
    };
    if (opt.verbose) std::fprintf(stderr, "constraints (fat_tree, m=8):\n");
    for (const Combo& combo : combos) {
      select::SelectionOptions sel;
      sel.num_nodes = 8;
      sel.cpu_priority = combo.cpu_p;
      sel.bw_priority = combo.bw_p;
      sel.min_bw_bps = combo.min_bw;
      cells.push_back(run_cell(ctx, f.name, combo.name,
                               select::Criterion::Balanced, sel, opt));
    }
  }
  return cells;
}

std::string format_exact_grid(const std::vector<ExactCell>& cells,
                              const ExactGridOptions& opt) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "Optimality-gap certification (seed %llu, node budget %llu "
                "per cell)\n",
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(opt.node_budget));
  out += line;
  std::snprintf(line, sizeof(line), "%-17s %-16s %4s %-10s %9s %12s %9s %s\n",
                "family", "variant/crit", "m", "status", "ratio", "expanded",
                "pool", "greedy<=opt<=bound");
  out += line;
  for (const ExactCell& c : cells) {
    const double ratio = c.greedy_ratio();
    char bracket[96];
    if (c.greedy_feasible && c.exact_feasible)
      std::snprintf(bracket, sizeof(bracket), "%.6g <= opt <= %.6g",
                    c.greedy_value, c.upper_bound);
    else
      std::snprintf(bracket, sizeof(bracket), "infeasible");
    std::snprintf(
        line, sizeof(line), "%-17s %-16s %4d %-10s %9.4f %12llu %9zu %s\n",
        c.family.c_str(),
        c.variant.empty() ? select::criterion_name(c.criterion)
                          : c.variant.c_str(),
        c.m, c.certified ? "exact" : c.stop.c_str(),
        std::isnan(ratio) ? 0.0 : ratio,
        static_cast<unsigned long long>(c.expanded), c.pool, bracket);
    out += line;
  }
  return out;
}

std::string exact_grid_csv(const std::vector<ExactCell>& cells,
                           const ExactGridOptions&) {
  std::string out =
      "family,variant,criterion,m,pool,greedy_value,exact_value,upper_bound,"
      "greedy_ratio,certified,stop,expanded,pushed,seconds\n";
  char line[320];
  for (const ExactCell& c : cells) {
    std::snprintf(line, sizeof(line),
                  "%s,%s,%s,%d,%zu,%.17g,%.17g,%.17g,%.6f,%d,%s,%llu,%llu,"
                  "%.4f\n",
                  c.family.c_str(), c.variant.c_str(),
                  select::criterion_name(c.criterion), c.m, c.pool,
                  c.greedy_value, c.exact_value, c.upper_bound,
                  c.greedy_ratio(), c.certified ? 1 : 0, c.stop.c_str(),
                  static_cast<unsigned long long>(c.expanded),
                  static_cast<unsigned long long>(c.pushed), c.seconds);
    out += line;
  }
  return out;
}

}  // namespace netsel::exp
