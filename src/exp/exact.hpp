#pragma once
// Optimality-gap certification grid (ROADMAP item 3): how far from optimal
// are the greedy selectors, really?
//
// For every synthetic family x m x criterion cell the grid scores the
// greedy answer on the *exact* pairwise objective (select::exact_set_value,
// brute-force semantics) and runs the branch-and-bound selector under a
// deterministic node budget. The B&B returns either the certified optimum
// or an incumbent plus a sound upper bound, so every cell reports a
// rigorous bracket:  greedy <= optimum <= upper_bound, with
// greedy / upper_bound a guaranteed lower bound on the greedy selector's
// optimality ratio. Cells are marked `exact` (proof finished inside the
// budget) or `bound` (budget hit; the ratio is conservative) — never
// silently truncated.
//
// A second block sweeps the paper's fixed-constraint x prioritization
// combinations (Sec. 3.3): cpu/bw priority 1:1, 2:1, 1:2, each with and
// without a 40 Mbit/s fixed bandwidth requirement, on the balanced
// criterion — the quantification the paper only sketches.
//
// Everything is deterministic: node budgets (never wall-clock budgets),
// seeded synthetic load, serial search. The emitted values are
// bit-identical across machines and thread counts, which is what lets CI
// gate on BENCH_exact.json (scripts/check_bench_regression.py, profile
// "exact").

#include <cstdint>
#include <string>
#include <vector>

#include "select/options.hpp"

namespace netsel::exp {

/// One certification cell.
struct ExactCell {
  std::string family;    // fat_tree | campus_wan | random_core_edge
  std::string variant;   // "" for the base grid; e.g. "cpu2_bw1_min40" for
                         // the constraint x priority block
  int m = 0;
  select::Criterion criterion = select::Criterion::Balanced;
  std::size_t pool = 0;  // candidate pool after dominance pruning

  bool greedy_feasible = false;
  double greedy_value = 0.0;  // greedy set on the exact scale (-inf: the
                              // greedy answer violates the pairwise min_bw)
  bool exact_feasible = false;
  double exact_value = 0.0;   // B&B incumbent (optimal when certified)
  double upper_bound = 0.0;   // sound bound on the optimum
  bool certified = false;     // proof finished inside the node budget
  std::string stop;           // select::bnb_stop_name
  std::uint64_t expanded = 0;
  std::uint64_t pushed = 0;
  double seconds = 0.0;       // B&B wall time (informational, not gated)

  /// greedy_value / upper_bound when both are finite and positive — a
  /// guaranteed lower bound on the greedy optimality ratio (== the true
  /// ratio when certified). NaN when undefined (infeasible greedy).
  double greedy_ratio() const;
  /// exact_value / upper_bound: 1.0 when certified, < 1 when only bounded.
  double bracket_ratio() const;
};

struct ExactGridOptions {
  std::uint64_t seed = 7177;
  /// Hosts per family instance (the paper-scale grid; far beyond the
  /// brute-force oracle's reach at every m below).
  int hosts = 120;
  std::vector<int> ms = {4, 8, 16, 32, 64};
  /// Deterministic search budget per cell (expansions, not wall-clock).
  std::uint64_t node_budget = 20'000;
  /// Open-list cap per cell: bounds memory; evictions degrade the cell
  /// from exact to bound, which the cell then reports honestly.
  std::size_t max_open = 500'000;
  /// Also run the fixed-constraint x prioritization block (balanced
  /// criterion, m = 8, fat-tree instance).
  bool constraint_cells = true;
  bool verbose = false;
};

/// Run the full grid. Deterministic for a fixed option set.
std::vector<ExactCell> run_exact_grid(const ExactGridOptions& opt = {});

/// Human-readable table: one block per family, the constraint block last.
std::string format_exact_grid(const std::vector<ExactCell>& cells,
                              const ExactGridOptions& opt);

/// Machine-readable grid (one line per cell).
std::string exact_grid_csv(const std::vector<ExactCell>& cells,
                           const ExactGridOptions& opt);

}  // namespace netsel::exp
