#include "exp/experiment.hpp"

#include <memory>
#include <stdexcept>

#include "appsim/presets.hpp"
#include "remos/remos.hpp"
#include "select/context.hpp"
#include "topo/generators.hpp"

namespace netsel::exp {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::Random: return "random";
    case Policy::Static: return "static";
    case Policy::AutoBalanced: return "auto-balanced";
    case Policy::AutoCompute: return "auto-compute";
    case Policy::AutoBandwidth: return "auto-bandwidth";
  }
  return "?";
}

int AppCase::num_nodes() const {
  if (const auto* ls = std::get_if<appsim::LooselySyncConfig>(&config))
    return ls->num_nodes;
  return std::get<appsim::MasterSlaveConfig>(config).num_nodes;
}

TrialResult run_trial(const AppCase& app, const Scenario& scenario,
                      Policy policy, std::uint64_t seed) {
  sim::NetworkSim net(topo::testbed());
  util::Rng master(seed);

  load::HostLoadGenerator loadgen(net, scenario.load, master.fork("load"));
  load::TrafficGenerator trafficgen(net, scenario.traffic,
                                    master.fork("traffic"));
  remos::Remos remos(net, scenario.monitor);

  if (scenario.load_on) loadgen.start();
  if (scenario.traffic_on) trafficgen.start();
  remos.start();
  net.sim().run_until(scenario.warmup);

  // --- Node selection. ---
  remos::QueryOptions q;
  if (scenario.forecaster) q.forecaster = scenario.forecaster;
  auto snap = remos.snapshot(q);
  select::SelectionContext ctx(snap);
  select::SelectionOptions sel = scenario.selection;
  sel.num_nodes = app.num_nodes();

  select::SelectionResult chosen;
  switch (policy) {
    case Policy::Random: {
      util::Rng prng = master.fork("placement");
      chosen = select::select_random(ctx, sel, prng);
      break;
    }
    case Policy::Static:
      chosen = select::select_static(ctx, sel);
      break;
    case Policy::AutoBalanced:
      chosen = select::select_balanced(ctx, sel);
      break;
    case Policy::AutoCompute:
      chosen = select::select_max_compute(ctx, sel);
      break;
    case Policy::AutoBandwidth:
      chosen = select::select_max_bandwidth(ctx, sel);
      break;
  }
  if (!chosen.feasible)
    throw std::runtime_error("run_trial: selection infeasible: " + chosen.note);

  // --- Execute the application. ---
  std::unique_ptr<appsim::Application> application;
  if (const auto* ls = std::get_if<appsim::LooselySyncConfig>(&app.config)) {
    application =
        std::make_unique<appsim::LooselySynchronousApp>(net, *ls, app.name);
  } else {
    application = std::make_unique<appsim::MasterSlaveApp>(
        net, std::get<appsim::MasterSlaveConfig>(app.config), app.name);
  }
  application->start(chosen.nodes);
  while (!application->finished()) {
    if (net.sim().now() > scenario.max_sim_time)
      throw std::runtime_error("run_trial: exceeded max_sim_time");
    if (!net.sim().step())
      throw std::logic_error("run_trial: event queue drained mid-run");
  }

  TrialResult result;
  result.elapsed = application->elapsed();
  result.nodes = chosen.nodes;
  return result;
}

util::OnlineStats run_cell(const AppCase& app, const Scenario& scenario,
                           Policy policy, int trials, std::uint64_t seed0) {
  util::OnlineStats stats;
  for (int t = 0; t < trials; ++t) {
    stats.add(run_trial(app, scenario, policy, seed0 + static_cast<std::uint64_t>(t))
                  .elapsed);
  }
  return stats;
}

AppCase fft_case() { return AppCase{"FFT (1K)", appsim::fft1k()}; }
AppCase airshed_case() { return AppCase{"Airshed", appsim::airshed()}; }
AppCase mri_case() { return AppCase{"MRI", appsim::mri()}; }

Scenario table1_scenario(bool load_on, bool traffic_on) {
  Scenario s;
  s.load_on = load_on;
  s.traffic_on = traffic_on;
  // Calibrated generator settings; derivation in EXPERIMENTS.md. The heavy
  // Pareto tail (jobs up to an hour) and elephant transfers are what make
  // current measurements predictive — the paper's §4.2 rationale.
  s.load.mean_interarrival = 65.0;
  s.load.p_exponential = 0.35;
  s.load.exp_mean = 5.0;
  s.load.pareto_alpha = 1.1;
  s.load.pareto_xmin = 10.0;
  s.load.pareto_xmax = 3600.0;
  s.traffic.mean_interarrival = 0.5;
  s.traffic.size_mean_bytes = 16e6;
  s.traffic.size_sigma = 2.0;
  s.monitor.poll_interval = 2.0;
  s.monitor.history_window = 30.0;
  s.warmup = 600.0;
  return s;
}

}  // namespace netsel::exp
