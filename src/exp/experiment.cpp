#include "exp/experiment.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>

#include "appsim/presets.hpp"
#include "obs/metrics.hpp"
#include "remos/remos.hpp"
#include "select/context.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace netsel::exp {

std::uint64_t trial_seed(std::uint64_t cell_seed, int trial) {
  // Avalanche the cell seed first so nearby cell seeds decorrelate, then
  // fold in the trial index through an odd multiplier (bijective mod 2^64)
  // and avalanche again. trial_seed(s, t) == trial_seed(s + 1, t - 1) only
  // by 64-bit accident, unlike the additive scheme it replaces.
  std::uint64_t h = util::SplitMix64(cell_seed).next();
  h ^= (static_cast<std::uint64_t>(trial) + 1) * 0xbf58476d1ce4e5b9ULL;
  return util::SplitMix64(h).next();
}

std::uint64_t cell_seed(std::uint64_t master_seed, std::string_view app,
                        Policy policy, int condition) {
  std::uint64_t h = util::SplitMix64(master_seed).next();
  h = util::SplitMix64(h ^ util::hash_name(app)).next();
  h = util::SplitMix64(h ^ util::hash_name(policy_name(policy))).next();
  h = util::SplitMix64(h ^ (static_cast<std::uint64_t>(condition) + 1)).next();
  return h;
}

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::Random: return "random";
    case Policy::Static: return "static";
    case Policy::AutoBalanced: return "auto-balanced";
    case Policy::AutoCompute: return "auto-compute";
    case Policy::AutoBandwidth: return "auto-bandwidth";
  }
  return "?";
}

int AppCase::num_nodes() const {
  if (const auto* ls = std::get_if<appsim::LooselySyncConfig>(&config))
    return ls->num_nodes;
  return std::get<appsim::MasterSlaveConfig>(config).num_nodes;
}

TrialResult run_trial(const AppCase& app, const Scenario& scenario,
                      Policy policy, std::uint64_t seed) {
  sim::NetworkSim net(topo::testbed());
  util::Rng master(seed);

  load::HostLoadGenerator loadgen(net, scenario.load, master.fork("load"));
  load::TrafficGenerator trafficgen(net, scenario.traffic,
                                    master.fork("traffic"));
  remos::Remos remos(net, scenario.monitor);

  if (scenario.load_on) loadgen.start();
  if (scenario.traffic_on) trafficgen.start();
  remos.start();
  net.sim().run_until(scenario.warmup);

  // --- Node selection. ---
  remos::QueryOptions q;
  if (scenario.forecaster) q.forecaster = scenario.forecaster;
  auto snap = remos.snapshot(q);
  select::SelectionContext ctx(snap);
  select::SelectionOptions sel = scenario.selection;
  sel.num_nodes = app.num_nodes();

  select::SelectionResult chosen;
  switch (policy) {
    case Policy::Random: {
      util::Rng prng = master.fork("placement");
      chosen = select::select_random(ctx, sel, prng);
      break;
    }
    case Policy::Static:
      chosen = select::select_static(ctx, sel);
      break;
    case Policy::AutoBalanced:
      chosen = select::select_balanced(ctx, sel);
      break;
    case Policy::AutoCompute:
      chosen = select::select_max_compute(ctx, sel);
      break;
    case Policy::AutoBandwidth:
      chosen = select::select_max_bandwidth(ctx, sel);
      break;
  }
  if (!chosen.feasible)
    throw std::runtime_error("run_trial: selection infeasible: " + chosen.note);

  // --- Execute the application. ---
  std::unique_ptr<appsim::Application> application;
  if (const auto* ls = std::get_if<appsim::LooselySyncConfig>(&app.config)) {
    application =
        std::make_unique<appsim::LooselySynchronousApp>(net, *ls, app.name);
  } else {
    application = std::make_unique<appsim::MasterSlaveApp>(
        net, std::get<appsim::MasterSlaveConfig>(app.config), app.name);
  }
  application->start(chosen.nodes);
  while (!application->finished()) {
    if (net.sim().now() > scenario.max_sim_time)
      throw std::runtime_error("run_trial: exceeded max_sim_time");
    if (!net.sim().step())
      throw std::logic_error("run_trial: event queue drained mid-run");
  }

  TrialResult result;
  result.elapsed = application->elapsed();
  result.nodes = chosen.nodes;
  return result;
}

namespace {
/// Outcome slot for one trial, written by exactly one job.
struct TrialSlot {
  bool ok = false;
  double elapsed = 0.0;
  std::string error;
};
constexpr std::size_t kMaxFailureNotes = 8;
}  // namespace

CellResult run_cell(const AppCase& app, const Scenario& scenario,
                    Policy policy, int trials, std::uint64_t seed0,
                    util::ThreadPool* pool) {
  const bool observing = obs::enabled();
  const auto cell_t0 = observing ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
  std::vector<TrialSlot> slots(static_cast<std::size_t>(trials));
  auto one = [&](std::size_t t) {
    TrialSlot& slot = slots[t];
    // Trial-granularity span (never per-event): app/policy and the trial's
    // simulated end time ride along into the Chrome trace.
    obs::Span span("exp.trial", "exp");
    span.arg("app", app.name);
    span.arg("policy", policy_name(policy));
    try {
      slot.elapsed =
          run_trial(app, scenario, policy, trial_seed(seed0, static_cast<int>(t)))
              .elapsed;
      slot.ok = true;
      if (span.active()) span.arg("ok", "true");
    } catch (const std::runtime_error& e) {
      // Expected, data-dependent failures (infeasible selection under the
      // trial's load, max_sim_time exceeded): degrade the cell, don't kill
      // the grid. std::logic_error and everything else propagate — via
      // parallel_for's deterministic lowest-index rethrow when pooled.
      slot.error = e.what();
      if (span.active()) span.arg("ok", "false");
    }
  };
  if (pool != nullptr) {
    util::parallel_for(*pool, slots.size(), one);
  } else {
    for (std::size_t t = 0; t < slots.size(); ++t) one(t);
  }

  // Reduce in trial-index order, never completion order: the statistics are
  // bit-identical to the serial run for any worker count.
  CellResult cell;
  cell.attempted = trials;
  for (const TrialSlot& slot : slots) {
    if (slot.ok) {
      cell.stats.add(slot.elapsed);
    } else {
      ++cell.failures;
      if (cell.failure_notes.size() < kMaxFailureNotes)
        cell.failure_notes.push_back(slot.error);
    }
  }
  if (observing)
    cell.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - cell_t0)
                            .count();
  return cell;
}

AppCase fft_case() { return AppCase{"FFT (1K)", appsim::fft1k()}; }
AppCase airshed_case() { return AppCase{"Airshed", appsim::airshed()}; }
AppCase mri_case() { return AppCase{"MRI", appsim::mri()}; }

Scenario table1_scenario(bool load_on, bool traffic_on) {
  Scenario s;
  s.load_on = load_on;
  s.traffic_on = traffic_on;
  // Calibrated generator settings; derivation in EXPERIMENTS.md. The heavy
  // Pareto tail (jobs up to an hour) and elephant transfers are what make
  // current measurements predictive — the paper's §4.2 rationale.
  s.load.mean_interarrival = 65.0;
  s.load.p_exponential = 0.35;
  s.load.exp_mean = 5.0;
  s.load.pareto_alpha = 1.1;
  s.load.pareto_xmin = 10.0;
  s.load.pareto_xmax = 3600.0;
  s.traffic.mean_interarrival = 0.5;
  s.traffic.size_mean_bytes = 16e6;
  s.traffic.size_sigma = 2.0;
  s.monitor.poll_interval = 2.0;
  s.monitor.history_window = 30.0;
  s.warmup = 600.0;
  return s;
}

}  // namespace netsel::exp
