#pragma once
// Experiment harness reproducing the paper's §4 methodology: applications
// executed on the (simulated) Fig. 4 testbed under combinations of the
// synthetic load and traffic generators, with nodes chosen either randomly
// or by the automatic selection procedures; each cell averaged over many
// trials ("Each measurement is the average of a number of executions
// spanning several hours").

#include <cstdint>
#include <string>
#include <variant>

#include "appsim/loosely_synchronous.hpp"
#include "appsim/master_slave.hpp"
#include "load/load_generator.hpp"
#include "load/traffic_generator.hpp"
#include "remos/monitor.hpp"
#include "select/algorithms.hpp"
#include "topo/graph.hpp"
#include "util/stats.hpp"

namespace netsel::exp {

/// Node-selection policy under test.
enum class Policy {
  Random,        ///< the paper's baseline
  Static,        ///< first-m (static properties; ~= random on this testbed)
  AutoBalanced,  ///< the paper's automatic selection (Fig. 3)
  AutoCompute,   ///< compute-only criterion (§3.2)
  AutoBandwidth, ///< bandwidth-only criterion (Fig. 2)
};

const char* policy_name(Policy p);

/// An application under test: either of the two structural models.
struct AppCase {
  std::string name;
  std::variant<appsim::LooselySyncConfig, appsim::MasterSlaveConfig> config;

  int num_nodes() const;
};

/// Environment for a trial.
struct Scenario {
  bool load_on = false;
  bool traffic_on = false;
  load::LoadGenConfig load;
  load::TrafficGenConfig traffic;
  remos::MonitorConfig monitor;
  /// Simulated seconds of generator + monitor activity before selection, so
  /// host load and link traffic reach steady state and Remos has history.
  double warmup = 600.0;
  /// Abort a trial if the app has not finished by then (guards pathology).
  double max_sim_time = 100000.0;
  /// Selection options applied by the Auto* policies.
  select::SelectionOptions selection;
  /// Forecaster used for the Remos query at selection time.
  remos::ForecasterPtr forecaster;  // null -> LastValue
};

struct TrialResult {
  double elapsed = 0.0;
  std::vector<topo::NodeId> nodes;
};

/// Run one trial on a fresh simulated testbed seeded with `seed`.
TrialResult run_trial(const AppCase& app, const Scenario& scenario,
                      Policy policy, std::uint64_t seed);

/// Run `trials` independent trials (seeds seed0, seed0+1, ...) and return
/// the execution-time statistics.
util::OnlineStats run_cell(const AppCase& app, const Scenario& scenario,
                           Policy policy, int trials, std::uint64_t seed0);

/// The three applications of Table 1 on the Fig. 4 testbed.
AppCase fft_case();
AppCase airshed_case();
AppCase mri_case();

/// The scenario parameterisation used by bench_table1 (calibrated so that
/// the degradations land in the paper's regime; see EXPERIMENTS.md).
Scenario table1_scenario(bool load_on, bool traffic_on);

}  // namespace netsel::exp
