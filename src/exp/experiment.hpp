#pragma once
// Experiment harness reproducing the paper's §4 methodology: applications
// executed on the (simulated) Fig. 4 testbed under combinations of the
// synthetic load and traffic generators, with nodes chosen either randomly
// or by the automatic selection procedures; each cell averaged over many
// trials ("Each measurement is the average of a number of executions
// spanning several hours").

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "appsim/loosely_synchronous.hpp"
#include "appsim/master_slave.hpp"
#include "load/load_generator.hpp"
#include "load/traffic_generator.hpp"
#include "remos/monitor.hpp"
#include "select/algorithms.hpp"
#include "topo/graph.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace netsel::exp {

/// Node-selection policy under test.
enum class Policy {
  Random,        ///< the paper's baseline
  Static,        ///< first-m (static properties; ~= random on this testbed)
  AutoBalanced,  ///< the paper's automatic selection (Fig. 3)
  AutoCompute,   ///< compute-only criterion (§3.2)
  AutoBandwidth, ///< bandwidth-only criterion (Fig. 2)
};

const char* policy_name(Policy p);

/// An application under test: either of the two structural models.
struct AppCase {
  std::string name;
  std::variant<appsim::LooselySyncConfig, appsim::MasterSlaveConfig> config;

  int num_nodes() const;
};

/// Environment for a trial.
struct Scenario {
  bool load_on = false;
  bool traffic_on = false;
  load::LoadGenConfig load;
  load::TrafficGenConfig traffic;
  remos::MonitorConfig monitor;
  /// Simulated seconds of generator + monitor activity before selection, so
  /// host load and link traffic reach steady state and Remos has history.
  double warmup = 600.0;
  /// Abort a trial if the app has not finished by then (guards pathology).
  double max_sim_time = 100000.0;
  /// Selection options applied by the Auto* policies.
  select::SelectionOptions selection;
  /// Forecaster used for the Remos query at selection time.
  remos::ForecasterPtr forecaster;  // null -> LastValue
};

struct TrialResult {
  double elapsed = 0.0;
  std::vector<topo::NodeId> nodes;
};

// --- Seeding scheme -------------------------------------------------------
//
// Every trial's master seed is derived by hashing, never by offsetting:
//
//   cell  = cell_seed(master, app, policy, condition)   SplitMix64 chain
//   trial = trial_seed(cell, t)                         SplitMix64(mix(cell)
//                                                         ^ odd-mult(t))
//
// The historical scheme (`seed0 + t`, cells offset by `condition * 1000`)
// meant two cells whose base seeds differed by less than the trial count
// replayed overlapping trial streams — e.g. cell A's trial 7 was bit-equal
// to cell B's trial 6. SplitMix64's full-avalanche mix makes the derived
// seeds for (cell, t) and (cell + 1, t - 1) unrelated, so every (app,
// policy, condition, trial) tuple sees an independent testbed. Both hops
// are pure functions of their inputs: the same master seed still
// reproduces the entire grid bit-for-bit, in any execution order.

/// Seed for trial index `t` of the cell whose base seed is `cell_seed`.
std::uint64_t trial_seed(std::uint64_t cell_seed, int trial);

/// Base seed for one Table-1 cell: master seed hashed with the application
/// name, the policy name, and the condition index.
std::uint64_t cell_seed(std::uint64_t master_seed, std::string_view app,
                        Policy policy, int condition);

/// Run one trial on a fresh simulated testbed seeded with `seed`.
TrialResult run_trial(const AppCase& app, const Scenario& scenario,
                      Policy policy, std::uint64_t seed);

/// Statistics for one experiment cell plus the per-trial failure record.
/// A trial that fails for an expected, data-dependent reason (infeasible
/// selection, `max_sim_time` exceeded) degrades the cell — it is counted
/// and its note kept — instead of aborting the whole grid; genuine logic
/// errors still propagate out of run_cell.
struct CellResult {
  util::OnlineStats stats;   ///< elapsed-time stats over successful trials
  int attempted = 0;         ///< trials dispatched
  int failures = 0;          ///< trials that failed (attempted - stats.count())
  std::vector<std::string> failure_notes;  ///< first few failure messages
  /// Wall-clock seconds this cell took (observability only; 0 when the obs
  /// registry is disabled). Excluded from all statistics.
  double wall_seconds = 0.0;

  double mean() const { return stats.mean(); }
  double stddev() const { return stats.stddev(); }
  double ci_halfwidth(double level = 0.95) const {
    return stats.ci_halfwidth(level);
  }
  std::size_t count() const { return stats.count(); }
};

/// Run `trials` independent trials (seeds trial_seed(seed0, t)) and return
/// the execution-time statistics. With a pool, trials run as independent
/// jobs; results land in index-addressed slots and are reduced in trial
/// order, so the statistics are bit-identical to the serial run (pool ==
/// nullptr) for any worker count. Each trial owns its NetworkSim, Rng and
/// SelectionContext — nothing is shared across concurrent trials.
CellResult run_cell(const AppCase& app, const Scenario& scenario,
                    Policy policy, int trials, std::uint64_t seed0,
                    util::ThreadPool* pool = nullptr);

/// The three applications of Table 1 on the Fig. 4 testbed.
AppCase fft_case();
AppCase airshed_case();
AppCase mri_case();

/// The scenario parameterisation used by bench_table1 (calibrated so that
/// the degradations land in the paper's regime; see EXPERIMENTS.md).
Scenario table1_scenario(bool load_on, bool traffic_on);

}  // namespace netsel::exp
