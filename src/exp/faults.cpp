#include "exp/faults.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "api/service.hpp"
#include "obs/metrics.hpp"
#include "remos/remos.hpp"
#include "select/context.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace netsel::exp {

namespace {

select::Criterion policy_criterion(Policy p) {
  switch (p) {
    case Policy::AutoBalanced: return select::Criterion::Balanced;
    case Policy::AutoCompute: return select::Criterion::MaxCompute;
    case Policy::AutoBandwidth: return select::Criterion::MaxBandwidth;
    default:
      throw std::invalid_argument("policy_criterion: not an auto policy");
  }
}

}  // namespace

FaultTrialResult run_fault_trial(const AppCase& app, const Scenario& scenario,
                                 Policy policy, double severity,
                                 std::uint64_t seed) {
  sim::NetworkSim net(topo::testbed());
  util::Rng master(seed);

  load::HostLoadGenerator loadgen(net, scenario.load, master.fork("load"));
  load::TrafficGenerator trafficgen(net, scenario.traffic,
                                    master.fork("traffic"));

  remos::MonitorConfig mcfg = scenario.monitor;
  // Per-trial fault realisation: severity 0 leaves the plan empty, so the
  // monitor builds no injector and the sweep path is the no-fault one.
  mcfg.faults = remos::FaultPlan::scaled(
      severity, util::SplitMix64(seed ^ util::hash_name("fault-plan")).next(),
      mcfg.poll_interval);
  remos::Remos remos(net, mcfg);

  if (scenario.load_on) loadgen.start();
  if (scenario.traffic_on) trafficgen.start();
  remos.start();
  net.sim().run_until(scenario.warmup);

  // --- Node selection. ---
  remos::QueryOptions q;
  if (scenario.forecaster) q.forecaster = scenario.forecaster;

  FaultTrialResult result;
  if (policy == Policy::Random || policy == Policy::Static) {
    // Baselines ignore measured values (they only need connectivity), so
    // they select exactly as run_trial does — the control arm of the sweep.
    auto snap = remos.snapshot(q);
    select::SelectionContext ctx(snap);
    select::SelectionOptions sel = scenario.selection;
    sel.num_nodes = app.num_nodes();
    select::SelectionResult chosen;
    if (policy == Policy::Random) {
      util::Rng prng = master.fork("placement");
      chosen = select::select_random(ctx, sel, prng);
    } else {
      chosen = select::select_static(ctx, sel);
    }
    if (!chosen.feasible)
      throw std::runtime_error("run_fault_trial: selection infeasible: " +
                               chosen.note);
    result.nodes = std::move(chosen.nodes);
  } else {
    // Auto policies select through the service: degradation ladder active,
    // decision recorded on the placement, no throws on missing measurements.
    api::NodeSelectionService service(remos);
    api::AppSpec spec = api::AppSpec::spmd(app.name, app.num_nodes(),
                                           api::AppPattern::LooselySynchronous);
    spec.cpu_priority = scenario.selection.cpu_priority;
    spec.bw_priority = scenario.selection.bw_priority;
    spec.min_bw_bps = scenario.selection.min_bw_bps;
    spec.min_cpu_fraction = scenario.selection.min_cpu_fraction;
    spec.min_free_memory_bytes = scenario.selection.min_free_memory_bytes;
    api::ServiceOptions so;
    so.criterion = policy_criterion(policy);
    so.query = q;
    api::Placement placement = service.place(spec, so);
    result.degradation = placement.degradation;
    result.coverage = placement.measurement_coverage;
    if (!placement.feasible)
      throw std::runtime_error("run_fault_trial: placement infeasible: " +
                               placement.note);
    result.nodes = placement.flat();
  }

  // --- Execute the application. ---
  std::unique_ptr<appsim::Application> application;
  if (const auto* ls = std::get_if<appsim::LooselySyncConfig>(&app.config)) {
    application =
        std::make_unique<appsim::LooselySynchronousApp>(net, *ls, app.name);
  } else {
    application = std::make_unique<appsim::MasterSlaveApp>(
        net, std::get<appsim::MasterSlaveConfig>(app.config), app.name);
  }
  application->start(result.nodes);
  while (!application->finished()) {
    if (net.sim().now() > scenario.max_sim_time)
      throw std::runtime_error("run_fault_trial: exceeded max_sim_time");
    if (!net.sim().step())
      throw std::logic_error("run_fault_trial: event queue drained mid-run");
  }
  result.elapsed = application->elapsed();
  return result;
}

namespace {

struct FaultSlot {
  bool ok = false;
  double elapsed = 0.0;
  api::DegradationLevel level = api::DegradationLevel::Full;
  std::string error;
};
constexpr std::size_t kMaxFailureNotes = 8;

FaultCell run_fault_cell(const AppCase& app, const Scenario& scenario,
                         Policy policy, double severity, int trials,
                         std::uint64_t seed0, util::ThreadPool* pool) {
  const bool observing = obs::enabled();
  const auto cell_t0 = observing ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
  std::vector<FaultSlot> slots(static_cast<std::size_t>(trials));
  auto one = [&](std::size_t t) {
    FaultSlot& slot = slots[t];
    try {
      auto r = run_fault_trial(app, scenario, policy, severity,
                               trial_seed(seed0, static_cast<int>(t)));
      slot.elapsed = r.elapsed;
      slot.level = r.degradation;
      slot.ok = true;
    } catch (const std::runtime_error& e) {
      slot.error = e.what();
    }
  };
  if (pool != nullptr) {
    util::parallel_for(*pool, slots.size(), one);
  } else {
    for (std::size_t t = 0; t < slots.size(); ++t) one(t);
  }

  FaultCell out;
  out.cell.attempted = trials;
  for (const FaultSlot& slot : slots) {
    if (slot.ok) {
      out.cell.stats.add(slot.elapsed);
      if (slot.level == api::DegradationLevel::Smoothed) ++out.degraded_smoothed;
      if (slot.level == api::DegradationLevel::Prior) ++out.degraded_prior;
    } else {
      ++out.cell.failures;
      if (out.cell.failure_notes.size() < kMaxFailureNotes)
        out.cell.failure_notes.push_back(slot.error);
    }
  }
  if (observing)
    out.cell.wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - cell_t0)
                                .count();
  return out;
}

}  // namespace

std::vector<FaultRow> run_fault_grid(const FaultGridOptions& opt) {
  if (opt.trials < 1)
    throw std::invalid_argument("run_fault_grid: trials must be >= 1");
  const Scenario scenario = table1_scenario(true, true);
  const std::size_t cells_per_row = 1 + opt.criteria.size();

  std::vector<FaultRow> rows(opt.severities.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    rows[r].severity = opt.severities[r];
    rows[r].autos.resize(opt.criteria.size());
  }
  std::unique_ptr<util::ThreadPool> pool;
  if (opt.threads != 0) pool = std::make_unique<util::ThreadPool>(opt.threads);

  // Flat task list, one pre-addressed slot per cell (same bit-identical
  // dispatch scheme as run_table1). Seeds hash the severity index into the
  // condition so every (severity, policy) cell is an independent stream.
  auto run_one = [&](std::size_t j) {
    std::size_t r = j / cells_per_row;
    std::size_t k = j % cells_per_row;
    FaultRow& row = rows[r];
    Policy policy = k == 0 ? Policy::Random : opt.criteria[k - 1];
    FaultCell& slot = k == 0 ? row.random : row.autos[k - 1];
    slot = run_fault_cell(
        opt.app, scenario, policy, row.severity, opt.trials,
        cell_seed(opt.seed, opt.app.name, policy, 1000 + static_cast<int>(r)),
        pool.get());
    if (opt.verbose)
      std::fprintf(stderr,
                   "  severity %.2f %-14s mean=%7.1fs (n=%zu, %d failed, "
                   "%d smoothed, %d prior)\n",
                   row.severity, policy_name(policy), slot.cell.stats.mean(),
                   slot.cell.stats.count(), slot.cell.failures,
                   slot.degraded_smoothed, slot.degraded_prior);
  };
  const std::size_t tasks = rows.size() * cells_per_row;
  if (pool) {
    util::parallel_for(*pool, tasks, run_one);
  } else {
    for (std::size_t j = 0; j < tasks; ++j) run_one(j);
  }

  // Same post-loop, index-order observability merge as run_table1 (the
  // registry sees one deterministic observation sequence per grid).
  if (obs::enabled()) {
    obs::Histogram& cell_s = obs::Registry::global().histogram(
        "exp.cell_s", obs::exp_buckets(0.01, 2.0, 14));
    obs::Counter& trials = obs::Registry::global().counter("exp.trials");
    obs::Counter& failures =
        obs::Registry::global().counter("exp.trial_failures");
    auto merge = [&](const FaultCell& c) {
      cell_s.observe(c.cell.wall_seconds);
      trials.inc(static_cast<std::uint64_t>(c.cell.attempted));
      failures.inc(static_cast<std::uint64_t>(c.cell.failures));
    };
    for (const FaultRow& row : rows) {
      merge(row.random);
      for (const FaultCell& c : row.autos) merge(c);
    }
  }
  return rows;
}

std::string format_fault_grid(const std::vector<FaultRow>& rows,
                              const FaultGridOptions& opt) {
  util::TextTable t;
  t.header({"Severity", "Policy", "Mean (s)", "CI95", "vs random", "n",
            "failed", "smoothed", "prior"});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const FaultRow& row = rows[r];
    double baseline = row.random.cell.stats.mean();
    auto add = [&](const char* name, const FaultCell& c, bool is_random) {
      double mean = c.cell.stats.mean();
      t.row({is_random ? util::fmt(row.severity, 2) : "", name,
             util::fmt(mean, 1), util::fmt(c.cell.ci_halfwidth(0.95), 1),
             is_random ? "1.00"
                       : (baseline > 0.0 ? util::fmt(mean / baseline, 2) : "-"),
             std::to_string(c.cell.count()), std::to_string(c.cell.failures),
             std::to_string(c.degraded_smoothed),
             std::to_string(c.degraded_prior)});
    };
    add(policy_name(Policy::Random), row.random, true);
    for (std::size_t k = 0; k < row.autos.size(); ++k)
      add(policy_name(opt.criteria[k]), row.autos[k], false);
    if (r + 1 < rows.size()) t.rule();
  }
  std::ostringstream os;
  os << "Measurement-fault sweep — " << opt.app.name << ", load+traffic, "
     << opt.trials << " trials/cell, seed " << opt.seed << "\n"
     << "(vs random < 1.00 means automatic selection still beats the "
        "baseline under that fault severity)\n\n"
     << t.render();
  return os.str();
}

std::string fault_grid_csv(const std::vector<FaultRow>& rows,
                           const FaultGridOptions& opt) {
  std::ostringstream os;
  os << "severity,policy,mean_s,ci95,trials,failures,degraded_smoothed,"
        "degraded_prior\n";
  auto line = [&](double severity, Policy p, const FaultCell& c) {
    os << severity << ',' << policy_name(p) << ',' << c.cell.stats.mean()
       << ',' << c.cell.ci_halfwidth(0.95) << ',' << c.cell.count() << ','
       << c.cell.failures << ',' << c.degraded_smoothed << ','
       << c.degraded_prior << '\n';
  };
  for (const FaultRow& row : rows) {
    line(row.severity, Policy::Random, row.random);
    for (std::size_t k = 0; k < row.autos.size(); ++k)
      line(row.severity, opt.criteria[k], row.autos[k]);
  }
  return os.str();
}

}  // namespace netsel::exp
