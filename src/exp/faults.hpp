#pragma once
// Measurement-fault sweep: how does automatic selection hold up when the
// Remos measurement plane itself degrades? Sweeps fault severity x
// selection criterion against the random baseline on the Table-1 workload
// (load + traffic on the Fig. 4 testbed), Table-1-style: mean execution
// time per cell, slowdown ratio vs random, and how often the service's
// degradation ladder had to leave the Full level.
//
// At severity 0 the grid runs the exact no-fault measurement path: cells
// are bit-identical to the equivalent run_trial results (asserted in
// tests and by bench_faults --check).

#include <cstdint>
#include <string>
#include <vector>

#include "api/appspec.hpp"
#include "exp/experiment.hpp"

namespace netsel::exp {

/// One fault-sweep trial outcome: execution time plus the degradation
/// decision the selection service took.
struct FaultTrialResult {
  double elapsed = 0.0;
  std::vector<topo::NodeId> nodes;
  api::DegradationLevel degradation = api::DegradationLevel::Full;
  double coverage = 1.0;
};

/// Run one trial with measurement faults of the given severity injected
/// into the monitor. Auto policies select through NodeSelectionService
/// (degradation ladder active); Random ignores measurements, as in
/// run_trial. Severity 0 builds no injector and reproduces run_trial's
/// elapsed time bit-for-bit for every policy.
FaultTrialResult run_fault_trial(const AppCase& app, const Scenario& scenario,
                                 Policy policy, double severity,
                                 std::uint64_t seed);

/// Aggregated cell: execution-time stats plus degradation-level counts
/// over the successful trials.
struct FaultCell {
  CellResult cell;
  int degraded_smoothed = 0;
  int degraded_prior = 0;
};

/// One row of the sweep: a severity level, the random baseline and one
/// auto cell per criterion (parallel to FaultGridOptions::criteria).
struct FaultRow {
  double severity = 0.0;
  FaultCell random;
  std::vector<FaultCell> autos;
};

struct FaultGridOptions {
  int trials = 12;
  std::uint64_t seed = 2031;
  std::vector<double> severities = {0.0, 0.2, 0.4, 0.7};
  std::vector<Policy> criteria = {Policy::AutoBalanced, Policy::AutoCompute,
                                  Policy::AutoBandwidth};
  /// Worker threads; 0 serial, < 0 one per hardware thread. Statistics are
  /// bit-identical for every setting (pre-addressed slots, ordered
  /// reduction — same scheme as run_table1).
  int threads = 0;
  bool verbose = false;
  /// Application under test (FFT by default: the fastest Table-1 app).
  AppCase app = fft_case();
};

/// Run the severity x criterion grid under load + traffic.
std::vector<FaultRow> run_fault_grid(const FaultGridOptions& opt = {});

/// Render the sweep: per severity, random baseline and per-criterion mean,
/// auto/random ratio, failure and degradation counts.
std::string format_fault_grid(const std::vector<FaultRow>& rows,
                              const FaultGridOptions& opt);

/// Machine-readable grid (one line per cell).
std::string fault_grid_csv(const std::vector<FaultRow>& rows,
                           const FaultGridOptions& opt);

}  // namespace netsel::exp
