#include "exp/report.hpp"

#include <sstream>

#include "topo/generators.hpp"

namespace netsel::exp {

std::string csv_escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string table1_csv(const std::vector<MeasuredRow>& rows) {
  std::ostringstream os;
  os << "app,nodes,condition,policy,mean_s,ci95_s,trials,paper_s,reference_s\n";
  const char* conds[3] = {"load", "traffic", "load+traffic"};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const MeasuredRow& m = rows[r];
    const PaperRow* p = r < kPaperTable1.size() ? &kPaperTable1[r] : nullptr;
    for (int c = 0; c < 3; ++c) {
      auto cs = static_cast<std::size_t>(c);
      os << csv_escape(m.app) << "," << m.nodes << "," << conds[c]
         << ",random," << m.random_sel[cs].mean << "," << m.random_sel[cs].ci95
         << "," << m.random_sel[cs].trials << ","
         << (p ? p->random_sel[cs] : 0.0) << "," << m.reference << "\n";
      os << csv_escape(m.app) << "," << m.nodes << "," << conds[c] << ",auto,"
         << m.auto_sel[cs].mean << "," << m.auto_sel[cs].ci95 << ","
         << m.auto_sel[cs].trials << "," << (p ? p->auto_sel[cs] : 0.0) << ","
         << m.reference << "\n";
    }
  }
  return os.str();
}

std::string trials_csv(const AppCase& app, const Scenario& scenario,
                       Policy policy, int trials, std::uint64_t seed0) {
  std::ostringstream os;
  os << "app,condition,policy,seed,elapsed_s,nodes\n";
  std::string condition;
  if (scenario.load_on && scenario.traffic_on) {
    condition = "load+traffic";
  } else if (scenario.load_on) {
    condition = "load";
  } else if (scenario.traffic_on) {
    condition = "traffic";
  } else {
    condition = "idle";
  }
  topo::TopologyGraph names = topo::testbed();
  for (int t = 0; t < trials; ++t) {
    std::uint64_t seed = trial_seed(seed0, t);
    auto result = run_trial(app, scenario, policy, seed);
    std::string joined;
    for (std::size_t i = 0; i < result.nodes.size(); ++i) {
      if (i) joined += "+";
      joined += names.node(result.nodes[i]).name;
    }
    os << csv_escape(app.name) << "," << condition << ","
       << policy_name(policy) << "," << seed << "," << result.elapsed << ","
       << joined << "\n";
  }
  return os.str();
}

}  // namespace netsel::exp
