#pragma once
// Structured export of experiment results, so measured data can feed
// external plotting/analysis without scraping the text tables. CSV is the
// lingua franca here: one row per (application, condition, policy) cell
// with the per-cell statistics, plus a long-form per-trial export.

#include <string>
#include <vector>

#include "exp/table1.hpp"

namespace netsel::exp {

/// CSV of the Table-1 grid: one row per cell with mean, 95% CI half-width
/// and trial count, paper value alongside. Columns:
/// app,nodes,condition,policy,mean_s,ci95_s,trials,paper_s,reference_s
std::string table1_csv(const std::vector<MeasuredRow>& rows);

/// Long-form per-trial CSV for one cell:
/// app,condition,policy,seed,elapsed_s,nodes (node names joined by '+').
/// Runs the trials itself with the same derived seeds as run_cell
/// (trial_seed(seed0, t)), so rows match a run_cell over the same inputs.
std::string trials_csv(const AppCase& app, const Scenario& scenario,
                       Policy policy, int trials, std::uint64_t seed0);

/// Minimal CSV quoting: wraps fields containing commas/quotes/newlines in
/// double quotes with internal quotes doubled (RFC 4180).
std::string csv_escape(const std::string& field);

}  // namespace netsel::exp
