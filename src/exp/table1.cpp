#include "exp/table1.hpp"

#include <cstdio>
#include <sstream>

#include "util/table.hpp"

namespace netsel::exp {

namespace {
Scenario condition_scenario(int condition) {
  switch (condition) {
    case kLoadOnly: return table1_scenario(true, false);
    case kTrafficOnly: return table1_scenario(false, true);
    case kLoadAndTraffic: return table1_scenario(true, true);
    default: throw std::invalid_argument("bad condition");
  }
}

MeasuredCell measure(const AppCase& app, int condition, Policy policy,
                     const Table1Options& opt) {
  auto stats = run_cell(app, condition_scenario(condition), policy, opt.trials,
                        opt.seed + static_cast<std::uint64_t>(condition) * 1000);
  MeasuredCell cell;
  cell.mean = stats.mean();
  cell.ci95 = stats.ci_halfwidth(0.95);
  cell.trials = static_cast<int>(stats.count());
  if (opt.verbose) {
    std::fprintf(stderr, "  %-9s %-14s %-13s mean=%7.1fs  +-%5.1f (n=%d)\n",
                 app.name.c_str(), policy_name(policy),
                 condition == kLoadOnly      ? "load"
                 : condition == kTrafficOnly ? "traffic"
                                             : "load+traffic",
                 cell.mean, cell.ci95, cell.trials);
  }
  return cell;
}
}  // namespace

std::vector<MeasuredRow> run_table1(const Table1Options& opt) {
  std::vector<MeasuredRow> rows;
  for (const AppCase& app : {fft_case(), airshed_case(), mri_case()}) {
    MeasuredRow row;
    row.app = app.name;
    row.nodes = app.num_nodes();
    // Unloaded reference: idle testbed, automatic placement, deterministic.
    row.reference =
        run_trial(app, table1_scenario(false, false), opt.auto_policy, opt.seed)
            .elapsed;
    if (opt.verbose)
      std::fprintf(stderr, "  %-9s reference (unloaded) = %7.1fs\n",
                   app.name.c_str(), row.reference);
    for (int cond = 0; cond < 3; ++cond) {
      row.random_sel[static_cast<std::size_t>(cond)] =
          measure(app, cond, opt.baseline_policy, opt);
      row.auto_sel[static_cast<std::size_t>(cond)] =
          measure(app, cond, opt.auto_policy, opt);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string format_table1(const std::vector<MeasuredRow>& rows) {
  util::TextTable t;
  t.header({"Application", "Nodes", "Selection", "Proc Load", "Net Traffic",
            "Load+Traffic", "Unloaded Ref"});
  auto pct = [](double from, double to) {
    return util::fmt(to, 1) + " " + util::fmt_pct_change(from, to);
  };
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const MeasuredRow& m = rows[r];
    const PaperRow& p = kPaperTable1[r];
    t.row({m.app, std::to_string(m.nodes), "random (measured)",
           util::fmt(m.random_sel[0].mean, 1), util::fmt(m.random_sel[1].mean, 1),
           util::fmt(m.random_sel[2].mean, 1), util::fmt(m.reference, 1)});
    t.row({"", "", "auto (measured)",
           pct(m.random_sel[0].mean, m.auto_sel[0].mean),
           pct(m.random_sel[1].mean, m.auto_sel[1].mean),
           pct(m.random_sel[2].mean, m.auto_sel[2].mean), ""});
    t.row({"", "", "random (paper)", util::fmt(p.random_sel[0], 1),
           util::fmt(p.random_sel[1], 1), util::fmt(p.random_sel[2], 1),
           util::fmt(p.reference, 1)});
    t.row({"", "", "auto (paper)", pct(p.random_sel[0], p.auto_sel[0]),
           pct(p.random_sel[1], p.auto_sel[1]),
           pct(p.random_sel[2], p.auto_sel[2]), ""});
    if (r + 1 < rows.size()) t.rule();
  }
  return t.render();
}

std::string format_slowdown_summary(const std::vector<MeasuredRow>& rows) {
  std::ostringstream os;
  os << "Increase in execution time over the unloaded reference\n"
        "(the paper's headline: automatic selection roughly halves it):\n\n";
  util::TextTable t;
  t.header({"Application", "Condition", "random +%", "auto +%",
            "reduction", "paper random +%", "paper auto +%", "paper reduction"});
  const char* conds[3] = {"load", "traffic", "load+traffic"};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const MeasuredRow& m = rows[r];
    const PaperRow& p = kPaperTable1[r];
    for (int c = 0; c < 3; ++c) {
      auto cs = static_cast<std::size_t>(c);
      double inc_rand = (m.random_sel[cs].mean - m.reference) / m.reference;
      double inc_auto = (m.auto_sel[cs].mean - m.reference) / m.reference;
      double red = inc_rand > 0.0 ? 1.0 - inc_auto / inc_rand : 0.0;
      double p_rand = (p.random_sel[cs] - p.reference) / p.reference;
      double p_auto = (p.auto_sel[cs] - p.reference) / p.reference;
      double p_red = p_rand > 0.0 ? 1.0 - p_auto / p_rand : 0.0;
      t.row({c == 0 ? m.app : "", conds[c], util::fmt(inc_rand * 100, 0) + "%",
             util::fmt(inc_auto * 100, 0) + "%", util::fmt(red * 100, 0) + "%",
             util::fmt(p_rand * 100, 0) + "%", util::fmt(p_auto * 100, 0) + "%",
             util::fmt(p_red * 100, 0) + "%"});
    }
    if (r + 1 < rows.size()) t.rule();
  }
  os << t.render();
  return os.str();
}

}  // namespace netsel::exp
