#include "exp/table1.hpp"

#include <cstdio>
#include <memory>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace netsel::exp {

namespace {
Scenario condition_scenario(int condition) {
  switch (condition) {
    case kLoadOnly: return table1_scenario(true, false);
    case kTrafficOnly: return table1_scenario(false, true);
    case kLoadAndTraffic: return table1_scenario(true, true);
    default: throw std::invalid_argument("bad condition");
  }
}

MeasuredCell measure(const AppCase& app, int condition, Policy policy,
                     const Table1Options& opt, util::ThreadPool* pool) {
  CellResult result =
      run_cell(app, condition_scenario(condition), policy, opt.trials,
               cell_seed(opt.seed, app.name, policy, condition), pool);
  MeasuredCell cell;
  cell.mean = result.stats.mean();
  cell.ci95 = result.stats.ci_halfwidth(0.95);
  cell.trials = static_cast<int>(result.stats.count());
  cell.failures = result.failures;
  cell.wall_seconds = result.wall_seconds;
  if (opt.verbose) {
    std::fprintf(stderr,
                 "  %-9s %-14s %-13s mean=%7.1fs  +-%5.1f (n=%d%s)\n",
                 app.name.c_str(), policy_name(policy),
                 condition == kLoadOnly      ? "load"
                 : condition == kTrafficOnly ? "traffic"
                                             : "load+traffic",
                 cell.mean, cell.ci95, cell.trials,
                 cell.failures > 0
                     ? (", " + std::to_string(cell.failures) + " failed").c_str()
                     : "");
  }
  return cell;
}
}  // namespace

std::vector<MeasuredRow> run_table1(const Table1Options& opt) {
  const std::vector<AppCase> apps = {fft_case(), airshed_case(), mri_case()};
  std::vector<MeasuredRow> rows(apps.size());
  std::unique_ptr<util::ThreadPool> pool;
  if (opt.threads != 0) pool = std::make_unique<util::ThreadPool>(opt.threads);

  // Flat task list: per app, the unloaded reference (k == 0) plus the 3x2
  // condition/policy cells. Each task writes only its own pre-addressed
  // slot, so tasks run concurrently without ordering effects; seeds are
  // derived per cell, never from task order.
  constexpr std::size_t kTasksPerRow = 7;
  auto run_one = [&](std::size_t j) {
    std::size_t r = j / kTasksPerRow;
    int k = static_cast<int>(j % kTasksPerRow);
    const AppCase& app = apps[r];
    MeasuredRow& row = rows[r];
    if (k == 0) {
      row.app = app.name;
      row.nodes = app.num_nodes();
      // Unloaded reference: idle testbed, automatic placement, deterministic.
      row.reference =
          run_trial(app, table1_scenario(false, false), opt.auto_policy,
                    cell_seed(opt.seed, app.name, opt.auto_policy, kReference))
              .elapsed;
      if (opt.verbose)
        std::fprintf(stderr, "  %-9s reference (unloaded) = %7.1fs\n",
                     app.name.c_str(), row.reference);
    } else {
      int cond = (k - 1) / 2;
      bool is_auto = (k - 1) % 2 != 0;
      MeasuredCell& slot = is_auto ? row.auto_sel[static_cast<std::size_t>(cond)]
                                   : row.random_sel[static_cast<std::size_t>(cond)];
      slot = measure(app, cond, is_auto ? opt.auto_policy : opt.baseline_policy,
                     opt, pool.get());
    }
  };
  const std::size_t tasks = apps.size() * kTasksPerRow;
  if (pool) {
    util::parallel_for(*pool, tasks, run_one);
  } else {
    for (std::size_t j = 0; j < tasks; ++j) run_one(j);
  }

  // Grid-level observability, merged strictly in index order AFTER the
  // (possibly pooled) grid so the registry sees the same observation
  // sequence for every worker count (float sums are order-sensitive).
  if (obs::enabled()) {
    obs::Histogram& cell_s = obs::Registry::global().histogram(
        "exp.cell_s", obs::exp_buckets(0.01, 2.0, 14));
    obs::Counter& trials = obs::Registry::global().counter("exp.trials");
    obs::Counter& failures =
        obs::Registry::global().counter("exp.trial_failures");
    for (const MeasuredRow& row : rows) {
      for (std::size_t c = 0; c < 3; ++c) {
        for (const MeasuredCell* cell :
             {&row.random_sel[c], &row.auto_sel[c]}) {
          cell_s.observe(cell->wall_seconds);
          trials.inc(static_cast<std::uint64_t>(cell->trials) +
                     static_cast<std::uint64_t>(cell->failures));
          failures.inc(static_cast<std::uint64_t>(cell->failures));
        }
      }
    }
  }
  return rows;
}

std::string format_table1(const std::vector<MeasuredRow>& rows) {
  util::TextTable t;
  t.header({"Application", "Nodes", "Selection", "Proc Load", "Net Traffic",
            "Load+Traffic", "Unloaded Ref"});
  auto pct = [](double from, double to) {
    return util::fmt(to, 1) + " " + util::fmt_pct_change(from, to);
  };
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const MeasuredRow& m = rows[r];
    const PaperRow& p = kPaperTable1[r];
    t.row({m.app, std::to_string(m.nodes), "random (measured)",
           util::fmt(m.random_sel[0].mean, 1), util::fmt(m.random_sel[1].mean, 1),
           util::fmt(m.random_sel[2].mean, 1), util::fmt(m.reference, 1)});
    t.row({"", "", "auto (measured)",
           pct(m.random_sel[0].mean, m.auto_sel[0].mean),
           pct(m.random_sel[1].mean, m.auto_sel[1].mean),
           pct(m.random_sel[2].mean, m.auto_sel[2].mean), ""});
    t.row({"", "", "random (paper)", util::fmt(p.random_sel[0], 1),
           util::fmt(p.random_sel[1], 1), util::fmt(p.random_sel[2], 1),
           util::fmt(p.reference, 1)});
    t.row({"", "", "auto (paper)", pct(p.random_sel[0], p.auto_sel[0]),
           pct(p.random_sel[1], p.auto_sel[1]),
           pct(p.random_sel[2], p.auto_sel[2]), ""});
    if (r + 1 < rows.size()) t.rule();
  }
  return t.render();
}

std::string format_slowdown_summary(const std::vector<MeasuredRow>& rows) {
  std::ostringstream os;
  os << "Increase in execution time over the unloaded reference\n"
        "(the paper's headline: automatic selection roughly halves it):\n\n";
  util::TextTable t;
  t.header({"Application", "Condition", "random +%", "auto +%",
            "reduction", "paper random +%", "paper auto +%", "paper reduction"});
  const char* conds[3] = {"load", "traffic", "load+traffic"};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const MeasuredRow& m = rows[r];
    const PaperRow& p = kPaperTable1[r];
    for (int c = 0; c < 3; ++c) {
      auto cs = static_cast<std::size_t>(c);
      double inc_rand = (m.random_sel[cs].mean - m.reference) / m.reference;
      double inc_auto = (m.auto_sel[cs].mean - m.reference) / m.reference;
      double red = inc_rand > 0.0 ? 1.0 - inc_auto / inc_rand : 0.0;
      double p_rand = (p.random_sel[cs] - p.reference) / p.reference;
      double p_auto = (p.auto_sel[cs] - p.reference) / p.reference;
      double p_red = p_rand > 0.0 ? 1.0 - p_auto / p_rand : 0.0;
      t.row({c == 0 ? m.app : "", conds[c], util::fmt(inc_rand * 100, 0) + "%",
             util::fmt(inc_auto * 100, 0) + "%", util::fmt(red * 100, 0) + "%",
             util::fmt(p_rand * 100, 0) + "%", util::fmt(p_auto * 100, 0) + "%",
             util::fmt(p_red * 100, 0) + "%"});
    }
    if (r + 1 < rows.size()) t.rule();
  }
  os << t.render();
  return os.str();
}

}  // namespace netsel::exp
