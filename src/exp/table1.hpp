#pragma once
// Table 1 of the paper, as data, plus the full reproduction pipeline:
// run every cell (3 applications x {load, traffic, load+traffic} x
// {random, automatic} + unloaded reference) and format the result next to
// the paper's numbers.

#include <array>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace netsel::exp {

/// Condition index within a Table-1 row. kReference is not a measured
/// condition — it tags the unloaded-reference trial for seed derivation.
enum : int { kLoadOnly = 0, kTrafficOnly = 1, kLoadAndTraffic = 2, kReference = 3 };

/// The paper's measured values (seconds).
struct PaperRow {
  const char* app;
  int nodes;
  std::array<double, 3> random_sel;  ///< load, traffic, load+traffic
  std::array<double, 3> auto_sel;
  double reference;  ///< unloaded testbed
};

inline constexpr std::array<PaperRow, 3> kPaperTable1{{
    {"FFT (1K)", 4, {112.6, 80.3, 142.6}, {82.6, 64.6, 118.5}, 48.0},
    {"Airshed", 5, {393.8, 281.3, 530.2}, {254.0, 188.5, 355.1}, 150.0},
    {"MRI", 4, {683.0, 591.0, 776.0}, {594.0, 571.0, 667.0}, 540.0},
}};

struct MeasuredCell {
  double mean = 0.0;
  double ci95 = 0.0;
  int trials = 0;    ///< successful trials (mean/ci95 computed over these)
  int failures = 0;  ///< trials that failed and were excluded
  /// Wall-clock seconds spent running the cell (observability only; 0 when
  /// the obs registry is disabled). Never part of the measured statistics.
  double wall_seconds = 0.0;
};

struct MeasuredRow {
  std::string app;
  int nodes = 0;
  std::array<MeasuredCell, 3> random_sel;
  std::array<MeasuredCell, 3> auto_sel;
  double reference = 0.0;
};

struct Table1Options {
  int trials = 15;
  std::uint64_t seed = 1999;
  Policy auto_policy = Policy::AutoBalanced;
  Policy baseline_policy = Policy::Random;
  /// Worker threads for the grid: 0 runs everything serially on the calling
  /// thread, < 0 uses one worker per hardware thread, > 0 that many workers.
  /// The statistics are bit-identical for every setting (see run_cell).
  int threads = 0;
  /// Print one progress line per cell to stderr.
  bool verbose = false;
};

/// Run the whole Table-1 experiment grid. With threads != 0 the cells are
/// dispatched as pool jobs and each cell's trials fan out on the same pool;
/// every result lands in its pre-addressed slot, so the output is
/// bit-identical to the serial run regardless of worker count.
std::vector<MeasuredRow> run_table1(const Table1Options& opt = {});

/// Paper-style table: measured values with % change vs random, paper values
/// alongside.
std::string format_table1(const std::vector<MeasuredRow>& rows);

/// The paper's headline analysis: "the increase in execution time due to
/// traffic and/or load is approximately cut in half with automatic node
/// selection" — computed for the measured rows and for the paper's rows.
std::string format_slowdown_summary(const std::vector<MeasuredRow>& rows);

}  // namespace netsel::exp
