#include "load/load_generator.hpp"

#include <stdexcept>

namespace netsel::load {

HostLoadGenerator::HostLoadGenerator(sim::NetworkSim& net, LoadGenConfig cfg,
                                     util::Rng rng)
    : net_(net), cfg_(cfg) {
  if (cfg_.mean_interarrival <= 0.0)
    throw std::invalid_argument("LoadGen: mean_interarrival must be > 0");
  if (cfg_.intensity < 0.0)
    throw std::invalid_argument("LoadGen: intensity must be >= 0");
  if (cfg_.job_weight <= 0.0)
    throw std::invalid_argument("LoadGen: job_weight must be > 0");
  demand_ = std::make_shared<util::Mixture>(
      std::make_shared<util::Exponential>(cfg_.exp_mean),
      std::make_shared<util::BoundedPareto>(cfg_.pareto_alpha, cfg_.pareto_xmin,
                                            cfg_.pareto_xmax),
      cfg_.p_exponential);
  for (topo::NodeId n : net_.topology().compute_nodes()) {
    streams_.push_back(
        NodeStream{n, rng.fork("loadgen/" + net_.topology().node(n).name)});
  }
}

void HostLoadGenerator::start() {
  if (running_ || cfg_.intensity == 0.0) return;
  running_ = true;
  ++epoch_;
  for (std::size_t i = 0; i < streams_.size(); ++i) schedule_next(i);
}

void HostLoadGenerator::stop() {
  running_ = false;
  ++epoch_;
}

double HostLoadGenerator::offered_load_per_node() const {
  if (cfg_.intensity == 0.0) return 0.0;
  return demand_->mean() / (cfg_.mean_interarrival / cfg_.intensity);
}

void HostLoadGenerator::schedule_next(std::size_t stream_index) {
  NodeStream& s = streams_[stream_index];
  double dt = s.rng.exponential_mean(cfg_.mean_interarrival / cfg_.intensity);
  std::uint64_t my_epoch = epoch_;
  net_.sim().schedule_after(dt, [this, stream_index, my_epoch] {
    if (!running_ || epoch_ != my_epoch) return;
    NodeStream& stream = streams_[stream_index];
    double demand = demand_->sample(stream.rng);
    double memory = cfg_.mean_memory_bytes > 0.0
                        ? stream.rng.exponential_mean(cfg_.mean_memory_bytes)
                        : 0.0;
    net_.host(stream.node)
        .submit_weighted(demand, cfg_.job_weight, memory,
                         sim::kBackgroundOwner);
    ++jobs_generated_;
    total_work_ += demand;
    schedule_next(stream_index);
  });
}

}  // namespace netsel::load
