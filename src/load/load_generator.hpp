#pragma once
// Synthetic host-load generator (paper §4.2).
//
// "A synthetic compute intensive job was periodically invoked on every
//  node. Processor load was generated using models developed by
//  Harchol-Balter and Downey, whose measurements indicate Poisson
//  interarrival times, with job duration determined by a combination of
//  exponential and Pareto distributions."
//
// Each compute node gets an independent Poisson arrival process (own RNG
// stream => toggling one node's generator cannot perturb another's
// sequence). Job CPU demands are drawn from an exponential-body +
// (bounded-)Pareto-tail mixture; the heavy tail is the property that makes
// current load predictive of future load — the effect automatic node
// selection exploits.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/network_sim.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace netsel::load {

struct LoadGenConfig {
  /// Mean job interarrival time per node, seconds. The paper used "higher
  /// parameters ... than would be used to represent typical interactive
  /// systems" (a compute-intensive departmental cluster).
  double mean_interarrival = 15.0;
  /// Mixture: with probability p_exponential the demand is exponential,
  /// otherwise bounded-Pareto.
  double p_exponential = 0.5;
  double exp_mean = 4.0;               ///< seconds of reference CPU
  double pareto_alpha = 1.05;          ///< Harchol-Balter/Downey: ~1/t law
  double pareto_xmin = 2.0;            ///< seconds
  double pareto_xmax = 900.0;          ///< truncation keeps runs bounded
  /// Multiplies the arrival rate; 0 disables, 1 is the paper-equivalent
  /// setting, >1 stresses harder (used by the sensitivity bench).
  double intensity = 1.0;
  /// When > 0, each job pins an exponentially distributed amount of memory
  /// with this mean (bytes) for its lifetime (§3.4 memory extension).
  double mean_memory_bytes = 0.0;
  /// Scheduling weight of generated jobs (1.0 = the paper's equal-priority
  /// assumption; < 1 models niced background work — see bench_ablation).
  double job_weight = 1.0;
};

/// Drives synthetic jobs onto every compute node of a NetworkSim.
class HostLoadGenerator {
 public:
  HostLoadGenerator(sim::NetworkSim& net, LoadGenConfig cfg, util::Rng rng);

  /// Begin generating from the current simulation time. Idempotent.
  void start();
  /// Stop scheduling new jobs; jobs already running continue to completion
  /// (matching how real background load drains).
  void stop();
  bool running() const { return running_; }

  std::uint64_t jobs_generated() const { return jobs_generated_; }
  double total_work_generated() const { return total_work_; }
  /// Offered load per node: mean demand / mean interarrival (in units of
  /// reference-CPU utilisation).
  double offered_load_per_node() const;

 private:
  struct NodeStream {
    topo::NodeId node;
    util::Rng rng;
  };

  void schedule_next(std::size_t stream_index);

  sim::NetworkSim& net_;
  LoadGenConfig cfg_;
  std::shared_ptr<const util::Distribution> demand_;
  std::vector<NodeStream> streams_;
  bool running_ = false;
  /// Generation counter: bumped on stop() so stale arrival events no-op.
  std::uint64_t epoch_ = 0;
  std::uint64_t jobs_generated_ = 0;
  double total_work_ = 0.0;
};

}  // namespace netsel::load
