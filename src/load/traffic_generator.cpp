#include "load/traffic_generator.hpp"

#include <stdexcept>

namespace netsel::load {

TrafficGenerator::TrafficGenerator(sim::NetworkSim& net, TrafficGenConfig cfg,
                                   util::Rng rng)
    : net_(net),
      cfg_(cfg),
      size_dist_(util::LogNormal::from_mean(cfg.size_mean_bytes, cfg.size_sigma)),
      rng_(std::move(rng)),
      hosts_(net.topology().compute_nodes()) {
  if (cfg_.mean_interarrival <= 0.0)
    throw std::invalid_argument("TrafficGen: mean_interarrival must be > 0");
  if (cfg_.intensity < 0.0)
    throw std::invalid_argument("TrafficGen: intensity must be >= 0");
  if (hosts_.size() < 2)
    throw std::invalid_argument("TrafficGen: need at least 2 compute nodes");
}

void TrafficGenerator::start() {
  if (running_ || cfg_.intensity == 0.0) return;
  running_ = true;
  ++epoch_;
  schedule_next();
}

void TrafficGenerator::stop() {
  running_ = false;
  ++epoch_;
}

double TrafficGenerator::offered_bits_per_second() const {
  if (cfg_.intensity == 0.0) return 0.0;
  return size_dist_.mean() * 8.0 / (cfg_.mean_interarrival / cfg_.intensity);
}

void TrafficGenerator::schedule_next() {
  double dt = rng_.exponential_mean(cfg_.mean_interarrival / cfg_.intensity);
  std::uint64_t my_epoch = epoch_;
  net_.sim().schedule_after(dt, [this, my_epoch] {
    if (!running_ || epoch_ != my_epoch) return;
    auto n = static_cast<std::int64_t>(hosts_.size());
    auto si = static_cast<std::size_t>(rng_.uniform_int(0, n - 1));
    auto di = static_cast<std::size_t>(rng_.uniform_int(0, n - 2));
    if (di >= si) ++di;  // uniform over ordered pairs of distinct nodes
    double bytes = size_dist_.sample(rng_);
    net_.network().start_flow(hosts_[si], hosts_[di], bytes,
                              sim::kBackgroundOwner);
    ++messages_;
    total_bytes_ += bytes;
    schedule_next();
  });
}

BulkStream::BulkStream(sim::NetworkSim& net, topo::NodeId src, topo::NodeId dst,
                       double chunk_bytes)
    : net_(net), src_(src), dst_(dst), chunk_bytes_(chunk_bytes) {
  if (src == dst) throw std::invalid_argument("BulkStream: src == dst");
  if (chunk_bytes <= 0.0)
    throw std::invalid_argument("BulkStream: chunk_bytes must be > 0");
}

void BulkStream::start() {
  if (running_) return;
  running_ = true;
  launch_chunk();
}

void BulkStream::stop() {
  running_ = false;
  if (flow_active_) {
    double left = net_.network().cancel_flow(current_flow_);
    bytes_done_ += chunk_bytes_ - left;
    flow_active_ = false;
  }
}

void BulkStream::launch_chunk() {
  current_flow_ = net_.network().start_flow(
      src_, dst_, chunk_bytes_, sim::kBackgroundOwner, [this](sim::FlowId) {
        flow_active_ = false;
        bytes_done_ += chunk_bytes_;
        if (running_) launch_chunk();
      });
  flow_active_ = true;
}

}  // namespace netsel::load
