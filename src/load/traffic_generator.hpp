#pragma once
// Synthetic network-traffic generator (paper §4.2).
//
// "For generating network traffic, messages were periodically sent between
//  random nodes. Message interarrival times were Poisson, with message
//  length having a LogNormal distribution."
//
// Arrivals form one global Poisson process; each message picks a uniformly
// random ordered pair of distinct compute nodes and becomes a max-min fair
// flow on the simulated network.

#include <cstdint>
#include <vector>

#include "sim/network_sim.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace netsel::load {

struct TrafficGenConfig {
  /// Mean interarrival between messages across the whole network, seconds.
  double mean_interarrival = 0.5;
  /// LogNormal size parameters. Defaults give a mean around 4 MB with a
  /// heavy upper tail — "large high-speed data transfers we would be most
  /// concerned about in our target environment".
  double size_mean_bytes = 4e6;
  double size_sigma = 1.2;
  /// Multiplies the arrival rate; 0 disables.
  double intensity = 1.0;
};

class TrafficGenerator {
 public:
  TrafficGenerator(sim::NetworkSim& net, TrafficGenConfig cfg, util::Rng rng);

  void start();
  void stop();
  bool running() const { return running_; }

  std::uint64_t messages_generated() const { return messages_; }
  double total_bytes_generated() const { return total_bytes_; }
  /// Offered network load in bits/second across the whole network.
  double offered_bits_per_second() const;

 private:
  void schedule_next();

  sim::NetworkSim& net_;
  TrafficGenConfig cfg_;
  util::LogNormal size_dist_;
  util::Rng rng_;
  std::vector<topo::NodeId> hosts_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t messages_ = 0;
  double total_bytes_ = 0.0;
};

/// A persistent bulk stream between a fixed pair of nodes — the "traffic
/// stream from m-16 to m-18" of the paper's Fig. 4. Implemented as
/// back-to-back large transfers so the stream holds its max-min share
/// continuously until stopped.
class BulkStream {
 public:
  BulkStream(sim::NetworkSim& net, topo::NodeId src, topo::NodeId dst,
             double chunk_bytes = 64e6);

  void start();
  void stop();
  bool running() const { return running_; }
  double bytes_transferred() const { return bytes_done_; }

 private:
  void launch_chunk();

  sim::NetworkSim& net_;
  topo::NodeId src_;
  topo::NodeId dst_;
  double chunk_bytes_;
  bool running_ = false;
  sim::FlowId current_flow_ = 0;
  bool flow_active_ = false;
  double bytes_done_ = 0.0;
};

}  // namespace netsel::load
