#include "obs/export.hpp"

#include "obs/jobtrace.hpp"
#include "obs/timeseries.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace netsel::obs {

namespace {

/// Shortest round-trip double rendering that is always valid JSON (no inf /
/// nan — callers keep those out; clamp defensively anyway).
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void write_histogram_body(const Registry::HistogramView& h, std::ostream& os) {
  os << "{\"bounds\":[";
  for (std::size_t i = 0; i < h.bounds.size(); ++i)
    os << (i ? "," : "") << num(h.bounds[i]);
  os << "],\"counts\":[";
  for (std::size_t i = 0; i < h.counts.size(); ++i)
    os << (i ? "," : "") << h.counts[i];
  os << "],\"count\":" << h.count << ",\"sum\":" << num(h.sum)
     << ",\"min\":" << num(h.min) << ",\"max\":" << num(h.max) << "}";
}

}  // namespace

void write_text(const Registry& r, std::ostream& os) {
  auto counters = r.counters();
  auto gauges = r.gauges();
  auto hists = r.histograms();
  std::size_t width = 12;
  for (const auto& [name, v] : counters) width = std::max(width, name.size());
  for (const auto& [name, v] : gauges) width = std::max(width, name.size());
  for (const auto& h : hists) width = std::max(width, h.name.size());

  if (!counters.empty()) os << "== counters ==\n";
  for (const auto& [name, v] : counters) {
    os << "  " << name;
    os.width(static_cast<std::streamsize>(width - name.size() + 2));
    os << ' ' << v << "\n";
  }
  if (!gauges.empty()) os << "== gauges ==\n";
  for (const auto& [name, v] : gauges) {
    os << "  " << name;
    os.width(static_cast<std::streamsize>(width - name.size() + 2));
    os << ' ' << v << "\n";
  }
  if (!hists.empty()) os << "== histograms ==\n";
  for (const auto& h : hists) {
    os << "  " << h.name << "  count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " max=" << h.max
       << " mean=" << (h.count ? h.sum / static_cast<double>(h.count) : 0.0)
       << "\n";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      os << "    le ";
      if (i < h.bounds.size())
        os << h.bounds[i];
      else
        os << "+inf";
      os << ": " << h.counts[i] << "\n";
    }
  }
  os << "spans recorded: " << r.spans().size() << "\n";
}

std::string to_text(const Registry& r) {
  std::ostringstream os;
  write_text(r, os);
  return os.str();
}

void write_json_lines(const Registry& r, std::ostream& os) {
  for (const auto& [name, v] : r.counters())
    os << "{\"type\":\"counter\",\"name\":" << quoted(name)
       << ",\"value\":" << v << "}\n";
  for (const auto& [name, v] : r.gauges())
    os << "{\"type\":\"gauge\",\"name\":" << quoted(name)
       << ",\"value\":" << num(v) << "}\n";
  for (const auto& h : r.histograms()) {
    os << "{\"type\":\"histogram\",\"name\":" << quoted(h.name) << ",";
    std::ostringstream body;
    write_histogram_body(h, body);
    // Splice the histogram object's fields into this line's object.
    std::string b = body.str();
    os << b.substr(1, b.size() - 2) << "}\n";
  }
}

std::string to_json_lines(const Registry& r) {
  std::ostringstream os;
  write_json_lines(r, os);
  return os.str();
}

void write_json(const Registry& r, std::ostream& os) {
  os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : r.counters()) {
    os << (first ? "" : ",") << "\n    " << quoted(name) << ": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : r.gauges()) {
    os << (first ? "" : ",") << "\n    " << quoted(name) << ": " << num(v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& h : r.histograms()) {
    os << (first ? "" : ",") << "\n    " << quoted(h.name) << ": ";
    write_histogram_body(h, os);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"spans\": " << r.spans().size()
     << "\n}\n";
}

std::string to_json(const Registry& r) {
  std::ostringstream os;
  write_json(r, os);
  return os.str();
}

namespace {

/// Emit the opening of the traceEvents array plus the registry's span
/// events; callers append further comma-prefixed events and close the array.
void write_chrome_trace_open(const Registry& r, std::ostream& os);

}  // namespace

void write_chrome_trace(const Registry& r, std::ostream& os,
                        const TimeSeriesRecorder* ts,
                        const JobTraceRecorder* jobs) {
  write_chrome_trace_open(r, os);
  if (ts) ts->write_chrome_counters(os);
  if (jobs) jobs->write_chrome_events(os);
  os << "\n]}\n";
}

void write_chrome_trace(const Registry& r, std::ostream& os) {
  write_chrome_trace_open(r, os);
  os << "\n]}\n";
}

namespace {

void write_chrome_trace_open(const Registry& r, std::ostream& os) {
  os << "{\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"netsel\"}}";
  for (const SpanRecord& s : r.spans()) {
    os << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
       << ",\"name\":" << quoted(s.name) << ",\"cat\":" << quoted(s.cat)
       << ",\"ts\":" << num(s.ts_us) << ",\"dur\":" << num(s.dur_us)
       << ",\"args\":{";
    bool first = true;
    if (s.sim_begin >= 0.0) {
      os << "\"sim_begin_s\":" << num(s.sim_begin)
         << ",\"sim_end_s\":" << num(s.sim_end);
      first = false;
    }
    for (const auto& [k, v] : s.args) {
      os << (first ? "" : ",") << quoted(k) << ":" << quoted(v);
      first = false;
    }
    os << "}}";
  }
}

}  // namespace

std::string to_chrome_trace(const Registry& r) {
  std::ostringstream os;
  write_chrome_trace(r, os);
  return os.str();
}

}  // namespace netsel::obs
