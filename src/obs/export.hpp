#pragma once
// Exporters for the obs registry: a plain-text table for terminals, JSON
// lines for log scrapers, a single JSON document for tooling
// (scripts/check_metrics_json.py validates its schema), and Chrome
// trace_event format loadable in chrome://tracing or https://ui.perfetto.dev.

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace netsel::obs {

/// Identifier stamped into the JSON document so schema drift fails fast.
inline constexpr const char* kMetricsSchema = "netsel-metrics-v1";

/// Human-readable table: counters, gauges, then histograms with their
/// bucket breakdowns.
void write_text(const Registry& r, std::ostream& os);
std::string to_text(const Registry& r);

/// One JSON object per line, one line per metric:
///   {"type":"counter","name":...,"value":...}
///   {"type":"gauge","name":...,"value":...}
///   {"type":"histogram","name":...,"count":...,"sum":...,...}
void write_json_lines(const Registry& r, std::ostream& os);
std::string to_json_lines(const Registry& r);

/// Single JSON document:
///   {"schema":"netsel-metrics-v1","counters":{...},"gauges":{...},
///    "histograms":{name:{"bounds":[...],"counts":[...],"count":n,
///                        "sum":s,"min":m,"max":M}},"spans":n}
void write_json(const Registry& r, std::ostream& os);
std::string to_json(const Registry& r);

/// Chrome trace_event JSON ({"traceEvents":[...]}): every recorded span as
/// a complete ("ph":"X") event with wall-clock ts/dur in microseconds and
/// sim-time plus string args under "args".
void write_chrome_trace(const Registry& r, std::ostream& os);
std::string to_chrome_trace(const Registry& r);

class TimeSeriesRecorder;
class JobTraceRecorder;

/// As write_chrome_trace, with the time-dimension tracks merged into the
/// same traceEvents array: the recorder's counter curves ("ph":"C", pid 2,
/// sim-time axis) so Perfetto shows the service breathing, and the per-job
/// span tracks (pid 3, one tid per job). Either pointer may be null.
void write_chrome_trace(const Registry& r, std::ostream& os,
                        const TimeSeriesRecorder* ts,
                        const JobTraceRecorder* jobs);

}  // namespace netsel::obs
