#include "obs/flight.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <ostream>

#include "obs/metrics.hpp"

namespace netsel::obs {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

obs::Counter& flight_events_counter() {
  static obs::Counter& c = Registry::global().counter("obs.flight.events");
  return c;
}

}  // namespace

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::Admit: return "admit";
    case FlightKind::Reject: return "reject";
    case FlightKind::Place: return "place";
    case FlightKind::Conflict: return "conflict";
    case FlightKind::Infeasible: return "infeasible";
    case FlightKind::Timeout: return "timeout";
    case FlightKind::Complete: return "complete";
    case FlightKind::Rebalance: return "rebalance";
    case FlightKind::LadderTransition: return "ladder";
    case FlightKind::JournalOverflow: return "journal-overflow";
    case FlightKind::SweepDrop: return "sweep-drop";
    case FlightKind::SensorOutage: return "sensor-outage";
    case FlightKind::Custom: return "custom";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : mask_(round_up_pow2(std::max<std::size_t>(capacity, 2)) - 1),
      slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder r;
  return r;
}

void FlightRecorder::record(FlightKind kind, double sim_time, std::uint64_t a,
                            std::uint64_t b, std::string_view detail) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[seq & mask_];
  // Seqlock write: odd while the payload is inconsistent. A reader that
  // observes an odd or changed version discards the slot.
  s.ver.store(seq * 2 - 1, std::memory_order_release);
  s.ev.seq = seq;
  s.ev.sim_time = sim_time;
  s.ev.kind = kind;
  s.ev.a = a;
  s.ev.b = b;
  const std::size_t n = std::min(detail.size(), sizeof(s.ev.detail) - 1);
  std::memcpy(s.ev.detail, detail.data(), n);
  s.ev.detail[n] = '\0';
  s.ver.store(seq * 2, std::memory_order_release);
  flight_events_counter().inc();
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t n) const {
  const std::uint64_t last = next_.load(std::memory_order_acquire);
  const std::uint64_t window =
      std::min<std::uint64_t>({last, mask_ + 1, n});
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(window));
  for (std::uint64_t seq = last - window + 1; seq <= last; ++seq) {
    const Slot& s = slots_[seq & mask_];
    const std::uint64_t v0 = s.ver.load(std::memory_order_acquire);
    if (v0 != seq * 2) continue;  // overwritten or mid-write
    FlightEvent ev = s.ev;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.ver.load(std::memory_order_relaxed) != v0) continue;
    out.push_back(ev);
  }
  return out;
}

void FlightRecorder::clear() {
  next_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i <= mask_; ++i)
    slots_[i].ver.store(0, std::memory_order_relaxed);
}

void FlightRecorder::dump(std::ostream& os, std::size_t last_n) const {
  const std::vector<FlightEvent> events = tail(last_n);
  os << "== flight recorder: last " << events.size() << " of " << recorded()
     << " events ==\n";
  char line[160];
  for (const FlightEvent& ev : events) {
    std::snprintf(line, sizeof line,
                  "flight[%llu] t=%.3f %-16s a=%llu b=%llu %s\n",
                  static_cast<unsigned long long>(ev.seq), ev.sim_time,
                  flight_kind_name(ev.kind),
                  static_cast<unsigned long long>(ev.a),
                  static_cast<unsigned long long>(ev.b), ev.detail);
    os << line;
  }
}

namespace {

void dump_global_to_stderr() {
  const auto events = FlightRecorder::global().tail(64);
  std::fprintf(stderr, "== flight recorder: last %zu of %llu events ==\n",
               events.size(),
               static_cast<unsigned long long>(
                   FlightRecorder::global().recorded()));
  for (const FlightEvent& ev : events)
    std::fprintf(stderr, "flight[%llu] t=%.3f %-16s a=%llu b=%llu %s\n",
                 static_cast<unsigned long long>(ev.seq), ev.sim_time,
                 flight_kind_name(ev.kind),
                 static_cast<unsigned long long>(ev.a),
                 static_cast<unsigned long long>(ev.b), ev.detail);
}

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void terminate_with_dump() {
  dump_global_to_stderr();
  if (g_prev_terminate) g_prev_terminate();
  std::abort();
}

void (*g_prev_sigabrt)(int) = SIG_DFL;

void sigabrt_with_dump(int sig) {
  // fprintf after SIGABRT is not strictly async-signal-safe; this is a
  // best-effort post-mortem on the way down, not a recovery path.
  dump_global_to_stderr();
  std::signal(sig, g_prev_sigabrt);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::install_crash_dump() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  g_prev_terminate = std::set_terminate(terminate_with_dump);
  g_prev_sigabrt = std::signal(SIGABRT, sigabrt_with_dump);
  if (g_prev_sigabrt == SIG_ERR) g_prev_sigabrt = SIG_DFL;
}

}  // namespace netsel::obs
