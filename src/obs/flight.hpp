#pragma once
// obs::FlightRecorder — an always-on, fixed-capacity, lock-free ring of
// structured events, kept so that any failure (a --check violation, an
// assertion, a crash) can dump the last-N events as a post-mortem.
//
// Unlike the metrics Registry, the flight recorder is NOT gated on
// obs::enabled(): its whole point is to already hold the recent past when
// something goes wrong in a run nobody instrumented. Recording is a single
// atomic slot claim plus a bounded memcpy-sized write; events are plain
// structs (no allocation), so the cost per event is tens of nanoseconds at
// decision granularity (admissions, rejections, ladder transitions — never
// per-BFS-step).
//
// Concurrency: writers claim slots with one fetch_add; each slot carries a
// seqlock-style version so readers (tail()/dump(), rare) detect and skip
// slots that are mid-write or have been overwritten since. Events from
// concurrent writers interleave by claim order; the scheduler only records
// from its serial event loop, so its runs produce a deterministic sequence.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string_view>
#include <vector>

namespace netsel::obs {

/// What happened. Kinds cover the scheduler state machine plus the
/// measurement-path anomalies the post-mortem usually hinges on.
enum class FlightKind : std::uint8_t {
  Admit,            ///< job admitted to the queue (a = job id)
  Reject,           ///< admission refused (a = job id)
  Place,            ///< placement committed (a = job id, b = node count)
  Conflict,         ///< speculative set re-placed serially (a = job id)
  Infeasible,       ///< placement attempt failed (a = job id)
  Timeout,          ///< queued job waited past the timeout (a = job id)
  Complete,         ///< job ran to completion, resources released (a = job)
  Rebalance,        ///< post-release migration (a = job id, b = migrations)
  LadderTransition, ///< tenant degradation rung changed (detail = tenant,
                    ///< a = old rung, b = new rung)
  JournalOverflow,  ///< a delta-journal reader missed too much and must
                    ///< rebuild from scratch (a = epochs missed)
  SweepDrop,        ///< monitor sweep dropped whole (fault injection)
  SensorOutage,     ///< a sensor went down mid-run (a = sensor index)
  Custom,           ///< free-form (detail says what)
};

const char* flight_kind_name(FlightKind k);

struct FlightEvent {
  std::uint64_t seq = 0;  ///< 1-based global order of the event
  double sim_time = -1.0; ///< simulated time, -1 when not applicable
  FlightKind kind = FlightKind::Custom;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  char detail[40] = {0};  ///< NUL-terminated, truncated to fit
};

class FlightRecorder {
 public:
  /// Capacity is fixed for the recorder's lifetime; values are rounded up
  /// to a power of two (slot index = seq & mask).
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// The process-wide recorder instrumented call sites use.
  static FlightRecorder& global();

  void record(FlightKind kind, double sim_time, std::uint64_t a = 0,
              std::uint64_t b = 0, std::string_view detail = {});

  /// The newest min(n, recorded, capacity) events, oldest first. Events
  /// overwritten or mid-write during the read are skipped.
  std::vector<FlightEvent> tail(std::size_t n = SIZE_MAX) const;

  /// Total events ever recorded (including those the ring has dropped).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return mask_ + 1; }

  /// Drop everything recorded so far (tests; not thread-safe vs writers).
  void clear();

  /// Human-readable post-mortem: one line per event, oldest first.
  ///   flight[seq] t=SIM kind a=A b=B detail
  void dump(std::ostream& os, std::size_t last_n = 64) const;

  /// Install std::terminate and SIGABRT hooks that dump global() to stderr
  /// before dying, so assertion failures leave a post-mortem. Idempotent.
  static void install_crash_dump();

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  struct Slot {
    /// Even = stable (value is the claiming seq * 2), odd = mid-write.
    std::atomic<std::uint64_t> ver{0};
    FlightEvent ev;
  };
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace netsel::obs
