#include "obs/jobtrace.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace netsel::obs {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "-1";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_double(std::uint64_t h, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv1a(h, bits);
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

struct TraceMetrics {
  Counter& traces;
  Counter& spans;
};

TraceMetrics& trace_metrics() {
  static TraceMetrics m{
      Registry::global().counter("obs.trace.traces"),
      Registry::global().counter("obs.trace.spans"),
  };
  return m;
}

}  // namespace

std::uint32_t JobTraceRecorder::begin(std::uint64_t trace_id,
                                      std::uint32_t parent, std::string name,
                                      double sim_begin) {
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) {
    it = traces_.emplace(trace_id, std::vector<JobSpan>{}).first;
    trace_metrics().traces.inc();
  }
  std::vector<JobSpan>& spans = it->second;
  if (parent != JobSpan::kNoParent && parent >= spans.size())
    throw std::out_of_range("JobTraceRecorder: parent span out of range");
  JobSpan s;
  s.parent = parent;
  s.name = std::move(name);
  s.sim_begin = sim_begin;
  spans.push_back(std::move(s));
  ++span_count_;
  trace_metrics().spans.inc();
  return static_cast<std::uint32_t>(spans.size() - 1);
}

void JobTraceRecorder::end(std::uint64_t trace_id, std::uint32_t span,
                           double sim_end) {
  std::vector<JobSpan>& spans = traces_.at(trace_id);
  JobSpan& s = spans.at(span);
  s.sim_end = sim_end < s.sim_begin ? s.sim_begin : sim_end;
}

std::uint32_t JobTraceRecorder::span(std::uint64_t trace_id,
                                     std::uint32_t parent, std::string name,
                                     double sim_begin, double sim_end) {
  const std::uint32_t id = begin(trace_id, parent, std::move(name), sim_begin);
  end(trace_id, id, sim_end);
  return id;
}

void JobTraceRecorder::annotate(std::uint64_t trace_id, std::uint32_t span,
                                std::string key, std::string value) {
  traces_.at(trace_id).at(span).args.emplace_back(std::move(key),
                                                  std::move(value));
}

const std::vector<JobSpan>& JobTraceRecorder::trace(
    std::uint64_t trace_id) const {
  return traces_.at(trace_id);
}

std::uint64_t JobTraceRecorder::digest() const {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& [id, spans] : traces_) {
    h = fnv1a(h, id);
    h = fnv1a(h, spans.size());
    for (const JobSpan& s : spans) {
      h = fnv1a(h, s.parent);
      h = fnv1a_str(h, s.name);
      h = fnv1a_double(h, s.sim_begin);
      h = fnv1a_double(h, s.sim_end);
    }
  }
  return h;
}

void JobTraceRecorder::write_jsonl(std::ostream& os) const {
  for (const auto& [id, spans] : traces_) {
    os << "{\"job\":" << id << ",\"spans\":[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const JobSpan& s = spans[i];
      os << (i ? "," : "") << "{\"id\":" << i << ",\"parent\":"
         << (s.parent == JobSpan::kNoParent
                 ? std::string("-1")
                 : std::to_string(s.parent))
         << ",\"name\":" << quoted(s.name)
         << ",\"sim_begin\":" << num(s.sim_begin)
         << ",\"sim_end\":" << num(s.sim_end);
      if (!s.args.empty()) {
        os << ",\"args\":{";
        for (std::size_t a = 0; a < s.args.size(); ++a)
          os << (a ? "," : "") << quoted(s.args[a].first) << ":"
             << quoted(s.args[a].second);
        os << "}";
      }
      os << "}";
    }
    os << "]}\n";
  }
}

void JobTraceRecorder::write_chrome_events(std::ostream& os) const {
  os << ",\n{\"ph\":\"M\",\"pid\":3,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"job traces (sim time)\"}}";
  for (const auto& [id, spans] : traces_) {
    os << ",\n{\"ph\":\"M\",\"pid\":3,\"tid\":" << id
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"job " << id
       << "\"}}";
    for (const JobSpan& s : spans) {
      const double begin = s.sim_begin < 0.0 ? 0.0 : s.sim_begin;
      const double end = s.sim_end < begin ? begin : s.sim_end;
      os << ",\n{\"ph\":\"X\",\"pid\":3,\"tid\":" << id
         << ",\"name\":" << quoted(s.name)
         << ",\"cat\":\"job\",\"ts\":" << num(begin * 1e6)
         << ",\"dur\":" << num((end - begin) * 1e6) << ",\"args\":{";
      bool first = true;
      for (const auto& [k, v] : s.args) {
        os << (first ? "" : ",") << quoted(k) << ":" << quoted(v);
        first = false;
      }
      os << "}}";
    }
  }
}

}  // namespace netsel::obs
