#pragma once
// obs::JobTraceRecorder — per-job causal traces for the scheduler service.
//
// A trace is minted when a job is admitted (trace id == job id) and grows a
// span tree stitched across the whole lifecycle: queue wait, each
// speculative placement attempt, conflict re-placement, the commit, the
// simulated run, rebalance migrations and the release. Spans carry exact
// *simulated*-time bounds (wall-clock never enters a trace), so a seeded
// run produces bit-identical traces at any thread or lane count — asserted
// by digest(), which hashes the tree structure and sim-time bounds but
// deliberately excludes args (lane attribution is reported for Perfetto but
// depends on the configured lane count).
//
// The recorder is only written from the scheduler's serial event loop
// (speculative lanes hand their decisions back before anything is
// recorded), so it needs no locking; it is observational and never read by
// the scheduler.
//
// Exports: a structured JSONL (one line per job: tenant, outcome, the span
// tree with parent indices) and Chrome trace_event tracks (pid 3, one tid
// per job) that Perfetto shows as one lane per job next to the service
// spans and the time-series counter curves.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace netsel::obs {

struct JobSpan {
  std::uint32_t parent = kNoParent;  ///< index within the same trace
  std::string name;
  double sim_begin = -1.0;
  double sim_end = -1.0;  ///< -1 while open
  /// Free-form annotations (lane, nodes, note, ...). Not digested.
  std::vector<std::pair<std::string, std::string>> args;

  static constexpr std::uint32_t kNoParent = 0xffffffffu;
};

class JobTraceRecorder {
 public:
  /// Open a new span under `parent` (JobSpan::kNoParent for the root).
  /// Returns the span's index within the trace. The first begin() for a
  /// trace id mints the trace.
  std::uint32_t begin(std::uint64_t trace_id, std::uint32_t parent,
                      std::string name, double sim_begin);
  /// Close an open span at `sim_end` (>= its sim_begin).
  void end(std::uint64_t trace_id, std::uint32_t span, double sim_end);
  /// Convenience: a complete child span [sim_begin, sim_end].
  std::uint32_t span(std::uint64_t trace_id, std::uint32_t parent,
                     std::string name, double sim_begin, double sim_end);
  void annotate(std::uint64_t trace_id, std::uint32_t span, std::string key,
                std::string value);

  std::size_t traces() const { return traces_.size(); }
  std::size_t spans() const { return span_count_; }
  bool has_trace(std::uint64_t trace_id) const {
    return traces_.count(trace_id) != 0;
  }
  const std::vector<JobSpan>& trace(std::uint64_t trace_id) const;

  /// FNV-1a over every trace id, span structure (parent links, names,
  /// order) and sim-time bounds. Excludes args — see the header comment.
  std::uint64_t digest() const;

  /// One JSON object per line per trace:
  ///   {"job":N,"spans":[{"id":0,"parent":-1,"name":...,
  ///     "sim_begin":...,"sim_end":...,"args":{...}},...]}
  void write_jsonl(std::ostream& os) const;
  /// Chrome trace_event complete events on the sim-time axis (ts/dur in
  /// sim-microseconds), pid 3, tid = job id, plus thread_name metadata per
  /// job. Every event is preceded by a comma for splicing into an open
  /// traceEvents array.
  void write_chrome_events(std::ostream& os) const;

 private:
  std::map<std::uint64_t, std::vector<JobSpan>> traces_;
  std::size_t span_count_ = 0;
};

}  // namespace netsel::obs
