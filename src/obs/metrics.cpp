#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace netsel::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_next_thread{0};

/// Wall-clock epoch shared by every span: captured on first use so span
/// timestamps are small, positive and mutually comparable.
std::chrono::steady_clock::time_point obs_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Lock-free max on an atomic double.
void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t thread_index() {
  thread_local const std::size_t idx =
      g_next_thread.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

// --- Counter ---------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// --- Gauge -----------------------------------------------------------------

void Gauge::add(double d) {
  if (!enabled()) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  bucket_counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    bucket_counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe_unchecked(double v) {
  std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  bucket_counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = bucket_counts_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    bucket_counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             double min, double max, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank in [1, total]: the ceil'd nearest rank, interpolated within its
  // bucket by how far into the bucket's count the (fractional) rank lands.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double lo_rank = static_cast<double>(cum);
    cum += counts[b];
    if (rank > static_cast<double>(cum)) continue;
    // Bucket value range, tightened by the observed extremes: the first
    // populated bucket cannot start below min, the overflow bucket (and
    // every bucket) cannot end above max.
    double lo = b == 0 ? min : bounds[b - 1];
    double hi = b < bounds.size() ? bounds[b] : max;
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi < lo) hi = lo;
    const double frac =
        counts[b] == 0
            ? 0.0
            : std::min(1.0, std::max(0.0, (rank - lo_rank) /
                                              static_cast<double>(counts[b])));
    return lo + (hi - lo) * frac;
  }
  return max;
}

double Histogram::quantile(double q) const {
  return quantile_from_buckets(bounds_, counts(), min(), max(), q);
}

double Registry::HistogramView::quantile(double q) const {
  return quantile_from_buckets(bounds, counts, min, max, q);
}

std::vector<double> exp_buckets(double first, double factor, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  double v = first;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> linear_buckets(double first, double step, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(first + step * i);
  return out;
}

// --- Registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_.emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  return *it->second;
}

void Registry::record_span(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<Registry::HistogramView> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramView> out;
  out.reserve(hists_.size());
  for (const auto& [name, h] : hists_) {
    HistogramView v;
    v.name = name;
    v.bounds = h->bounds();
    v.counts = h->counts();
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : hists_) h->reset();
  spans_.clear();
}

// --- Span ------------------------------------------------------------------

Span::Span(std::string_view name, std::string_view cat, double sim_now)
    : active_(enabled()) {
  if (!active_) return;
  rec_.name.assign(name);
  rec_.cat.assign(cat);
  rec_.sim_begin = sim_now;
  rec_.sim_end = sim_now;
  rec_.tid = static_cast<std::uint32_t>(thread_index());
  t0_ = std::chrono::steady_clock::now();
  rec_.ts_us =
      std::chrono::duration<double, std::micro>(t0_ - obs_epoch()).count();
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  rec_.args.emplace_back(std::string(key), std::string(value));
}

void Span::sim_range(double begin, double end) {
  if (!active_) return;
  rec_.sim_begin = begin;
  rec_.sim_end = end;
}

Span::~Span() {
  if (!active_) return;
  rec_.dur_us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0_)
                    .count();
  Registry::global().record_span(std::move(rec_));
}

}  // namespace netsel::obs
