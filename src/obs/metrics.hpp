#pragma once
// obs: a process-wide observability layer — named counters, gauges and
// fixed-bucket histograms in a global Registry, RAII scoped timers, and
// structured spans carrying both wall-time and sim-time.
//
// Contract (enforced by tests/test_obs.cpp):
//
//   * Purely observational. Nothing read from the registry ever feeds back
//     into selection, simulation or experiment results: every run is
//     bit-identical with the registry enabled or disabled.
//   * Never serializes the work-stealing pool. Counter updates go to
//     per-thread-sharded relaxed atomics; histograms use relaxed atomics;
//     only metric *registration* (first touch of a name) and span recording
//     (decision granularity — placements, trials, cells — never per-event)
//     take a mutex.
//   * The disabled path costs a single relaxed load + branch per
//     instrumentation site. ScopedTimer reads no clock when disabled.
//   * References returned by Registry::counter()/gauge()/histogram() stay
//     valid for the life of the process; reset() zeroes values and drops
//     spans but never destroys metric objects.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace netsel::obs {

/// Global instrumentation switch (off by default: zero-overhead-ish).
/// Relaxed: toggling mid-flight may drop or keep a few in-flight updates,
/// never corrupts state.
bool enabled();
void set_enabled(bool on);

/// Stable small index for the calling thread, used to pick counter shards
/// and to tag spans. Assigned on first use, monotonically.
std::size_t thread_index();

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonic counter, sharded across cache lines so concurrent increments
/// from pool workers never contend on one location (let alone a lock).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[thread_index() % kShards].v.fetch_add(n,
                                                  std::memory_order_relaxed);
  }
  /// Sum over shards. Racy-exact: concurrent increments may or may not be
  /// included, each exactly once.
  std::uint64_t value() const;
  void reset();

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-value-wins instantaneous metric.
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double d);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit +inf overflow bucket. Tracks count, sum, min and max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) {
    if (!enabled()) return;
    observe_unchecked(v);
  }
  void observe_unchecked(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] pairs with bounds()[i]; the final entry is the overflow.
  std::vector<std::uint64_t> counts() const;
  /// Bucket-based quantile estimate (q in [0, 1]) with linear interpolation
  /// inside the rank's bucket, tightened by the recorded min/max at the
  /// edges — the centralized p50/p99 every bench reports. 0 when empty.
  double quantile(double q) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty (keeps exports finite).
  double min() const;
  double max() const;
  double mean() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bucket_counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exponential bucket bounds: first, first*factor, ... (n entries).
std::vector<double> exp_buckets(double first, double factor, int n);
/// Linear bucket bounds: first, first+step, ... (n entries).
std::vector<double> linear_buckets(double first, double step, int n);

/// The shared quantile estimator behind Histogram::quantile and
/// HistogramView::quantile: nearest-rank walk over the cumulative bucket
/// counts, linear interpolation within the chosen bucket, with the first
/// bucket's lower edge replaced by `min` and the overflow bucket capped at
/// `max` (exact for distributions that never leave one bucket).
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             double min, double max, double q);

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One finished span, Chrome-trace-shaped: wall-clock start/duration in
/// microseconds since the process obs epoch, plus optional sim-time range
/// (negative = not set) and free-form string args.
struct SpanRecord {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  double sim_begin = -1.0;
  double sim_end = -1.0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

class Registry {
 public:
  /// The process-wide registry every instrumentation site uses.
  static Registry& global();

  /// Create-or-get by name. Cache the returned reference (e.g. in a local
  /// static) — lookup takes a mutex, the metric itself never does.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` are used on first registration only; later calls with the
  /// same name return the existing histogram unchanged.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& bounds);

  void record_span(SpanRecord rec);

  struct HistogramView {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Bucket-based quantile estimate (see Histogram::quantile).
    double quantile(double q) const;
  };

  /// Deterministic (name-sorted) value snapshots for the exporters.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<HistogramView> histograms() const;
  std::vector<SpanRecord> spans() const;

  /// Zero every metric and drop recorded spans. Metric references handed
  /// out earlier remain valid (objects are kept, only values reset).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> hists_;
  std::vector<SpanRecord> spans_;
};

// ---------------------------------------------------------------------------
// RAII instrumentation
// ---------------------------------------------------------------------------

/// Observes its wall-clock lifetime (seconds) into a histogram. Disabled at
/// construction time -> no clock read, no observation.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : h_(enabled() ? &h : nullptr),
        t0_(h_ ? std::chrono::steady_clock::now()
               : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (h_)
      h_->observe_unchecked(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
              .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

/// A structured span recorded into the global registry on destruction.
/// Carries wall-time always and sim-time when provided. Use at decision
/// granularity (a placement, a trial, an experiment cell) — span recording
/// takes the registry mutex, unlike counters.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view cat = "netsel",
                double sim_now = -1.0);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  /// Attach a string argument (shows up under "args" in the Chrome trace).
  void arg(std::string_view key, std::string_view value);
  /// Record the simulated-time range covered by this span.
  void sim_range(double begin, double end);

 private:
  bool active_;
  SpanRecord rec_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace netsel::obs
