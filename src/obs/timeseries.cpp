#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace netsel::obs {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_double(std::uint64_t h, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv1a(h, bits);
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

struct TsMetrics {
  Counter& samples;
  Counter& dropped;
  Gauge& series;
};

TsMetrics& ts_metrics() {
  static TsMetrics m{
      Registry::global().counter("obs.ts.samples"),
      Registry::global().counter("obs.ts.dropped"),
      Registry::global().gauge("obs.ts.series"),
  };
  return m;
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(double cadence_s, std::size_t capacity)
    : cadence_(cadence_s), capacity_(std::max<std::size_t>(capacity, 2)) {
  if (!(cadence_s > 0.0))
    throw std::invalid_argument("TimeSeriesRecorder: cadence must be > 0");
}

void TimeSeriesRecorder::add_counter(std::string name, CounterFn fn) {
  if (rows_ != 0)
    throw std::logic_error("TimeSeriesRecorder: add sources before sampling");
  Series s;
  s.name = std::move(name);
  s.is_counter = true;
  s.counter = std::move(fn);
  series_.push_back(std::move(s));
  ts_metrics().series.set(static_cast<double>(series_.size()));
}

void TimeSeriesRecorder::add_gauge(std::string name, GaugeFn fn) {
  if (rows_ != 0)
    throw std::logic_error("TimeSeriesRecorder: add sources before sampling");
  Series s;
  s.name = std::move(name);
  s.gauge = std::move(fn);
  series_.push_back(std::move(s));
  ts_metrics().series.set(static_cast<double>(series_.size()));
}

void TimeSeriesRecorder::sample_until(double sim_t, bool inclusive) {
  for (;;) {
    const double b = static_cast<double>(next_boundary_) * cadence_;
    if (inclusive ? b > sim_t : b >= sim_t) break;
    emit_row();
  }
}

void TimeSeriesRecorder::emit_row() {
  if (rows_ == capacity_) evict_oldest_row();
  for (Series& s : series_) {
    if (s.is_counter) {
      const std::uint64_t v = s.counter();
      if (rows_ == 0) {
        s.first = v;
      } else {
        s.deltas.push_back(static_cast<std::int64_t>(v - s.last));
      }
      s.last = v;
    } else {
      s.raw.push_back(s.gauge());
    }
  }
  ++rows_;
  ++total_rows_;
  ++next_boundary_;
  ts_metrics().samples.inc();
}

void TimeSeriesRecorder::evict_oldest_row() {
  for (Series& s : series_) {
    if (s.is_counter) {
      if (!s.deltas.empty()) {
        s.first = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(s.first) + s.deltas.front());
        s.deltas.pop_front();
      }
    } else {
      s.raw.pop_front();
    }
  }
  --rows_;
  ts_metrics().dropped.inc();
}

double TimeSeriesRecorder::t_first() const {
  return rows_ == 0
             ? -1.0
             : static_cast<double>(total_rows_ - rows_) * cadence_;
}

double TimeSeriesRecorder::t_last() const {
  return total_rows_ == 0 ? -1.0
                          : static_cast<double>(total_rows_ - 1) * cadence_;
}

std::vector<double> TimeSeriesRecorder::values(const std::string& name) const {
  for (const Series& s : series_) {
    if (s.name != name) continue;
    std::vector<double> out;
    out.reserve(rows_);
    if (s.is_counter) {
      if (rows_ == 0) return out;
      std::uint64_t v = s.first;
      out.push_back(static_cast<double>(v));
      for (std::int64_t d : s.deltas) {
        v = static_cast<std::uint64_t>(static_cast<std::int64_t>(v) + d);
        out.push_back(static_cast<double>(v));
      }
    } else {
      out.assign(s.raw.begin(), s.raw.end());
    }
    return out;
  }
  throw std::out_of_range("TimeSeriesRecorder: unknown series " + name);
}

std::uint64_t TimeSeriesRecorder::digest() const {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, total_rows_);
  h = fnv1a(h, rows_);
  h = fnv1a_double(h, cadence_);
  for (const Series& s : series_) {
    h = fnv1a_str(h, s.name);
    h = fnv1a(h, s.is_counter ? 1 : 0);
    for (double v : values(s.name)) h = fnv1a_double(h, v);
  }
  return h;
}

void TimeSeriesRecorder::write_json(std::ostream& os) const {
  // Name-sorted like the registry exporters, for stable diffs.
  std::vector<std::size_t> order(series_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return series_[a].name < series_[b].name;
  });
  os << "{\n  \"schema\": \"" << kTimeSeriesSchema << "\",\n"
     << "  \"cadence_s\": " << num(cadence_) << ",\n"
     << "  \"samples\": " << rows_ << ",\n"
     << "  \"dropped\": " << dropped() << ",\n"
     << "  \"t_first\": " << num(t_first()) << ",\n"
     << "  \"t_last\": " << num(t_last()) << ",\n"
     << "  \"series\": {";
  bool first_series = true;
  for (std::size_t idx : order) {
    const Series& s = series_[idx];
    os << (first_series ? "" : ",") << "\n    \"" << s.name << "\": ";
    first_series = false;
    if (s.is_counter) {
      os << "{\"type\":\"counter\",\"first\":" << s.first
         << ",\"last\":" << s.last << ",\"deltas\":[";
      bool first_v = true;
      for (std::int64_t d : s.deltas) {
        os << (first_v ? "" : ",") << d;
        first_v = false;
      }
      os << "]}";
    } else {
      os << "{\"type\":\"gauge\",\"values\":[";
      bool first_v = true;
      for (double v : s.raw) {
        os << (first_v ? "" : ",") << num(v);
        first_v = false;
      }
      os << "]}";
    }
  }
  os << (first_series ? "" : "\n  ") << "}\n}\n";
}

void TimeSeriesRecorder::write_csv(std::ostream& os) const {
  std::vector<std::size_t> order(series_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return series_[a].name < series_[b].name;
  });
  os << "t";
  for (std::size_t idx : order) os << "," << series_[idx].name;
  os << "\n";
  std::vector<std::vector<double>> cols;
  cols.reserve(order.size());
  for (std::size_t idx : order) cols.push_back(values(series_[idx].name));
  for (std::size_t r = 0; r < rows_; ++r) {
    os << num(t_first() + static_cast<double>(r) * cadence_);
    for (const auto& col : cols) os << "," << num(col[r]);
    os << "\n";
  }
}

void TimeSeriesRecorder::write_chrome_counters(std::ostream& os) const {
  os << ",\n{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"sim timeline\"}}";
  for (const Series& s : series_) {
    const std::vector<double> vals = values(s.name);
    for (std::size_t r = 0; r < vals.size(); ++r) {
      const double t_us =
          (t_first() + static_cast<double>(r) * cadence_) * 1e6;
      os << ",\n{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"" << s.name
         << "\",\"ts\":" << num(t_us) << ",\"args\":{\"value\":"
         << num(vals[r]) << "}}";
    }
  }
}

}  // namespace netsel::obs
