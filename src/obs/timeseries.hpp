#pragma once
// obs::TimeSeriesRecorder — bounded, delta-encoded time series sampled on a
// simulated-time cadence, so point-in-time gauges (queue depth, jobs
// running) and counters (placements, conflicts) become curves instead of
// end-of-run values.
//
// The recorder is passive: it holds named sources (callbacks reading the
// owner's state) and the owner's event loop drives it by calling
// sample_until(sim_t) whenever simulated time advances. Because the owner's
// state only changes at event instants, sampling a cadence boundary with
// the carried-forward state between events is exact, and the whole series
// is a pure function of the (deterministic) run — bit-identical across
// thread counts like every other obs artifact.
//
// Storage is one bounded ring of sample rows shared by all series: counter
// series store int64 deltas against the previous row (plus the value at the
// first retained row), gauges store raw doubles. When the ring is full the
// oldest row is evicted from every series at once — first/last values and
// the retained time range stay exact, only history is shortened (mirrored
// in the obs.ts.dropped counter).
//
// Exports: a deterministic JSON document (schema netsel-timeseries-v1 —
// scripts/check_metrics_json.py --profile timeseries validates monotone
// time, sample-count/cadence consistency and the delta-decode round trip),
// a CSV table (t plus one column per series), and Chrome trace_event
// counter samples ("ph":"C") on the sim-time axis so Perfetto draws the
// curves alongside the span tracks.

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace netsel::obs {

inline constexpr const char* kTimeSeriesSchema = "netsel-timeseries-v1";

class TimeSeriesRecorder {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;

  /// `cadence_s` is the simulated-time sampling period (> 0); `capacity`
  /// bounds the retained rows (>= 2).
  explicit TimeSeriesRecorder(double cadence_s, std::size_t capacity = 4096);

  /// Register sources before the first sample_until call. Names should be
  /// metric-style dotted paths (they become JSON keys and CSV headers).
  void add_counter(std::string name, CounterFn fn);
  void add_gauge(std::string name, GaugeFn fn);

  /// Emit a sample row for every pending cadence boundary b = i * cadence
  /// with b <= sim_t (strictly < when `inclusive` is false), reading every
  /// source at emit time. The owner calls this (a) just before processing
  /// an event instant with inclusive=false — boundaries strictly before the
  /// instant carry the unchanged state forward — and (b) after the loop
  /// with inclusive=true, so a boundary coinciding with an event instant
  /// reflects the post-event state.
  void sample_until(double sim_t, bool inclusive = true);

  double cadence() const { return cadence_; }
  /// Rows currently retained / ever emitted / evicted by the ring bound.
  std::size_t samples() const { return rows_; }
  std::uint64_t total_samples() const { return total_rows_; }
  std::uint64_t dropped() const { return total_rows_ - rows_; }
  /// Sim time of the first retained / last emitted row (-1 when empty).
  double t_first() const;
  double t_last() const;
  std::size_t series_count() const { return series_.size(); }

  /// Decoded values of one series, first retained row first.
  std::vector<double> values(const std::string& name) const;

  /// FNV-1a digest over names, the retained time range and every decoded
  /// value — the cross-thread-count bit-identity probe.
  std::uint64_t digest() const;

  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  /// Chrome trace_event counter samples, one "ph":"C" event per row per
  /// series, ts = sim-time in microseconds. Emits a leading comma before
  /// every event so the caller can splice into an open traceEvents array.
  void write_chrome_counters(std::ostream& os) const;

 private:
  struct Series {
    std::string name;
    bool is_counter = false;
    CounterFn counter;
    GaugeFn gauge;
    /// Counter series: value at the first retained row, then one delta per
    /// later row. Gauge series: raw values, one per row (`first` unused).
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    std::deque<std::int64_t> deltas;
    std::deque<double> raw;
  };

  void emit_row();
  void evict_oldest_row();

  double cadence_;
  std::size_t capacity_;
  std::vector<Series> series_;
  std::uint64_t next_boundary_ = 0;  ///< index of the next row to emit
  std::size_t rows_ = 0;
  std::uint64_t total_rows_ = 0;
};

}  // namespace netsel::obs
