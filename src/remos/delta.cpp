#include "remos/delta.hpp"

namespace netsel::remos {

const char* delta_kind_name(DeltaKind k) {
  switch (k) {
    case DeltaKind::NodeLoad: return "node-load";
    case DeltaKind::NodeMemory: return "node-memory";
    case DeltaKind::LinkBandwidth: return "link-bandwidth";
    case DeltaKind::NodeAdded: return "node-added";
    case DeltaKind::NodeRemoved: return "node-removed";
    case DeltaKind::LinkAdded: return "link-added";
    case DeltaKind::LinkRemoved: return "link-removed";
  }
  return "?";
}

}  // namespace netsel::remos
