#pragma once
// Typed snapshot mutation stream. Every NetworkSnapshot mutation — a sensor
// update (load, memory, link availability) or a structural change (host or
// link added/removed) — is described by one Delta and recorded in the
// snapshot's bounded journal, alongside the opaque epoch bump that predates
// this layer. Consumers that cached state at epoch e ask the snapshot for
// the deltas between e and the current epoch and invalidate *only what the
// deltas touch* (see select::SelectionContext); when the journal has been
// trimmed past e they fall back to a full rebuild, which is exactly the old
// epoch-only behaviour.

#include <cstdint>

#include "topo/graph.hpp"

namespace netsel::remos {

enum class DeltaKind : std::uint8_t {
  /// cpu(node) changed (set_cpu / set_loadavg). `value` is the new fraction.
  NodeLoad,
  /// free_memory(node) changed. `value` is the new byte count.
  NodeMemory,
  /// bw(link) changed (set_bw / set_bw_dir). `value` is the new min-over-
  /// directions availability.
  LinkBandwidth,
  /// A node was appended to the topology; `node` is its id.
  NodeAdded,
  /// A (degree-0) node was removed; its id stays allocated but is no longer
  /// compute-eligible.
  NodeRemoved,
  /// A link was appended to the topology; `link` is its id.
  LinkAdded,
  /// A link was removed; its id stays allocated, its availability is 0.
  LinkRemoved,
};

const char* delta_kind_name(DeltaKind k);

/// True for the kinds that change the adjacency structure (as opposed to
/// only the measured values on an unchanged structure).
constexpr bool delta_is_structural(DeltaKind k) {
  return k == DeltaKind::NodeAdded || k == DeltaKind::NodeRemoved ||
         k == DeltaKind::LinkAdded || k == DeltaKind::LinkRemoved;
}

/// One snapshot mutation. Exactly one of node/link is meaningful, per kind.
/// Delta i (1-based) transitions the snapshot from epoch i-1 to epoch i, so
/// replaying the deltas after epoch e in order reproduces every change a
/// cache built at e has missed.
struct Delta {
  DeltaKind kind = DeltaKind::NodeLoad;
  topo::NodeId node = topo::kInvalidNode;
  topo::LinkId link = topo::kInvalidLink;
  /// New value (kind-dependent; 0 for structural deltas).
  double value = 0.0;
};

}  // namespace netsel::remos
