#include "remos/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netsel::remos {

bool FaultPlan::any() const {
  return p_sweep_drop > 0.0 || p_sweep_delay > 0.0 || p_node_fail > 0.0 ||
         p_link_fail > 0.0 || noise_sigma > 0.0;
}

void FaultPlan::validate() const {
  auto prob = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                  " must be in [0,1]");
  };
  prob(p_sweep_drop, "p_sweep_drop");
  prob(p_sweep_delay, "p_sweep_delay");
  prob(p_node_fail, "p_node_fail");
  prob(p_node_repair, "p_node_repair");
  prob(p_link_fail, "p_link_fail");
  prob(p_link_repair, "p_link_repair");
  if (noise_sigma < 0.0)
    throw std::invalid_argument("FaultPlan: noise_sigma must be >= 0");
  if (p_sweep_delay > 0.0 && max_sweep_delay <= 0.0)
    throw std::invalid_argument(
        "FaultPlan: p_sweep_delay > 0 needs max_sweep_delay > 0");
  if ((p_node_fail > 0.0 && p_node_repair <= 0.0) ||
      (p_link_fail > 0.0 && p_link_repair <= 0.0))
    throw std::invalid_argument(
        "FaultPlan: outages need a positive repair probability");
}

FaultPlan FaultPlan::scaled(double severity, std::uint64_t seed,
                            double poll_interval) {
  if (severity < 0.0 || severity > 1.0)
    throw std::invalid_argument("FaultPlan::scaled: severity must be in [0,1]");
  FaultPlan p;
  p.seed = seed;
  if (severity == 0.0) return p;  // any() == false: no injector at all
  p.p_sweep_drop = 0.25 * severity;
  p.p_sweep_delay = 0.30 * severity;
  p.max_sweep_delay = 2.0 * poll_interval;
  // Long outage bursts (mean 1/p_repair = 12.5 sweeps ≈ 25 s at the default
  // 2 s interval): comparable to the default 30 s history window, so at high
  // severity a real fraction of sensors has no sample left inside the
  // freshness horizon and the service's degradation ladder engages.
  // Stationary availability p_r/(p_f+p_r): ~0.89 at 0.1 severity, ~0.44 at 1.
  p.p_node_fail = 0.10 * severity;
  p.p_node_repair = 0.08;
  p.p_link_fail = 0.10 * severity;
  p.p_link_repair = 0.08;
  p.noise_sigma = 0.25 * severity;
  return p;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t node_count,
                             std::size_t link_dir_count)
    : plan_(plan),
      rng_(plan.seed, "remos-faults"),
      node_down_(node_count, 0),
      link_down_(link_dir_count, 0) {
  plan_.validate();
}

void FaultInjector::advance_chain(std::vector<char>& down, double p_fail,
                                  double p_repair) {
  if (p_fail <= 0.0) return;
  // Exactly one draw per sensor per sweep keeps the stream length (and so
  // every later draw) independent of the realised up/down pattern.
  for (char& d : down) {
    bool flip = rng_.bernoulli(d ? p_repair : p_fail);
    if (flip) d = d ? 0 : 1;
  }
}

void FaultInjector::begin_sweep() {
  ++sweeps_;
  sweep_dropped_ = plan_.p_sweep_drop > 0.0 && rng_.bernoulli(plan_.p_sweep_drop);
  // Outage processes run on the sensors, not in the poller: they advance
  // even through dropped sweeps.
  advance_chain(node_down_, plan_.p_node_fail, plan_.p_node_repair);
  advance_chain(link_down_, plan_.p_link_fail, plan_.p_link_repair);
}

bool FaultInjector::node_down(std::size_t node) const {
  return node_down_.at(node) != 0;
}

bool FaultInjector::link_down(std::size_t link_dir) const {
  return link_down_.at(link_dir) != 0;
}

double FaultInjector::perturb(double value) {
  if (plan_.noise_sigma <= 0.0) return value;
  return value * std::exp(plan_.noise_sigma * rng_.normal(0.0, 1.0));
}

double FaultInjector::draw_delay() {
  if (plan_.p_sweep_delay <= 0.0) return 0.0;
  if (!rng_.bernoulli(plan_.p_sweep_delay)) return 0.0;
  return rng_.uniform(0.0, plan_.max_sweep_delay);
}

}  // namespace netsel::remos
