#pragma once
// Measurement-fault injection for the Remos monitor. The paper's selection
// procedures deliberately run on *measured, possibly stale* data (§2.2); a
// real SNMP sweep additionally drops polls, loses individual sensors for
// stretches of time, reports noisy counters and falls behind schedule. A
// FaultPlan describes those failure processes; a FaultInjector is the
// seeded, deterministic realisation the Monitor consults on every sweep.
//
// Determinism contract: a given (plan, seed) pair replays the same fault
// sequence sweep-for-sweep, and a plan with no faults configured creates no
// injector at all — the no-fault measurement path is bit-identical to a
// build without this layer.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace netsel::remos {

/// Stochastic description of measurement failures, applied per sweep.
/// Per-sensor outages follow a two-state Markov chain advanced once per
/// sweep: an up sensor fails with p_*_fail, a down sensor recovers with
/// p_*_repair — so mean outage length is 1/p_repair sweeps and stationary
/// availability is p_repair / (p_fail + p_repair).
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Probability a whole sweep is dropped (poller missed its slot; nothing
  /// is recorded anywhere, histories age by one interval).
  double p_sweep_drop = 0.0;

  /// Probability a sweep is late, stretching the gap to the next sweep by
  /// Uniform(0, max_sweep_delay] seconds.
  double p_sweep_delay = 0.0;
  double max_sweep_delay = 0.0;

  /// Per-node sensor outage chain (a down node records neither load,
  /// memory nor owner-attributed series that sweep).
  double p_node_fail = 0.0;
  double p_node_repair = 1.0;

  /// Per-link-direction sensor outage chain.
  double p_link_fail = 0.0;
  double p_link_repair = 1.0;

  /// Multiplicative measurement noise: recorded = true * exp(sigma * N(0,1)).
  /// Lognormal keeps measurements non-negative and leaves exact zeros exact
  /// (an idle sensor does not invent load).
  double noise_sigma = 0.0;

  /// True when any fault process is active; false means the Monitor skips
  /// injector construction entirely.
  bool any() const;
  /// Throws std::invalid_argument on out-of-range probabilities.
  void validate() const;

  /// One-knob plan for sweeps: severity 0 is fault-free, severity 1 is a
  /// badly broken measurement plane (≈25% dropped sweeps, sensors down more
  /// than half the time in window-length bursts, 25% noise, late sweeps up
  /// to 2 intervals). Used by the bench_faults grid; fault probabilities
  /// interpolate linearly in severity.
  static FaultPlan scaled(double severity, std::uint64_t seed,
                          double poll_interval = 2.0);
};

/// Seeded realisation of a FaultPlan over a fixed sensor population.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::size_t node_count,
                std::size_t link_dir_count);

  /// Advance every outage chain one sweep and draw the sweep-drop outcome.
  /// Call exactly once per sweep, before reading any sensor state.
  void begin_sweep();
  /// True when the sweep begun last is dropped wholesale.
  bool sweep_dropped() const { return sweep_dropped_; }

  bool node_down(std::size_t node) const;
  bool link_down(std::size_t link_dir) const;

  /// Multiplicative noise on one measured value (draws iff sigma > 0).
  double perturb(double value);
  /// Extra delay before the next sweep (draws iff p_sweep_delay > 0).
  double draw_delay();

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t sweeps_begun() const { return sweeps_; }

 private:
  void advance_chain(std::vector<char>& down, double p_fail, double p_repair);

  FaultPlan plan_;
  util::Rng rng_;
  bool sweep_dropped_ = false;
  std::uint64_t sweeps_ = 0;
  std::vector<char> node_down_;  ///< per node id
  std::vector<char> link_down_;  ///< per link direction (link * 2 + dir)
};

}  // namespace netsel::remos
