#include "remos/history.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace netsel::remos {

TimeSeries::TimeSeries(double window_seconds) : window_(window_seconds) {
  if (window_seconds <= 0.0)
    throw std::invalid_argument("TimeSeries: window must be > 0");
}

void TimeSeries::record(double time, double value) {
  if (!samples_.empty() && time < samples_.back().time)
    throw std::invalid_argument("TimeSeries: time must be non-decreasing");
  samples_.push_back({time, value});
  trim(time);
}

void TimeSeries::trim(double now) {
  while (!samples_.empty() && samples_.front().time < now - window_)
    samples_.pop_front();
}

const Sample& TimeSeries::latest() const {
  if (samples_.empty()) throw std::logic_error("TimeSeries: empty");
  return samples_.back();
}

double TimeSeries::age(double now) const {
  if (samples_.empty()) return std::numeric_limits<double>::infinity();
  return now - samples_.back().time;
}

double Forecaster::estimate_bounded(const TimeSeries& ts, double fallback,
                                    double now, double max_age) const {
  if (!(max_age < std::numeric_limits<double>::infinity()))
    return estimate(ts, fallback);
  if (!ts.fresh(now, max_age)) return fallback;
  // Same cutoff as trim(now): strictly older than `now - window` goes.
  if (ts.samples().front().time >= now - ts.window())
    return estimate(ts, fallback);
  TimeSeries live(ts.window());
  for (const Sample& s : ts.samples())
    if (s.time >= now - ts.window()) live.record(s.time, s.value);
  return estimate(live, fallback);
}

double LastValue::estimate(const TimeSeries& ts, double fallback) const {
  return ts.empty() ? fallback : ts.latest().value;
}

double WindowMean::estimate(const TimeSeries& ts, double fallback) const {
  if (ts.empty()) return fallback;
  double sum = 0.0;
  for (const Sample& s : ts.samples()) sum += s.value;
  return sum / static_cast<double>(ts.size());
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("Ewma: alpha must be in (0,1]");
}

double Ewma::estimate(const TimeSeries& ts, double fallback) const {
  if (ts.empty()) return fallback;
  double est = ts.samples().front().value;
  for (std::size_t i = 1; i < ts.size(); ++i)
    est = alpha_ * ts.samples()[i].value + (1.0 - alpha_) * est;
  return est;
}

std::string Ewma::name() const {
  std::ostringstream os;
  os << "ewma(alpha=" << alpha_ << ")";
  return os.str();
}

double WindowMax::estimate(const TimeSeries& ts, double fallback) const {
  if (ts.empty()) return fallback;
  double mx = ts.samples().front().value;
  for (const Sample& s : ts.samples()) mx = std::max(mx, s.value);
  return mx;
}

LinearTrend::LinearTrend(double horizon_seconds) : horizon_(horizon_seconds) {
  if (horizon_seconds < 0.0)
    throw std::invalid_argument("LinearTrend: horizon must be >= 0");
}

LinearTrend LinearTrend::one_step() {
  LinearTrend f(0.0);
  f.one_step_ = true;
  return f;
}

double LinearTrend::estimate(const TimeSeries& ts, double fallback) const {
  if (ts.empty()) return fallback;
  if (ts.size() == 1) return ts.latest().value;
  double n = static_cast<double>(ts.size());
  double st = 0.0, sv = 0.0, stt = 0.0, stv = 0.0;
  for (const Sample& s : ts.samples()) {
    st += s.time;
    sv += s.value;
    stt += s.time * s.time;
    stv += s.time * s.value;
  }
  double denom = n * stt - st * st;
  if (denom <= 1e-12) return ts.latest().value;  // degenerate timestamps
  double slope = (n * stv - st * sv) / denom;
  double intercept = (sv - slope * st) / n;
  double horizon = horizon_;
  if (one_step_) {
    horizon = (ts.latest().time - ts.samples().front().time) / (n - 1.0);
  }
  double at = ts.latest().time + horizon;
  return std::max(intercept + slope * at, 0.0);
}

std::string LinearTrend::name() const {
  std::ostringstream os;
  if (one_step_) {
    os << "linear-trend(one-step)";
  } else {
    os << "linear-trend(horizon=" << horizon_ << "s)";
  }
  return os.str();
}

Adaptive::Adaptive()
    : Adaptive(std::vector<ForecasterPtr>{
          std::make_shared<LastValue>(), std::make_shared<WindowMean>(),
          std::make_shared<Ewma>(0.3),
          std::make_shared<LinearTrend>(LinearTrend::one_step())}) {}

Adaptive::Adaptive(std::vector<ForecasterPtr> candidates)
    : candidates_(std::move(candidates)) {
  if (candidates_.empty())
    throw std::invalid_argument("Adaptive: need candidates");
  for (const auto& c : candidates_) {
    if (!c) throw std::invalid_argument("Adaptive: null candidate");
  }
}

std::size_t Adaptive::best_candidate(const TimeSeries& ts) const {
  if (ts.size() < 3) return 0;
  // Replay: predict sample i from the prefix [0, i) and score the absolute
  // error. Prefix replay rebuilds a small series per step — histories are
  // bounded by the monitor window, so this stays tiny.
  std::vector<double> mae(candidates_.size(), 0.0);
  std::size_t evaluations = 0;
  for (std::size_t i = 2; i < ts.size(); ++i) {
    TimeSeries prefix(ts.window());
    for (std::size_t j = 0; j < i; ++j)
      prefix.record(ts.samples()[j].time, ts.samples()[j].value);
    double actual = ts.samples()[i].value;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      double predicted = candidates_[c]->estimate(prefix, actual);
      mae[c] += std::abs(predicted - actual);
    }
    ++evaluations;
  }
  (void)evaluations;
  std::size_t best = 0;
  for (std::size_t c = 1; c < candidates_.size(); ++c) {
    if (mae[c] < mae[best]) best = c;
  }
  return best;
}

double Adaptive::estimate(const TimeSeries& ts, double fallback) const {
  if (ts.empty()) return fallback;
  return candidates_[best_candidate(ts)]->estimate(ts, fallback);
}

std::string Adaptive::name() const {
  std::ostringstream os;
  os << "adaptive(";
  for (std::size_t c = 0; c < candidates_.size(); ++c)
    os << (c ? ", " : "") << candidates_[c]->name();
  os << ")";
  return os.str();
}

}  // namespace netsel::remos
