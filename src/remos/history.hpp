#pragma once
// Time-series histories and forecasters for the Remos monitor.
//
// Remos "can be queried for information based on a fixed window of history,
// current network conditions, or an estimate of the future availability"
// (paper §2.2). The paper's node selection "simply uses the most recent
// measurements as a forecast for the future" (§5, LastValue); WindowMean and
// Ewma implement the fixed-window and smoothed estimates, compared in the
// forecaster ablation bench.

#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace netsel::remos {

struct Sample {
  double time = 0.0;
  double value = 0.0;
};

/// Bounded time-window sample buffer.
class TimeSeries {
 public:
  explicit TimeSeries(double window_seconds = 60.0);

  void record(double time, double value);
  /// Drop samples older than `now - window`.
  void trim(double now);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const Sample& latest() const;
  const std::deque<Sample>& samples() const { return samples_; }
  double window() const { return window_; }

  /// Age of the newest sample at time `now`; +infinity when empty. trim()
  /// only runs inside record(), so a sensor that goes silent keeps serving
  /// its old samples as "latest" — age() is how callers tell a live series
  /// from a stalled one.
  double age(double now) const;
  /// True when the newest sample is within `max_age` of `now`.
  bool fresh(double now, double max_age) const { return age(now) <= max_age; }

 private:
  double window_;
  std::deque<Sample> samples_;
};

/// Estimator of the near-future value of a metric from its history.
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  /// Returns `fallback` when the series is empty (monitor not warmed up).
  virtual double estimate(const TimeSeries& ts, double fallback) const = 0;
  virtual std::string name() const = 0;

  /// Age-bounded estimation. estimate() trusts whatever the series holds,
  /// but a series only trims inside record(): when its sensor goes silent
  /// the stalled samples would be consumed as current forever. With a
  /// finite `max_age`, a series whose newest sample is older than `max_age`
  /// at `now` answers `fallback`, and surviving samples older than the
  /// series window (relative to `now`, not to the last record) are dropped
  /// before estimating. `max_age = +infinity` is exactly estimate().
  double estimate_bounded(const TimeSeries& ts, double fallback, double now,
                          double max_age) const;
};

using ForecasterPtr = std::shared_ptr<const Forecaster>;

/// Most recent measurement — the paper's choice.
class LastValue final : public Forecaster {
 public:
  double estimate(const TimeSeries& ts, double fallback) const override;
  std::string name() const override { return "last-value"; }
};

/// Arithmetic mean over the retained window.
class WindowMean final : public Forecaster {
 public:
  double estimate(const TimeSeries& ts, double fallback) const override;
  std::string name() const override { return "window-mean"; }
};

/// Exponentially weighted moving average over the samples (newest weighted
/// most), weight (1-alpha)^k for the k-th newest sample.
class Ewma final : public Forecaster {
 public:
  explicit Ewma(double alpha = 0.3);
  double estimate(const TimeSeries& ts, double fallback) const override;
  std::string name() const override;

 private:
  double alpha_;
};

/// Maximum over the retained window — a conservative estimate for
/// availability planning (assume the busiest recently-seen state persists).
class WindowMax final : public Forecaster {
 public:
  double estimate(const TimeSeries& ts, double fallback) const override;
  std::string name() const override { return "window-max"; }
};

/// Least-squares linear trend over the window, extrapolated `horizon`
/// seconds past the newest sample (clamped at >= 0: loads, bandwidths and
/// memory are non-negative). With fewer than 2 samples falls back to the
/// last value.
class LinearTrend final : public Forecaster {
 public:
  explicit LinearTrend(double horizon_seconds = 0.0);
  /// Extrapolate one mean sample spacing past the newest sample — the
  /// natural horizon for one-step-ahead scoring (used by Adaptive).
  static LinearTrend one_step();
  double estimate(const TimeSeries& ts, double fallback) const override;
  std::string name() const override;

 private:
  double horizon_;    ///< seconds; ignored when one_step_
  bool one_step_ = false;
};

/// NWS-style adaptive forecaster (the paper's reference [26], Wolski's
/// Network Weather Service, selects among candidate predictors by their
/// track record): for each candidate, replay the history and measure the
/// mean absolute error of its one-step-ahead predictions; answer with the
/// lowest-error candidate's estimate.
class Adaptive final : public Forecaster {
 public:
  /// Default candidates: last-value, window-mean, ewma(0.3), linear trend.
  Adaptive();
  explicit Adaptive(std::vector<ForecasterPtr> candidates);
  double estimate(const TimeSeries& ts, double fallback) const override;
  std::string name() const override;

  /// Index of the candidate that would answer for this series (for tests
  /// and diagnostics); 0 when the series is too short to discriminate.
  std::size_t best_candidate(const TimeSeries& ts) const;

 private:
  std::vector<ForecasterPtr> candidates_;
};

}  // namespace netsel::remos
