#include "remos/monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace netsel::remos {

namespace {
obs::Counter& sweeps_counter() {
  static obs::Counter& c = obs::Registry::global().counter("remos.sweeps");
  return c;
}
obs::Counter& sweeps_dropped_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("remos.sweeps_dropped");
  return c;
}
obs::Counter& samples_dropped_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("remos.samples_dropped");
  return c;
}
/// Up -> down edges per sensor (a 5-sweep outage counts once, not 5 times).
obs::Counter& outage_transitions_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("remos.sensor_outage_transitions");
  return c;
}
obs::Histogram& sweep_seconds_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "remos.sweep_s", obs::exp_buckets(1e-7, 4.0, 12));
  return h;
}
}  // namespace

Monitor::Monitor(sim::NetworkSim& net, MonitorConfig cfg)
    : net_(net), cfg_(cfg) {
  if (cfg_.poll_interval <= 0.0)
    throw std::invalid_argument("Monitor: poll_interval must be > 0");
  if (cfg_.history_window < cfg_.poll_interval)
    throw std::invalid_argument("Monitor: window must cover >= one poll");
  cfg_.faults.validate();
  load_hist_.assign(net.topology().node_count(), TimeSeries(cfg_.history_window));
  memory_hist_.assign(net.topology().node_count(),
                      TimeSeries(cfg_.history_window));
  link_hist_.assign(net.topology().link_count() * 2,
                    TimeSeries(cfg_.history_window));
  owner_load_hist_.resize(net.topology().node_count());
  owner_link_hist_.resize(net.topology().link_count() * 2);
  if (cfg_.faults.any())
    injector_ = std::make_unique<FaultInjector>(
        cfg_.faults, net.topology().node_count(),
        net.topology().link_count() * 2);
}

void Monitor::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  poll_once();
  schedule_next();
}

void Monitor::stop() {
  running_ = false;
  ++epoch_;
}

void Monitor::poll_once() {
  obs::ScopedTimer sweep_timer(sweep_seconds_hist());
  double now = net_.sim().now();
  const auto& g = net_.topology();

  // Observability-only outage-edge tracking. Lazily sized so the no-fault
  // path never allocates. Always tracked when an injector is active (not
  // gated on obs::enabled()): the flight recorder's post-mortem value is
  // exactly the runs nobody instrumented. The registry counter itself still
  // no-ops while disabled.
  const bool track_outages = injector_ != nullptr;
  if (track_outages && obs_sensor_down_.empty())
    obs_sensor_down_.assign(g.node_count() + g.link_count() * 2, 0);
  auto note_sensor = [this, track_outages, now](std::size_t sensor,
                                                bool down) {
    if (!track_outages) return;
    if (down && !obs_sensor_down_[sensor]) {
      outage_transitions_counter().inc();
      obs::FlightRecorder::global().record(obs::FlightKind::SensorOutage, now,
                                           sensor);
    }
    obs_sensor_down_[sensor] = down ? 1 : 0;
  };

  if (injector_) {
    injector_->begin_sweep();
    if (injector_->sweep_dropped()) {
      // Poller missed its slot: nothing is recorded anywhere; every history
      // simply ages by one interval (queries see staler samples).
      ++sweeps_dropped_;
      sweeps_dropped_counter().inc();
      obs::FlightRecorder::global().record(obs::FlightKind::SweepDrop, now,
                                           sweeps_dropped_, polls_);
      return;
    }
  }
  auto measure = [this](double v) {
    return injector_ ? injector_->perturb(v) : v;
  };

  // Discover application owners active anywhere on the testbed; once seen,
  // an owner is recorded on every sweep (zeros included) so its series
  // decays correctly after it goes quiet or migrates away.
  auto note_owner = [this](sim::OwnerTag o) {
    if (o == sim::kBackgroundOwner) return;
    if (std::find(seen_owners_.begin(), seen_owners_.end(), o) ==
        seen_owners_.end())
      seen_owners_.push_back(o);
  };
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (!g.is_compute(id)) continue;
    for (sim::OwnerTag o : net_.host(id).tracked_owners()) note_owner(o);
  }
  for (sim::OwnerTag o : net_.network().active_owners()) note_owner(o);

  auto owner_series = [this](std::map<sim::OwnerTag, TimeSeries>& m,
                             sim::OwnerTag o) -> TimeSeries& {
    auto it = m.find(o);
    if (it == m.end())
      it = m.emplace(o, TimeSeries(cfg_.history_window)).first;
    return it->second;
  };

  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (!g.is_compute(id)) continue;
    if (injector_ && injector_->node_down(i)) {
      // The node's SNMP agent is unreachable: every series it feeds (load,
      // memory, owner attribution) stalls together this sweep.
      ++samples_dropped_;
      samples_dropped_counter().inc();
      note_sensor(i, true);
      continue;
    }
    note_sensor(i, false);
    const sim::Host& h = net_.host(id);
    load_hist_[i].record(now, measure(h.load_average()));
    double total_mem = g.node(id).memory_bytes;
    memory_hist_[i].record(
        now, measure(std::max(total_mem - h.memory_in_use(), 0.0)));
    for (sim::OwnerTag o : seen_owners_)
      owner_series(owner_load_hist_[i], o)
          .record(now, measure(h.owner_load_average(o)));
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    for (bool fwd : {true, false}) {
      std::size_t d = l * 2 + (fwd ? 0 : 1);
      if (injector_ && injector_->link_down(d)) {
        ++samples_dropped_;
        samples_dropped_counter().inc();
        note_sensor(g.node_count() + d, true);
        continue;
      }
      note_sensor(g.node_count() + d, false);
      link_hist_[d].record(now, measure(net_.network().link_used_bw(id, fwd)));
      for (sim::OwnerTag o : seen_owners_)
        owner_series(owner_link_hist_[d], o)
            .record(now, measure(net_.network().link_used_bw_by(id, fwd, o)));
    }
  }
  ++polls_;
  sweeps_counter().inc();
}

const TimeSeries* Monitor::owner_load_history(topo::NodeId n,
                                              sim::OwnerTag o) const {
  const auto& m = owner_load_hist_.at(static_cast<std::size_t>(n));
  auto it = m.find(o);
  return it == m.end() ? nullptr : &it->second;
}

const TimeSeries* Monitor::owner_link_history(topo::LinkId l, bool forward,
                                              sim::OwnerTag o) const {
  const auto& m =
      owner_link_hist_.at(static_cast<std::size_t>(l) * 2 + (forward ? 0 : 1));
  auto it = m.find(o);
  return it == m.end() ? nullptr : &it->second;
}

void Monitor::schedule_next() {
  std::uint64_t my_epoch = epoch_;
  // A late sweep stretches the gap to the next poll; the cadence re-anchors
  // afterwards, so one slow sweep does not shift every later one.
  double dt = cfg_.poll_interval + (injector_ ? injector_->draw_delay() : 0.0);
  net_.sim().schedule_after(dt, [this, my_epoch] {
    if (!running_ || epoch_ != my_epoch) return;
    poll_once();
    schedule_next();
  });
}

const TimeSeries& Monitor::load_history(topo::NodeId n) const {
  if (!net_.topology().is_compute(n))
    throw std::invalid_argument("Monitor: load history of a network node");
  return load_hist_.at(static_cast<std::size_t>(n));
}

const TimeSeries& Monitor::memory_history(topo::NodeId n) const {
  if (!net_.topology().is_compute(n))
    throw std::invalid_argument("Monitor: memory history of a network node");
  return memory_hist_.at(static_cast<std::size_t>(n));
}

const TimeSeries& Monitor::link_history(topo::LinkId l, bool forward) const {
  return link_hist_.at(static_cast<std::size_t>(l) * 2 + (forward ? 0 : 1));
}

}  // namespace netsel::remos
