#pragma once
// The Remos monitor: an SNMP-equivalent measurement layer over the
// simulated testbed. "The local area implementation of Remos is based on
// SNMP processes on network nodes and entails a very low overhead" (§2.2).
//
// Polls every compute node's load average and every link direction's
// utilised bandwidth on a fixed interval into bounded time-series. Queries
// therefore see *measured, possibly stale* state — never the simulator's
// ground truth — reproducing the information conditions the paper's
// selection procedures actually operated under.

#include <map>
#include <memory>
#include <vector>

#include "remos/faults.hpp"
#include "remos/history.hpp"
#include "sim/network_sim.hpp"

namespace netsel::remos {

struct MonitorConfig {
  double poll_interval = 2.0;    ///< seconds between SNMP sweeps
  double history_window = 30.0;  ///< seconds of samples retained
  /// Measurement-fault processes (dropped sweeps, sensor outages, noise,
  /// late sweeps). The default plan has no faults: no injector is built and
  /// the sweep path is bit-identical to the fault-free implementation.
  FaultPlan faults;
};

class Monitor {
 public:
  Monitor(sim::NetworkSim& net, MonitorConfig cfg = {});

  /// Begin polling at the current simulation time (first sweep immediate).
  void start();
  void stop();
  bool running() const { return running_; }

  /// Take one measurement sweep immediately (also used internally).
  void poll_once();

  const TimeSeries& load_history(topo::NodeId n) const;
  const TimeSeries& link_history(topo::LinkId l, bool forward) const;
  /// Free-memory history (bytes) of a compute node (§3.4 extension);
  /// all-zero for nodes whose topology does not model memory.
  const TimeSeries& memory_history(topo::NodeId n) const;

  /// Per-application histories: the monitor attributes each application
  /// owner's own load and traffic into separate series, so that queries can
  /// exclude an application's own contribution *time-aligned with the same
  /// measurement sweeps* (required for migration, §3.3 — comparing a stale
  /// total against an instantaneous own-contribution would make an
  /// application's own past communication phases look like competing
  /// traffic). Returns nullptr when the owner was never seen.
  const TimeSeries* owner_load_history(topo::NodeId n, sim::OwnerTag o) const;
  const TimeSeries* owner_link_history(topo::LinkId l, bool forward,
                                       sim::OwnerTag o) const;

  std::uint64_t polls_completed() const { return polls_; }
  /// Sweeps the fault injector dropped wholesale (nothing recorded).
  std::uint64_t sweeps_dropped() const { return sweeps_dropped_; }
  /// Individual sensor readings skipped because their sensor was down.
  std::uint64_t samples_dropped() const { return samples_dropped_; }
  /// Non-null iff the config's fault plan has any fault process active.
  const FaultInjector* fault_injector() const { return injector_.get(); }
  const MonitorConfig& config() const { return cfg_; }
  sim::NetworkSim& net() const { return net_; }

 private:
  void schedule_next();

  sim::NetworkSim& net_;
  MonitorConfig cfg_;
  std::unique_ptr<FaultInjector> injector_;  ///< null on the no-fault path
  bool running_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t sweeps_dropped_ = 0;
  std::uint64_t samples_dropped_ = 0;
  /// Indexed by NodeId; unused entries (network nodes) stay empty.
  std::vector<TimeSeries> load_hist_;
  std::vector<TimeSeries> memory_hist_;
  /// Indexed by link * 2 + direction.
  std::vector<TimeSeries> link_hist_;
  /// Application owners ever observed (background excluded).
  std::vector<sim::OwnerTag> seen_owners_;
  /// Per-node and per-direction owner-attributed series.
  std::vector<std::map<sim::OwnerTag, TimeSeries>> owner_load_hist_;
  std::vector<std::map<sim::OwnerTag, TimeSeries>> owner_link_hist_;
  /// Observability only: previous up/down state per sensor (nodes, then
  /// link directions), used to count outage *transitions* in the obs
  /// registry. Never read by measurements or queries.
  std::vector<char> obs_sensor_down_;
};

}  // namespace netsel::remos
