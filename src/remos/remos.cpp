#include "remos/remos.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace netsel::remos {

namespace {
obs::Histogram& query_coverage_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "remos.query.coverage", obs::linear_buckets(0.1, 0.1, 10));
  return h;
}
obs::Histogram& query_newest_age_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "remos.query.newest_age_s", obs::exp_buckets(0.125, 2.0, 10));
  return h;
}
obs::Histogram& query_oldest_age_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "remos.query.oldest_age_s", obs::exp_buckets(0.125, 2.0, 10));
  return h;
}
}  // namespace

void QueryQuality::note(double sample_age, double fresh_horizon) {
  horizon = fresh_horizon;
  ++sensors_total;
  if (sample_age <= fresh_horizon) ++sensors_fresh;
  newest_age = std::min(newest_age, sample_age);
  oldest_age = std::max(oldest_age, sample_age);
}

Remos::Remos(sim::NetworkSim& net, MonitorConfig cfg)
    : net_(net), monitor_(net, cfg) {}

double Remos::freshness_horizon(const QueryOptions& opt) const {
  return opt.max_sample_age < std::numeric_limits<double>::infinity()
             ? opt.max_sample_age
             : monitor_.config().history_window;
}

double Remos::forecast_sensor(const TimeSeries& ts, double fallback,
                              const QueryOptions& opt) const {
  double now = net_.sim().now();
  if (opt.quality) opt.quality->note(ts.age(now), freshness_horizon(opt));
  return opt.forecaster->estimate_bounded(ts, fallback, now,
                                          opt.max_sample_age);
}

double Remos::forecast_aux(const TimeSeries& ts, double fallback,
                           const QueryOptions& opt) const {
  return opt.forecaster->estimate_bounded(ts, fallback, net_.sim().now(),
                                          opt.max_sample_age);
}

double Remos::load_average(topo::NodeId n, const QueryOptions& opt) const {
  if (!opt.forecaster) throw std::invalid_argument("Remos: null forecaster");
  double load = forecast_sensor(monitor_.load_history(n), 0.0, opt);
  if (opt.exclude_owner != sim::kBackgroundOwner) {
    // Subtract the application's own contribution from the same measurement
    // sweeps (never a live value against a stale total: the series must be
    // time-aligned or the app's own past activity masquerades as load).
    if (const TimeSeries* own = monitor_.owner_load_history(n, opt.exclude_owner))
      load -= forecast_aux(*own, 0.0, opt);
  }
  return std::max(load, 0.0);
}

double Remos::forecast_link_used(topo::LinkId l, bool forward,
                                 const QueryOptions& opt) const {
  if (!opt.forecaster) throw std::invalid_argument("Remos: null forecaster");
  double used = forecast_sensor(monitor_.link_history(l, forward), 0.0, opt);
  if (opt.exclude_owner != sim::kBackgroundOwner) {
    if (const TimeSeries* own =
            monitor_.owner_link_history(l, forward, opt.exclude_owner))
      used -= forecast_aux(*own, 0.0, opt);
  }
  return std::max(used, 0.0);
}

double Remos::path_latency(topo::NodeId src, topo::NodeId dst) const {
  double total = 0.0;
  for (topo::LinkId l : net_.routes().route(src, dst))
    total += net_.topology().link(l).latency;
  return total;
}

NetworkSnapshot Remos::snapshot(const QueryOptions& opt) const {
  if (!opt.forecaster) throw std::invalid_argument("Remos: null forecaster");
  const auto& g = net_.topology();
  NetworkSnapshot snap(g);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (!g.is_compute(id)) continue;
    snap.set_loadavg(id, load_average(id, opt));
    // The memory series rides on the same per-node sensor the load series
    // already accounted for — bounded, but not double-counted in quality.
    snap.set_free_memory(
        id, forecast_aux(monitor_.memory_history(id), g.node(id).memory_bytes,
                         opt));
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    if (g.link_removed(id)) continue;  // tombstoned: stays at 0 availability
    const topo::Link& lk = g.link(id);
    double avail_ab = lk.capacity_ab - forecast_link_used(id, true, opt);
    double avail_ba = lk.capacity_ba - forecast_link_used(id, false, opt);
    snap.set_bw_dir(id, true, std::max(avail_ab, kBwFloor));
    snap.set_bw_dir(id, false, std::max(avail_ba, kBwFloor));
  }
  // Observability only: one sample per quality-carrying snapshot query, fed
  // from the same QueryQuality side channel callers already see.
  if (opt.quality && obs::enabled() && opt.quality->sensors_total > 0) {
    query_coverage_hist().observe(opt.quality->coverage());
    query_newest_age_hist().observe(opt.quality->newest_age);
    query_oldest_age_hist().observe(opt.quality->oldest_age);
  }
  return snap;
}

std::size_t Remos::refresh_snapshot(NetworkSnapshot& snap,
                                    const QueryOptions& opt) const {
  if (!opt.forecaster) throw std::invalid_argument("Remos: null forecaster");
  const auto& g = net_.topology();
  if (&snap.graph() != &g)
    throw std::invalid_argument(
        "refresh_snapshot: snapshot views a different topology");
  const std::uint64_t before = snap.epoch();
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (!g.is_compute(id)) continue;
    // Mirror set_loadavg's arithmetic so the no-change comparison is exact:
    // an unchanged reading emits no delta at all.
    double la = load_average(id, opt);
    if (la < 0.0) la = 0.0;
    if (1.0 / (1.0 + la) != snap.cpu(id)) snap.set_loadavg(id, la);
    double mem = forecast_aux(monitor_.memory_history(id),
                              g.node(id).memory_bytes, opt);
    if (mem < 0.0) mem = 0.0;
    if (mem != snap.free_memory(id)) snap.set_free_memory(id, mem);
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    if (g.link_removed(id)) continue;
    const topo::Link& lk = g.link(id);
    double avail_ab = std::max(
        lk.capacity_ab - forecast_link_used(id, true, opt), kBwFloor);
    double avail_ba = std::max(
        lk.capacity_ba - forecast_link_used(id, false, opt), kBwFloor);
    if (avail_ab != snap.bw_dir(id, true)) snap.set_bw_dir(id, true, avail_ab);
    if (avail_ba != snap.bw_dir(id, false))
      snap.set_bw_dir(id, false, avail_ba);
  }
  if (opt.quality && obs::enabled() && opt.quality->sensors_total > 0) {
    query_coverage_hist().observe(opt.quality->coverage());
    query_newest_age_hist().observe(opt.quality->newest_age);
    query_oldest_age_hist().observe(opt.quality->oldest_age);
  }
  return static_cast<std::size_t>(snap.epoch() - before);
}

double Remos::available_bandwidth(topo::NodeId src, topo::NodeId dst,
                                  const QueryOptions& opt) const {
  if (!opt.forecaster) throw std::invalid_argument("Remos: null forecaster");
  if (src == dst) return std::numeric_limits<double>::infinity();
  auto nodes = net_.routes().route_nodes(src, dst);
  auto links = net_.routes().route(src, dst);
  double bw = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const topo::Link& lk = net_.topology().link(links[i]);
    bool forward = lk.a == nodes[i];
    double cap = forward ? lk.capacity_ab : lk.capacity_ba;
    double avail = cap - forecast_link_used(links[i], forward, opt);
    bw = std::min(bw, std::max(avail, 0.0));
  }
  return bw;
}

double Remos::projected_flow_bandwidth(topo::NodeId src, topo::NodeId dst,
                                       const QueryOptions& opt) const {
  if (!opt.forecaster) throw std::invalid_argument("Remos: null forecaster");
  if (src == dst) return std::numeric_limits<double>::infinity();
  auto nodes = net_.routes().route_nodes(src, dst);
  auto links = net_.routes().route(src, dst);
  double bw = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const topo::Link& lk = net_.topology().link(links[i]);
    bool forward = lk.a == nodes[i];
    double cap = forward ? lk.capacity_ab : lk.capacity_ba;
    double residual = std::max(cap - forecast_link_used(links[i], forward, opt), 0.0);
    int n_flows = net_.network().link_flow_count(links[i], forward);
    double fair = cap / static_cast<double>(n_flows + 1);
    bw = std::min(bw, std::max(residual, fair));
  }
  return bw;
}

}  // namespace netsel::remos
