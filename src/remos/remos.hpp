#pragma once
// The Remos query API (paper §2.2): network information at two levels of
// abstraction — *flow queries* (available bandwidth between node pairs,
// accounting for sharing) and the *logical network topology* (the graph plus
// dynamic load/availability annotations: a NetworkSnapshot).

#include <cstddef>
#include <limits>
#include <memory>

#include "remos/history.hpp"
#include "remos/monitor.hpp"
#include "remos/snapshot.hpp"
#include "sim/network_sim.hpp"

namespace netsel::remos {

/// Snapshot bandwidth floor: selection needs strictly positive availability
/// so that fully saturated links still order sensibly below lightly used
/// ones (1 kbps on a >= 1 Mbps link is effectively "unusable").
inline constexpr double kBwFloor = 1e3;

/// Side-channel describing how well-founded a query answer is: how many of
/// the consulted sensors (one per compute node's load series, one per link
/// direction) had a sample within the freshness horizon, and how old the
/// consulted samples were. Callers use it to tell a fresh answer from a
/// fallback-dominated guess and degrade deliberately (see
/// api::DegradationPolicy) instead of trusting stale numbers.
struct QueryQuality {
  std::size_t sensors_total = 0;
  std::size_t sensors_fresh = 0;
  /// Age of the freshest / stalest newest-sample over consulted sensors;
  /// +infinity when a sensor has no samples at all (never-polled monitor).
  double newest_age = std::numeric_limits<double>::infinity();
  double oldest_age = 0.0;
  /// Horizon used to classify fresh vs stale (seconds).
  double horizon = 0.0;

  /// Fraction of consulted sensors with a fresh sample; 1 when none were
  /// consulted (a query that needed no measurements is not degraded).
  double coverage() const {
    return sensors_total == 0
               ? 1.0
               : static_cast<double>(sensors_fresh) /
                     static_cast<double>(sensors_total);
  }
  void note(double sample_age, double fresh_horizon);
};

struct QueryOptions {
  /// Forecaster applied to measurement histories; the paper "simply uses
  /// the most recent measurements as a forecast for the future".
  ForecasterPtr forecaster = std::make_shared<LastValue>();
  /// When non-zero, the named application's own load and traffic are
  /// excluded from the answer — required for dynamic migration (§3.3):
  /// "the load and traffic caused by the application itself must be
  /// captured separately as it is not due to a competing process."
  sim::OwnerTag exclude_owner = sim::kBackgroundOwner;
  /// Staleness bound: series whose newest sample is older than this at
  /// query time answer the forecaster fallback instead of replaying old
  /// samples (see Forecaster::estimate_bounded). The +infinity default is
  /// the historical behaviour, bit-identical.
  double max_sample_age = std::numeric_limits<double>::infinity();
  /// When non-null, filled with the freshness/coverage accounting of the
  /// query. Purely observational: attaching it never changes an answer.
  QueryQuality* quality = nullptr;
};

class Remos {
 public:
  Remos(sim::NetworkSim& net, MonitorConfig cfg = {});

  /// Start the monitoring processes (call once, before querying).
  void start() { monitor_.start(); }
  Monitor& monitor() { return monitor_; }
  const Monitor& monitor() const { return monitor_; }

  /// Logical-topology query: the graph annotated with measured cpu and
  /// available-bandwidth values. This is the structural information "that
  /// cannot be captured by measurements between pairs of compute nodes".
  NetworkSnapshot snapshot(const QueryOptions& opt = {}) const;

  /// In-place variant of snapshot(): re-measures the same values into an
  /// existing snapshot, but writes only the sensors whose reading actually
  /// changed, so the snapshot's delta journal captures exactly the changed
  /// measurements. A long-lived select::SelectionContext over `snap` then
  /// revalidates fine-grainedly (per-link row repair) instead of dropping
  /// every cache. `snap` must view this Remos's topology. Returns the
  /// number of deltas emitted (epoch advance).
  std::size_t refresh_snapshot(NetworkSnapshot& snap,
                               const QueryOptions& opt = {}) const;

  /// Flow query: bottleneck *residual* bandwidth on the static route
  /// between two nodes (capacity minus measured traffic, per direction
  /// traversed).
  double available_bandwidth(topo::NodeId src, topo::NodeId dst,
                             const QueryOptions& opt = {}) const;

  /// Flow query accounting for sharing: the max-min fair share a new flow
  /// could expect on the route — max(residual, capacity/(flows+1)) per
  /// traversed direction, minimised over the route.
  double projected_flow_bandwidth(topo::NodeId src, topo::NodeId dst,
                                  const QueryOptions& opt = {}) const;

  /// Measured load average of a node under the given options.
  double load_average(topo::NodeId n, const QueryOptions& opt = {}) const;

  /// One-way latency of the static route between two nodes (sum of link
  /// latencies). Remos exports "capacity, utilization and latency of
  /// network links" (§2.2); the paper defers using it to future work, the
  /// latency-aware selection extension consumes it.
  double path_latency(topo::NodeId src, topo::NodeId dst) const;

  const topo::TopologyGraph& topology() const { return net_.topology(); }

  /// Logical-topology query scoped to "the relevant part of the network"
  /// (§2.2): the sub-topology spanned by the routes among `nodes`. Combine
  /// with snapshot() + project_snapshot() for an annotated view.
  topo::LogicalSubgraph logical_subgraph(
      const std::vector<topo::NodeId>& nodes) const {
    return topo::extract_subgraph(net_.topology(), nodes);
  }

 private:
  /// Forecast utilisation of one link direction, with optional owner
  /// exclusion (exclusion uses the current owner contribution, since SNMP
  /// counters cannot attribute bytes to applications).
  double forecast_link_used(topo::LinkId l, bool forward,
                            const QueryOptions& opt) const;
  /// Age-bounded estimate over one primary sensor series, accounting it
  /// into opt.quality (when attached).
  double forecast_sensor(const TimeSeries& ts, double fallback,
                         const QueryOptions& opt) const;
  /// Same, for auxiliary series (owner attribution, memory) that ride on a
  /// sensor already accounted: bounded, but not counted in quality.
  double forecast_aux(const TimeSeries& ts, double fallback,
                      const QueryOptions& opt) const;
  /// Freshness horizon for quality accounting: max_sample_age when finite,
  /// otherwise the monitor's history window.
  double freshness_horizon(const QueryOptions& opt) const;

  sim::NetworkSim& net_;
  Monitor monitor_;
};

}  // namespace netsel::remos
