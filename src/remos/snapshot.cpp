#include "remos/snapshot.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace netsel::remos {

NetworkSnapshot::NetworkSnapshot(const topo::TopologyGraph& g)
    : graph_(&g),
      cpu_(g.node_count(), 0.0),
      free_memory_(g.node_count(), 0.0),
      bw_(g.link_count(), 0.0),
      bw_dir_(g.link_count() * 2, 0.0) {
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (g.is_compute(id)) {
      cpu_[i] = 1.0;
      free_memory_[i] = g.node(id).memory_bytes;
    }
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    const topo::Link& lk = g.link(static_cast<topo::LinkId>(l));
    bw_[l] = lk.capacity_min();
    bw_dir_[l * 2 + 0] = lk.capacity_ab;
    bw_dir_[l * 2 + 1] = lk.capacity_ba;
  }
}

double NetworkSnapshot::cpu_reference(topo::NodeId n,
                                      double reference_capacity) const {
  if (reference_capacity <= 0.0)
    throw std::invalid_argument("cpu_reference: reference must be > 0");
  return cpu(n) * graph_->node(n).cpu_capacity / reference_capacity;
}

double NetworkSnapshot::bwfactor(topo::LinkId l) const {
  double peak = maxbw(l);
  return peak > 0.0 ? bw(l) / peak : 0.0;
}

double NetworkSnapshot::bw_reference(topo::LinkId l,
                                     double reference_capacity) const {
  if (reference_capacity <= 0.0)
    throw std::invalid_argument("bw_reference: reference must be > 0");
  return bw(l) / reference_capacity;
}

void NetworkSnapshot::set_free_memory(topo::NodeId n, double bytes) {
  if (!graph_->is_compute(n))
    throw std::invalid_argument("set_free_memory: not a compute node");
  if (bytes < 0.0) bytes = 0.0;
  free_memory_[static_cast<std::size_t>(n)] = bytes;
  ++epoch_;
}

void NetworkSnapshot::set_cpu(topo::NodeId n, double fraction) {
  if (!graph_->is_compute(n))
    throw std::invalid_argument("set_cpu: not a compute node");
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("set_cpu: fraction must be in [0,1]");
  cpu_[static_cast<std::size_t>(n)] = fraction;
  ++epoch_;
}

void NetworkSnapshot::set_loadavg(topo::NodeId n, double loadavg) {
  if (loadavg < 0.0) loadavg = 0.0;
  set_cpu(n, 1.0 / (1.0 + loadavg));
}

void NetworkSnapshot::set_bw(topo::LinkId l, double bits_per_second) {
  if (bits_per_second < 0.0)
    throw std::invalid_argument("set_bw: bandwidth must be >= 0");
  bw_[static_cast<std::size_t>(l)] = bits_per_second;
  bw_dir_[static_cast<std::size_t>(l) * 2 + 0] = bits_per_second;
  bw_dir_[static_cast<std::size_t>(l) * 2 + 1] = bits_per_second;
  ++epoch_;
}

void NetworkSnapshot::set_bw_dir(topo::LinkId l, bool forward,
                                 double bits_per_second) {
  if (bits_per_second < 0.0)
    throw std::invalid_argument("set_bw_dir: bandwidth must be >= 0");
  bw_dir_[static_cast<std::size_t>(l) * 2 + (forward ? 0 : 1)] = bits_per_second;
  bw_[static_cast<std::size_t>(l)] =
      std::min(bw_dir_[static_cast<std::size_t>(l) * 2 + 0],
               bw_dir_[static_cast<std::size_t>(l) * 2 + 1]);
  ++epoch_;
}

double NetworkSnapshot::path_bw(const std::vector<topo::LinkId>& links) const {
  double b = std::numeric_limits<double>::infinity();
  for (topo::LinkId l : links) b = std::min(b, bw(l));
  return b;
}

void apply_synthetic_load(NetworkSnapshot& snap, std::uint64_t seed,
                          double max_loadavg, double max_utilisation) {
  if (max_loadavg < 0.0 || max_utilisation < 0.0 || max_utilisation > 1.0)
    throw std::invalid_argument(
        "apply_synthetic_load: max_loadavg must be >= 0 and max_utilisation "
        "in [0,1]");
  util::Rng rng(seed);
  const topo::TopologyGraph& g = snap.graph();
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (g.is_compute(n)) snap.set_loadavg(n, rng.uniform(0.0, max_loadavg));
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    snap.set_bw(id, snap.maxbw(id) * (1.0 - rng.uniform(0.0, max_utilisation)));
  }
}

NetworkSnapshot project_snapshot(const NetworkSnapshot& parent,
                                 const topo::LogicalSubgraph& sub) {
  NetworkSnapshot out(sub.graph);
  for (std::size_t i = 0; i < sub.parent_node.size(); ++i) {
    auto sub_id = static_cast<topo::NodeId>(i);
    if (!sub.graph.is_compute(sub_id)) continue;
    out.set_cpu(sub_id, parent.cpu(sub.parent_node[i]));
    out.set_free_memory(sub_id, parent.free_memory(sub.parent_node[i]));
  }
  for (std::size_t l = 0; l < sub.parent_link.size(); ++l) {
    auto sub_id = static_cast<topo::LinkId>(l);
    out.set_bw_dir(sub_id, true, parent.bw_dir(sub.parent_link[l], true));
    out.set_bw_dir(sub_id, false, parent.bw_dir(sub.parent_link[l], false));
  }
  return out;
}

}  // namespace netsel::remos
