#include "remos/snapshot.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/flight.hpp"
#include "util/rng.hpp"

namespace netsel::remos {

NetworkSnapshot::NetworkSnapshot(const topo::TopologyGraph& g)
    : graph_(&g),
      cpu_(g.node_count(), 0.0),
      free_memory_(g.node_count(), 0.0),
      bw_(g.link_count(), 0.0),
      bw_dir_(g.link_count() * 2, 0.0) {
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (g.is_compute(id)) {
      cpu_[i] = 1.0;
      free_memory_[i] = g.node(id).memory_bytes;
    }
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    if (g.link_removed(static_cast<topo::LinkId>(l))) continue;  // stays 0
    const topo::Link& lk = g.link(static_cast<topo::LinkId>(l));
    bw_[l] = lk.capacity_min();
    bw_dir_[l * 2 + 0] = lk.capacity_ab;
    bw_dir_[l * 2 + 1] = lk.capacity_ba;
  }
}

void NetworkSnapshot::record(const Delta& d) {
  ++epoch_;
  if (journal_cap_ == 0) {
    journal_first_epoch_ = epoch_;
    return;
  }
  if (journal_.size() < journal_cap_) {
    journal_.push_back(d);
    ++journal_size_;
    return;
  }
  if (journal_size_ == journal_cap_) {
    // Full: overwrite the oldest slot.
    journal_[journal_head_] = d;
    journal_head_ = (journal_head_ + 1) % journal_cap_;
    ++journal_first_epoch_;
    return;
  }
  journal_[(journal_head_ + journal_size_) % journal_cap_] = d;
  ++journal_size_;
}

bool NetworkSnapshot::deltas_since(std::uint64_t since_epoch,
                                   std::vector<Delta>& out) const {
  if (since_epoch > epoch_)
    throw std::invalid_argument("deltas_since: epoch from the future");
  if (since_epoch < journal_first_epoch_) {
    // The reader fell behind the ring and must rebuild from scratch — the
    // classic silent performance cliff; leave it in the post-mortem tail.
    obs::FlightRecorder::global().record(
        obs::FlightKind::JournalOverflow, /*sim_time=*/-1.0,
        journal_first_epoch_ - since_epoch, epoch_);
    return false;  // trimmed away
  }
  const auto skip = static_cast<std::size_t>(since_epoch - journal_first_epoch_);
  for (std::size_t i = skip; i < journal_size_; ++i)
    out.push_back(journal_[(journal_head_ + i) % journal_cap_]);
  return true;
}

void NetworkSnapshot::set_delta_journal_capacity(std::size_t capacity) {
  journal_.clear();
  journal_cap_ = capacity;
  journal_head_ = 0;
  journal_size_ = 0;
  journal_first_epoch_ = epoch_;
}

void NetworkSnapshot::notify_node_added(topo::NodeId n) {
  if (static_cast<std::size_t>(n) != cpu_.size() ||
      static_cast<std::size_t>(n) + 1 != graph_->node_count())
    throw std::invalid_argument(
        "notify_node_added: notifications must follow additions in order");
  cpu_.push_back(0.0);
  free_memory_.push_back(0.0);
  if (graph_->is_compute(n)) {
    cpu_.back() = 1.0;
    free_memory_.back() = graph_->node(n).memory_bytes;
  }
  Delta d;
  d.kind = DeltaKind::NodeAdded;
  d.node = n;
  record(d);
}

void NetworkSnapshot::notify_node_removed(topo::NodeId n) {
  if (n < 0 || static_cast<std::size_t>(n) >= cpu_.size())
    throw std::invalid_argument("notify_node_removed: node out of range");
  cpu_[static_cast<std::size_t>(n)] = 0.0;
  free_memory_[static_cast<std::size_t>(n)] = 0.0;
  Delta d;
  d.kind = DeltaKind::NodeRemoved;
  d.node = n;
  record(d);
}

void NetworkSnapshot::notify_link_added(topo::LinkId l) {
  if (static_cast<std::size_t>(l) != bw_.size() ||
      static_cast<std::size_t>(l) + 1 != graph_->link_count())
    throw std::invalid_argument(
        "notify_link_added: notifications must follow additions in order");
  const topo::Link& lk = graph_->link(l);
  bw_.push_back(lk.capacity_min());
  bw_dir_.push_back(lk.capacity_ab);
  bw_dir_.push_back(lk.capacity_ba);
  Delta d;
  d.kind = DeltaKind::LinkAdded;
  d.link = l;
  d.value = lk.capacity_min();
  record(d);
}

void NetworkSnapshot::notify_link_removed(topo::LinkId l) {
  if (l < 0 || static_cast<std::size_t>(l) >= bw_.size())
    throw std::invalid_argument("notify_link_removed: link out of range");
  bw_[static_cast<std::size_t>(l)] = 0.0;
  bw_dir_[static_cast<std::size_t>(l) * 2 + 0] = 0.0;
  bw_dir_[static_cast<std::size_t>(l) * 2 + 1] = 0.0;
  Delta d;
  d.kind = DeltaKind::LinkRemoved;
  d.link = l;
  record(d);
}

double NetworkSnapshot::cpu_reference(topo::NodeId n,
                                      double reference_capacity) const {
  if (reference_capacity <= 0.0)
    throw std::invalid_argument("cpu_reference: reference must be > 0");
  return cpu(n) * graph_->node(n).cpu_capacity / reference_capacity;
}

double NetworkSnapshot::bwfactor(topo::LinkId l) const {
  double peak = maxbw(l);
  return peak > 0.0 ? bw(l) / peak : 0.0;
}

double NetworkSnapshot::bw_reference(topo::LinkId l,
                                     double reference_capacity) const {
  if (reference_capacity <= 0.0)
    throw std::invalid_argument("bw_reference: reference must be > 0");
  return bw(l) / reference_capacity;
}

void NetworkSnapshot::set_free_memory(topo::NodeId n, double bytes) {
  if (!graph_->is_compute(n))
    throw std::invalid_argument("set_free_memory: not a compute node");
  if (bytes < 0.0) bytes = 0.0;
  free_memory_[static_cast<std::size_t>(n)] = bytes;
  Delta d;
  d.kind = DeltaKind::NodeMemory;
  d.node = n;
  d.value = bytes;
  record(d);
}

void NetworkSnapshot::set_cpu(topo::NodeId n, double fraction) {
  if (!graph_->is_compute(n))
    throw std::invalid_argument("set_cpu: not a compute node");
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("set_cpu: fraction must be in [0,1]");
  cpu_[static_cast<std::size_t>(n)] = fraction;
  Delta d;
  d.kind = DeltaKind::NodeLoad;
  d.node = n;
  d.value = fraction;
  record(d);
}

void NetworkSnapshot::set_loadavg(topo::NodeId n, double loadavg) {
  if (loadavg < 0.0) loadavg = 0.0;
  set_cpu(n, 1.0 / (1.0 + loadavg));
}

void NetworkSnapshot::set_bw(topo::LinkId l, double bits_per_second) {
  if (bits_per_second < 0.0)
    throw std::invalid_argument("set_bw: bandwidth must be >= 0");
  bw_[static_cast<std::size_t>(l)] = bits_per_second;
  bw_dir_[static_cast<std::size_t>(l) * 2 + 0] = bits_per_second;
  bw_dir_[static_cast<std::size_t>(l) * 2 + 1] = bits_per_second;
  Delta d;
  d.kind = DeltaKind::LinkBandwidth;
  d.link = l;
  d.value = bits_per_second;
  record(d);
}

void NetworkSnapshot::set_bw_dir(topo::LinkId l, bool forward,
                                 double bits_per_second) {
  if (bits_per_second < 0.0)
    throw std::invalid_argument("set_bw_dir: bandwidth must be >= 0");
  bw_dir_[static_cast<std::size_t>(l) * 2 + (forward ? 0 : 1)] = bits_per_second;
  bw_[static_cast<std::size_t>(l)] =
      std::min(bw_dir_[static_cast<std::size_t>(l) * 2 + 0],
               bw_dir_[static_cast<std::size_t>(l) * 2 + 1]);
  Delta d;
  d.kind = DeltaKind::LinkBandwidth;
  d.link = l;
  d.value = bw_[static_cast<std::size_t>(l)];
  record(d);
}

double NetworkSnapshot::path_bw(const std::vector<topo::LinkId>& links) const {
  double b = std::numeric_limits<double>::infinity();
  for (topo::LinkId l : links) b = std::min(b, bw(l));
  return b;
}

void apply_synthetic_load(NetworkSnapshot& snap, std::uint64_t seed,
                          double max_loadavg, double max_utilisation) {
  if (max_loadavg < 0.0 || max_utilisation < 0.0 || max_utilisation > 1.0)
    throw std::invalid_argument(
        "apply_synthetic_load: max_loadavg must be >= 0 and max_utilisation "
        "in [0,1]");
  util::Rng rng(seed);
  const topo::TopologyGraph& g = snap.graph();
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (g.is_compute(n)) snap.set_loadavg(n, rng.uniform(0.0, max_loadavg));
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    if (g.link_removed(id)) continue;
    snap.set_bw(id, snap.maxbw(id) * (1.0 - rng.uniform(0.0, max_utilisation)));
  }
}

NetworkSnapshot project_snapshot(const NetworkSnapshot& parent,
                                 const topo::LogicalSubgraph& sub) {
  NetworkSnapshot out(sub.graph);
  for (std::size_t i = 0; i < sub.parent_node.size(); ++i) {
    auto sub_id = static_cast<topo::NodeId>(i);
    if (!sub.graph.is_compute(sub_id)) continue;
    out.set_cpu(sub_id, parent.cpu(sub.parent_node[i]));
    out.set_free_memory(sub_id, parent.free_memory(sub.parent_node[i]));
  }
  for (std::size_t l = 0; l < sub.parent_link.size(); ++l) {
    auto sub_id = static_cast<topo::LinkId>(l);
    out.set_bw_dir(sub_id, true, parent.bw_dir(sub.parent_link[l], true));
    out.set_bw_dir(sub_id, false, parent.bw_dir(sub.parent_link[l], false));
  }
  return out;
}

}  // namespace netsel::remos
