#pragma once
// NetworkSnapshot: the dynamic network state consumed by the node-selection
// algorithms (paper §3.1).
//
//   cpu(i)      = 1/(1 + loadaverage_i), the fraction of node i's own
//                 computation power available to an application;
//   bw(i,j)     = currently available bandwidth on a link;
//   maxbw(i,j)  = peak bandwidth (static, lives in the topology);
//   bwfactor    = bw / maxbw.
//
// For bidirectional links the available capacity is the minimum of the two
// directions (§3.3).

#include <cstdint>
#include <vector>

#include "remos/delta.hpp"
#include "topo/graph.hpp"
#include "topo/subgraph.hpp"

namespace netsel::remos {

class NetworkSnapshot {
 public:
  /// Build with everything fully available (no load, idle links).
  ///
  /// The snapshot is a *view*: it keeps a reference to `g`, which must
  /// outlive the snapshot (and must not be moved while the snapshot is
  /// alive). Remos::snapshot() returns views of the simulator's topology,
  /// which satisfies this by construction.
  explicit NetworkSnapshot(const topo::TopologyGraph& g);

  const topo::TopologyGraph& graph() const { return *graph_; }

  /// The paper's cpu function for a compute node: fraction in (0, 1].
  double cpu(topo::NodeId n) const { return cpu_.at(static_cast<std::size_t>(n)); }
  /// Available compute capacity in reference-node units:
  /// cpu(n) * capacity(n) / reference_capacity (§3.3, heterogeneous nodes).
  double cpu_reference(topo::NodeId n, double reference_capacity = 1.0) const;

  /// Available bandwidth of a link, bits/second (min over directions).
  double bw(topo::LinkId l) const { return bw_.at(static_cast<std::size_t>(l)); }
  /// Available bandwidth of one direction (forward = a->b). The paper's
  /// undirected treatment uses bw() = min of both; custom execution
  /// patterns (§3.4, client-server) evaluate the significant direction
  /// only.
  double bw_dir(topo::LinkId l, bool forward) const {
    return bw_dir_.at(static_cast<std::size_t>(l) * 2 + (forward ? 0 : 1));
  }
  double maxbw(topo::LinkId l) const { return graph_->link(l).capacity_min(); }
  /// Fraction of peak bandwidth available on this link.
  double bwfactor(topo::LinkId l) const;
  /// Available bandwidth normalised by a reference link capacity
  /// (§3.3, heterogeneous links): fraction of the reference capacity this
  /// link can currently deliver, possibly > 1 for faster links.
  double bw_reference(topo::LinkId l, double reference_capacity) const;

  /// Free memory of a compute node in bytes (§3.4 extension). Nodes whose
  /// topology does not model memory report 0 and never satisfy a memory
  /// requirement.
  double free_memory(topo::NodeId n) const {
    return free_memory_.at(static_cast<std::size_t>(n));
  }
  void set_free_memory(topo::NodeId n, double bytes);

  void set_cpu(topo::NodeId n, double fraction);
  void set_loadavg(topo::NodeId n, double loadavg);
  /// Set both directions to the same availability.
  void set_bw(topo::LinkId l, double bits_per_second);
  /// Set one direction; bw(l) becomes the min of the two directions.
  void set_bw_dir(topo::LinkId l, bool forward, double bits_per_second);

  /// Bottleneck available bandwidth along a node path given as link ids.
  double path_bw(const std::vector<topo::LinkId>& links) const;

  /// Version counter, bumped on every mutation (set_cpu, set_bw, ...).
  /// Derived caches (select::SelectionContext) key their validity on this:
  /// a cache built at epoch e is valid exactly while epoch() == e. Copies
  /// carry the epoch of the source at copy time and version independently
  /// afterwards.
  std::uint64_t epoch() const { return epoch_; }

  /// Structural notifications. The underlying TopologyGraph may grow
  /// (add_compute/add_network/add_link) or shrink (remove_link/remove_node)
  /// after a snapshot was built against it; the owner of both must notify
  /// every live snapshot of each change, *in order*, so the per-node and
  /// per-link arrays stay id-aligned and the journal records the change.
  /// notify_node_added / notify_link_added must name the id the graph just
  /// returned (ids are appended densely); added state starts at the
  /// constructor's prior (idle node, link at capacity). Removal notifications
  /// zero the corresponding availability.
  void notify_node_added(topo::NodeId n);
  void notify_node_removed(topo::NodeId n);
  void notify_link_added(topo::LinkId l);
  void notify_link_removed(topo::LinkId l);

  /// Append the deltas that transitioned this snapshot from `since_epoch` to
  /// epoch() onto `out` (oldest first) and return true. Returns false —
  /// appending nothing — when the bounded journal no longer retains that
  /// range (the caller has missed too much and must rebuild from scratch).
  bool deltas_since(std::uint64_t since_epoch, std::vector<Delta>& out) const;

  /// Journal capacity (number of most-recent deltas retained). Shrinking or
  /// growing discards the currently retained deltas, so caches built at an
  /// older epoch fall back to a full rebuild once.
  void set_delta_journal_capacity(std::size_t capacity);
  std::size_t delta_journal_capacity() const { return journal_cap_; }

  static constexpr std::size_t kDefaultJournalCapacity = 1024;

 private:
  void record(const Delta& d);

  const topo::TopologyGraph* graph_;
  std::uint64_t epoch_ = 0;
  std::vector<double> cpu_;          // per node; 0 for network nodes
  std::vector<double> free_memory_;  // per node, bytes
  std::vector<double> bw_;           // per link, min over directions
  std::vector<double> bw_dir_;       // per link direction (2 per link)
  /// Bounded delta ring: the journal_size_ most recent deltas, oldest at
  /// journal_head_. journal_first_epoch_ is the epoch *before* the oldest
  /// retained delta, so journal_first_epoch_ + journal_size_ == epoch_.
  std::vector<Delta> journal_;
  std::size_t journal_cap_ = kDefaultJournalCapacity;
  std::size_t journal_head_ = 0;
  std::size_t journal_size_ = 0;
  std::uint64_t journal_first_epoch_ = 0;
};

/// Seeded synthetic availability for scale benchmarks and generated
/// topologies (topo/synthetic.hpp): every compute node gets a load average
/// drawn uniformly from [0, max_loadavg] and every link an utilisation drawn
/// uniformly from [0, max_utilisation] (both directions equal), in id order
/// from util::Rng(seed) — deterministic across platforms. The graph's static
/// capacities are untouched; only the dynamic state moves.
void apply_synthetic_load(NetworkSnapshot& snap, std::uint64_t seed,
                          double max_loadavg = 4.0,
                          double max_utilisation = 0.9);

/// Project a snapshot of the parent topology onto an extracted logical
/// sub-topology (§2.2 "the relevant part of the network"): availability of
/// surviving nodes and links carries over. The returned snapshot views
/// `sub.graph`, which must outlive it.
NetworkSnapshot project_snapshot(const NetworkSnapshot& parent,
                                 const topo::LogicalSubgraph& sub);

}  // namespace netsel::remos
