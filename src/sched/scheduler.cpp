#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/flight.hpp"
#include "obs/jobtrace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "remos/remos.hpp"  // kBwFloor
#include "select/objective.hpp"
#include "util/thread_pool.hpp"

namespace netsel::sched {

namespace {

struct SchedMetrics {
  obs::Counter& submitted;
  obs::Counter& admitted;
  obs::Counter& rejected;
  obs::Counter& timed_out;
  obs::Counter& placed;
  obs::Counter& completed;
  obs::Counter& conflicts;
  obs::Counter& infeasible;
  obs::Counter& rebalance_attempts;
  obs::Counter& rebalance_migrations;
  obs::Counter& ladder_full;
  obs::Counter& ladder_smoothed;
  obs::Counter& ladder_prior;
  obs::Gauge& queue_depth;
  obs::Gauge& running;
  obs::Histogram& placement_latency;
  obs::Histogram& queue_wait;
  obs::Histogram& candidate_set;
};

SchedMetrics& metrics() {
  static SchedMetrics m{
      obs::Registry::global().counter("sched.jobs.submitted"),
      obs::Registry::global().counter("sched.jobs.admitted"),
      obs::Registry::global().counter("sched.jobs.rejected"),
      obs::Registry::global().counter("sched.jobs.timeout"),
      obs::Registry::global().counter("sched.jobs.placed"),
      obs::Registry::global().counter("sched.jobs.completed"),
      obs::Registry::global().counter("sched.place.conflicts"),
      obs::Registry::global().counter("sched.place.infeasible"),
      obs::Registry::global().counter("sched.rebalance.attempts"),
      obs::Registry::global().counter("sched.rebalance.migrations"),
      obs::Registry::global().counter("sched.ladder.full"),
      obs::Registry::global().counter("sched.ladder.smoothed"),
      obs::Registry::global().counter("sched.ladder.prior"),
      obs::Registry::global().gauge("sched.queue.depth"),
      obs::Registry::global().gauge("sched.jobs.running"),
      // Wall-clock placement decisions: 1 us .. ~32 s, factor 2.
      obs::Registry::global().histogram("sched.placement_latency_s",
                                        obs::exp_buckets(1e-6, 2.0, 26)),
      // Simulated queue waits: 0.25 s .. ~1 week, factor 2.
      obs::Registry::global().histogram("sched.queue_wait_s",
                                        obs::exp_buckets(0.25, 2.0, 22)),
      // Shared with the api layer (same bounds; first registration wins —
      // register_scheduler_metrics() routes through register_service_metrics
      // so both sites agree).
      obs::Registry::global().histogram("api.candidate_set_size",
                                        obs::exp_buckets(2.0, 2.0, 20)),
  };
  return m;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_double(std::uint64_t h, double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv1a(h, bits);
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Submitted: return "submitted";
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Rejected: return "rejected";
    case JobState::TimedOut: return "timed-out";
  }
  return "?";
}

void register_scheduler_metrics() {
  api::register_service_metrics();
  (void)metrics();
  // The rebalance path drives api::reselect; touch its counters so the
  // exporters list them at zero before the first release.
  obs::Registry::global().counter("api.reselect.calls");
  obs::Registry::global().counter("api.reselect.migrations");
  // Telemetry mirrors (DESIGN.md §13): pre-registered so a zero-event run
  // still exports every documented name — check_metrics_json.py pins the
  // set in its service profile.
  obs::Registry::global().counter("obs.ts.samples");
  obs::Registry::global().counter("obs.ts.dropped");
  obs::Registry::global().gauge("obs.ts.series");
  obs::Registry::global().counter("obs.trace.traces");
  obs::Registry::global().counter("obs.trace.spans");
  obs::Registry::global().counter("obs.flight.events");
}

SchedulerService::SchedulerService(const topo::TopologyGraph& g,
                                   SchedulerConfig cfg)
    : graph_(&g), cfg_(cfg), cluster_(g), prior_(g) {
  if (cfg_.placement_lanes < 1)
    throw std::invalid_argument("SchedulerConfig: placement_lanes < 1");
  if (cfg_.backfill_window < 1)
    throw std::invalid_argument("SchedulerConfig: backfill_window < 1");
  cluster_.set_delta_journal_capacity(cfg_.journal_capacity);
  lanes_.resize(static_cast<std::size_t>(cfg_.placement_lanes));
  for (Lane& l : lanes_) {
    l.live = std::make_unique<select::SelectionContext>(cluster_);
    l.prior = std::make_unique<select::SelectionContext>(prior_);
  }
  taken_.assign(g.node_count(), 0);
  register_scheduler_metrics();
  flight_ = cfg_.flight ? cfg_.flight : &obs::FlightRecorder::global();
  if (cfg_.timeseries) {
    obs::TimeSeriesRecorder& ts = *cfg_.timeseries;
    ts.add_gauge("sched.queue.depth",
                 [this] { return static_cast<double>(queue_.size()); });
    ts.add_gauge("sched.jobs.running",
                 [this] { return static_cast<double>(allocations_.size()); });
    ts.add_gauge("sched.ladder.rung",
                 [this] { return static_cast<double>(last_rung_); });
    ts.add_counter("sched.jobs.submitted", [this] { return stats_.submitted; });
    ts.add_counter("sched.jobs.placed", [this] { return stats_.placed; });
    ts.add_counter("sched.jobs.completed", [this] { return stats_.completed; });
    ts.add_counter("sched.place.conflicts",
                   [this] { return stats_.conflicts; });
    ts.add_counter("sched.place.infeasible",
                   [this] { return stats_.infeasible_attempts; });
  }
}

SchedulerService::~SchedulerService() = default;

void SchedulerService::set_tenant_policy(const std::string& tenant,
                                         TenantPolicy policy) {
  tenants_[tenant] = std::move(policy);
}

void SchedulerService::set_measurement_coverage(double coverage) {
  coverage_ = std::min(1.0, std::max(0.0, coverage));
}

std::uint64_t SchedulerService::submit(JobSpec spec, double arrival_time) {
  if (spec.nodes < 1)
    throw std::invalid_argument("JobSpec: nodes < 1");
  if (!(spec.duration > 0.0))
    throw std::invalid_argument("JobSpec: duration must be positive");
  const std::uint64_t id = jobs_.size();
  JobRecord rec;
  rec.id = id;
  rec.spec = std::move(spec);
  rec.submit_time = std::max(arrival_time, now_);
  jobs_.push_back(std::move(rec));
  push_event(jobs_.back().submit_time, Event::Kind::Arrival, id);
  ++stats_.submitted;
  metrics().submitted.inc();
  return id;
}

void SchedulerService::push_event(double time, Event::Kind kind,
                                  std::uint64_t job) {
  events_.push(Event{time, next_seq_++, kind, job});
}

void SchedulerService::run_until(double t) {
  while (!events_.empty() && events_.top().time <= t) {
    const double et = events_.top().time;
    // Cadence boundaries strictly before this instant sample the
    // carried-forward state; a boundary coinciding with it is sampled by
    // the inclusive call below, after the events have been applied.
    if (cfg_.timeseries) cfg_.timeseries->sample_until(et, /*inclusive=*/false);
    now_ = et;
    // Drain every event at this instant (a departure freeing nodes at the
    // same time an arrival lands must be visible to that arrival's round).
    bool ticked = false;
    while (!events_.empty() && events_.top().time == et) {
      const Event ev = events_.top();
      events_.pop();
      switch (ev.kind) {
        case Event::Kind::Arrival: handle_arrival(ev.job); break;
        case Event::Kind::Departure: handle_departure(ev.job); break;
        case Event::Kind::Timeout: handle_timeout(ev.job); break;
        case Event::Kind::Tick:
          tick_pending_ = false;
          ticked = true;
          break;
      }
    }
    if (cfg_.schedule_interval <= 0.0 || ticked) schedule_round();
    // Keep the tick chain alive while work is waiting: the next round is
    // one interval out, regardless of what events land in between.
    if (cfg_.schedule_interval > 0.0 && !queue_.empty() && !tick_pending_) {
      push_event(now_ + cfg_.schedule_interval, Event::Kind::Tick, 0);
      tick_pending_ = true;
    }
    // Depth gauges track every event instant, not just scheduling rounds:
    // under a positive schedule_interval the tail departures of a drain
    // never trigger another round, and the gauges must not stay stale.
    sync_depth_gauges();
  }
  if (t > now_) now_ = t;
  if (cfg_.timeseries) cfg_.timeseries->sample_until(now_, /*inclusive=*/true);
}

void SchedulerService::drain() {
  while (!events_.empty()) run_until(events_.top().time);
}

void SchedulerService::handle_arrival(std::uint64_t id) {
  JobRecord& rec = jobs_[id];
  if (rec.state != JobState::Submitted) return;
  if (queue_.size() >= cfg_.max_queue_depth) {
    rec.state = JobState::Rejected;
    rec.finish_time = now_;
    rec.note = "admission: queue full";
    ++stats_.rejected;
    metrics().rejected.inc();
    flight_->record(obs::FlightKind::Reject, now_, id, queue_.size(),
                    rec.spec.tenant);
    if (cfg_.job_trace) {
      const std::uint32_t root = cfg_.job_trace->begin(
          id, obs::JobSpan::kNoParent, "job", now_);
      cfg_.job_trace->annotate(id, root, "tenant", rec.spec.tenant);
      cfg_.job_trace->span(id, root, "admit.reject", now_, now_);
      cfg_.job_trace->end(id, root, now_);
    }
    return;
  }
  rec.state = JobState::Queued;
  queue_.push_back(id);
  ++stats_.admitted;
  metrics().admitted.inc();
  flight_->record(obs::FlightKind::Admit, now_, id,
                  static_cast<std::uint64_t>(rec.spec.nodes),
                  rec.spec.tenant);
  if (cfg_.job_trace) {
    OpenSpans& open = trace_open_[id];
    open.root =
        cfg_.job_trace->begin(id, obs::JobSpan::kNoParent, "job", now_);
    cfg_.job_trace->annotate(id, open.root, "tenant", rec.spec.tenant);
    cfg_.job_trace->annotate(id, open.root, "nodes",
                             std::to_string(rec.spec.nodes));
    open.queue = cfg_.job_trace->begin(id, open.root, "queue.wait", now_);
  }
  if (std::isfinite(cfg_.queue_timeout))
    push_event(now_ + cfg_.queue_timeout, Event::Kind::Timeout, id);
}

void SchedulerService::handle_departure(std::uint64_t id) {
  JobRecord& rec = jobs_[id];
  if (rec.state != JobState::Running) return;
  release(rec);
  rec.state = JobState::Completed;
  rec.finish_time = now_;
  ++stats_.completed;
  metrics().completed.inc();
  flight_->record(obs::FlightKind::Complete, now_, id, rec.nodes.size(),
                  rec.spec.tenant);
  close_trace(id, "release");
  maybe_rebalance();
}

void SchedulerService::handle_timeout(std::uint64_t id) {
  JobRecord& rec = jobs_[id];
  if (rec.state != JobState::Queued) return;  // stale: already placed
  remove_queued(id);
  rec.state = JobState::TimedOut;
  rec.finish_time = now_;
  rec.note = "queue: waited past timeout";
  ++stats_.timed_out;
  metrics().timed_out.inc();
  flight_->record(obs::FlightKind::Timeout, now_, id, 0, rec.spec.tenant);
  close_trace(id, "timeout");
}

void SchedulerService::close_trace(std::uint64_t id,
                                   const char* terminal_span) {
  if (!cfg_.job_trace) return;
  auto it = trace_open_.find(id);
  if (it == trace_open_.end()) return;
  OpenSpans& open = it->second;
  if (open.running)
    cfg_.job_trace->end(id, open.run, now_);
  else
    cfg_.job_trace->end(id, open.queue, now_);
  cfg_.job_trace->span(id, open.root, terminal_span, now_, now_);
  cfg_.job_trace->end(id, open.root, now_);
  trace_open_.erase(it);
}

void SchedulerService::remove_queued(std::uint64_t id) {
  auto it = std::find(queue_.begin(), queue_.end(), id);
  if (it != queue_.end()) queue_.erase(it);
}

std::vector<std::uint64_t> SchedulerService::queued_jobs() const {
  return {queue_.begin(), queue_.end()};
}

SchedulerService::Lane& SchedulerService::lane(std::size_t i) {
  return lanes_[i % lanes_.size()];
}

api::DegradationLevel SchedulerService::ladder_level(
    const std::string& tenant) const {
  api::DegradationPolicy policy;  // default thresholds for unknown tenants
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) policy = it->second.degradation;
  if (coverage_ >= policy.smoothed_below) return api::DegradationLevel::Full;
  if (coverage_ >= policy.prior_below) return api::DegradationLevel::Smoothed;
  return api::DegradationLevel::Prior;
}

select::SelectionOptions SchedulerService::job_options(
    const JobSpec& spec, api::DegradationLevel level) const {
  select::SelectionOptions opt;
  opt.num_nodes = spec.nodes;
  opt.cpu_priority = spec.cpu_priority;
  opt.bw_priority = spec.bw_priority;
  // Smoothed keeps the measured *ranking* but drops the fixed requirements:
  // stale absolute readings must not hard-filter hosts. Prior runs on the
  // capacity snapshot where requirements are trivially meaningful again.
  if (level != api::DegradationLevel::Smoothed) {
    opt.min_bw_bps = spec.min_bw_bps;
    opt.min_cpu_fraction = spec.min_cpu_fraction;
    opt.min_free_memory_bytes = spec.min_free_memory_bytes;
  }
  return opt;
}

SchedulerService::Decision SchedulerService::place_job(
    const JobRecord& rec, Lane& ln, const std::vector<char>& taken) const {
  const auto t0 = std::chrono::steady_clock::now();
  Decision d;
  d.level = ladder_level(rec.spec.tenant);
  select::SelectionOptions opt = job_options(rec.spec, d.level);
  opt.eligible.resize(taken.size());
  for (std::size_t i = 0; i < taken.size(); ++i)
    opt.eligible[i] = taken[i] ? 0 : 1;
  const select::SelectionContext& ctx =
      d.level == api::DegradationLevel::Prior ? *ln.prior : *ln.live;
  {
    const std::vector<char> elig = ctx.eligibility(opt);
    d.candidates = static_cast<std::size_t>(
        std::count(elig.begin(), elig.end(), char(1)));
  }
  select::SelectionResult r =
      select::select_nodes(rec.spec.criterion, ctx, opt);
  d.feasible = r.feasible;
  d.nodes = std::move(r.nodes);
  std::sort(d.nodes.begin(), d.nodes.end());
  d.objective = r.objective;
  d.note = std::move(r.note);
  d.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  return d;
}

void SchedulerService::note_ladder(const std::string& tenant,
                                   api::DegradationLevel level) {
  SchedMetrics& m = metrics();
  const char* name = api::degradation_level_name(level);
  switch (level) {
    case api::DegradationLevel::Full: m.ladder_full.inc(); break;
    case api::DegradationLevel::Smoothed: m.ladder_smoothed.inc(); break;
    case api::DegradationLevel::Prior: m.ladder_prior.inc(); break;
  }
  const int rung = static_cast<int>(level);
  last_rung_ = rung;
  auto [it, inserted] = flight_rung_.emplace(tenant, rung);
  if (!inserted && it->second != rung) {
    flight_->record(obs::FlightKind::LadderTransition, now_,
                    static_cast<std::uint64_t>(it->second),
                    static_cast<std::uint64_t>(rung), tenant);
    it->second = rung;
  }
  if (obs::enabled())
    obs::Registry::global()
        .counter("sched.ladder.tenant." + tenant + "." + name)
        .inc();
}

void SchedulerService::schedule_round() {
  SchedMetrics& m = metrics();
  if (!queue_.empty()) {
    obs::Span span("sched.round", "sched", now_);
    if (span.active()) {
      span.arg("queued", std::to_string(queue_.size()));
      span.sim_range(now_, now_);
    }
    // Backfill window: the first W queued jobs, FIFO. A blocked head does
    // not starve feasible jobs behind it.
    const std::size_t window = std::min(
        queue_.size(), static_cast<std::size_t>(cfg_.backfill_window));
    std::vector<std::uint64_t> cand(queue_.begin(),
                                    queue_.begin() +
                                        static_cast<std::ptrdiff_t>(window));

    // Phase A — speculate placements against the round-start state. Lane
    // count (config) fixes the partition; the pool only adds concurrency,
    // so results are bit-identical at any thread count. Lane k serially
    // handles candidates k, k+L, k+2L, ... on its own long-lived contexts;
    // nothing mutates cluster_ (or taken_) during this phase.
    const std::size_t L =
        std::min(window, static_cast<std::size_t>(cfg_.placement_lanes));
    std::vector<Decision> dec(window);
    const std::vector<char>& taken = taken_;
    auto lane_body = [&](std::size_t k) {
      Lane& ln = lane(k);
      for (std::size_t i = k; i < window; i += L)
        dec[i] = place_job(jobs_[cand[i]], ln, taken);
    };
    if (cfg_.pool && L > 1) {
      util::parallel_for(*cfg_.pool, L, lane_body);
    } else {
      for (std::size_t k = 0; k < L; ++k) lane_body(k);
    }

    // Phase B — commit serially in queue order. A speculative set that
    // collides with an earlier commit of this round is re-placed serially
    // against the updated state on lane 0.
    for (std::size_t i = 0; i < window; ++i) {
      JobRecord& rec = jobs_[cand[i]];
      Decision d = std::move(dec[i]);
      // Trace span for the speculative attempt. Lane attribution (i % L)
      // depends on the configured lane count, so it lives in args only —
      // the trace digest excludes args and stays lane-count-invariant.
      OpenSpans* open = nullptr;
      if (cfg_.job_trace) {
        auto oit = trace_open_.find(rec.id);
        if (oit != trace_open_.end()) open = &oit->second;
      }
      if (open) {
        const std::uint32_t att = cfg_.job_trace->span(
            rec.id, open->root, "place.attempt", now_, now_);
        cfg_.job_trace->annotate(rec.id, att, "lane", std::to_string(i % L));
        cfg_.job_trace->annotate(rec.id, att, "feasible",
                                 d.feasible ? "true" : "false");
        cfg_.job_trace->annotate(rec.id, att, "candidates",
                                 std::to_string(d.candidates));
      }
      if (d.feasible) {
        const bool conflict =
            std::any_of(d.nodes.begin(), d.nodes.end(), [&](topo::NodeId n) {
              return taken_[static_cast<std::size_t>(n)] != 0;
            });
        if (conflict) {
          ++stats_.conflicts;
          m.conflicts.inc();
          flight_->record(obs::FlightKind::Conflict, now_, rec.id, i,
                          rec.spec.tenant);
          if (open)
            cfg_.job_trace->span(rec.id, open->root, "place.conflict", now_,
                                 now_);
          const double spec_seconds = d.seconds;
          d = place_job(rec, lane(0), taken_);
          d.seconds += spec_seconds;
        }
      }
      rec.candidates = d.candidates;
      if (!d.feasible) {
        ++rec.infeasible_attempts;
        ++stats_.infeasible_attempts;
        m.infeasible.inc();
        rec.note = d.note;
        flight_->record(obs::FlightKind::Infeasible, now_, rec.id,
                        d.candidates, rec.spec.tenant);
        continue;  // stays queued
      }
      remove_queued(rec.id);
      rec.state = JobState::Running;
      rec.start_time = now_;
      rec.placement_seconds = d.seconds;
      rec.note = d.note;
      const std::size_t placed_nodes = d.nodes.size();
      const double objective = d.objective;
      const api::DegradationLevel level = d.level;
      allocate(rec, std::move(d.nodes), d.objective, d.level);
      push_event(now_ + rec.spec.duration, Event::Kind::Departure, rec.id);
      ++stats_.placed;
      m.placed.inc();
      m.placement_latency.observe(d.seconds);
      m.queue_wait.observe(now_ - rec.submit_time);
      m.candidate_set.observe(static_cast<double>(d.candidates));
      note_ladder(rec.spec.tenant, level);
      flight_->record(obs::FlightKind::Place, now_, rec.id, placed_nodes,
                      rec.spec.tenant);
      if (open) {
        cfg_.job_trace->end(rec.id, open->queue, now_);
        const std::uint32_t commit = cfg_.job_trace->span(
            rec.id, open->root, "commit", now_, now_);
        cfg_.job_trace->annotate(rec.id, commit, "objective",
                                 std::to_string(objective));
        cfg_.job_trace->annotate(rec.id, commit, "ladder",
                                 api::degradation_level_name(level));
        open->run = cfg_.job_trace->begin(rec.id, open->root, "run", now_);
        open->running = true;
      }
    }
  }
  sync_depth_gauges();
}

void SchedulerService::sync_depth_gauges() {
  SchedMetrics& m = metrics();
  stats_.queued = queue_.size();
  stats_.running = allocations_.size();
  m.queue_depth.set(static_cast<double>(stats_.queued));
  m.running.set(static_cast<double>(stats_.running));
}

void SchedulerService::allocate(JobRecord& rec,
                                std::vector<topo::NodeId> nodes,
                                double objective,
                                api::DegradationLevel level) {
  Allocation alloc;
  for (topo::NodeId n : nodes) {
    assert(!taken_[static_cast<std::size_t>(n)]);
    taken_[static_cast<std::size_t>(n)] = 1;
    // cpu = 1/(1 + load): stacking the job's load L onto a host currently
    // at cpu c lands at 1/(1 + load0 + L) = c / (1 + L*c).
    const double pre = cluster_.cpu(n);
    alloc.node_cpu.emplace_back(n, pre);
    cluster_.set_cpu(n, pre / (1.0 + rec.spec.load * pre));
    if (rec.spec.traffic_fraction > 0.0) {
      for (topo::LinkId l : graph_->links_of(n)) {
        const double fwd = cluster_.bw_dir(l, true);
        const double rev = cluster_.bw_dir(l, false);
        alloc.links.push_back(LinkState{l, fwd, rev});
        const double keep = 1.0 - std::min(1.0, rec.spec.traffic_fraction);
        cluster_.set_bw_dir(l, true, std::max(remos::kBwFloor, fwd * keep));
        cluster_.set_bw_dir(l, false, std::max(remos::kBwFloor, rev * keep));
      }
    }
  }
  rec.nodes = std::move(nodes);
  rec.ladder = level;
  rec.objective = objective;
  allocations_[rec.id] = std::move(alloc);
}

void SchedulerService::release(JobRecord& rec) {
  auto it = allocations_.find(rec.id);
  if (it == allocations_.end()) return;
  Allocation& alloc = it->second;
  // Exact inverse: restore the recorded pre-values in reverse order, so a
  // sensor touched twice within one allocation unwinds to its original
  // reading. Each mutation lands in the delta journal; the lane contexts
  // repair their caches fine-grainedly on the next round.
  for (auto li = alloc.links.rbegin(); li != alloc.links.rend(); ++li) {
    cluster_.set_bw_dir(li->link, true, li->fwd);
    cluster_.set_bw_dir(li->link, false, li->rev);
  }
  for (auto ni = alloc.node_cpu.rbegin(); ni != alloc.node_cpu.rend(); ++ni)
    cluster_.set_cpu(ni->first, ni->second);
  for (topo::NodeId n : rec.nodes) taken_[static_cast<std::size_t>(n)] = 0;
  allocations_.erase(it);
}

void SchedulerService::maybe_rebalance() {
  if (!cfg_.rebalance_on_release || allocations_.empty()) return;
  SchedMetrics& m = metrics();
  Lane& ln = lane(0);

  // The release just freed capacity: give it to the worst-off running job
  // (lowest criterion score, ties to the lowest id — allocations_ iterates
  // in id order).
  std::uint64_t worst = 0;
  double worst_score = 0.0;
  bool have = false;
  for (const auto& [id, alloc] : allocations_) {
    const JobRecord& rec = jobs_[id];
    const select::SelectionOptions opt = job_options(rec.spec, rec.ladder);
    const double s = api::criterion_score(
        rec.spec.criterion, select::evaluate_set(*ln.live, rec.nodes, opt));
    if (!have || s < worst_score) {
      have = true;
      worst = id;
      worst_score = s;
    }
  }
  if (!have) return;

  JobRecord& rec = jobs_[worst];
  api::ReselectOptions ropt;
  ropt.max_migrations = cfg_.rebalance_budget;
  ropt.min_improvement = cfg_.rebalance_min_improvement;
  ropt.criterion = rec.spec.criterion;
  ropt.selection = job_options(rec.spec, rec.ladder);
  // Eligible: free nodes plus the job's own (a migration target must not
  // evict anyone).
  ropt.selection.eligible.resize(taken_.size());
  for (std::size_t i = 0; i < taken_.size(); ++i)
    ropt.selection.eligible[i] = taken_[i] ? 0 : 1;
  for (topo::NodeId n : rec.nodes)
    ropt.selection.eligible[static_cast<std::size_t>(n)] = 1;

  ++stats_.rebalance_attempts;
  m.rebalance_attempts.inc();
  const api::ReselectResult r = api::reselect(*ln.live, rec.nodes, ropt);
  // kept_current is the journal-trustworthy "nothing moved" signal: the
  // current placement stays in force and there is nothing to re-apply.
  if (r.kept_current || !r.feasible || r.migrations == 0) return;

  release(rec);
  ++rec.migrations;
  rec.note = "rebalanced: " + r.note;
  allocate(rec, r.nodes, r.objective_after, rec.ladder);
  stats_.rebalance_migrations += static_cast<std::uint64_t>(r.migrations);
  m.rebalance_migrations.inc(static_cast<std::uint64_t>(r.migrations));
  flight_->record(obs::FlightKind::Rebalance, now_, rec.id,
                  static_cast<std::uint64_t>(r.migrations), rec.spec.tenant);
  if (cfg_.job_trace) {
    auto it = trace_open_.find(rec.id);
    if (it != trace_open_.end()) {
      const std::uint32_t sp = cfg_.job_trace->span(
          rec.id, it->second.root, "rebalance", now_, now_);
      cfg_.job_trace->annotate(rec.id, sp, "migrations",
                               std::to_string(r.migrations));
    }
  }
}

std::uint64_t SchedulerService::state_digest() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const JobRecord& rec : jobs_) {
    h = fnv1a(h, rec.id);
    h = fnv1a(h, static_cast<std::uint64_t>(rec.state));
    h = fnv1a(h, static_cast<std::uint64_t>(rec.ladder));
    h = fnv1a_double(h, rec.submit_time);
    h = fnv1a_double(h, rec.start_time);
    h = fnv1a_double(h, rec.finish_time);
    h = fnv1a_double(h, rec.objective);
    h = fnv1a(h, rec.candidates);
    h = fnv1a(h, static_cast<std::uint64_t>(rec.infeasible_attempts));
    h = fnv1a(h, static_cast<std::uint64_t>(rec.migrations));
    h = fnv1a(h, rec.nodes.size());
    for (topo::NodeId n : rec.nodes)
      h = fnv1a(h, static_cast<std::uint64_t>(n));
  }
  for (std::uint64_t id : queue_) h = fnv1a(h, id);
  h = fnv1a_double(h, now_);
  h = fnv1a(h, cluster_.epoch());
  return h;
}

}  // namespace netsel::sched
