#pragma once
// sched::SchedulerService — placement as a long-running service.
//
// The paper frames node selection as a facility applications query; every
// entry point so far (NodeSelectionService, the experiment harness) answers
// one query against a static snapshot. This module is the production shape:
// a multi-tenant scheduler that ingests a continuous stream of job arrivals
// and departures, holds the shared mutable cluster state, and runs the
// slurmctld-style admit -> queue -> place -> release state machine:
//
//   submit ──▶ ADMIT ──────────────▶ QUEUED ─────▶ PLACING ──▶ RUNNING
//                │ queue full            │ waited >        │ infeasible │
//                ▼                       ▼ queue_timeout   ▼ this round ▼
//             REJECTED               TIMED_OUT         (requeued)   COMPLETED
//
// State and concurrency model:
//
//   * The cluster is ONE remos::NetworkSnapshot owned by the scheduler.
//     Placement commits and job releases mutate it through the ordinary
//     setters, so every change lands in the snapshot's typed remos::Delta
//     journal (PR 6) — nothing here invalidates a cache wholesale.
//   * Placements run on a fixed set of "lanes", each holding a long-lived
//     epoch-snapshotted select::SelectionContext over the cluster snapshot.
//     A scheduling round fans the queued window out over the lanes
//     (optionally on a util::ThreadPool); each lane catches up with the
//     snapshot by consuming the missed delta suffix (fine-grained row
//     repair), then speculates a placement against the round-start state.
//     Commits are then applied serially in queue order; a later job whose
//     speculative set collides with an earlier commit of the same round is
//     re-placed serially. Because every lane context is bit-identical to a
//     rebuilt one (the PR 6 oracle) and the commit order is fixed, a seeded
//     run is bit-identical at any thread count and any lane count.
//   * Per-tenant graceful degradation: each tenant carries an
//     api::DegradationPolicy; the scheduler compares the current
//     measurement coverage (set_measurement_coverage — in production wired
//     to the QueryQuality of the snapshot refresh) against the tenant's
//     thresholds. Full trusts the measured snapshot; Smoothed keeps the
//     measured ranking but drops the job's *fixed* requirements (stale
//     absolute readings should not hard-filter hosts); Prior places on the
//     capacity/zero-load prior snapshot (a second, never-mutated context).
//   * Release restores exactly the pre-placement sensor readings of the
//     job's exclusive resources (host cpu, access-link bandwidth), so a
//     drained scheduler leaves the snapshot bit-identical to its pre-run
//     state — asserted by bench_service --check.
//   * Optional churn-aware rebalancing: after a release, the worst-scoring
//     running job is re-placed through api::reselect under a migration
//     budget; a kept_current result keeps the job where it runs.
//
// Time is explicit simulated time (the sim::Engine idiom): run_until(t)
// processes events up to t. Determinism contract: everything observable —
// job states, placements, queue order, snapshot contents, epochs — is a
// pure function of (topology, initial snapshot state, submitted jobs,
// config thresholds). Wall-clock is only *measured* (placement-latency
// histograms and JobRecord::placement_seconds), never consulted.

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "api/appspec.hpp"
#include "api/reselect.hpp"
#include "api/service.hpp"
#include "remos/snapshot.hpp"
#include "select/context.hpp"
#include "select/options.hpp"
#include "topo/graph.hpp"

namespace netsel::util {
class ThreadPool;
}

namespace netsel::obs {
class TimeSeriesRecorder;
class JobTraceRecorder;
class FlightRecorder;
}  // namespace netsel::obs

namespace netsel::sched {

/// What a tenant submits: resource shape, service time, and the occupancy
/// the job imposes on the cluster state while it runs.
struct JobSpec {
  std::string tenant = "default";
  int nodes = 4;
  /// Simulated service time once placed (seconds).
  double duration = 60.0;
  select::Criterion criterion = select::Criterion::Balanced;
  double cpu_priority = 1.0;
  double bw_priority = 1.0;
  /// Fixed requirements (dropped at the Smoothed degradation rung).
  double min_bw_bps = 0.0;
  double min_cpu_fraction = 0.0;
  double min_free_memory_bytes = 0.0;
  /// Load average the job adds to each of its (exclusive) hosts while
  /// running — feeds back into later placements through the snapshot.
  double load = 1.0;
  /// Fraction of each host's access-link availability the job's steady
  /// traffic occupies while running (0 = compute-only job).
  double traffic_fraction = 0.5;
};

enum class JobState {
  Submitted,  ///< arrival event scheduled, not yet admitted
  Queued,     ///< admitted, waiting for a feasible placement
  Running,    ///< placed; departure event scheduled
  Completed,  ///< ran to completion, resources released
  Rejected,   ///< admission refused (queue full)
  TimedOut,   ///< waited in the queue past queue_timeout
};

const char* job_state_name(JobState s);

/// Full per-job accounting, kept for the life of the scheduler (ids are
/// dense indices into jobs()).
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Submitted;
  double submit_time = 0.0;
  double start_time = -1.0;   ///< placement commit (sim time); -1 until placed
  double finish_time = -1.0;  ///< completion (sim time); -1 until completed
  /// Current placement (ascending ids) while Running / final while
  /// Completed; empty otherwise.
  std::vector<topo::NodeId> nodes;
  /// Degradation rung the placing decision used.
  api::DegradationLevel ladder = api::DegradationLevel::Full;
  /// Criterion score of the committed placement.
  double objective = 0.0;
  /// Eligible (untaken compute) candidates the placing decision saw.
  std::size_t candidates = 0;
  /// Wall-clock seconds the placement decision cost (speculation plus any
  /// conflict re-placement). Observational only.
  double placement_seconds = 0.0;
  /// Placement attempts that came back infeasible while queued.
  int infeasible_attempts = 0;
  /// Times this job was migrated by the rebalancer.
  int migrations = 0;
  std::string note;

  /// Sim-time the job waited in the queue (valid once Running or later).
  double wait_time() const {
    return start_time >= 0.0 ? start_time - submit_time : -1.0;
  }
};

/// Per-tenant scheduling policy.
struct TenantPolicy {
  /// Degradation thresholds compared against the cluster measurement
  /// coverage (api::DegradationPolicy's smoothed_below / prior_below; its
  /// forecaster members are unused here — the scheduler has no Remos to
  /// re-query, the rung instead picks the state view described above).
  api::DegradationPolicy degradation;
};

struct SchedulerConfig {
  /// Admission bound: an arrival finding this many jobs queued is rejected.
  std::size_t max_queue_depth = 256;
  /// Sim-seconds a queued job may wait before it times out (infinity =
  /// never).
  double queue_timeout = std::numeric_limits<double>::infinity();
  /// Queued jobs considered per scheduling round (FIFO window with
  /// backfill: a blocked head does not starve smaller jobs behind it).
  int backfill_window = 8;
  /// Scheduling cadence in sim-seconds. 0 (default) runs a round after
  /// every event instant — minimal queueing delay, but rounds rarely see
  /// more than one candidate. A positive interval batches arrivals the way
  /// a production scheduler loop ticks: rounds fire on a periodic tick
  /// while jobs are queued, so the speculative lanes fan out over real
  /// multi-candidate windows.
  double schedule_interval = 0.0;
  /// Long-lived SelectionContext lanes speculative placements fan out
  /// over. Results are independent of this value (and of the pool's
  /// worker count); it only bounds intra-round parallelism.
  int placement_lanes = 4;
  /// Worker pool for the speculative phase; null = serial (bit-identical).
  util::ThreadPool* pool = nullptr;
  /// Delta-journal capacity of the cluster snapshot: must cover the
  /// mutations between two uses of the *least recently used* lane, or that
  /// lane pays a full rebuild (correct either way).
  std::size_t journal_capacity = 65536;
  /// Rebalance after each release: re-place the worst-scoring running job
  /// through api::reselect under rebalance_budget migrations.
  bool rebalance_on_release = false;
  int rebalance_budget = 2;
  double rebalance_min_improvement = 0.0;
  /// Observational telemetry (DESIGN.md §13). All three are pure outputs:
  /// seeded runs are bit-identical with any combination attached or not.
  /// Time-series recorder sampled on its sim-time cadence by the event
  /// loop; register no sources yourself — the scheduler registers its
  /// queue-depth/jobs-running/placed/conflict/ladder curves on attach.
  obs::TimeSeriesRecorder* timeseries = nullptr;
  /// Per-job causal traces (trace id == job id), written only from the
  /// serial event loop.
  obs::JobTraceRecorder* job_trace = nullptr;
  /// Flight-recorder ring for the post-mortem tail; null uses the always-on
  /// process-wide obs::FlightRecorder::global().
  obs::FlightRecorder* flight = nullptr;
};

/// Aggregate counters, mirrored in the obs registry (sched.*).
struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t placed = 0;
  std::uint64_t completed = 0;
  std::uint64_t conflicts = 0;            ///< speculative commits re-placed
  std::uint64_t infeasible_attempts = 0;  ///< round attempts that failed
  std::uint64_t rebalance_attempts = 0;
  std::uint64_t rebalance_migrations = 0;
  std::size_t queued = 0;   ///< current queue depth
  std::size_t running = 0;  ///< currently placed jobs
};

/// Pre-register the scheduler's obs metrics (sched.* counters/gauges, the
/// placement-latency and queue-wait histograms) plus the api-layer metrics
/// it feeds (api.candidate_set_size, api.reselect.*) so exporters list them
/// with zero values before any job ran. Idempotent.
void register_scheduler_metrics();

class SchedulerService {
 public:
  /// The scheduler owns the cluster snapshot (a view of `g`, which must
  /// outlive the scheduler). Seed measured state through snapshot() before
  /// submitting, or leave the constructor's idle prior.
  explicit SchedulerService(const topo::TopologyGraph& g,
                            SchedulerConfig cfg = {});
  ~SchedulerService();
  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// The shared mutable cluster state. External churn (monitor refreshes,
  /// bench load) may mutate it between run_until calls; the lanes pick the
  /// deltas up journal-wise on the next round.
  remos::NetworkSnapshot& snapshot() { return cluster_; }
  const remos::NetworkSnapshot& snapshot() const { return cluster_; }
  const topo::TopologyGraph& graph() const { return *graph_; }

  /// Register (or replace) a tenant's policy. Unknown tenants run under
  /// TenantPolicy{}.
  void set_tenant_policy(const std::string& tenant, TenantPolicy policy);

  /// Cluster measurement coverage consulted by the degradation ladder
  /// (production: the QueryQuality coverage of the latest snapshot
  /// refresh). Clamped to [0, 1].
  void set_measurement_coverage(double coverage);
  double measurement_coverage() const { return coverage_; }

  /// Enqueue an arrival at sim time `arrival_time` (>= now()). Returns the
  /// job id. The admit decision happens when the arrival fires.
  std::uint64_t submit(JobSpec spec, double arrival_time);
  /// Arrival at the current sim time.
  std::uint64_t submit(JobSpec spec) { return submit(std::move(spec), now_); }

  /// Process every event with time <= t (arrivals, departures, queue
  /// timeouts), running a scheduling round after each distinct event time,
  /// then advance now() to t.
  void run_until(double t);
  /// Run until no events remain (all submitted jobs reached a terminal
  /// state or are queued with nothing left to free resources for them).
  void drain();
  double now() const { return now_; }

  /// Jobs by id (dense; every job ever submitted).
  const std::vector<JobRecord>& jobs() const { return jobs_; }
  const JobRecord& job(std::uint64_t id) const { return jobs_.at(id); }
  /// Queued job ids in queue order (head first).
  std::vector<std::uint64_t> queued_jobs() const;

  SchedulerStats stats() const { return stats_; }

  /// FNV-1a digest over every decision-relevant field of every job record,
  /// the queue order, the sim clock and the snapshot epoch — the
  /// bit-identity probe bench_service compares across thread counts.
  /// Excludes wall-clock measurements.
  std::uint64_t state_digest() const;

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< FIFO tie-break at equal times
    enum class Kind { Arrival, Departure, Timeout, Tick } kind = Kind::Arrival;
    std::uint64_t job = 0;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  /// A placement lane: long-lived contexts over the live cluster snapshot
  /// and over the never-mutated capacity prior.
  struct Lane {
    std::unique_ptr<select::SelectionContext> live;
    std::unique_ptr<select::SelectionContext> prior;
  };
  /// One speculative placement decision (round-start state).
  struct Decision {
    bool feasible = false;
    std::vector<topo::NodeId> nodes;
    double objective = 0.0;
    api::DegradationLevel level = api::DegradationLevel::Full;
    std::size_t candidates = 0;
    double seconds = 0.0;
    std::string note;
  };

  void handle_arrival(std::uint64_t id);
  void handle_departure(std::uint64_t id);
  void handle_timeout(std::uint64_t id);
  /// One admit/queue/place round over the backfill window.
  void schedule_round();
  /// Speculative placement of `rec` against `taken` on `lane`.
  Decision place_job(const JobRecord& rec, Lane& lane,
                     const std::vector<char>& taken) const;
  select::SelectionOptions job_options(const JobSpec& spec,
                                       api::DegradationLevel level) const;
  api::DegradationLevel ladder_level(const std::string& tenant) const;
  /// Apply occupancy (cpu + access-link bandwidth) of a committed
  /// placement; records the exact pre-values for release.
  void allocate(JobRecord& rec, std::vector<topo::NodeId> nodes,
                double objective, api::DegradationLevel level);
  void release(JobRecord& rec);
  /// Post-release bounded-migration pass (cfg_.rebalance_on_release).
  void maybe_rebalance();
  void remove_queued(std::uint64_t id);
  /// Refresh stats_.queued / stats_.running and their obs gauges.
  void sync_depth_gauges();
  Lane& lane(std::size_t i);
  void push_event(double time, Event::Kind kind, std::uint64_t job);
  void note_ladder(const std::string& tenant, api::DegradationLevel level);
  /// Close a job's causal trace at a terminal state (drops the open-span
  /// bookkeeping); no-op without a tracer.
  void close_trace(std::uint64_t id, const char* terminal_span);

  const topo::TopologyGraph* graph_;
  SchedulerConfig cfg_;
  remos::NetworkSnapshot cluster_;
  remos::NetworkSnapshot prior_;  ///< capacity/zero-load, never mutated
  std::vector<Lane> lanes_;
  double now_ = 0.0;
  double coverage_ = 1.0;
  bool tick_pending_ = false;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::deque<std::uint64_t> queue_;
  std::vector<JobRecord> jobs_;
  std::map<std::string, TenantPolicy> tenants_;
  /// Exact pre-placement sensor readings per running job (id-indexed
  /// sparse map): restored verbatim on release. Only the job's exclusive
  /// resources are touched (host cpu, the hosts' access links), so no two
  /// running jobs ever hold pre-values of the same sensor and release is an
  /// exact inverse regardless of interleaving.
  struct LinkState {
    topo::LinkId link;
    double fwd, rev;
  };
  struct Allocation {
    std::vector<std::pair<topo::NodeId, double>> node_cpu;
    std::vector<LinkState> links;
  };
  std::map<std::uint64_t, Allocation> allocations_;
  std::vector<char> taken_;  ///< per node id: 1 = held by a running job
  SchedulerStats stats_;
  // --- Telemetry (observational; none of it feeds state_digest) ---------
  obs::FlightRecorder* flight_ = nullptr;  ///< never null after construction
  /// Open span indices per live trace (only populated with a tracer).
  struct OpenSpans {
    std::uint32_t root = 0;
    std::uint32_t queue = 0;
    std::uint32_t run = 0;
    bool running = false;
  };
  std::map<std::uint64_t, OpenSpans> trace_open_;
  /// Last degradation rung a placement used (0/1/2) — the time-series
  /// ladder curve; and per-tenant last rung for flight-recorder
  /// transition events.
  int last_rung_ = 0;
  std::map<std::string, int> flight_rung_;
};

}  // namespace netsel::sched
