#include "sched/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "appsim/presets.hpp"

namespace netsel::sched {

std::vector<JobTemplate> paper_mix() {
  // Node counts come from the calibrated preset configs; durations are the
  // presets' documented reference runtimes on an idle testbed (see
  // appsim/presets.cpp: 32 iterations x 1.5 s, 12 steps x ~12.6 s,
  // 240 images / 3 slaves x 6.75 s).
  const appsim::LooselySyncConfig fft = appsim::fft1k();
  const appsim::LooselySyncConfig air = appsim::airshed();
  const appsim::MasterSlaveConfig mri = appsim::mri();

  JobTemplate t_fft;
  t_fft.spec.tenant = "fft";
  t_fft.spec.nodes = fft.num_nodes;
  t_fft.spec.duration = 48.0;
  t_fft.spec.criterion = select::Criterion::MaxBandwidth;
  t_fft.spec.traffic_fraction = 0.6;  // all-to-all: bandwidth-hungry
  t_fft.weight = 3.0;

  JobTemplate t_air;
  t_air.spec.tenant = "airshed";
  t_air.spec.nodes = air.num_nodes;
  t_air.spec.duration = 150.0;
  t_air.spec.criterion = select::Criterion::Balanced;
  t_air.spec.traffic_fraction = 0.4;
  t_air.weight = 2.0;

  JobTemplate t_mri;
  t_mri.spec.tenant = "mri";
  t_mri.spec.nodes = mri.num_nodes;
  t_mri.spec.duration = 540.0;
  t_mri.spec.criterion = select::Criterion::Balanced;
  t_mri.spec.cpu_priority = 2.0;  // §3.3: compute-leaning task farm
  t_mri.spec.traffic_fraction = 0.25;
  t_mri.weight = 1.0;

  return {t_fft, t_air, t_mri};
}

JobStream::JobStream(WorkloadConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed, "sched.workload") {
  if (cfg_.mix.empty()) cfg_.mix = paper_mix();
  if (!(cfg_.arrival_rate > 0.0))
    throw std::invalid_argument("WorkloadConfig: arrival_rate must be > 0");
  for (const JobTemplate& t : cfg_.mix) {
    if (t.weight < 0.0)
      throw std::invalid_argument("WorkloadConfig: negative template weight");
    total_weight_ += t.weight;
  }
  if (!(total_weight_ > 0.0))
    throw std::invalid_argument("WorkloadConfig: mix has zero total weight");
}

JobStream::Arrival JobStream::next() {
  now_ += rng_.exponential_mean(1.0 / cfg_.arrival_rate);
  // Weighted template pick (one uniform draw, cumulative scan).
  double u = rng_.uniform() * total_weight_;
  std::size_t pick = cfg_.mix.size() - 1;
  for (std::size_t i = 0; i < cfg_.mix.size(); ++i) {
    u -= cfg_.mix[i].weight;
    if (u < 0.0) {
      pick = i;
      break;
    }
  }
  Arrival a;
  a.time = now_;
  a.spec = cfg_.mix[pick].spec;
  if (cfg_.node_scale != 1.0)
    a.spec.nodes = std::max(
        1, static_cast<int>(std::lround(a.spec.nodes * cfg_.node_scale)));
  if (cfg_.duration_jitter > 0.0)
    a.spec.duration *= rng_.uniform(1.0 - cfg_.duration_jitter,
                                    1.0 + cfg_.duration_jitter);
  return a;
}

double JobStream::feed(SchedulerService& sched, int n) {
  double last = sched.now();
  for (int i = 0; i < n; ++i) {
    Arrival a = next();
    sched.submit(std::move(a.spec), a.time);
    last = a.time;
  }
  return last;
}

}  // namespace netsel::sched
