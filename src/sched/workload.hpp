#pragma once
// Open-loop workload stream for the scheduler service, sized by the
// appsim workload models (the paper's Fig. 4 testbed applications): job
// node counts come from the preset configurations and service times from
// their calibrated reference runtimes, so the stream exercises the
// scheduler with the same shapes the selection experiments run.
//
// Arrivals are Poisson (exponential inter-arrival times) with a weighted
// template mix; everything is drawn from one util::Rng, so a (seed, rate,
// mix) triple names a reproducible trace.

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace netsel::sched {

/// One job shape in the mix, with its sampling weight.
struct JobTemplate {
  JobSpec spec;
  double weight = 1.0;
};

struct WorkloadConfig {
  /// Mean arrivals per simulated second (open-loop Poisson).
  double arrival_rate = 0.1;
  std::uint64_t seed = 1;
  std::vector<JobTemplate> mix;
  /// Multiplicative jitter on each job's duration: drawn uniformly from
  /// [1 - jitter, 1 + jitter]. 0 = exact template durations.
  double duration_jitter = 0.2;
  /// Scale every template's node count (datacenter jobs are bigger than
  /// the paper's 4-5 node testbed runs). Rounded, floor 1.
  double node_scale = 1.0;
};

/// The paper mix: FFT (4 nodes / 48 s, bandwidth-hungry), Airshed
/// (5 nodes / 150 s, balanced) and MRI (4 nodes / 540 s, master-slave,
/// compute-leaning), weighted so short jobs dominate arrivals the way
/// interactive workloads do. Tenant names are the application names.
std::vector<JobTemplate> paper_mix();

/// Deterministic open-loop Poisson arrival stream over a template mix.
class JobStream {
 public:
  struct Arrival {
    double time = 0.0;
    JobSpec spec;
  };

  explicit JobStream(WorkloadConfig cfg);

  /// Next arrival (strictly increasing times).
  Arrival next();
  /// Convenience: submit the next `n` arrivals to a scheduler and return
  /// the time of the last one.
  double feed(SchedulerService& sched, int n);

  const WorkloadConfig& config() const { return cfg_; }

 private:
  WorkloadConfig cfg_;
  util::Rng rng_;
  double now_ = 0.0;
  double total_weight_ = 0.0;
};

}  // namespace netsel::sched
