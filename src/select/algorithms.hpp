#pragma once
// The paper's node-selection algorithms (§3.2) and baselines (§4.3).
//
// Every algorithm has two entry points: the snapshot form (builds a
// transient SelectionContext, same complexity as the historical literal
// implementations) and the context form, which shares the cached deletion
// orders, bottleneck rows and component decomposition across calls — use it
// whenever several selections, predictions or evaluations run against the
// same snapshot (placement groups, advisor sweeps, migration checks).

#include "remos/snapshot.hpp"
#include "select/options.hpp"
#include "util/rng.hpp"

namespace netsel::select {

class SelectionContext;

/// §3.2 "Maximize computation capacity": the m eligible nodes with the
/// highest available cpu, subject to the fixed-bandwidth requirement (the
/// set must live in one component of the graph after unusable links are
/// dropped, so the nodes can actually communicate).
SelectionResult select_max_compute(const remos::NetworkSnapshot& snap,
                                   const SelectionOptions& opt);
SelectionResult select_max_compute(const SelectionContext& ctx,
                                   const SelectionOptions& opt);

/// Figure 2: maximise the minimum available bandwidth between any pair of
/// selected nodes by repeatedly deleting the minimum-available-bandwidth
/// edge while a component with >= m eligible compute nodes survives.
/// Implemented as an offline reverse replay of the deletion sequence
/// through incremental connectivity — bit-identical results, near-linear
/// time (see detail::reference_select_max_bandwidth for the literal loop).
SelectionResult select_max_bandwidth(const remos::NetworkSnapshot& snap,
                                     const SelectionOptions& opt);
SelectionResult select_max_bandwidth(const SelectionContext& ctx,
                                     const SelectionOptions& opt);

/// Figure 3: greedy balanced optimisation — maximise
/// min(min fractional cpu / cpu_priority, min fractional bw / bw_priority).
/// On acyclic topologies this runs over the merge forest of the deletion
/// sequence (one candidate evaluation per component ever created); cyclic
/// graphs and the Steiner ablation use the literal loop.
SelectionResult select_balanced(const remos::NetworkSnapshot& snap,
                                const SelectionOptions& opt);
SelectionResult select_balanced(const SelectionContext& ctx,
                                const SelectionOptions& opt);

/// Dispatch by criterion.
SelectionResult select_nodes(Criterion c, const remos::NetworkSnapshot& snap,
                             const SelectionOptions& opt);
SelectionResult select_nodes(Criterion c, const SelectionContext& ctx,
                             const SelectionOptions& opt);

/// Baseline of §4.3: m eligible nodes uniformly at random (must be
/// connected through usable links, like any valid placement).
SelectionResult select_random(const remos::NetworkSnapshot& snap,
                              const SelectionOptions& opt, util::Rng& rng);
SelectionResult select_random(const SelectionContext& ctx,
                              const SelectionOptions& opt, util::Rng& rng);

/// Static baseline: ignores dynamic availability entirely and picks the
/// first m eligible nodes by id (equivalently, by static capacity on a
/// homogeneous testbed). The paper notes random and static selection give
/// virtually identical performance on an all-high-speed-links testbed.
SelectionResult select_static(const remos::NetworkSnapshot& snap,
                              const SelectionOptions& opt);
SelectionResult select_static(const SelectionContext& ctx,
                              const SelectionOptions& opt);

}  // namespace netsel::select
