#pragma once
// The paper's node-selection algorithms (§3.2) and baselines (§4.3).

#include "remos/snapshot.hpp"
#include "select/options.hpp"
#include "util/rng.hpp"

namespace netsel::select {

/// §3.2 "Maximize computation capacity": the m eligible nodes with the
/// highest available cpu, subject to the fixed-bandwidth requirement (the
/// set must live in one component of the graph after unusable links are
/// dropped, so the nodes can actually communicate).
SelectionResult select_max_compute(const remos::NetworkSnapshot& snap,
                                   const SelectionOptions& opt);

/// Figure 2: maximise the minimum available bandwidth between any pair of
/// selected nodes by repeatedly deleting the minimum-available-bandwidth
/// edge while a component with >= m eligible compute nodes survives.
SelectionResult select_max_bandwidth(const remos::NetworkSnapshot& snap,
                                     const SelectionOptions& opt);

/// Figure 3: greedy balanced optimisation — maximise
/// min(min fractional cpu / cpu_priority, min fractional bw / bw_priority).
SelectionResult select_balanced(const remos::NetworkSnapshot& snap,
                                const SelectionOptions& opt);

/// Dispatch by criterion.
SelectionResult select_nodes(Criterion c, const remos::NetworkSnapshot& snap,
                             const SelectionOptions& opt);

/// Baseline of §4.3: m eligible nodes uniformly at random (must be
/// connected through usable links, like any valid placement).
SelectionResult select_random(const remos::NetworkSnapshot& snap,
                              const SelectionOptions& opt, util::Rng& rng);

/// Static baseline: ignores dynamic availability entirely and picks the
/// first m eligible nodes by id (equivalently, by static capacity on a
/// homogeneous testbed). The paper notes random and static selection give
/// virtually identical performance on an all-high-speed-links testbed.
SelectionResult select_static(const remos::NetworkSnapshot& snap,
                              const SelectionOptions& opt);

}  // namespace netsel::select
