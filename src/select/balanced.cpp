// Figure 3 of the paper: greedy balanced computation + communication
// optimisation — select m nodes maximising
//
//     minresource = min( mincpu / cpu_priority, minbw / bw_priority )
//
// where mincpu is the minimum fractional cpu among the selected nodes and
// minbw is the minimum fractional available bandwidth among the edges of the
// surviving component (the paper's definition; with steiner_restricted, only
// edges on paths between the selected nodes count — an ablation variant).
//
// The algorithm starts from the max-compute selection and repeatedly removes
// the minimum-fractional-bandwidth edge, accepting a new node set whenever
// that raises minresource, and stops at the first iteration that brings no
// improvement (or disconnects every large-enough component).

#include <limits>

#include "select/algorithms.hpp"
#include "select/detail.hpp"
#include "select/objective.hpp"
#include "topo/connectivity.hpp"

namespace netsel::select {

namespace {

struct CandidateEval {
  std::vector<topo::NodeId> nodes;
  double mincpu = 0.0;
  double minbw = 0.0;
  double minresource = -std::numeric_limits<double>::infinity();
};

/// Evaluate the best candidate inside component `c` per Fig. 3 step 3.
CandidateEval evaluate_component(const remos::NetworkSnapshot& snap,
                                 const SelectionOptions& opt,
                                 const topo::Components& comps, int c,
                                 const std::vector<char>& mask, int m) {
  CandidateEval cand;
  cand.nodes = detail::top_m_by_cpu(
      snap, opt, detail::eligible_members(snap, opt, comps, c), m);
  cand.mincpu = detail::min_cpu_of(snap, opt, cand.nodes);
  if (opt.steiner_restricted) {
    cand.minbw = std::numeric_limits<double>::infinity();
    for (topo::LinkId l : steiner_links(snap.graph(), mask, cand.nodes))
      cand.minbw = std::min(cand.minbw, link_fraction(snap, l, opt));
  } else {
    cand.minbw =
        detail::min_fraction_in_component(snap, opt, comps, c, mask);
  }
  cand.minresource =
      std::min(cand.mincpu / opt.cpu_priority, cand.minbw / opt.bw_priority);
  return cand;
}

}  // namespace

SelectionResult select_balanced(const remos::NetworkSnapshot& snap,
                                const SelectionOptions& opt) {
  validate_options(snap, opt);
  const int m = opt.num_nodes;
  auto mask = initial_link_mask(snap, opt);

  SelectionResult result;

  // Step 1: start from the max-compute choice. On the paper's connected,
  // unconstrained graph this is exactly "m nodes with maximum available cpu
  // capacity in G" with minbw over all of G's edges; under fixed-bandwidth
  // constraints we take the best feasible component.
  CandidateEval best;
  {
    auto comps = topo::connected_components(snap.graph(), mask);
    auto counts = detail::eligible_counts(snap, opt, comps);
    for (int c = 0; c < comps.count; ++c) {
      if (counts[static_cast<std::size_t>(c)] < m) continue;
      auto cand = evaluate_component(snap, opt, comps, c, mask, m);
      if (cand.minresource > best.minresource) best = std::move(cand);
    }
  }
  if (best.nodes.empty()) {
    result.note = "no component with enough eligible nodes";
    return result;
  }

  // Steps 2-4: remove the minimum-fractional-bandwidth edge; re-evaluate
  // every surviving component; keep going while minresource improves.
  while (true) {
    topo::LinkId victim = detail::min_fraction_link(snap, opt, mask);
    if (victim == topo::kInvalidLink) break;
    mask[static_cast<std::size_t>(victim)] = 0;
    ++result.iterations;

    bool newsetflag = false;
    bool any_feasible = false;
    auto comps = topo::connected_components(snap.graph(), mask);
    auto counts = detail::eligible_counts(snap, opt, comps);
    for (int c = 0; c < comps.count; ++c) {
      if (counts[static_cast<std::size_t>(c)] < m) continue;
      any_feasible = true;
      auto cand = evaluate_component(snap, opt, comps, c, mask, m);
      if (cand.minresource > best.minresource) {
        best = std::move(cand);
        newsetflag = true;
      }
    }
    // Paper-exact rule: stop on the first non-improving removal. The
    // exhaustive extension keeps sweeping while any component can still
    // host the application, returning the best set seen.
    if (opt.exhaustive_balanced ? !any_feasible : !newsetflag) break;
  }

  result.feasible = true;
  result.nodes = best.nodes;
  result.min_cpu = best.mincpu;
  result.min_bw_fraction = best.minbw;
  result.objective = best.minresource;
  return result;
}

}  // namespace netsel::select
