// Figure 3 of the paper: greedy balanced computation + communication
// optimisation — select m nodes maximising
//
//     minresource = min( mincpu / cpu_priority, minbw / bw_priority )
//
// where mincpu is the minimum fractional cpu among the selected nodes and
// minbw is the minimum fractional available bandwidth among the edges of the
// surviving component (the paper's definition; with steiner_restricted, only
// edges on paths between the selected nodes count — an ablation variant).
//
// The algorithm starts from the max-compute selection and repeatedly removes
// the minimum-fractional-bandwidth edge, accepting a new node set whenever
// that raises minresource, and stops at the first iteration that brings no
// improvement (or, with exhaustive_balanced, when no component can host the
// application).
//
// Fast path: the component history of the deletion sweep is a laminar
// family. Replaying the deletion sequence backwards as insertions through a
// union-find yields a binary merge forest whose nodes are exactly the
// components that ever exist during the forward sweep. The forward sweep
// then needs to evaluate only the components that *changed* at each
// deletion: any unchanged component was already compared against `best`
// when it last changed and `best` never decreases, so it can never win
// later under the strict-improvement rule.
//
// On acyclic graphs every deletion splits a component and each component's
// min-fraction is constant over its lifetime (all its internal links
// outlive it), so the only events are splits. On cyclic graphs — the
// datacenter fat-trees and core--edge fabrics of topo/synthetic.hpp — a
// deletion may instead remove a *cycle* link: the component's membership
// (hence its top-m and feasibility) is unchanged, but its internal
// min-fraction rises to the next-surviving internal link's. Because the
// deletion sequence is sorted ascending by fraction and the reverse replay
// inserts it back-to-front, a component's min-fraction internal link is
// always its most recently inserted one; tracking the minimum deletion-
// sequence position per live reverse component therefore gives, for every
// cycle insertion, the exact min-fraction the component assumes after the
// corresponding forward deletion. Each forward step then processes one
// recorded event — a split (evaluate the two newborn halves) or a cycle
// (re-evaluate the one surviving component with its raised min-fraction).
//
// That turns O(E) component sweeps each doing O(V+E) work into one
// near-linear replay plus one candidate evaluation per event —
// bit-identical to detail::reference_select_balanced (the literal loop,
// still used for the Steiner ablation, whose bandwidth term is not a
// per-component constant); see tests/test_select_context.cpp.

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "select/detail.hpp"
#include "select/objective.hpp"
#include "select/obs.hpp"
#include "select/prune.hpp"
#include "select/reference.hpp"
#include "topo/connectivity.hpp"
#include "util/thread_pool.hpp"

namespace netsel::select {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

/// A component in the merge forest: either a single node (leaf) or the union
/// of two children merged by the link whose forward deletion splits it.
struct ForestNode {
  int left = -1;
  int right = -1;
  topo::NodeId leaf = topo::kInvalidNode;
  int eligible = 0;
  topo::NodeId min_id = topo::kInvalidNode;
  /// Min link fraction among the component's internal links; +inf for
  /// leaves, matching detail::min_fraction_in_component on lone nodes.
  double minfrac = kInf;
  /// The component's m best eligible nodes ordered by (cpu desc, id asc) —
  /// exactly the prefix detail::top_m_by_cpu's stable sort would produce.
  /// Built bottom-up: a node in the parent's top-m is necessarily in its
  /// child's top-m, so merging the children's lists (capped at m) is exact.
  /// Stored as an (offset, len) slice of one shared pool rather than a
  /// per-node vector: the replay creates ~V+E forest nodes, and that many
  /// small vectors dominate its time and memory at the million-node scale.
  /// When a merge takes every element from one child the parent *shares*
  /// the child's slice (no copy) — children are immutable once merged.
  std::int64_t top_off = 0;
  std::int32_t top_len = 0;
};

struct Candidate {
  std::vector<topo::NodeId> nodes;
  double mincpu = 0.0;
  double minbw = 0.0;
  double minresource = -kInf;
};

Candidate evaluate_forest_node(const std::vector<double>& cpu,
                               const SelectionOptions& opt,
                               const std::vector<ForestNode>& forest,
                               const std::vector<topo::NodeId>& top_pool,
                               int f) {
  const auto& fn = forest[static_cast<std::size_t>(f)];
  Candidate cand;
  const auto lo = static_cast<std::ptrdiff_t>(fn.top_off);
  cand.nodes.assign(top_pool.begin() + lo, top_pool.begin() + lo + fn.top_len);
  // top is ordered by (cpu desc, id asc): the minimum cpu is the last
  // element's, and top_m_by_cpu returns its selection ascending by id.
  cand.mincpu = cpu[static_cast<std::size_t>(cand.nodes.back())];
  std::sort(cand.nodes.begin(), cand.nodes.end());
  cand.minbw = fn.minfrac;
  cand.minresource =
      std::min(cand.mincpu / opt.cpu_priority, cand.minbw / opt.bw_priority);
  return cand;
}

/// Merge the children's (cpu desc, id asc)-ordered top lists, keeping the
/// first m, into `out`'s slice of `top_pool`. The key is a strict total
/// order (ids are unique), so this is exactly the prefix a stable sort of
/// the concatenated membership would yield. When one child contributes
/// nothing the result is the other child's slice verbatim, shared instead
/// of copied (children stay immutable once merged).
void merge_top(const std::vector<double>& cpu,
               std::vector<topo::NodeId>& top_pool, const ForestNode& a,
               const ForestNode& b, std::size_t m, ForestNode& out) {
  auto before = [&](topo::NodeId x, topo::NodeId y) {
    const double cx = cpu[static_cast<std::size_t>(x)];
    const double cy = cpu[static_cast<std::size_t>(y)];
    return cx > cy || (cx == cy && x < y);
  };
  const auto alen = static_cast<std::size_t>(a.top_len);
  const auto blen = static_cast<std::size_t>(b.top_len);
  auto share = [&](const ForestNode& c) {
    out.top_off = c.top_off;
    out.top_len = c.top_len;
  };
  // Share when the other child cannot place an element among the first m:
  // it is empty, or this child is already full and its last (worst) element
  // still precedes the other's best.
  if (blen == 0 ||
      (alen == m &&
       before(top_pool[static_cast<std::size_t>(a.top_off) + alen - 1],
              top_pool[static_cast<std::size_t>(b.top_off)]))) {
    share(a);
    return;
  }
  if (alen == 0 ||
      (blen == m &&
       before(top_pool[static_cast<std::size_t>(b.top_off) + blen - 1],
              top_pool[static_cast<std::size_t>(a.top_off)]))) {
    share(b);
    return;
  }
  const std::size_t want = std::min(m, alen + blen);
  const std::size_t start = top_pool.size();
  out.top_off = static_cast<std::int64_t>(start);
  out.top_len = static_cast<std::int32_t>(want);
  std::size_t i = 0, j = 0;
  // Index the pool on every read: push_back may reallocate mid-merge.
  while (top_pool.size() - start < want) {
    const auto ai = static_cast<std::size_t>(a.top_off) + i;
    const auto bj = static_cast<std::size_t>(b.top_off) + j;
    if (j >= blen || (i < alen && before(top_pool[ai], top_pool[bj]))) {
      top_pool.push_back(top_pool[ai]);
      ++i;
    } else {
      top_pool.push_back(top_pool[bj]);
      ++j;
    }
  }
}

SelectionResult select_balanced_forest(const SelectionContext& ctx,
                                       const SelectionOptions& opt) {
  const auto& snap = ctx.snapshot();
  const auto& g = ctx.graph();
  const int m = opt.num_nodes;

  auto elig = ctx.eligibility(opt);
  // Feasibility (ForestNode::eligible, feasible_live) uses the full eligible
  // set; the top-m ranking lists drop dominated candidates
  // (winner-preserving, see select/prune.hpp).
  const auto cand = dominated_candidate_mask(snap, opt, elig);

  // The active deletion sequence: links ascending by (fraction, id) — the
  // order min_fraction_link produces — minus those failing the fixed
  // min-bandwidth requirement. With a reference capacity the fraction is a
  // *rounded* multiple of the absolute bandwidth, so sort by the computed
  // fractions rather than reusing the absolute-bandwidth order (two
  // bandwidths may round to equal fractions, where the id tie-break kicks
  // in).
  // Per-link/per-node key fills: pure per-index writes into pre-sized
  // vectors, so the optional pooled fill (ctx.set_pool) is bit-identical to
  // the serial loop at any thread count.
  util::ThreadPool* pp = ctx.pool();
  std::vector<double> frac(g.link_count());
  auto fill_frac = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t l = lo; l < hi; ++l)
      frac[l] = link_fraction(snap, static_cast<topo::LinkId>(l), opt);
  };
  if (pp && frac.size() >= 8192)
    util::parallel_for_chunked(*pp, frac.size(), 4096, fill_frac);
  else
    fill_frac(0, frac.size());
  std::vector<topo::LinkId> seq;
  seq.reserve(g.link_count());
  if (opt.reference_bw > 0.0) {
    for (std::size_t l = 0; l < g.link_count(); ++l)
      if (!g.link_removed(static_cast<topo::LinkId>(l)))
        seq.push_back(static_cast<topo::LinkId>(l));
    std::stable_sort(seq.begin(), seq.end(),
                     [&](topo::LinkId a, topo::LinkId b) {
                       return frac[static_cast<std::size_t>(a)] <
                              frac[static_cast<std::size_t>(b)];
                     });
  } else {
    seq = ctx.links_by_fraction(opt);
  }
  if (opt.min_bw_bps > 0.0) {
    std::erase_if(seq, [&](topo::LinkId l) {
      return snap.bw(l) < opt.min_bw_bps;
    });
  }
  const std::size_t steps = seq.size();

  // Per-call cpu keys (they depend on reference_cpu_capacity); only eligible
  // nodes are ever ranked, the rest stay 0.
  const std::size_t V = g.node_count();
  std::vector<double> cpu(V, 0.0);
  auto fill_cpu = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t n = lo; n < hi; ++n)
      if (elig[n]) cpu[n] = node_cpu(snap, static_cast<topo::NodeId>(n), opt);
  };
  if (pp && V >= 8192)
    util::parallel_for_chunked(*pp, V, 4096, fill_cpu);
  else
    fill_cpu(0, V);

  // Reverse replay: insert links back-to-front. A merge records the newborn
  // component (split_at[p] is the forest node forward step p splits into its
  // children); a cycle insertion records a re-evaluation event for the one
  // component it lands in (cycle_at[p] / cycle_minfrac[p]). min_pos[root]
  // tracks the minimum deletion-sequence position among a live reverse
  // component's internal links: insertions run back-to-front over an
  // ascending-fraction sequence, so the most recent internal insertion is
  // both the position minimum and the fraction minimum. When forward step
  // i+1 deletes cycle link seq[i], the component's min-fraction becomes the
  // fraction at the position minimum *before* that insertion.
  std::vector<ForestNode> forest;
  forest.reserve(V + steps);
  std::vector<int> forest_of_root(V);
  const auto mm = static_cast<std::size_t>(m);
  // Shared storage for every ForestNode::top slice. Leaf slices come first;
  // slice sharing on lopsided merges keeps the tail near sum(min(m,
  // subtree-eligible)) rather than m per forest node.
  std::vector<topo::NodeId> top_pool;
  top_pool.reserve(V + steps);
  for (std::size_t i = 0; i < V; ++i) {
    ForestNode fn;
    fn.leaf = static_cast<topo::NodeId>(i);
    fn.eligible = elig[i] ? 1 : 0;
    fn.min_id = fn.leaf;
    fn.top_off = static_cast<std::int64_t>(top_pool.size());
    if (cand[i]) {
      top_pool.push_back(fn.leaf);
      fn.top_len = 1;
    }
    forest.push_back(fn);
    forest_of_root[i] = static_cast<int>(i);
  }
  topo::EligibleUnionFind uf(elig);
  std::vector<int> split_at(steps + 1, -1);
  std::vector<int> cycle_at(steps + 1, -1);
  std::vector<double> cycle_minfrac(steps + 1, kInf);
  std::vector<std::size_t> min_pos(V, kNoPos);
  // Gather each step's endpoints and fraction once, in deletion-sequence
  // order: the replay walks seq back-to-front with dependent union-find
  // work per step, and random g.link()/frac[] loads on that critical path
  // stall it at the million-link scale. Independent gather loops let the
  // misses overlap; the replay then streams these arrays sequentially.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> seq_ends(steps);
  std::vector<double> seq_frac(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const topo::Link& lk = g.link(seq[i]);
    seq_ends[i] = {lk.a, lk.b};
  }
  for (std::size_t i = 0; i < steps; ++i)
    seq_frac[i] = frac[static_cast<std::size_t>(seq[i])];
  for (std::size_t i = steps; i-- > 0;) {
    const auto [end_a, end_b] = seq_ends[i];
    const topo::NodeId ra = uf.find(end_a);
    const topo::NodeId rb = uf.find(end_b);
    if (ra == rb) {
      // Cycle link: membership unchanged; forward deletion raises the
      // component's min-fraction to its next-surviving internal link's.
      const int f = forest_of_root[static_cast<std::size_t>(ra)];
      const std::size_t old = min_pos[static_cast<std::size_t>(ra)];
      cycle_at[i + 1] = f;
      cycle_minfrac[i + 1] =
          old == kNoPos ? kInf : seq_frac[old];
      forest[static_cast<std::size_t>(f)].minfrac = seq_frac[i];
      min_pos[static_cast<std::size_t>(ra)] = i;
      continue;
    }
    const int fa = forest_of_root[static_cast<std::size_t>(ra)];
    const int fb = forest_of_root[static_cast<std::size_t>(rb)];
    ForestNode fn;
    fn.left = fa;
    fn.right = fb;
    fn.eligible = forest[static_cast<std::size_t>(fa)].eligible +
                  forest[static_cast<std::size_t>(fb)].eligible;
    fn.min_id = std::min(forest[static_cast<std::size_t>(fa)].min_id,
                         forest[static_cast<std::size_t>(fb)].min_id);
    // seq[i] precedes every already-inserted internal link in the ascending
    // deletion order, so it is the new component's fraction minimum.
    fn.minfrac = seq_frac[i];
    merge_top(cpu, top_pool, forest[static_cast<std::size_t>(fa)],
              forest[static_cast<std::size_t>(fb)], mm, fn);
    const int idx = static_cast<int>(forest.size());
    forest.push_back(fn);
    const topo::NodeId r = uf.unite(end_a, end_b);
    forest_of_root[static_cast<std::size_t>(r)] = idx;
    min_pos[static_cast<std::size_t>(r)] = i;
    split_at[i + 1] = idx;
  }

  // Initial components, in the order connected_components numbers them
  // (ascending smallest member id).
  std::vector<int> roots;
  {
    std::vector<char> seen(forest.size(), 0);
    for (std::size_t n = 0; n < V; ++n) {
      const int f = forest_of_root[static_cast<std::size_t>(
          uf.find(static_cast<topo::NodeId>(n)))];
      if (!seen[static_cast<std::size_t>(f)]) {
        seen[static_cast<std::size_t>(f)] = 1;
        roots.push_back(f);
      }
    }
    std::sort(roots.begin(), roots.end(), [&](int a, int b) {
      return forest[static_cast<std::size_t>(a)].min_id <
             forest[static_cast<std::size_t>(b)].min_id;
    });
  }

  SelectionResult result;

  // Forward sweep, step 0: evaluate every feasible initial component.
  Candidate best;
  int feasible_live = 0;
  for (int f : roots) {
    if (forest[static_cast<std::size_t>(f)].eligible < m) continue;
    ++feasible_live;
    auto cand = evaluate_forest_node(cpu, opt, forest, top_pool, f);
    if (cand.minresource > best.minresource) best = std::move(cand);
  }
  if (best.nodes.empty()) {
    result.note = "no component with enough eligible nodes";
    return result;
  }

  // Steps 1..E: deletion p changes exactly one component — it either splits
  // (evaluate the two newborn halves, in ascending-min-id order to match
  // the literal loop's component-id order) or loses a cycle link
  // (re-evaluate it with its raised min-fraction; membership and
  // feasibility are unchanged). Only changed components can beat `best`
  // (see header comment).
  for (std::size_t p = 1; p <= steps; ++p) {
    ++result.iterations;
    bool newsetflag = false;
    if (const int d = split_at[p]; d != -1) {
      int a = forest[static_cast<std::size_t>(d)].left;
      int b = forest[static_cast<std::size_t>(d)].right;
      if (forest[static_cast<std::size_t>(a)].min_id >
          forest[static_cast<std::size_t>(b)].min_id)
        std::swap(a, b);
      if (forest[static_cast<std::size_t>(d)].eligible >= m) --feasible_live;
      for (int f : {a, b}) {
        if (forest[static_cast<std::size_t>(f)].eligible < m) continue;
        ++feasible_live;
        auto cand = evaluate_forest_node(cpu, opt, forest, top_pool, f);
        if (cand.minresource > best.minresource) {
          best = std::move(cand);
          newsetflag = true;
        }
      }
    } else {
      const int f = cycle_at[p];
      forest[static_cast<std::size_t>(f)].minfrac = cycle_minfrac[p];
      if (forest[static_cast<std::size_t>(f)].eligible >= m) {
        auto cand = evaluate_forest_node(cpu, opt, forest, top_pool, f);
        if (cand.minresource > best.minresource) {
          best = std::move(cand);
          newsetflag = true;
        }
      }
    }
    if (opt.exhaustive_balanced ? feasible_live == 0 : !newsetflag) break;
  }

  result.feasible = true;
  result.nodes = best.nodes;
  result.min_cpu = best.mincpu;
  result.min_bw_fraction = best.minbw;
  result.objective = best.minresource;
  return result;
}

}  // namespace

SelectionResult select_balanced(const SelectionContext& ctx,
                                const SelectionOptions& opt) {
  detail::selections_counter().inc();
  obs::ScopedTimer timer(detail::criterion_latency_hist(Criterion::Balanced));
  validate_options(ctx.snapshot(), opt);
  // The merge-forest replay handles cyclic graphs via cycle events; only
  // the Steiner ablation — whose bandwidth term is re-derived per candidate
  // rather than being a per-component constant — falls back to the literal
  // Fig. 3 loop.
  if (opt.steiner_restricted)
    return detail::reference_select_balanced(ctx.snapshot(), opt);
  return select_balanced_forest(ctx, opt);
}

SelectionResult select_balanced(const remos::NetworkSnapshot& snap,
                                const SelectionOptions& opt) {
  SelectionContext ctx(snap);
  return select_balanced(ctx, opt);
}

}  // namespace netsel::select
