// Baseline selection policies used by the paper's evaluation (§4.3):
// random node selection, and static selection ("node selection based on
// static network properties give[s] virtually identical performance" to
// random on an all-high-speed testbed).

#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "select/detail.hpp"
#include "select/objective.hpp"

namespace netsel::select {

namespace {
std::vector<topo::NodeId> all_eligible(const SelectionContext& ctx,
                                       const SelectionOptions& opt) {
  std::vector<topo::NodeId> out;
  auto elig = ctx.eligibility(opt);
  for (std::size_t i = 0; i < elig.size(); ++i)
    if (elig[i]) out.push_back(static_cast<topo::NodeId>(i));
  return out;
}

SelectionResult finish(const SelectionContext& ctx, const SelectionOptions& opt,
                       std::vector<topo::NodeId> nodes) {
  SelectionResult result;
  result.feasible = true;
  auto ev = evaluate_set(ctx, nodes, opt);
  result.nodes = std::move(nodes);
  result.min_cpu = ev.min_cpu;
  result.min_bw_fraction = ev.min_pair_bw_fraction;
  result.objective = ev.balanced;
  return result;
}
}  // namespace

SelectionResult select_random(const SelectionContext& ctx,
                              const SelectionOptions& opt, util::Rng& rng) {
  validate_options(ctx.snapshot(), opt);
  auto pool = all_eligible(ctx, opt);
  if (static_cast<int>(pool.size()) < opt.num_nodes) {
    SelectionResult r;
    r.note = "not enough eligible nodes";
    return r;
  }
  // Partial Fisher-Yates for the first m positions.
  for (int i = 0; i < opt.num_nodes; ++i) {
    auto j = static_cast<std::size_t>(rng.uniform_int(
        i, static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(opt.num_nodes));
  std::sort(pool.begin(), pool.end());
  return finish(ctx, opt, std::move(pool));
}

SelectionResult select_random(const remos::NetworkSnapshot& snap,
                              const SelectionOptions& opt, util::Rng& rng) {
  SelectionContext ctx(snap);
  return select_random(ctx, opt, rng);
}

SelectionResult select_static(const SelectionContext& ctx,
                              const SelectionOptions& opt) {
  validate_options(ctx.snapshot(), opt);
  auto pool = all_eligible(ctx, opt);
  if (static_cast<int>(pool.size()) < opt.num_nodes) {
    SelectionResult r;
    r.note = "not enough eligible nodes";
    return r;
  }
  pool.resize(static_cast<std::size_t>(opt.num_nodes));
  return finish(ctx, opt, std::move(pool));
}

SelectionResult select_static(const remos::NetworkSnapshot& snap,
                              const SelectionOptions& opt) {
  SelectionContext ctx(snap);
  return select_static(ctx, opt);
}

}  // namespace netsel::select
