#include "select/bnb.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "select/objective.hpp"
#include "select/obs.hpp"
#include "select/prune.hpp"

namespace netsel::select {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct BnbMetrics {
  obs::Counter& selections;
  obs::Counter& expanded;
  obs::Counter& pushed;
  obs::Counter& pruned_bound;
  obs::Counter& pruned_lex;
  obs::Counter& pool_dominated;
  obs::Counter& open_dropped;
  obs::Counter& certified;
  obs::Counter& budget_hits;
  obs::Histogram& latency;
};

BnbMetrics& bnb_metrics() {
  static BnbMetrics m{
      obs::Registry::global().counter("select.bnb.selections"),
      obs::Registry::global().counter("select.bnb.expanded"),
      obs::Registry::global().counter("select.bnb.pushed"),
      obs::Registry::global().counter("select.bnb.pruned_bound"),
      obs::Registry::global().counter("select.bnb.pruned_lex"),
      obs::Registry::global().counter("select.bnb.pool_dominated"),
      obs::Registry::global().counter("select.bnb.open_dropped"),
      obs::Registry::global().counter("select.bnb.certified"),
      obs::Registry::global().counter("select.bnb.budget_hits"),
      obs::Registry::global().histogram("select.latency_s.bnb",
                                        obs::exp_buckets(1e-6, 4.0, 12)),
  };
  return m;
}

/// An open-list entry: a partial selection (ascending pool indices), its
/// exact value so far, and the admissible bound its parent computed for it.
struct Open {
  double ub;
  double value;
  std::vector<std::uint16_t> prefix;
};

bool lex_less(const std::vector<std::uint16_t>& a,
              const std::vector<std::uint16_t>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

/// "a is explored before b": bound descending, then prefix lexicographic
/// ascending. Distinct prefixes make this a strict total order, so the pop
/// sequence is deterministic regardless of heap layout.
bool explores_before(const Open& a, const Open& b) {
  if (a.ub != b.ub) return a.ub > b.ub;
  return lex_less(a.prefix, b.prefix);
}

/// std::*_heap comparator ("less": max-heap keeps the next pop at front).
bool heap_less(const Open& a, const Open& b) { return explores_before(b, a); }

enum class Cut { Keep, Bound, Lex };

struct Search {
  const SelectionContext& ctx;
  const SelectionOptions& opt;
  Criterion crit;
  std::size_t m;

  std::vector<topo::NodeId> pool;  // candidates, ascending by id
  std::size_t P = 0;
  std::vector<double> node_term;  // per-index single-node objective term
  std::vector<double> pair_term;  // P*P pairwise term (+inf when unused)
  std::vector<char> pair_ok;      // P*P min_bw feasibility
  std::vector<double> best_pair;  // max feasible pair term per index

  // Incumbent. Floor mode (has_set false, best > -inf) carries a value
  // known to be achievable — a greedy warm start that routed through a
  // dominance-pruned candidate — without a pool-index identity: it prunes
  // strictly worse subtrees but never equal-value ones, so the search can
  // still recover the lexicographically-first optimal set.
  bool has_set = false;
  double best = -kInf;
  std::vector<std::uint16_t> best_set;
  std::vector<topo::NodeId> floor_nodes;

  std::vector<Open> open;
  double dropped_ub = -kInf;
  BnbStats stats;
  BnbStop stop = BnbStop::Proven;
  bool budget_stop = false;

  // expansion scratch, sized P once
  std::vector<double> ext_exact, ext_bound, kth;
  std::vector<char> ext_ok;

  Search(const SelectionContext& c, const SelectionOptions& o, Criterion cr)
      : ctx(c), opt(o), crit(cr), m(static_cast<std::size_t>(o.num_nodes)) {}

  double pt(std::size_t i, std::size_t j) const { return pair_term[i * P + j]; }
  bool pok(std::size_t i, std::size_t j) const {
    return pair_ok[i * P + j] != 0;
  }

  std::size_t effective_max_pool() const {
    // uint16_t pool indices: 65535 is a hard cap; 0 means "no user cap".
    const std::size_t hard = 65535;
    return opt.exact.max_pool == 0 ? hard
                                   : std::min(opt.exact.max_pool, hard);
  }

  void build_pool() {
    auto eligible = ctx.eligibility(opt);
    std::size_t eligible_count = 0;
    for (char e : eligible) eligible_count += e ? 1 : 0;
    std::vector<char> cand = eligible;
    if (opt.exact.prune_dominance && eligible_count >= m)
      cand = exact_dominated_candidate_mask(ctx.snapshot(), opt, eligible);
    pool.clear();
    for (std::size_t i = 0; i < cand.size(); ++i)
      if (cand[i]) pool.push_back(static_cast<topo::NodeId>(i));
    // Feasibility is judged on the full eligible set; the dominance mask
    // keeps >= m candidates per group, so pool.size() >= m iff
    // eligible_count >= m.
    stats.pool_dominated = eligible_count - pool.size();
    stats.pool_size = pool.size();
    P = pool.size();
  }

  void build_terms() {
    const auto& snap = ctx.snapshot();
    node_term.assign(P, kInf);
    pair_term.assign(P * P, kInf);
    pair_ok.assign(P * P, 1);
    best_pair.assign(P, -kInf);
    std::vector<double> cpu(P);
    for (std::size_t i = 0; i < P; ++i)
      cpu[i] = node_cpu(snap, pool[i], opt);
    switch (crit) {
      case Criterion::MaxCompute:
        for (std::size_t i = 0; i < P; ++i) node_term[i] = cpu[i];
        break;
      case Criterion::MaxBandwidth:
        break;  // node_term stays +inf (matches the brute force's m=1 value)
      case Criterion::Balanced:
        // Division by a positive priority is monotone, so distributing it
        // over the min is bit-exact vs the brute force's divide-after-min.
        for (std::size_t i = 0; i < P; ++i)
          node_term[i] = cpu[i] / opt.cpu_priority;
        break;
    }
    // Pairwise terms come from the *lower-id* endpoint's cached row — the
    // exact orientation brute_force_select uses — stored symmetrically.
    for (std::size_t i = 0; i < P; ++i) {
      const auto& row = ctx.pair_row(pool[i]);
      for (std::size_t j = i + 1; j < P; ++j) {
        const auto dst = pool[j];
        const auto v = static_cast<std::size_t>(dst);
        double abs = -1.0;
        double frac = -1.0;
        if (row.reached[v]) {
          abs = row.bottleneck[v];
          frac = SelectionContext::row_fraction(row, dst, opt);
        }
        const bool ok = opt.min_bw_bps <= 0.0 || abs >= opt.min_bw_bps;
        double term = kInf;
        if (crit == Criterion::MaxBandwidth) term = abs;
        if (crit == Criterion::Balanced) term = frac / opt.bw_priority;
        pair_term[i * P + j] = term;
        pair_term[j * P + i] = term;
        pair_ok[i * P + j] = ok ? 1 : 0;
        pair_ok[j * P + i] = ok ? 1 : 0;
        if (ok) {
          best_pair[i] = std::max(best_pair[i], term);
          best_pair[j] = std::max(best_pair[j], term);
        }
      }
    }
  }

  void warm_start() {
    SelectionResult g;
    switch (crit) {
      case Criterion::MaxCompute: g = select_max_compute(ctx, opt); break;
      case Criterion::MaxBandwidth: g = select_max_bandwidth(ctx, opt); break;
      case Criterion::Balanced: g = select_balanced(ctx, opt); break;
    }
    if (!g.feasible || g.nodes.size() != m) return;
    std::vector<topo::NodeId> nodes = g.nodes;
    std::sort(nodes.begin(), nodes.end());
    // Score the greedy set on the exact scale; a greedy answer can violate
    // the *pairwise* min_bw on cyclic graphs (its guarantee is
    // component-level), in which case it seeds nothing.
    const double v = exact_set_value(ctx, opt, crit, nodes);
    if (v == -kInf) return;
    stats.warm_started = true;
    std::vector<std::uint16_t> idxs;
    idxs.reserve(m);
    bool all_in_pool = true;
    for (topo::NodeId n : nodes) {
      auto it = std::lower_bound(pool.begin(), pool.end(), n);
      if (it == pool.end() || *it != n) {
        all_in_pool = false;
        break;
      }
      idxs.push_back(
          static_cast<std::uint16_t>(std::distance(pool.begin(), it)));
    }
    best = v;
    if (all_in_pool) {
      has_set = true;
      best_set = std::move(idxs);
    } else {
      // Dominance pruning dropped a member: the swap argument guarantees an
      // in-pool set of value >= v exists, so v is a sound floor and the
      // greedy ids remain a valid degraded answer.
      floor_nodes = std::move(nodes);
    }
  }

  void accept(double value, std::vector<std::uint16_t>&& set) {
    const bool better =
        value > best ||
        (value == best && value > -kInf &&
         (!has_set || lex_less(set, best_set)));
    if (!better) return;
    best = value;
    best_set = std::move(set);
    has_set = true;
  }

  /// Could prefix (or prefix+r when r >= 0) still complete into a set
  /// lexicographically smaller than best_set? Conservative (true) when the
  /// compared positions are all equal and slots remain open.
  bool could_lex_improve(const std::vector<std::uint16_t>& prefix,
                         int r) const {
    std::size_t len = prefix.size() + (r >= 0 ? 1 : 0);
    if (len > m) len = m;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint16_t p = i < prefix.size()
                                  ? prefix[i]
                                  : static_cast<std::uint16_t>(r);
      if (p < best_set[i]) return true;
      if (p > best_set[i]) return false;
    }
    return len < m;
  }

  Cut classify(double ub, const std::vector<std::uint16_t>& prefix,
               int r) const {
    if (best == -kInf) return Cut::Keep;
    if (ub < best) return Cut::Bound;
    if (ub > best) return Cut::Keep;
    if (!has_set) return Cut::Keep;  // floor mode: ties must survive
    return could_lex_improve(prefix, r) ? Cut::Keep : Cut::Lex;
  }

  void note_cut(Cut c) {
    if (c == Cut::Bound) ++stats.pruned_bound;
    if (c == Cut::Lex) ++stats.pruned_lex;
  }

  void expand(const Open& node) {
    const auto& prefix = node.prefix;
    const std::size_t d = prefix.size();
    const std::size_t t = m - d;
    const std::size_t start = d == 0 ? 0 : prefix.back() + std::size_t{1};
    const double v = node.value;

    for (std::size_t r = start; r < P; ++r) {
      bool ok = true;
      double e = node_term[r];
      for (std::uint16_t p : prefix) {
        if (!pok(p, r)) {
          ok = false;
          break;
        }
        e = std::min(e, pt(p, r));
      }
      ext_ok[r] = ok ? 1 : 0;
      ext_exact[r] = e;
    }

    if (t == 1) {
      // Complete children: score exactly, no push.
      for (std::size_t r = start; r < P; ++r) {
        if (!ext_ok[r]) continue;
        const double value = std::min(v, ext_exact[r]);
        if (value < best) continue;
        std::vector<std::uint16_t> set(prefix);
        set.push_back(static_cast<std::uint16_t>(r));
        accept(value, std::move(set));
      }
      return;
    }

    // t >= 2: each extension r will pair with >= 1 future member, so its
    // contribution is bounded by its best feasible pair term anywhere (a
    // superset of its actual future partners — admissible).
    for (std::size_t r = start; r < P; ++r)
      ext_bound[r] =
          ext_ok[r] ? std::min(ext_exact[r], best_pair[r]) : -kInf;

    // kth[r] = (t-1)-th largest ext_bound among feasible q > r: bound on
    // the remaining t-1 slots of any completion through r. Backward pass
    // with a size-(t-1) min-heap; -inf when too few candidates remain.
    std::priority_queue<double, std::vector<double>, std::greater<double>> h;
    for (std::size_t r = P; r-- > start;) {
      kth[r] = h.size() == t - 1 ? h.top() : -kInf;
      if (ext_ok[r]) {
        if (h.size() < t - 1) {
          h.push(ext_bound[r]);
        } else if (ext_bound[r] > h.top()) {
          h.pop();
          h.push(ext_bound[r]);
        }
      }
    }

    for (std::size_t r = start; r < P; ++r) {
      if (!ext_ok[r]) continue;
      const double ub = std::min(std::min(v, ext_bound[r]), kth[r]);
      if (ub == -kInf) continue;  // no feasible completion through r
      const Cut c = classify(ub, prefix, static_cast<int>(r));
      if (c != Cut::Keep) {
        note_cut(c);
        continue;
      }
      Open child;
      child.ub = ub;
      child.value = std::min(v, ext_exact[r]);
      child.prefix = prefix;
      child.prefix.push_back(static_cast<std::uint16_t>(r));
      open.push_back(std::move(child));
      std::push_heap(open.begin(), open.end(), heap_less);
      ++stats.pushed;
    }
  }

  void compact() {
    // Free pass first: entries the incumbent already dominates can go
    // without weakening the certificate.
    auto mid = std::remove_if(open.begin(), open.end(), [&](const Open& o) {
      const Cut c = classify(o.ub, o.prefix, -1);
      if (c != Cut::Keep) {
        note_cut(c);
        return true;
      }
      return false;
    });
    open.erase(mid, open.end());
    const std::size_t cap = std::max<std::size_t>(opt.exact.max_open, 2);
    if (open.size() > cap) {
      // Keep the best half under the exploration order (strict total order
      // -> deterministic) and fold the evicted bounds into dropped_ub; the
      // run then certifies only a bound, not exactness.
      const std::size_t keep = std::max<std::size_t>(cap / 2, 1);
      std::nth_element(open.begin(),
                       open.begin() + static_cast<std::ptrdiff_t>(keep),
                       open.end(), explores_before);
      for (std::size_t i = keep; i < open.size(); ++i)
        dropped_ub = std::max(dropped_ub, open[i].ub);
      stats.open_dropped += open.size() - keep;
      open.resize(keep);
    }
    std::make_heap(open.begin(), open.end(), heap_less);
  }

  double frontier_bound() const {
    double b = std::max(best, dropped_ub);
    if (!open.empty()) b = std::max(b, open.front().ub);
    return b;
  }

  void run() {
    open.push_back(Open{kInf, kInf, {}});
    ext_exact.assign(P, 0.0);
    ext_bound.assign(P, 0.0);
    kth.assign(P, 0.0);
    ext_ok.assign(P, 0);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t pops = 0;
    while (!open.empty()) {
      if (opt.exact.node_budget != 0 &&
          stats.expanded >= opt.exact.node_budget) {
        stop = BnbStop::NodeBudget;
        budget_stop = true;
        break;
      }
      if (opt.exact.time_budget_s > 0.0 && (++pops & 1023) == 0) {
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (dt.count() >= opt.exact.time_budget_s) {
          stop = BnbStop::TimeBudget;
          budget_stop = true;
          break;
        }
      }
      if (opt.exact.gap_tolerance > 0.0 && best > -kInf &&
          (has_set || !floor_nodes.empty())) {
        const double bound = frontier_bound();
        if (bound > best && bound < kInf && bound > 0.0 &&
            best >= (1.0 - opt.exact.gap_tolerance) * bound) {
          stop = BnbStop::GapReached;
          budget_stop = true;
          break;
        }
      }
      std::pop_heap(open.begin(), open.end(), heap_less);
      Open node = std::move(open.back());
      open.pop_back();
      // Re-check against the current incumbent: the bound was computed at
      // push time and may have been overtaken since.
      const Cut c = classify(node.ub, node.prefix, -1);
      if (c != Cut::Keep) {
        note_cut(c);
        continue;
      }
      ++stats.expanded;
      expand(node);
      if (open.size() > opt.exact.max_open) compact();
    }
  }

  BnbResult finalize() const {
    BnbResult r;
    r.stop = stop;
    r.stats = stats;
    const bool pool_limited = stop == BnbStop::PoolLimit;
    r.certified = !budget_stop && !pool_limited && open.empty() &&
                  dropped_ub == -kInf;
    if (has_set) {
      r.feasible = true;
      r.objective = best;
      r.nodes.reserve(m);
      for (std::uint16_t i : best_set) r.nodes.push_back(pool[i]);
    } else if (!floor_nodes.empty() && best > -kInf) {
      r.feasible = true;
      r.objective = best;
      r.nodes = floor_nodes;
    }
    if (pool_limited)
      r.upper_bound = kInf;
    else if (r.certified)
      r.upper_bound = r.feasible ? r.objective : -kInf;
    else
      r.upper_bound = frontier_bound();
    return r;
  }
};

}  // namespace

const char* bnb_stop_name(BnbStop s) {
  switch (s) {
    case BnbStop::Proven: return "proven";
    case BnbStop::GapReached: return "gap_reached";
    case BnbStop::NodeBudget: return "node_budget";
    case BnbStop::TimeBudget: return "time_budget";
    case BnbStop::PoolLimit: return "pool_limit";
  }
  return "unknown";
}

double exact_set_value(const SelectionContext& ctx, const SelectionOptions& opt,
                       Criterion c, const std::vector<topo::NodeId>& nodes) {
  if (nodes.empty()) return -kInf;
  std::vector<topo::NodeId> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  const auto& snap = ctx.snapshot();
  double min_cpu = kInf;
  double min_abs = kInf;
  double min_frac = kInf;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    min_cpu = std::min(min_cpu, node_cpu(snap, sorted[i], opt));
    const auto& row = ctx.pair_row(sorted[i]);
    for (std::size_t j = i + 1; j < sorted.size(); ++j) {
      const auto dst = sorted[j];
      const auto v = static_cast<std::size_t>(dst);
      if (!row.reached[v]) {
        min_abs = std::min(min_abs, -1.0);
        min_frac = std::min(min_frac, -1.0);
        continue;
      }
      min_abs = std::min(min_abs, row.bottleneck[v]);
      min_frac =
          std::min(min_frac, SelectionContext::row_fraction(row, dst, opt));
    }
  }
  if (opt.min_bw_bps > 0.0 && min_abs < opt.min_bw_bps) return -kInf;
  switch (c) {
    case Criterion::MaxCompute: return min_cpu;
    case Criterion::MaxBandwidth: return min_abs;
    case Criterion::Balanced:
      return std::min(min_cpu / opt.cpu_priority, min_frac / opt.bw_priority);
  }
  return -kInf;
}

BnbResult BranchAndBoundSelector::select(Criterion c,
                                         const SelectionOptions& opt) const {
  auto& mm = bnb_metrics();
  mm.selections.inc();
  obs::ScopedTimer timer(mm.latency);
  const auto& ctx = *ctx_;
  validate_options(ctx.snapshot(), opt);

  Search s(ctx, opt, c);
  s.build_pool();
  BnbResult result;
  if (s.P < s.m) {
    // Fewer eligible nodes than slots: infeasible, same as the oracle.
    result.certified = true;
    result.upper_bound = -kInf;
    result.stats = s.stats;
  } else if (s.P > s.effective_max_pool()) {
    s.stop = BnbStop::PoolLimit;
    s.budget_stop = true;
    if (opt.exact.warm_start) s.warm_start();
    // Force floor mode: without the matrices there is no index-space
    // incumbent to hand back, only the greedy answer and an unbounded gap.
    if (s.has_set) {
      s.floor_nodes.clear();
      for (std::uint16_t i : s.best_set) s.floor_nodes.push_back(s.pool[i]);
      s.best_set.clear();
      s.has_set = false;
    }
    result = s.finalize();
  } else {
    s.build_terms();
    if (opt.exact.warm_start) s.warm_start();
    s.run();
    result = s.finalize();
  }
  mm.expanded.inc(result.stats.expanded);
  mm.pushed.inc(result.stats.pushed);
  mm.pruned_bound.inc(result.stats.pruned_bound);
  mm.pruned_lex.inc(result.stats.pruned_lex);
  mm.pool_dominated.inc(result.stats.pool_dominated);
  mm.open_dropped.inc(result.stats.open_dropped);
  if (result.certified) mm.certified.inc();
  if (result.stop != BnbStop::Proven) mm.budget_hits.inc();
  return result;
}

BnbResult branch_and_bound_select(const SelectionContext& ctx,
                                  const SelectionOptions& opt, Criterion c) {
  return BranchAndBoundSelector(ctx).select(c, opt);
}

BnbResult branch_and_bound_select(const remos::NetworkSnapshot& snap,
                                  const SelectionOptions& opt, Criterion c) {
  SelectionContext ctx(snap);
  return branch_and_bound_select(ctx, opt, c);
}

SelectionResult select_exact(const SelectionContext& ctx,
                             const SelectionOptions& opt, Criterion c) {
  detail::selections_counter().inc();
  const BnbResult b = BranchAndBoundSelector(ctx).select(c, opt);
  SelectionResult r;
  r.feasible = b.feasible;
  r.objective_bound = b.upper_bound;
  r.exact_certified = b.certified;
  r.iterations = static_cast<int>(std::min<std::uint64_t>(
      b.stats.expanded, std::numeric_limits<int>::max()));
  if (b.feasible) {
    r.nodes = b.nodes;
    r.objective = b.objective;
    const SetEvaluation ev = evaluate_set(ctx, r.nodes, opt);
    r.min_cpu = ev.min_cpu;
    r.min_bw_fraction = ev.min_pair_bw_fraction;
  }
  if (b.certified)
    r.note = b.feasible ? "exact: certified optimal" : "exact: proven infeasible";
  else
    r.note = std::string("exact: ") + bnb_stop_name(b.stop) +
             ", incumbent with sound bound";
  return r;
}

}  // namespace netsel::select
