#pragma once
// Exact branch-and-bound node selection (ROADMAP item 3).
//
// The greedy selectors (select/algorithms.hpp) optimise proxies of the true
// pairwise objective: Fig. 2's deletion loop maximises a component-level
// bandwidth threshold, Fig. 3 a component-level balanced value. The only
// committed exact oracle, select/brute_force.cpp, enumerates C(n, m)
// subsets and dies around n = 32, m = 8. This module closes the gap with a
// best-first branch-and-bound search over partial node sets that returns
// the *same bits* as the brute force wherever the brute force can run, and
// a certified upper bound on the optimum everywhere else.
//
// Semantics replicated exactly (see brute_force.cpp):
//   - pool = eligible nodes ascending by id; subsets enumerated implicitly
//     in that order;
//   - subset value: MaxCompute = min cpu, MaxBandwidth = min pairwise
//     bottleneck (cached rows, -1 sentinel for unreached pairs, +inf for
//     m = 1), Balanced = min(min cpu / cpu_priority, min frac /
//     bw_priority);
//   - min_bw_bps excludes any subset containing a pair whose absolute
//     bottleneck is below it;
//   - ties broken toward the lexicographically first subset (the brute
//     force's strict `value > best` update over lexicographic enumeration).
//
// Search: partial sets are prefixes (ascending pool indices). A popped
// prefix P with t open slots is expanded over extensions r > max(P); each
// child's priority is an admissible bound computed from the cached
// bottleneck rows: min over (exact value of P, the extension's exact terms
// against P, its best possible pair term against any future partner, and
// the (t-1)-th best such bound among the remaining indices). The open list
// is ordered by (bound desc, prefix lex asc) — a strict total order, so
// pops are deterministic at any thread count. Equal-bound subtrees survive
// only while they could still produce a lexicographically smaller optimum,
// which preserves the brute-force tie-break without exploring tie plateaus
// once the lex-first incumbent is in hand.
//
// Budgets degrade to a *certified bound*, never to failure: when
// node/time/open-list budgets trip, the incumbent is returned together
// with upper_bound = max(incumbent, best open bound, best evicted bound),
// which is sound for the true optimum by admissibility. `certified` is set
// only when the search drained the tree with nothing evicted — then
// objective IS the brute-force optimum, bit-exactly, nodes and all.

#include <cstdint>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/options.hpp"
#include "topo/graph.hpp"

namespace netsel::select {

class SelectionContext;

/// Why the search stopped.
enum class BnbStop {
  Proven,      ///< open list drained: the incumbent is optimal (or the
               ///< instance is infeasible)
  GapReached,  ///< incumbent within gap_tolerance of the running bound
  NodeBudget,  ///< ExactOptions::node_budget expansions reached
  TimeBudget,  ///< ExactOptions::time_budget_s exceeded
  PoolLimit,   ///< pool > ExactOptions::max_pool: greedy incumbent only
};

const char* bnb_stop_name(BnbStop s);

struct BnbStats {
  std::uint64_t expanded = 0;       ///< prefixes popped and expanded
  std::uint64_t pushed = 0;         ///< children pushed onto the open list
  std::uint64_t pruned_bound = 0;   ///< children cut: bound below incumbent
  std::uint64_t pruned_lex = 0;     ///< equal-bound children cut by tie rule
  std::uint64_t pool_dominated = 0; ///< candidates dropped by dominance
  std::uint64_t open_dropped = 0;   ///< frontier entries evicted (max_open)
  std::size_t pool_size = 0;        ///< candidates after dominance pruning
  bool warm_started = false;        ///< greedy incumbent seeded the search
};

struct BnbResult {
  bool feasible = false;
  /// Ascending node ids; when certified, bit-identical to
  /// brute_force_select's answer.
  std::vector<topo::NodeId> nodes;
  /// Incumbent value under brute-force semantics (0 when infeasible).
  double objective = 0.0;
  /// Sound upper bound on the optimal objective. Equals `objective` when
  /// certified; -inf when proven infeasible; +inf when the pool limit
  /// prevented any bounding work.
  double upper_bound = 0.0;
  /// True iff `objective` (and `nodes`) equal the brute-force optimum.
  bool certified = false;
  BnbStop stop = BnbStop::Proven;
  BnbStats stats;
};

/// Criterion value of an m-subset `nodes` (ascending ids, all eligible)
/// under brute-force semantics: -inf when the set violates min_bw_bps,
/// otherwise the value brute_force_select would score it with. Used by the
/// gap benches to score greedy answers on the exact scale.
double exact_set_value(const SelectionContext& ctx, const SelectionOptions& opt,
                       Criterion c, const std::vector<topo::NodeId>& nodes);

/// Best-first exact selector; reads the budgets from `opt.exact` (the
/// `enabled` flag is ignored here — calling is opting in).
class BranchAndBoundSelector {
 public:
  explicit BranchAndBoundSelector(const SelectionContext& ctx) : ctx_(&ctx) {}
  BnbResult select(Criterion c, const SelectionOptions& opt) const;

 private:
  const SelectionContext* ctx_;
};

/// Convenience wrappers mirroring the greedy entry points.
BnbResult branch_and_bound_select(const SelectionContext& ctx,
                                  const SelectionOptions& opt, Criterion c);
BnbResult branch_and_bound_select(const remos::NetworkSnapshot& snap,
                                  const SelectionOptions& opt, Criterion c);

/// select_nodes adapter: runs the B&B and folds the outcome into a
/// SelectionResult (objective_bound / exact_certified populated, min_cpu
/// and min_bw_fraction from evaluate_set for report parity with the greedy
/// paths). Used by the dispatch when opt.exact.enabled.
SelectionResult select_exact(const SelectionContext& ctx,
                             const SelectionOptions& opt, Criterion c);

}  // namespace netsel::select
