#include "select/brute_force.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "select/detail.hpp"

namespace netsel::select {

namespace {

/// Bottleneck available bandwidth from src to every node along BFS paths
/// (same deterministic paths as evaluate_set), plus the fractional variant.
struct BottleneckRow {
  std::vector<double> abs_bw;
  std::vector<double> frac_bw;
};

BottleneckRow bottlenecks_from(const remos::NetworkSnapshot& snap,
                               const SelectionOptions& opt, topo::NodeId src) {
  const auto& g = snap.graph();
  BottleneckRow row;
  row.abs_bw.assign(g.node_count(), -1.0);
  row.frac_bw.assign(g.node_count(), -1.0);
  row.abs_bw[static_cast<std::size_t>(src)] =
      std::numeric_limits<double>::infinity();
  row.frac_bw[static_cast<std::size_t>(src)] =
      std::numeric_limits<double>::infinity();
  std::queue<topo::NodeId> q;
  q.push(src);
  while (!q.empty()) {
    topo::NodeId u = q.front();
    q.pop();
    for (topo::LinkId l : g.links_of(u)) {
      topo::NodeId v = g.other_end(l, u);
      if (row.abs_bw[static_cast<std::size_t>(v)] >= 0.0) continue;
      row.abs_bw[static_cast<std::size_t>(v)] =
          std::min(row.abs_bw[static_cast<std::size_t>(u)], snap.bw(l));
      row.frac_bw[static_cast<std::size_t>(v)] =
          std::min(row.frac_bw[static_cast<std::size_t>(u)],
                   link_fraction(snap, l, opt));
      q.push(v);
    }
  }
  return row;
}

std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // Overflow-safe enough for the test-scale inputs guarded by max_subsets.
    r = r * (n - k + i) / i;
  }
  return r;
}

}  // namespace

BruteForceResult brute_force_select(const remos::NetworkSnapshot& snap,
                                    const SelectionOptions& opt, Criterion c,
                                    std::uint64_t max_subsets) {
  validate_options(snap, opt);
  const auto m = static_cast<std::size_t>(opt.num_nodes);

  std::vector<topo::NodeId> pool;
  for (std::size_t i = 0; i < snap.graph().node_count(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (node_eligible(snap, n, opt)) pool.push_back(n);
  }

  BruteForceResult result;
  if (pool.size() < m) return result;
  if (choose(pool.size(), m) > max_subsets)
    throw std::invalid_argument("brute_force_select: too many subsets");

  // Pairwise bottleneck matrices over the pool.
  std::vector<BottleneckRow> rows;
  rows.reserve(pool.size());
  for (topo::NodeId n : pool) rows.push_back(bottlenecks_from(snap, opt, n));
  std::vector<double> cpu(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    cpu[i] = node_cpu(snap, pool[i], opt);

  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) idx[i] = i;

  double best = -std::numeric_limits<double>::infinity();
  while (true) {
    ++result.subsets_examined;
    double min_cpu = std::numeric_limits<double>::infinity();
    double min_abs = std::numeric_limits<double>::infinity();
    double min_frac = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      min_cpu = std::min(min_cpu, cpu[idx[i]]);
      for (std::size_t j = i + 1; j < m; ++j) {
        auto v = static_cast<std::size_t>(pool[idx[j]]);
        min_abs = std::min(min_abs, rows[idx[i]].abs_bw[v]);
        min_frac = std::min(min_frac, rows[idx[i]].frac_bw[v]);
      }
    }
    bool ok = opt.min_bw_bps <= 0.0 || min_abs >= opt.min_bw_bps;
    if (ok) {
      double value = 0.0;
      switch (c) {
        case Criterion::MaxCompute: value = min_cpu; break;
        case Criterion::MaxBandwidth: value = min_abs; break;
        case Criterion::Balanced:
          value = std::min(min_cpu / opt.cpu_priority,
                           min_frac / opt.bw_priority);
          break;
      }
      if (value > best) {
        best = value;
        result.feasible = true;
        result.objective = value;
        result.nodes.clear();
        for (std::size_t i = 0; i < m; ++i) result.nodes.push_back(pool[idx[i]]);
      }
    }
    // Next combination in lexicographic order.
    std::size_t i = m;
    while (i > 0) {
      --i;
      if (idx[i] != i + pool.size() - m) {
        ++idx[i];
        for (std::size_t j = i + 1; j < m; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return result;
    }
    if (m == 0) return result;
  }
}

}  // namespace netsel::select
