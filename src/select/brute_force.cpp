#include "select/brute_force.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "select/context.hpp"
#include "select/detail.hpp"
#include "topo/connectivity.hpp"

namespace netsel::select {

namespace {

std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // Overflow-safe enough for the test-scale inputs guarded by max_subsets.
    r = r * (n - k + i) / i;
  }
  return r;
}

}  // namespace

BruteForceResult brute_force_select(const SelectionContext& ctx,
                                    const SelectionOptions& opt, Criterion c,
                                    std::uint64_t max_subsets) {
  const auto& snap = ctx.snapshot();
  validate_options(snap, opt);
  const auto m = static_cast<std::size_t>(opt.num_nodes);

  std::vector<topo::NodeId> pool;
  for (std::size_t i = 0; i < snap.graph().node_count(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (node_eligible(snap, n, opt)) pool.push_back(n);
  }

  BruteForceResult result;
  if (pool.size() < m) return result;
  if (choose(pool.size(), m) > max_subsets)
    throw std::invalid_argument("brute_force_select: too many subsets");

  // Pairwise bottleneck matrices over the pool — the context's per-source
  // rows follow the same deterministic BFS paths the old per-call BFS did.
  std::vector<const topo::BottleneckRow*> rows;
  rows.reserve(pool.size());
  for (topo::NodeId n : pool) rows.push_back(&ctx.pair_row(n));
  std::vector<double> cpu(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    cpu[i] = node_cpu(snap, pool[i], opt);

  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) idx[i] = i;

  double best = -std::numeric_limits<double>::infinity();
  while (true) {
    ++result.subsets_examined;
    double min_cpu = std::numeric_limits<double>::infinity();
    double min_abs = std::numeric_limits<double>::infinity();
    double min_frac = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      min_cpu = std::min(min_cpu, cpu[idx[i]]);
      for (std::size_t j = i + 1; j < m; ++j) {
        const auto& row = *rows[idx[i]];
        const auto dst = pool[idx[j]];
        const auto v = static_cast<std::size_t>(dst);
        if (!row.reached[v]) {
          // Disconnected pair: the historical per-call BFS left its -1.0
          // init sentinel in place, ranking disconnected subsets below any
          // connected one; keep that exact ordering.
          min_abs = std::min(min_abs, -1.0);
          min_frac = std::min(min_frac, -1.0);
          continue;
        }
        min_abs = std::min(min_abs, row.bottleneck[v]);
        min_frac =
            std::min(min_frac, SelectionContext::row_fraction(row, dst, opt));
      }
    }
    bool ok = opt.min_bw_bps <= 0.0 || min_abs >= opt.min_bw_bps;
    if (ok) {
      double value = 0.0;
      switch (c) {
        case Criterion::MaxCompute: value = min_cpu; break;
        case Criterion::MaxBandwidth: value = min_abs; break;
        case Criterion::Balanced:
          value = std::min(min_cpu / opt.cpu_priority,
                           min_frac / opt.bw_priority);
          break;
      }
      if (value > best) {
        best = value;
        result.feasible = true;
        result.objective = value;
        result.nodes.clear();
        for (std::size_t i = 0; i < m; ++i) result.nodes.push_back(pool[idx[i]]);
      }
    }
    // Next combination in lexicographic order.
    std::size_t i = m;
    while (i > 0) {
      --i;
      if (idx[i] != i + pool.size() - m) {
        ++idx[i];
        for (std::size_t j = i + 1; j < m; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return result;
    }
    if (m == 0) return result;
  }
}

BruteForceResult brute_force_select(const remos::NetworkSnapshot& snap,
                                    const SelectionOptions& opt, Criterion c,
                                    std::uint64_t max_subsets) {
  SelectionContext ctx(snap);
  return brute_force_select(ctx, opt, c, max_subsets);
}

}  // namespace netsel::select
