#pragma once
// Exact reference optimiser: enumerate every m-subset of eligible compute
// nodes and maximise the requested criterion, measured by the *true*
// pairwise-path objective (evaluate_set). Exponential — for tests and
// small-graph ablations only; this is the yardstick that certifies the
// Fig. 2 algorithm optimal and quantifies the Fig. 3 greedy gap.

#include <cstdint>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/objective.hpp"
#include "select/options.hpp"

namespace netsel::select {

class SelectionContext;

struct BruteForceResult {
  bool feasible = false;
  std::vector<topo::NodeId> nodes;
  /// Criterion value of the best subset: min cpu for MaxCompute, min
  /// pairwise bandwidth (bits/s) for MaxBandwidth, the balanced objective
  /// (on pairwise-path fractions) for Balanced.
  double objective = 0.0;
  std::uint64_t subsets_examined = 0;
};

/// Throws std::invalid_argument when the enumeration would exceed
/// `max_subsets` (guard against accidental exponential blowups in tests).
BruteForceResult brute_force_select(const remos::NetworkSnapshot& snap,
                                    const SelectionOptions& opt, Criterion c,
                                    std::uint64_t max_subsets = 2'000'000);

/// Context form: the pairwise bottleneck matrix comes from the context's
/// cached per-source rows (shared with evaluate_set and the algorithms).
BruteForceResult brute_force_select(const SelectionContext& ctx,
                                    const SelectionOptions& opt, Criterion c,
                                    std::uint64_t max_subsets = 2'000'000);

}  // namespace netsel::select
