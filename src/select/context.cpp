#include "select/context.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace netsel::select {

namespace {
// Cache visibility for the shared-context layer: every pair_row() lookup is
// a hit (slot already built) or a miss (BFS bottleneck row built now);
// epoch invalidations count *full* cache drops (journal trimmed past the
// context's epoch); the delta.* / rows.* families count the fine-grained
// path. Purely observational — one branch each while the registry is
// disabled.
obs::Counter& row_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.row_hits");
  return c;
}
obs::Counter& row_misses() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.row_misses");
  return c;
}
obs::Counter& invalidations() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.invalidations");
  return c;
}
obs::Counter& order_builds() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.order_builds");
  return c;
}
obs::Counter& deltas_applied() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.delta.applied");
  return c;
}
obs::Counter& rows_invalidated_partial() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.rows.invalidated.partial");
  return c;
}
obs::Counter& rows_invalidated_full() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.rows.invalidated.full");
  return c;
}
obs::Counter& rows_repaired() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.rows.repaired");
  return c;
}
obs::Histogram& csr_patch_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "select.ctx.csr_patch_s", obs::exp_buckets(1e-7, 4.0, 12));
  return h;
}
// Batched-kernel visibility (warm_rows): level-synchronous passes and
// frontier-mask words sweep-summed across batches, plus how many rows the
// word-parallel kernel served vs. rebuilt scalar after a discovery-order
// rejection.
obs::Counter& batch_passes() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.batch.passes");
  return c;
}
obs::Counter& batch_frontier_words() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.batch.frontier_words");
  return c;
}
obs::Counter& rows_batched() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.rows.batched");
  return c;
}
obs::Counter& rows_scalar_fallback() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.rows.scalar_fallback");
  return c;
}
obs::Gauge& arena_bytes_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("select.ctx.arena_bytes");
  return g;
}
/// Minimum per-chunk work for the pool-parallel scoring fills: below this
/// the submit overhead beats the loop.
constexpr std::size_t kScoreChunk = 4096;
}  // namespace

SelectionContext::SelectionContext(const remos::NetworkSnapshot& snap)
    : snap_(&snap), epoch_(snap.epoch()) {
  // Touch every context metric so all are registered (and exported,
  // possibly at 0) as soon as any context exists — a run with no cache hits
  // still reports select.ctx.row_hits: 0 rather than omitting it.
  row_hits();
  row_misses();
  invalidations();
  order_builds();
  deltas_applied();
  rows_invalidated_partial();
  rows_invalidated_full();
  rows_repaired();
  csr_patch_hist();
  batch_passes();
  batch_frontier_words();
  rows_batched();
  rows_scalar_fallback();
  arena_bytes_gauge();
  // Owned by prune.cpp, but registered here too: the candidate-count
  // short-circuit can mean no selection ever reaches the pruner, and the
  // exported document must still carry the counter at 0.
  obs::Registry::global().counter("select.prune.dropped");
}

// ---------------------------------------------------------------------------
// Delta consumption
// ---------------------------------------------------------------------------

void SelectionContext::revalidate() const {
  if (epoch_ == snap_->epoch()) return;
  pending_.clear();
  if (snap_->deltas_since(epoch_, pending_)) {
    deltas_applied().inc(pending_.size());
    for (const remos::Delta& d : pending_) apply_delta(d);
  } else {
    // The journal no longer covers our epoch: fall back to the historical
    // drop-everything behaviour.
    invalidate_all();
  }
  epoch_ = snap_->epoch();
}

void SelectionContext::invalidate_all() const {
  invalidations().inc();
  if (std::size_t built = built_row_count()) rows_invalidated_full().inc(built);
  bw_.clear();
  bwfactor_.clear();
  by_bw_.clear();
  by_bwfactor_.clear();
  bw_valid_ = bwfactor_valid_ = by_bw_valid_ = by_bwfactor_valid_ = false;
  base_comps_.reset();
  rows_.clear();
  // The unseen deltas may have been structural, so the graph-shaped caches
  // go too.
  csr_.reset();
  flat_.reset();
  arena_bytes_gauge().set(0.0);
  acyclic_ = -1;
}

void SelectionContext::apply_delta(const remos::Delta& d) const {
  switch (d.kind) {
    case remos::DeltaKind::NodeLoad:
    case remos::DeltaKind::NodeMemory:
      // Eligibility and cpu rankings are per-call state; nothing cached
      // here depends on node sensors.
      return;
    case remos::DeltaKind::LinkBandwidth: return apply_link_bandwidth(d.link);
    case remos::DeltaKind::NodeAdded: return apply_node_added(d.node);
    case remos::DeltaKind::NodeRemoved: return apply_node_removed(d.node);
    case remos::DeltaKind::LinkAdded: return apply_link_added(d.link);
    case remos::DeltaKind::LinkRemoved: return apply_link_removed(d.link);
  }
}

namespace {

// (key, id) is a strict total order over links (ids are distinct), and it
// is exactly the order stable_sort-ascending-by-key produces, so a binary
// erase + sorted reinsert leaves the order identical to a rebuilt sort.
bool order_erase(std::vector<topo::LinkId>& order,
                 const std::vector<double>& key, topo::LinkId l) {
  auto less = [&](topo::LinkId a, topo::LinkId b) {
    const double ka = key[static_cast<std::size_t>(a)];
    const double kb = key[static_cast<std::size_t>(b)];
    if (ka != kb) return ka < kb;
    return a < b;
  };
  auto it = std::lower_bound(order.begin(), order.end(), l, less);
  if (it == order.end() || *it != l)
    it = std::find(order.begin(), order.end(), l);  // defensive; never hit
  if (it == order.end()) return false;
  order.erase(it);
  return true;
}

void order_insert(std::vector<topo::LinkId>& order,
                  const std::vector<double>& key, topo::LinkId l) {
  auto less = [&](topo::LinkId a, topo::LinkId b) {
    const double ka = key[static_cast<std::size_t>(a)];
    const double kb = key[static_cast<std::size_t>(b)];
    if (ka != kb) return ka < kb;
    return a < b;
  };
  order.insert(std::lower_bound(order.begin(), order.end(), l, less), l);
}

}  // namespace

void SelectionContext::apply_link_bandwidth(topo::LinkId l) const {
  const auto il = static_cast<std::size_t>(l);
  bool changed = false;
  // Patch the cached weight arrays to the snapshot's *current* value (not
  // the delta's recorded one): repeated deltas for the same link converge,
  // and a later repair always sees final weights. Erase with the old key
  // before writing the new one — the deletion orders are sorted by the
  // cached key.
  if (bw_valid_ && il < bw_.size()) {
    const double nb = snap_->bw(l);
    if (bw_[il] != nb) {
      if (by_bw_valid_) order_erase(by_bw_, bw_, l);
      bw_[il] = nb;
      if (by_bw_valid_) order_insert(by_bw_, bw_, l);
      changed = true;
    }
  }
  if (bwfactor_valid_ && il < bwfactor_.size()) {
    const double nf = snap_->bwfactor(l);
    if (bwfactor_[il] != nf) {
      if (by_bwfactor_valid_) order_erase(by_bwfactor_, bwfactor_, l);
      bwfactor_[il] = nf;
      if (by_bwfactor_valid_) order_insert(by_bwfactor_, bwfactor_, l);
      changed = true;
    }
  }
  if (!changed) return;
  // The arena mirrors the weight arrays: a bandwidth delta is a two-double
  // in-place patch, never a rebuild (the structure sections are untouched).
  if (flat_) {
    flat_->set_link_bw(l, snap_->bw(l));
    flat_->set_link_bwfactor(l, snap_->bwfactor(l));
  }
  // Rows whose BFS tree does not use l do not depend on it at all; rows
  // whose tree does are repaired in place (O(V) value replay, no BFS).
  for (auto& e : rows_) {
    if (!e) continue;
    if (il < e->in_tree.size() && e->in_tree[il]) {
      repair_row_values(*e, l);
      rows_repaired().inc();
    }
  }
}

void SelectionContext::repair_row_values(RowEntry& e, topo::LinkId l) const {
  // The BFS tree is weight-independent, so only the values changed, and
  // only inside the subtree hanging below l: the unique node the tree
  // discovered via l, and its tree descendants. Nodes discovered before
  // that child cannot have l on their tree path (ancestors precede
  // descendants in BFS order), and siblings' paths avoid l entirely. Each
  // recomputation is the exact float operation the build performs, on a
  // parent value that is already final (parents are dequeued before their
  // children below), so the result is bit-identical to a from-scratch
  // rebuild. latency and reached are weight-independent.
  topo::BottleneckRow& row = e.row;
  const auto& g = graph();
  const topo::Link& ln = g.link(l);
  const topo::NodeId child =
      row.tree_link[static_cast<std::size_t>(ln.a)] == l ? ln.a : ln.b;
  if (!csr_) {
    // Defensive: no adjacency to walk (never expected while rows exist) —
    // replay the full recorded discovery order instead.
    for (std::size_t i = 1; i < row.order.size(); ++i) {
      const topo::NodeId v = row.order[i];
      const auto iv = static_cast<std::size_t>(v);
      const auto il = static_cast<std::size_t>(row.tree_link[iv]);
      const auto ip = static_cast<std::size_t>(g.other_end(row.tree_link[iv], v));
      row.bottleneck[iv] = std::min(row.bottleneck[ip], bw_[il]);
      if (!row.bottleneck2.empty())
        row.bottleneck2[iv] = std::min(row.bottleneck2[ip], bwfactor_[il]);
    }
    return;
  }
  const topo::CsrAdjacency& adj = *csr_;
  repair_queue_.clear();
  repair_queue_.push_back(child);
  for (std::size_t qi = 0; qi < repair_queue_.size(); ++qi) {
    const topo::NodeId v = repair_queue_[qi];
    const auto iv = static_cast<std::size_t>(v);
    const topo::LinkId pl = row.tree_link[iv];
    const auto ipl = static_cast<std::size_t>(pl);
    const auto ip = static_cast<std::size_t>(g.other_end(pl, v));
    row.bottleneck[iv] = std::min(row.bottleneck[ip], bw_[ipl]);
    if (!row.bottleneck2.empty())
      row.bottleneck2[iv] = std::min(row.bottleneck2[ip], bwfactor_[ipl]);
    for (auto k = adj.row_start[iv]; k < adj.row_start[iv + 1]; ++k) {
      const topo::NodeId w = adj.neighbor[k];
      // w is v's tree child iff the edge that discovered w is this one.
      if (row.tree_link[static_cast<std::size_t>(w)] == adj.via[k])
        repair_queue_.push_back(w);
    }
  }
}

void SelectionContext::apply_node_added(topo::NodeId n) const {
  flat_.reset();  // structural: the arena's sections no longer fit
  if (csr_) {
    obs::ScopedTimer t(csr_patch_hist());
    csr_->patch_add_node(graph(), n);
  }
  if (base_comps_) {
    // The new node has the highest id and no links, so a rebuild would
    // discover it last as a singleton component: append exactly that.
    base_comps_->comp_of.push_back(base_comps_->count);
    base_comps_->compute_count.push_back(graph().is_compute(n) ? 1 : 0);
    base_comps_->node_count.push_back(1);
    ++base_comps_->count;
  }
  if (!rows_.empty()) {
    // Extend every built row with the entry a rebuild would produce for an
    // unreached node; existing values are untouched.
    for (auto& e : rows_) {
      if (!e) continue;
      e->row.bottleneck.push_back(0.0);
      if (!e->row.bottleneck2.empty()) e->row.bottleneck2.push_back(0.0);
      e->row.latency.push_back(0.0);
      e->row.reached.push_back(0);
      e->row.tree_link.push_back(topo::kInvalidLink);
    }
    rows_.push_back(nullptr);
  }
  // acyclic_ is kept: an isolated node never creates a cycle.
}

void SelectionContext::apply_node_removed(topo::NodeId n) const {
  // Removal requires degree 0, so by the time this delta arrives every
  // incident link has already been removed (and the rows those removals
  // touched dropped): no built row reaches n except n's own singleton row,
  // which a rebuild reproduces unchanged. Only the compute flag flips.
  flat_.reset();  // the arena carries is_compute
  if (csr_) {
    obs::ScopedTimer t(csr_patch_hist());
    csr_->patch_remove_node(n);
  }
  if (base_comps_) {
    const int c = base_comps_->comp_of[static_cast<std::size_t>(n)];
    base_comps_->compute_count[c] = 0;  // degree-0 singleton, now tombstoned
  }
  // acyclic_ and the weight caches are link-shaped: untouched.
}

void SelectionContext::apply_link_added(topo::LinkId l) const {
  const auto il = static_cast<std::size_t>(l);
  flat_.reset();
  if (csr_) {
    obs::ScopedTimer t(csr_patch_hist());
    csr_->patch_add_link(graph(), l);
  }
  acyclic_ = -1;
  base_comps_.reset();
  if (bw_valid_) {
    if (bw_.size() == il) {
      bw_.push_back(snap_->bw(l));
      if (by_bw_valid_) order_insert(by_bw_, bw_, l);
    } else {  // defensive; applied-in-order deltas keep sizes aligned
      bw_valid_ = by_bw_valid_ = false;
      bw_.clear();
      by_bw_.clear();
    }
  }
  if (bwfactor_valid_) {
    if (bwfactor_.size() == il) {
      bwfactor_.push_back(snap_->bwfactor(l));
      if (by_bwfactor_valid_) order_insert(by_bwfactor_, bwfactor_, l);
    } else {
      bwfactor_valid_ = by_bwfactor_valid_ = false;
      bwfactor_.clear();
      by_bwfactor_.clear();
    }
  }
  // A new edge can reroute any BFS tree (it is appended to its endpoints'
  // adjacency, but may shorten paths elsewhere): drop all rows.
  if (std::size_t built = built_row_count()) {
    rows_invalidated_full().inc(built);
    for (auto& e : rows_) e.reset();
  }
}

void SelectionContext::apply_link_removed(topo::LinkId l) const {
  const auto il = static_cast<std::size_t>(l);
  flat_.reset();
  if (csr_) {
    obs::ScopedTimer t(csr_patch_hist());
    csr_->patch_remove_link(graph(), l);
  }
  acyclic_ = -1;
  base_comps_.reset();
  if (bw_valid_ && il < bw_.size()) {
    if (by_bw_valid_) order_erase(by_bw_, bw_, l);
    bw_[il] = 0.0;  // what the snapshot now reports for the tombstoned link
  }
  if (bwfactor_valid_ && il < bwfactor_.size()) {
    if (by_bwfactor_valid_) order_erase(by_bwfactor_, bwfactor_, l);
    bwfactor_[il] = 0.0;
  }
  // Removing a non-tree edge never changes a BFS tree (the tree edge into
  // each node is the *first* edge reaching it in scan order; dropping a
  // later edge cannot promote an earlier one). Only rows whose tree used l
  // are dropped.
  for (auto& e : rows_) {
    if (!e) continue;
    if (il < e->in_tree.size() && e->in_tree[il]) {
      e.reset();
      rows_invalidated_partial().inc();
    }
  }
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

bool SelectionContext::acyclic() const {
  revalidate();
  if (acyclic_ == -1) acyclic_ = graph().is_acyclic() ? 1 : 0;
  return acyclic_ == 1;
}

const topo::CsrAdjacency& SelectionContext::csr() const {
  revalidate();
  if (!csr_)
    csr_ = std::make_unique<topo::CsrAdjacency>(
        topo::CsrAdjacency::build(graph()));
  return *csr_;
}

const topo::FlatGraph& SelectionContext::flat() const {
  const auto& bw = link_bw();
  const auto& f = link_bwfactor();
  if (!flat_) {
    flat_ = std::make_unique<topo::FlatGraph>(
        topo::FlatGraph::build(csr(), bw, f));
    arena_bytes_gauge().set(static_cast<double>(flat_->arena_bytes()));
  }
  return *flat_;
}

const std::vector<double>& SelectionContext::link_bw() const {
  revalidate();
  if (!bw_valid_) {
    bw_.resize(graph().link_count());
    for (std::size_t l = 0; l < bw_.size(); ++l)
      bw_[l] = snap_->bw(static_cast<topo::LinkId>(l));
    bw_valid_ = true;
  }
  return bw_;
}

const std::vector<double>& SelectionContext::link_bwfactor() const {
  revalidate();
  if (!bwfactor_valid_) {
    bwfactor_.resize(graph().link_count());
    for (std::size_t l = 0; l < bwfactor_.size(); ++l)
      bwfactor_[l] = snap_->bwfactor(static_cast<topo::LinkId>(l));
    bwfactor_valid_ = true;
  }
  return bwfactor_;
}

namespace {

std::vector<topo::LinkId> sorted_by(const topo::TopologyGraph& g,
                                    const std::vector<double>& key) {
  // Sort packed (key, id) pairs rather than ids under an indirect
  // comparator: every comparison then reads adjacent memory instead of two
  // random key[] slots, which roughly halves the sort on million-link
  // fabrics. Ascending by (key, id) — pair ordering gives the id tie-break
  // directly, matching the "lowest link id among minima" rule of the
  // per-iteration min-edge scan it replaces (ids are unique, so this is
  // exactly the stable sort by key).
  std::vector<std::pair<double, topo::LinkId>> keyed;
  keyed.reserve(key.size());
  // Tombstoned links are not deletable edges: they are already gone.
  for (std::size_t l = 0; l < key.size(); ++l)
    if (!g.link_removed(static_cast<topo::LinkId>(l)))
      keyed.emplace_back(key[l], static_cast<topo::LinkId>(l));
  std::sort(keyed.begin(), keyed.end());
  std::vector<topo::LinkId> order;
  order.reserve(keyed.size());
  for (const auto& [k, l] : keyed) order.push_back(l);
  return order;
}

}  // namespace

const std::vector<topo::LinkId>& SelectionContext::links_by_bw() const {
  const auto& bw = link_bw();
  if (!by_bw_valid_) {
    by_bw_ = sorted_by(graph(), bw);
    order_builds().inc();
    by_bw_valid_ = true;
  }
  return by_bw_;
}

std::size_t SelectionContext::first_link_at_or_above(double min_bw_bps) const {
  const auto& order = links_by_bw();
  if (min_bw_bps <= 0.0) return 0;
  const auto& bw = link_bw();
  auto it = std::lower_bound(order.begin(), order.end(), min_bw_bps,
                             [&](topo::LinkId l, double v) {
                               return bw[static_cast<std::size_t>(l)] < v;
                             });
  return static_cast<std::size_t>(it - order.begin());
}

const std::vector<topo::LinkId>& SelectionContext::links_by_fraction(
    const SelectionOptions& opt) const {
  if (opt.reference_bw > 0.0) return links_by_bw();
  const auto& f = link_bwfactor();
  if (!by_bwfactor_valid_) {
    by_bwfactor_ = sorted_by(graph(), f);
    order_builds().inc();
    by_bwfactor_valid_ = true;
  }
  return by_bwfactor_;
}

const topo::Components& SelectionContext::base_components() const {
  revalidate();
  if (!base_comps_) {
    base_comps_ =
        std::make_unique<topo::Components>(topo::connected_components(csr()));
  }
  return *base_comps_;
}

void SelectionContext::ensure_row_slots() const {
  if (rows_.size() != graph().node_count()) rows_.resize(graph().node_count());
}

std::size_t SelectionContext::built_row_count() const {
  std::size_t n = 0;
  for (const auto& e : rows_)
    if (e) ++n;
  return n;
}

std::unique_ptr<SelectionContext::RowEntry> SelectionContext::build_row_entry(
    topo::NodeId src) const {
  auto e = std::make_unique<RowEntry>();
  e->row = topo::bottleneck_row(flat(), src);
  e->in_tree.assign(graph().link_count(), 0);
  for (topo::NodeId v : e->row.order) {
    const topo::LinkId l = e->row.tree_link[static_cast<std::size_t>(v)];
    if (l != topo::kInvalidLink) e->in_tree[static_cast<std::size_t>(l)] = 1;
  }
  return e;
}

const topo::BottleneckRow& SelectionContext::pair_row(topo::NodeId src) const {
  // link_bw()/link_bwfactor() revalidate; rows_ is maintained alongside.
  (void)link_bw();
  (void)link_bwfactor();
  ensure_row_slots();
  auto& slot = rows_[static_cast<std::size_t>(src)];
  if (!slot) {
    row_misses().inc();
    slot = build_row_entry(src);
  } else {
    row_hits().inc();
  }
  return slot->row;
}

void SelectionContext::warm_rows(
    util::ThreadPool& pool, const std::vector<topo::NodeId>& sources) const {
  const topo::FlatGraph& g = flat();
  ensure_row_slots();
  std::vector<char> queued(graph().node_count(), 0);
  std::vector<topo::NodeId> todo;
  for (topo::NodeId src : sources) {
    const auto i = static_cast<std::size_t>(src);
    if (rows_[i] || queued[i]) continue;
    queued[i] = 1;
    todo.push_back(src);
  }
  if (todo.empty()) return;
  row_misses().inc(todo.size());
  const std::size_t link_count = graph().link_count();
  // 64-wide batches, each one multi-source bitset BFS; the batches fan out
  // over the pool. Each task writes only its own pre-sized slots and the
  // batch boundaries are fixed by `todo` order, so any thread count — and
  // the zero-worker serial mode — produces identical rows (the kernel
  // itself is bit-identical to the scalar one per its contract).
  const std::size_t batches = (todo.size() + 63) / 64;
  util::parallel_for(pool, batches, [&](std::size_t bi) {
    const std::size_t lo = bi * 64;
    const std::size_t W = std::min<std::size_t>(64, todo.size() - lo);
    std::vector<topo::BottleneckRow> rows(W);
    topo::BatchStats st;
    topo::batched_bottleneck_rows(
        g, std::span<const topo::NodeId>(todo).subspan(lo, W),
        std::span<topo::BottleneckRow>(rows), &st);
    for (std::size_t k = 0; k < W; ++k) {
      auto e = std::make_unique<RowEntry>();
      e->row = std::move(rows[k]);
      e->in_tree.assign(link_count, 0);
      for (topo::NodeId v : e->row.order) {
        const topo::LinkId l = e->row.tree_link[static_cast<std::size_t>(v)];
        if (l != topo::kInvalidLink)
          e->in_tree[static_cast<std::size_t>(l)] = 1;
      }
      rows_[static_cast<std::size_t>(todo[lo + k])] = std::move(e);
    }
    batch_passes().inc(st.passes);
    batch_frontier_words().inc(st.frontier_words);
    rows_batched().inc(st.batched_rows);
    rows_scalar_fallback().inc(st.scalar_fallback_rows);
  });
}

std::vector<char> SelectionContext::eligibility(
    const SelectionOptions& opt) const {
  std::vector<char> out(graph().node_count(), 0);
  auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      auto n = static_cast<topo::NodeId>(i);
      if (node_eligible(*snap_, n, opt)) out[i] = 1;
    }
  };
  // Per-index writes into a pre-sized vector: chunk order cannot affect the
  // result, so the pooled fill is bit-identical to the serial one.
  if (pool_ && out.size() >= 2 * kScoreChunk)
    util::parallel_for_chunked(*pool_, out.size(), kScoreChunk, fill);
  else
    fill(0, out.size());
  return out;
}

}  // namespace netsel::select
