#include "select/context.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace netsel::select {

namespace {
// Cache visibility for the shared-context layer: every pair_row() lookup is
// a hit (slot already built) or a miss (BFS bottleneck row built now);
// epoch invalidations count full cache drops after snapshot mutation.
// Purely observational — one branch each while the registry is disabled.
obs::Counter& row_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.row_hits");
  return c;
}
obs::Counter& row_misses() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.row_misses");
  return c;
}
obs::Counter& invalidations() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.invalidations");
  return c;
}
obs::Counter& order_builds() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.ctx.order_builds");
  return c;
}
}  // namespace

SelectionContext::SelectionContext(const remos::NetworkSnapshot& snap)
    : snap_(&snap), epoch_(snap.epoch()) {
  // Touch every context counter so all four are registered (and exported,
  // possibly at 0) as soon as any context exists — a run with no cache hits
  // still reports select.ctx.row_hits: 0 rather than omitting it.
  row_hits();
  row_misses();
  invalidations();
  order_builds();
}

void SelectionContext::revalidate() const {
  if (epoch_ == snap_->epoch()) return;
  invalidations().inc();
  epoch_ = snap_->epoch();
  bw_.clear();
  bwfactor_.clear();
  by_bw_.clear();
  by_bwfactor_.clear();
  base_comps_.reset();
  rows_.clear();
}

bool SelectionContext::acyclic() const {
  if (acyclic_ == -1) acyclic_ = graph().is_acyclic() ? 1 : 0;
  return acyclic_ == 1;
}

const topo::CsrAdjacency& SelectionContext::csr() const {
  if (!csr_)
    csr_ = std::make_unique<topo::CsrAdjacency>(
        topo::CsrAdjacency::build(graph()));
  return *csr_;
}

const std::vector<double>& SelectionContext::link_bw() const {
  revalidate();
  if (bw_.size() != graph().link_count()) {
    bw_.resize(graph().link_count());
    for (std::size_t l = 0; l < bw_.size(); ++l)
      bw_[l] = snap_->bw(static_cast<topo::LinkId>(l));
  }
  return bw_;
}

const std::vector<double>& SelectionContext::link_bwfactor() const {
  revalidate();
  if (bwfactor_.size() != graph().link_count()) {
    bwfactor_.resize(graph().link_count());
    for (std::size_t l = 0; l < bwfactor_.size(); ++l)
      bwfactor_[l] = snap_->bwfactor(static_cast<topo::LinkId>(l));
  }
  return bwfactor_;
}

namespace {

std::vector<topo::LinkId> sorted_by(const std::vector<double>& key) {
  std::vector<topo::LinkId> order(key.size());
  for (std::size_t l = 0; l < key.size(); ++l)
    order[l] = static_cast<topo::LinkId>(l);
  // Ascending by (key, id): the id tie-break matches the "lowest link id
  // among minima" rule of the per-iteration min-edge scan it replaces.
  std::stable_sort(order.begin(), order.end(),
                   [&](topo::LinkId a, topo::LinkId b) {
                     return key[static_cast<std::size_t>(a)] <
                            key[static_cast<std::size_t>(b)];
                   });
  return order;
}

}  // namespace

const std::vector<topo::LinkId>& SelectionContext::links_by_bw() const {
  const auto& bw = link_bw();
  if (by_bw_.size() != bw.size()) {
    by_bw_ = sorted_by(bw);
    order_builds().inc();
  }
  return by_bw_;
}

std::size_t SelectionContext::first_link_at_or_above(double min_bw_bps) const {
  const auto& order = links_by_bw();
  if (min_bw_bps <= 0.0) return 0;
  const auto& bw = link_bw();
  auto it = std::lower_bound(order.begin(), order.end(), min_bw_bps,
                             [&](topo::LinkId l, double v) {
                               return bw[static_cast<std::size_t>(l)] < v;
                             });
  return static_cast<std::size_t>(it - order.begin());
}

const std::vector<topo::LinkId>& SelectionContext::links_by_fraction(
    const SelectionOptions& opt) const {
  if (opt.reference_bw > 0.0) return links_by_bw();
  const auto& f = link_bwfactor();
  if (by_bwfactor_.size() != f.size()) {
    by_bwfactor_ = sorted_by(f);
    order_builds().inc();
  }
  return by_bwfactor_;
}

const topo::Components& SelectionContext::base_components() const {
  revalidate();
  if (!base_comps_) {
    base_comps_ =
        std::make_unique<topo::Components>(topo::connected_components(csr()));
  }
  return *base_comps_;
}

const topo::BottleneckRow& SelectionContext::pair_row(topo::NodeId src) const {
  // link_bw()/link_bwfactor() revalidate; rows_ is cleared alongside them.
  const auto& bw = link_bw();
  const auto& f = link_bwfactor();
  if (rows_.size() != graph().node_count()) rows_.resize(graph().node_count());
  auto& slot = rows_[static_cast<std::size_t>(src)];
  if (!slot) {
    row_misses().inc();
    slot = std::make_unique<topo::BottleneckRow>(
        topo::bottleneck_row(csr(), src, bw, f));
  } else {
    row_hits().inc();
  }
  return *slot;
}

void SelectionContext::warm_rows(
    util::ThreadPool& pool, const std::vector<topo::NodeId>& sources) const {
  const auto& bw = link_bw();
  const auto& f = link_bwfactor();
  const auto& adj = csr();
  if (rows_.size() != graph().node_count()) rows_.resize(graph().node_count());
  std::vector<char> queued(graph().node_count(), 0);
  std::vector<topo::NodeId> todo;
  for (topo::NodeId src : sources) {
    const auto i = static_cast<std::size_t>(src);
    if (rows_[i] || queued[i]) continue;
    queued[i] = 1;
    todo.push_back(src);
  }
  if (todo.empty()) return;
  row_misses().inc(todo.size());
  // Each task writes only its own pre-sized slot; the shared inputs are
  // read-only, so the pool may schedule in any order.
  util::parallel_for(pool, todo.size(), [&](std::size_t i) {
    rows_[static_cast<std::size_t>(todo[i])] =
        std::make_unique<topo::BottleneckRow>(
            topo::bottleneck_row(adj, todo[i], bw, f));
  });
}

std::vector<char> SelectionContext::eligibility(
    const SelectionOptions& opt) const {
  std::vector<char> out(graph().node_count(), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (node_eligible(*snap_, n, opt)) out[i] = 1;
  }
  return out;
}

}  // namespace netsel::select
