#pragma once
// SelectionContext: shared, cached per-snapshot state for the selection
// stack.
//
// The paper's Fig. 2/3 algorithms and the exact pairwise objective are
// defined operationally — "delete the minimum-bandwidth edge, recompute
// connected components", "minimum bottleneck bandwidth over all selected
// pairs" — and the original implementations executed those definitions
// literally on every call: O(E) component sweeps per edge deletion and one
// BFS per node pair per evaluation, with nothing shared across algorithms,
// placement groups, or migration re-checks.
//
// A SelectionContext is built once per remos::NetworkSnapshot and caches
// everything that depends only on the snapshot (not on the per-call
// SelectionOptions):
//
//   - the edge-deletion orders of Fig. 2 (ascending available bandwidth)
//     and Fig. 3 (ascending fractional bandwidth), sorted once;
//   - per-source bottleneck-bandwidth rows along the deterministic BFS
//     tree (topo::bottleneck_row) — on acyclic graphs these are exactly
//     the widest-path bottlenecks, and they make the pairwise
//     min-bandwidth objective an O(1) lookup per pair; rows are built
//     lazily, so a context costs nothing until queried;
//   - the base connected-component decomposition (all links active).
//
// Validity contract: the snapshot carries an epoch counter bumped on every
// mutation. Each accessor revalidates against snapshot().epoch() and
// transparently drops stale caches, so a long-lived context (migration
// controller, advisor sweep) stays correct across snapshot updates at the
// cost of a rebuild. The referenced snapshot (and its graph) must outlive
// the context. Not thread-safe: accessors mutate the lazy caches.

#include <cstdint>
#include <memory>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/options.hpp"
#include "topo/connectivity.hpp"
#include "topo/graph.hpp"

namespace netsel::util {
class ThreadPool;
}

namespace netsel::select {

class SelectionContext {
 public:
  /// Cheap: records the snapshot and its epoch; all caches fill on demand.
  explicit SelectionContext(const remos::NetworkSnapshot& snap);

  const remos::NetworkSnapshot& snapshot() const { return *snap_; }
  const topo::TopologyGraph& graph() const { return snap_->graph(); }

  /// Epoch of the snapshot the current caches were built against.
  std::uint64_t epoch() const { return epoch_; }
  /// True while the snapshot has not been mutated since the caches were
  /// (re)built. Accessors below revalidate automatically.
  bool current() const { return epoch_ == snap_->epoch(); }

  /// Cached graph().is_acyclic() (a static property of the topology).
  bool acyclic() const;

  /// Cached flat CSR view of the topology (graph-static, like acyclic()):
  /// the adjacency the component and bottleneck kernels below run on, built
  /// once per context. Preserves links_of() order, so BFS trees — and hence
  /// every bottleneck value — are bit-identical to the TopologyGraph
  /// kernels.
  const topo::CsrAdjacency& csr() const;

  /// Available bandwidth per link, copied out of the snapshot (dense, for
  /// the kernels below).
  const std::vector<double>& link_bw() const;
  /// Fraction-of-peak (bwfactor) per link.
  const std::vector<double>& link_bwfactor() const;

  /// Links sorted ascending by (available bw, id): the Fig. 2 deletion
  /// sequence. The links masked out by a fixed-bandwidth requirement are
  /// exactly a prefix of this order.
  const std::vector<topo::LinkId>& links_by_bw() const;
  /// Index of the first entry of links_by_bw() with bw >= min_bw_bps; the
  /// suffix from here is the active-link deletion sequence under that
  /// requirement.
  std::size_t first_link_at_or_above(double min_bw_bps) const;

  /// Links sorted ascending by (link_fraction under opt, id): the Fig. 3
  /// deletion sequence. With a reference link capacity the fraction is a
  /// constant multiple of the absolute bandwidth, so the Fig. 2 order is
  /// reused; otherwise the bwfactor order is cached separately.
  const std::vector<topo::LinkId>& links_by_fraction(
      const SelectionOptions& opt) const;

  /// Connected components with every link active (the initial state of the
  /// unconstrained algorithms).
  const topo::Components& base_components() const;

  /// Cached bottleneck row from `src` over the full graph: bottleneck =
  /// available bandwidth, bottleneck2 = bwfactor, plus path latency and
  /// reachability, along the same deterministic BFS paths evaluate_set and
  /// bfs_path trace. Built lazily per source, O(V + E) once.
  const topo::BottleneckRow& pair_row(topo::NodeId src) const;

  /// Fractional bottleneck from a pair_row() under the options' reference
  /// rules (bw / reference_bw, or the cached bwfactor bottleneck).
  static double row_fraction(const topo::BottleneckRow& row, topo::NodeId dst,
                             const SelectionOptions& opt) {
    if (opt.reference_bw > 0.0)
      return row.bottleneck[static_cast<std::size_t>(dst)] / opt.reference_bw;
    return row.bottleneck2[static_cast<std::size_t>(dst)];
  }

  /// Per-node eligibility under `opt` (compute, mask, min-cpu, memory).
  /// Options-dependent, so computed per call — O(V), not cached.
  std::vector<char> eligibility(const SelectionOptions& opt) const;

  /// Build the pair_row() cache entries for `sources` on a thread pool
  /// (duplicates and already-built rows are skipped; each build counts as a
  /// row miss). Safe because every row lands in its own pre-sized slot; no
  /// other accessor may run concurrently — warm, then query. A zero-worker
  /// pool degenerates to the serial build order.
  void warm_rows(util::ThreadPool& pool,
                 const std::vector<topo::NodeId>& sources) const;

 private:
  /// Drop every epoch-keyed cache if the snapshot has moved on.
  void revalidate() const;

  const remos::NetworkSnapshot* snap_;
  mutable std::uint64_t epoch_;
  mutable int acyclic_ = -1;  // tri-state: unknown / no / yes (graph-static)
  mutable std::unique_ptr<topo::CsrAdjacency> csr_;  // graph-static
  mutable std::vector<double> bw_;
  mutable std::vector<double> bwfactor_;
  mutable std::vector<topo::LinkId> by_bw_;
  mutable std::vector<topo::LinkId> by_bwfactor_;
  mutable std::unique_ptr<topo::Components> base_comps_;
  mutable std::vector<std::unique_ptr<topo::BottleneckRow>> rows_;
};

}  // namespace netsel::select
