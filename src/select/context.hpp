#pragma once
// SelectionContext: shared, cached per-snapshot state for the selection
// stack.
//
// The paper's Fig. 2/3 algorithms and the exact pairwise objective are
// defined operationally — "delete the minimum-bandwidth edge, recompute
// connected components", "minimum bottleneck bandwidth over all selected
// pairs" — and the original implementations executed those definitions
// literally on every call: O(E) component sweeps per edge deletion and one
// BFS per node pair per evaluation, with nothing shared across algorithms,
// placement groups, or migration re-checks.
//
// A SelectionContext is built once per remos::NetworkSnapshot and caches
// everything that depends only on the snapshot (not on the per-call
// SelectionOptions):
//
//   - the edge-deletion orders of Fig. 2 (ascending available bandwidth)
//     and Fig. 3 (ascending fractional bandwidth), sorted once;
//   - per-source bottleneck-bandwidth rows along the deterministic BFS
//     tree (topo::bottleneck_row) — on acyclic graphs these are exactly
//     the widest-path bottlenecks, and they make the pairwise
//     min-bandwidth objective an O(1) lookup per pair; rows are built
//     lazily, so a context costs nothing until queried;
//   - the base connected-component decomposition (all links active).
//
// Validity contract: the snapshot carries an epoch counter bumped on every
// mutation plus a bounded journal of typed deltas (remos/delta.hpp). Each
// accessor revalidates against snapshot().epoch(); when the journal still
// covers the missed range, the context consumes the deltas with
// *fine-grained* invalidation instead of dropping everything:
//
//   - node load/memory deltas touch nothing cached here (eligibility and
//     cpu rankings are per-call state);
//   - a link-bandwidth delta repositions the link inside the cached
//     deletion orders (binary erase + sorted reinsert, identical to a
//     re-sort) and *repairs* affected bottleneck rows in place: the BFS
//     tree is weight-independent, so replaying the min-recurrence over the
//     recorded discovery order with the updated weights is bit-identical to
//     a rebuild — rows whose tree does not use the link are untouched;
//   - structural deltas patch the cached CSR adjacency in place
//     (topo::CsrAdjacency::patch_*); link removal drops only the rows whose
//     tree used that link, link addition drops all rows (the tree may
//     reroute), node addition extends rows with an unreached entry.
//
// When the journal has been trimmed past the context's epoch the context
// falls back to the historical behaviour: drop every cache. The referenced
// snapshot (and its graph) must outlive the context. Not thread-safe:
// accessors mutate the lazy caches.

#include <cstdint>
#include <memory>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/options.hpp"
#include "topo/connectivity.hpp"
#include "topo/flat_graph.hpp"
#include "topo/graph.hpp"

namespace netsel::util {
class ThreadPool;
}

namespace netsel::select {

class SelectionContext {
 public:
  /// Cheap: records the snapshot and its epoch; all caches fill on demand.
  explicit SelectionContext(const remos::NetworkSnapshot& snap);

  const remos::NetworkSnapshot& snapshot() const { return *snap_; }
  const topo::TopologyGraph& graph() const { return snap_->graph(); }

  /// Epoch of the snapshot the current caches were built against.
  std::uint64_t epoch() const { return epoch_; }
  /// True while the snapshot has not been mutated since the caches were
  /// (re)built. Accessors below revalidate automatically.
  bool current() const { return epoch_ == snap_->epoch(); }

  /// Cached graph().is_acyclic(); invalidated only by structural deltas.
  bool acyclic() const;

  /// Cached flat CSR view of the topology: the adjacency the component and
  /// bottleneck kernels below run on. Built once, then *patched in place*
  /// under structural deltas (host/link add/remove) instead of rebuilt.
  /// Preserves links_of() order, so BFS trees — and hence every bottleneck
  /// value — are bit-identical to the TopologyGraph kernels.
  const topo::CsrAdjacency& csr() const;

  /// Cached single-allocation arena view (CSR structure + both weight
  /// arrays + compute flags) — the layout the hot BFS kernels run on. Built
  /// lazily from csr()/link_bw()/link_bwfactor(); a link-bandwidth delta
  /// patches its weight sections in place, structural deltas drop it (lazy
  /// rebuild). Bit-identical traversals: same half-edge order as csr().
  const topo::FlatGraph& flat() const;
  /// Bytes of the flat() arena, 0 while not built (footprint accounting).
  std::size_t arena_bytes() const { return flat_ ? flat_->arena_bytes() : 0; }

  /// Optional worker pool for the per-call scoring loops (eligibility and
  /// the selectors' per-link/per-node key fills). Null (the default) keeps
  /// every loop serial; results are bit-identical either way because each
  /// index writes its own slot. The pool must outlive the context or be
  /// unset before destruction.
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* pool() const { return pool_; }

  /// Available bandwidth per link, copied out of the snapshot (dense, for
  /// the kernels below).
  const std::vector<double>& link_bw() const;
  /// Fraction-of-peak (bwfactor) per link.
  const std::vector<double>& link_bwfactor() const;

  /// Links sorted ascending by (available bw, id): the Fig. 2 deletion
  /// sequence. The links masked out by a fixed-bandwidth requirement are
  /// exactly a prefix of this order.
  const std::vector<topo::LinkId>& links_by_bw() const;
  /// Index of the first entry of links_by_bw() with bw >= min_bw_bps; the
  /// suffix from here is the active-link deletion sequence under that
  /// requirement.
  std::size_t first_link_at_or_above(double min_bw_bps) const;

  /// Links sorted ascending by (link_fraction under opt, id): the Fig. 3
  /// deletion sequence. With a reference link capacity the fraction is a
  /// constant multiple of the absolute bandwidth, so the Fig. 2 order is
  /// reused; otherwise the bwfactor order is cached separately.
  const std::vector<topo::LinkId>& links_by_fraction(
      const SelectionOptions& opt) const;

  /// Connected components with every link active (the initial state of the
  /// unconstrained algorithms).
  const topo::Components& base_components() const;

  /// Cached bottleneck row from `src` over the full graph: bottleneck =
  /// available bandwidth, bottleneck2 = bwfactor, plus path latency and
  /// reachability, along the same deterministic BFS paths evaluate_set and
  /// bfs_path trace. Built lazily per source, O(V + E) once.
  const topo::BottleneckRow& pair_row(topo::NodeId src) const;

  /// Fractional bottleneck from a pair_row() under the options' reference
  /// rules (bw / reference_bw, or the cached bwfactor bottleneck).
  static double row_fraction(const topo::BottleneckRow& row, topo::NodeId dst,
                             const SelectionOptions& opt) {
    if (opt.reference_bw > 0.0)
      return row.bottleneck[static_cast<std::size_t>(dst)] / opt.reference_bw;
    return row.bottleneck2[static_cast<std::size_t>(dst)];
  }

  /// Per-node eligibility under `opt` (compute, mask, min-cpu, memory).
  /// Options-dependent, so computed per call — O(V), not cached.
  std::vector<char> eligibility(const SelectionOptions& opt) const;

  /// Build the pair_row() cache entries for `sources` on a thread pool
  /// (duplicates and already-built rows are skipped; each build counts as a
  /// row miss). The missing sources are grouped into 64-wide batches, each
  /// served by one multi-source bitset BFS over flat()
  /// (topo::batched_bottleneck_rows — bit-identical to the scalar kernel,
  /// with transparent scalar fallback), and the batches fan out over the
  /// pool. Safe because every row lands in its own pre-sized slot; no other
  /// accessor may run concurrently — warm, then query. A zero-worker pool
  /// degenerates to the serial batch order; results are identical at any
  /// thread count.
  void warm_rows(util::ThreadPool& pool,
                 const std::vector<topo::NodeId>& sources) const;

 private:
  /// A cached bottleneck row plus the per-link membership mask of its BFS
  /// tree, so "does delta on link l touch this row?" is an O(1) probe.
  struct RowEntry {
    topo::BottleneckRow row;
    std::vector<char> in_tree;  // per link id: 1 iff a tree edge of row
  };

  /// Catch up with the snapshot: consume the missed deltas fine-grainedly,
  /// or drop every cache when the journal no longer covers the gap.
  void revalidate() const;
  void invalidate_all() const;
  void apply_delta(const remos::Delta& d) const;
  void apply_link_bandwidth(topo::LinkId l) const;
  void apply_node_added(topo::NodeId n) const;
  void apply_node_removed(topo::NodeId n) const;
  void apply_link_added(topo::LinkId l) const;
  void apply_link_removed(topo::LinkId l) const;
  /// Replay the bottleneck min-recurrence with the current weight arrays
  /// over the tree subtree hanging below changed link `l` (tree unchanged
  /// -> bit-identical to rebuild; nodes outside that subtree cannot have
  /// changed). For a fat-tree access link the subtree is a single leaf.
  void repair_row_values(RowEntry& e, topo::LinkId l) const;
  std::unique_ptr<RowEntry> build_row_entry(topo::NodeId src) const;
  void ensure_row_slots() const;
  std::size_t built_row_count() const;

  const remos::NetworkSnapshot* snap_;
  mutable std::uint64_t epoch_;
  util::ThreadPool* pool_ = nullptr;
  mutable int acyclic_ = -1;  // tri-state: unknown / no / yes
  mutable std::unique_ptr<topo::CsrAdjacency> csr_;
  mutable std::unique_ptr<topo::FlatGraph> flat_;
  mutable std::vector<double> bw_;
  mutable std::vector<double> bwfactor_;
  mutable std::vector<topo::LinkId> by_bw_;
  mutable std::vector<topo::LinkId> by_bwfactor_;
  /// Explicit validity flags: under link removal the cached vectors no
  /// longer track link_count(), so "wrong size" is not a usable dirtiness
  /// signal.
  mutable bool bw_valid_ = false;
  mutable bool bwfactor_valid_ = false;
  mutable bool by_bw_valid_ = false;
  mutable bool by_bwfactor_valid_ = false;
  mutable std::unique_ptr<topo::Components> base_comps_;
  mutable std::vector<std::unique_ptr<RowEntry>> rows_;
  mutable std::vector<remos::Delta> pending_;      // revalidate scratch
  mutable std::vector<topo::NodeId> repair_queue_;  // repair BFS scratch
};

}  // namespace netsel::select
