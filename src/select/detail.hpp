#pragma once
// Internal helpers shared by the selection algorithm implementations.

#include <algorithm>
#include <limits>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/options.hpp"
#include "topo/connectivity.hpp"
#include "topo/graph.hpp"

namespace netsel::select::detail {

/// Eligible members of component `c`, in id order.
inline std::vector<topo::NodeId> eligible_members(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt,
    const topo::Components& comps, int c) {
  std::vector<topo::NodeId> out;
  for (std::size_t i = 0; i < comps.comp_of.size(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (comps.comp_of[i] == c && node_eligible(snap, n, opt)) out.push_back(n);
  }
  return out;
}

/// Eligible-node count per component.
inline std::vector<int> eligible_counts(const remos::NetworkSnapshot& snap,
                                        const SelectionOptions& opt,
                                        const topo::Components& comps) {
  std::vector<int> counts(static_cast<std::size_t>(comps.count), 0);
  for (std::size_t i = 0; i < comps.comp_of.size(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (node_eligible(snap, n, opt))
      counts[static_cast<std::size_t>(comps.comp_of[i])]++;
  }
  return counts;
}

/// Members of component `c` with `mask` set, in id order. Used with the
/// candidate mask from select/prune.hpp, which may be a strict subset of
/// the eligible set.
inline std::vector<topo::NodeId> members_in_component(
    const std::vector<char>& mask, const topo::Components& comps, int c) {
  std::vector<topo::NodeId> out;
  for (std::size_t i = 0; i < comps.comp_of.size(); ++i)
    if (comps.comp_of[i] == c && mask[i])
      out.push_back(static_cast<topo::NodeId>(i));
  return out;
}

/// Per-component count of nodes with `mask` set.
inline std::vector<int> counts_in_components(const std::vector<char>& mask,
                                             const topo::Components& comps) {
  std::vector<int> counts(static_cast<std::size_t>(comps.count), 0);
  for (std::size_t i = 0; i < comps.comp_of.size(); ++i)
    if (mask[i]) counts[static_cast<std::size_t>(comps.comp_of[i])]++;
  return counts;
}

/// The m members with the highest cpu (ties toward lower node id, which is
/// deterministic and matches "any m nodes" in the paper). `members` must
/// contain at least m nodes.
inline std::vector<topo::NodeId> top_m_by_cpu(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt,
    std::vector<topo::NodeId> members, int m) {
  std::stable_sort(members.begin(), members.end(),
                   [&](topo::NodeId a, topo::NodeId b) {
                     return node_cpu(snap, a, opt) > node_cpu(snap, b, opt);
                   });
  members.resize(static_cast<std::size_t>(m));
  std::sort(members.begin(), members.end());
  return members;
}

/// Minimum cpu among a node set (reference units).
inline double min_cpu_of(const remos::NetworkSnapshot& snap,
                         const SelectionOptions& opt,
                         const std::vector<topo::NodeId>& nodes) {
  double v = std::numeric_limits<double>::infinity();
  for (topo::NodeId n : nodes) v = std::min(v, node_cpu(snap, n, opt));
  return v;
}

/// Minimum link fraction among active links inside component `c`
/// (+infinity when the component has no active links, e.g. a lone node).
inline double min_fraction_in_component(const remos::NetworkSnapshot& snap,
                                        const SelectionOptions& opt,
                                        const topo::Components& comps, int c,
                                        const std::vector<char>& link_active) {
  const auto& g = snap.graph();
  double v = std::numeric_limits<double>::infinity();
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    if (!link_active[l]) continue;
    const topo::Link& lk = g.link(static_cast<topo::LinkId>(l));
    if (comps.comp_of[static_cast<std::size_t>(lk.a)] != c) continue;
    v = std::min(v, link_fraction(snap, static_cast<topo::LinkId>(l), opt));
  }
  return v;
}

/// Active link with the minimum *available bandwidth* (absolute bits/s,
/// Fig. 2); ties toward the lowest link id. kInvalidLink when none active.
inline topo::LinkId min_bw_link(const remos::NetworkSnapshot& snap,
                                const std::vector<char>& link_active) {
  topo::LinkId best = topo::kInvalidLink;
  double best_bw = std::numeric_limits<double>::infinity();
  for (std::size_t l = 0; l < link_active.size(); ++l) {
    if (!link_active[l]) continue;
    double b = snap.bw(static_cast<topo::LinkId>(l));
    if (b < best_bw) {
      best_bw = b;
      best = static_cast<topo::LinkId>(l);
    }
  }
  return best;
}

/// Active link with the minimum *fractional* bandwidth (Fig. 3).
inline topo::LinkId min_fraction_link(const remos::NetworkSnapshot& snap,
                                      const SelectionOptions& opt,
                                      const std::vector<char>& link_active) {
  topo::LinkId best = topo::kInvalidLink;
  double best_f = std::numeric_limits<double>::infinity();
  for (std::size_t l = 0; l < link_active.size(); ++l) {
    if (!link_active[l]) continue;
    double f = link_fraction(snap, static_cast<topo::LinkId>(l), opt);
    if (f < best_f) {
      best_f = f;
      best = static_cast<topo::LinkId>(l);
    }
  }
  return best;
}

}  // namespace netsel::select::detail
