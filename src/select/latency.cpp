#include "select/latency.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>

#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "select/detail.hpp"
#include "select/objective.hpp"

namespace netsel::select {

std::vector<double> all_pairs_latency(const topo::TopologyGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<double> dist(n * n, 0.0);
  // BFS per source accumulates latency along the deterministic BFS tree —
  // on acyclic graphs this is the unique path; with cycles it follows the
  // same shortest (hop-count) path as static routing.
  std::vector<int> hops(n);
  for (std::size_t src = 0; src < n; ++src) {
    std::fill(hops.begin(), hops.end(), -1);
    std::queue<topo::NodeId> q;
    hops[src] = 0;
    q.push(static_cast<topo::NodeId>(src));
    while (!q.empty()) {
      topo::NodeId u = q.front();
      q.pop();
      for (topo::LinkId l : g.links_of(u)) {
        topo::NodeId v = g.other_end(l, u);
        if (hops[static_cast<std::size_t>(v)] != -1) continue;
        hops[static_cast<std::size_t>(v)] = hops[static_cast<std::size_t>(u)] + 1;
        dist[src * n + static_cast<std::size_t>(v)] =
            dist[src * n + static_cast<std::size_t>(u)] + g.link(l).latency;
        q.push(v);
      }
    }
  }
  return dist;
}

namespace {

struct Candidate {
  std::vector<topo::NodeId> nodes;
  double max_latency = std::numeric_limits<double>::infinity();
  double min_cpu = 0.0;
};

/// The m eligible compute nodes closest to `center`, ties toward higher cpu
/// then lower id. Empty when fewer than m are reachable.
std::vector<topo::NodeId> nearest_m(const remos::NetworkSnapshot& snap,
                                    const SelectionOptions& opt,
                                    const std::vector<double>& dist,
                                    topo::NodeId center, int m) {
  const auto& g = snap.graph();
  const std::size_t n = g.node_count();
  std::vector<topo::NodeId> pool;
  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (node_eligible(snap, id, opt)) pool.push_back(id);
  }
  if (static_cast<int>(pool.size()) < m) return {};
  std::stable_sort(pool.begin(), pool.end(), [&](topo::NodeId a, topo::NodeId b) {
    double da = dist[static_cast<std::size_t>(center) * n + static_cast<std::size_t>(a)];
    double db = dist[static_cast<std::size_t>(center) * n + static_cast<std::size_t>(b)];
    if (da != db) return da < db;
    return node_cpu(snap, a, opt) > node_cpu(snap, b, opt);
  });
  pool.resize(static_cast<std::size_t>(m));
  std::sort(pool.begin(), pool.end());
  return pool;
}

double exact_max_pair(const std::vector<double>& dist, std::size_t n,
                      const std::vector<topo::NodeId>& nodes) {
  double mx = 0.0;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      mx = std::max(mx, dist[static_cast<std::size_t>(nodes[i]) * n +
                             static_cast<std::size_t>(nodes[j])]);
    }
  }
  return mx;
}

}  // namespace

SelectionResult select_min_latency(const remos::NetworkSnapshot& snap,
                                   const SelectionOptions& opt) {
  validate_options(snap, opt);
  const auto& g = snap.graph();
  const std::size_t n = g.node_count();
  auto dist = all_pairs_latency(g);

  Candidate best;
  for (std::size_t c = 0; c < n; ++c) {
    auto center = static_cast<topo::NodeId>(c);
    auto nodes = nearest_m(snap, opt, dist, center, opt.num_nodes);
    if (nodes.empty()) continue;
    Candidate cand;
    cand.max_latency = exact_max_pair(dist, n, nodes);
    cand.min_cpu = detail::min_cpu_of(snap, opt, nodes);
    cand.nodes = std::move(nodes);
    bool better = cand.max_latency < best.max_latency ||
                  (cand.max_latency == best.max_latency &&
                   (cand.min_cpu > best.min_cpu ||
                    (cand.min_cpu == best.min_cpu && cand.nodes < best.nodes)));
    if (better) best = std::move(cand);
  }

  SelectionResult result;
  if (best.nodes.empty()) {
    result.note = "not enough eligible nodes";
    return result;
  }
  result.feasible = true;
  result.nodes = best.nodes;
  result.min_cpu = best.min_cpu;
  SelectionContext ctx(snap);
  auto ev = evaluate_set(ctx, result.nodes, opt);
  result.min_bw_fraction = ev.min_pair_bw_fraction;
  result.objective = -best.max_latency;
  std::ostringstream os;
  os << "max pairwise latency " << best.max_latency << " s";
  result.note = os.str();
  return result;
}

SelectionResult select_balanced_latency_bound(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt,
    double max_pair_latency) {
  validate_options(snap, opt);
  if (max_pair_latency < 0.0)
    throw std::invalid_argument("latency bound must be >= 0");

  // One context for the whole sweep: every candidate evaluation below hits
  // the same cached bottleneck rows.
  SelectionContext ctx(snap);

  auto unconstrained = select_balanced(ctx, opt);
  if (unconstrained.feasible) {
    auto ev = evaluate_set(ctx, unconstrained.nodes, opt);
    if (ev.max_pair_latency <= max_pair_latency) return unconstrained;
  }

  const auto& g = snap.graph();
  const std::size_t n = g.node_count();
  auto dist = all_pairs_latency(g);

  SelectionResult best;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < n; ++c) {
    // Pool: eligible nodes within bound/2 of the center — any two of them
    // are within the bound via the center (exact on trees, conservative
    // with cycles).
    std::vector<topo::NodeId> pool;
    for (std::size_t i = 0; i < n; ++i) {
      auto id = static_cast<topo::NodeId>(i);
      if (!node_eligible(snap, id, opt)) continue;
      if (dist[c * n + i] <= max_pair_latency / 2.0 + 1e-12) pool.push_back(id);
    }
    if (static_cast<int>(pool.size()) < opt.num_nodes) continue;
    auto nodes = detail::top_m_by_cpu(snap, opt, std::move(pool), opt.num_nodes);
    if (exact_max_pair(dist, n, nodes) > max_pair_latency + 1e-12) continue;
    auto ev = evaluate_set(ctx, nodes, opt);
    if (!ev.connected) continue;
    if (opt.min_bw_bps > 0.0 && ev.min_pair_bw < opt.min_bw_bps) continue;
    if (ev.balanced > best_value) {
      best_value = ev.balanced;
      best.feasible = true;
      best.nodes = std::move(nodes);
      best.min_cpu = ev.min_cpu;
      best.min_bw_fraction = ev.min_pair_bw_fraction;
      best.objective = ev.balanced;
    }
  }
  if (!best.feasible) best.note = "no set satisfies the latency bound";
  return best;
}

}  // namespace netsel::select
