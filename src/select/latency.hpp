#pragma once
// Latency-aware node selection — the extension the paper defers to future
// work (§3.4: "A number of other factors can affect application
// performance, some examples being latency on the links ... Remos API
// includes this information and we plan to take these factors into
// consideration in future work").
//
// Latency is additive along a path, so the Fig. 2 edge-deletion trick (which
// exploits the bottleneck structure of bandwidth) does not apply. Instead we
// use a best-center search: for every candidate center node, take the m
// eligible compute nodes closest to it by path latency; the candidate set's
// exact maximum pairwise latency is then evaluated and the best set kept.
// On trees this is a strong heuristic (certified near-optimal against brute
// force in the tests); it runs in O(n^2) like the paper's algorithms.

#include "remos/snapshot.hpp"
#include "select/options.hpp"

namespace netsel::select {

/// Select m nodes minimising the maximum pairwise path latency. Ties are
/// broken toward higher minimum cpu, then lower node ids. The result's
/// `objective` is the negated max pairwise latency (so that "greater is
/// better" holds like the other criteria); `note` carries the latency in
/// seconds.
SelectionResult select_min_latency(const remos::NetworkSnapshot& snap,
                                   const SelectionOptions& opt);

/// Balanced (Fig. 3) optimisation under a latency ceiling: maximise
/// min(mincpu/kc, minbw/kb) subject to every pairwise path latency being at
/// most `max_pair_latency` seconds. Runs the unconstrained Fig. 3 algorithm
/// first; if its result violates the ceiling, falls back to a best-center
/// enumeration of latency-feasible sets (nodes within ceiling/2 of a common
/// center are pairwise within the ceiling) and maximises the exact pairwise
/// balanced objective among them.
SelectionResult select_balanced_latency_bound(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt,
    double max_pair_latency);

/// All-pairs path latency matrix (row-major, node_count^2), following the
/// same deterministic BFS paths as evaluate_set. Exposed for tests and for
/// callers that want to precompute.
std::vector<double> all_pairs_latency(const topo::TopologyGraph& g);

}  // namespace netsel::select
