// Figure 2 of the paper: select m nodes maximising the minimum available
// bandwidth between any pair of selected nodes.
//
// "For a set of connected nodes in an acyclic topology graph, the least
//  bandwidth between any pair of nodes in the set cannot be less than the
//  lowest edge bandwidth in the graph. Hence, by repeatedly removing the
//  minimum available bandwidth edge and testing if enough connected nodes
//  exist in the graph, the node-set that maximizes the minimum available
//  bandwidth between any pair of nodes is obtained."
//
// The paper's step 4 prints `if (l > m)`; the surrounding text makes clear
// the loop runs while a component with at least m compute nodes survives,
// so we use l >= m (verified optimal against brute force in the tests).
//
// Implementation: the deletion sequence — links ascending by (available bw,
// id), which is exactly the order the per-iteration min-edge scan produces —
// is fixed up front by the SelectionContext, and feasibility ("some
// component still holds >= m eligible nodes") is monotone non-increasing
// under deletions. So instead of one O(V+E) component sweep per deletion we
// replay the sequence *backwards* as edge insertions through a union-find
// (offline incremental connectivity): the first reverse state with a
// feasible component is the forward loop's final state, and the freshly
// merged component is its unique feasible component (before the merge no
// component qualified, and a union changes only one). Near-linear total
// instead of O(E * (V + E)); bit-identical results — see
// detail::reference_select_max_bandwidth for the literal loop this replaces
// and tests/test_select_context.cpp for the equivalence suite.

#include "obs/metrics.hpp"
#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "select/detail.hpp"
#include "select/objective.hpp"
#include "select/obs.hpp"
#include "select/prune.hpp"
#include "topo/connectivity.hpp"

namespace netsel::select {

SelectionResult select_max_bandwidth(const SelectionContext& ctx,
                                     const SelectionOptions& opt) {
  detail::selections_counter().inc();
  obs::ScopedTimer timer(
      detail::criterion_latency_hist(Criterion::MaxBandwidth));
  const auto& snap = ctx.snapshot();
  validate_options(snap, opt);
  const int m = opt.num_nodes;
  const auto& g = ctx.graph();

  auto elig = ctx.eligibility(opt);
  const auto& order = ctx.links_by_bw();
  const std::size_t start = ctx.first_link_at_or_above(opt.min_bw_bps);
  const std::size_t active = order.size() - start;

  SelectionResult result;

  topo::EligibleUnionFind uf(elig);
  topo::NodeId winner = topo::kInvalidNode;
  std::size_t inserted = 0;  // links present in the final feasible state

  if (uf.max_eligible() >= m) {
    // m == 1 with an eligible node: even the all-links-deleted state is
    // feasible, so the forward loop sweeps every active link away and picks
    // the lowest-id eligible singleton (the most-eligible-component rule
    // degenerates to the first singleton component).
    for (std::size_t i = 0; i < elig.size(); ++i) {
      if (elig[i]) {
        winner = static_cast<topo::NodeId>(i);
        break;
      }
    }
  } else {
    for (std::size_t i = order.size(); i-- > start;) {
      const topo::Link& lk = g.link(order[i]);
      topo::NodeId r = uf.unite(lk.a, lk.b);
      ++inserted;
      if (uf.eligible_count(r) >= m) {
        winner = r;
        break;
      }
    }
    if (winner == topo::kInvalidNode) {
      result.note = "no component with enough eligible nodes";
      return result;
    }
  }
  result.iterations = static_cast<int>(active - inserted);

  // Feasibility above used the full eligible counts; only the ranking list
  // drops dominated candidates (winner-preserving, see select/prune.hpp).
  const auto cand = dominated_candidate_mask(snap, opt, elig);
  std::vector<topo::NodeId> members;
  const topo::NodeId wroot = uf.find(winner);
  for (std::size_t i = 0; i < elig.size(); ++i) {
    auto n = static_cast<topo::NodeId>(i);
    if (cand[i] && uf.find(n) == wroot) members.push_back(n);
  }
  result.nodes = detail::top_m_by_cpu(snap, opt, std::move(members), m);
  result.feasible = true;

  // Step 5: M is optimal; report the exact achieved figures.
  auto ev = evaluate_set(ctx, result.nodes, opt);
  result.min_cpu = ev.min_cpu;
  result.min_bw_fraction = ev.min_pair_bw_fraction;
  result.objective = ev.min_pair_bw;
  return result;
}

SelectionResult select_max_bandwidth(const remos::NetworkSnapshot& snap,
                                     const SelectionOptions& opt) {
  SelectionContext ctx(snap);
  return select_max_bandwidth(ctx, opt);
}

}  // namespace netsel::select
