// Figure 2 of the paper: select m nodes maximising the minimum available
// bandwidth between any pair of selected nodes.
//
// "For a set of connected nodes in an acyclic topology graph, the least
//  bandwidth between any pair of nodes in the set cannot be less than the
//  lowest edge bandwidth in the graph. Hence, by repeatedly removing the
//  minimum available bandwidth edge and testing if enough connected nodes
//  exist in the graph, the node-set that maximizes the minimum available
//  bandwidth between any pair of nodes is obtained."
//
// The paper's step 4 prints `if (l > m)`; the surrounding text makes clear
// the loop runs while a component with at least m compute nodes survives,
// so we use l >= m (verified optimal against brute force in the tests).

#include "select/algorithms.hpp"
#include "select/detail.hpp"
#include "select/objective.hpp"
#include "topo/connectivity.hpp"

namespace netsel::select {

SelectionResult select_max_bandwidth(const remos::NetworkSnapshot& snap,
                                     const SelectionOptions& opt) {
  validate_options(snap, opt);
  const int m = opt.num_nodes;
  auto mask = initial_link_mask(snap, opt);

  SelectionResult result;

  // Step 1: any m eligible compute nodes in one component. We take the
  // component with the most eligible nodes and its top-m by cpu — a
  // deterministic instance of "any m" that also breaks bandwidth ties in
  // favour of lightly loaded nodes.
  auto pick_from = [&](const topo::Components& comps,
                       const std::vector<int>& counts) -> int {
    int best = -1;
    for (int c = 0; c < comps.count; ++c) {
      if (counts[static_cast<std::size_t>(c)] < m) continue;
      if (best == -1 || counts[static_cast<std::size_t>(c)] >
                            counts[static_cast<std::size_t>(best)])
        best = c;
    }
    return best;
  };

  {
    auto comps = topo::connected_components(snap.graph(), mask);
    auto counts = detail::eligible_counts(snap, opt, comps);
    int c = pick_from(comps, counts);
    if (c == -1) {
      result.note = "no component with enough eligible nodes";
      return result;
    }
    result.nodes = detail::top_m_by_cpu(
        snap, opt, detail::eligible_members(snap, opt, comps, c), m);
    result.feasible = true;
  }

  // Steps 2-4: repeatedly remove the minimum-available-bandwidth edge while
  // a large-enough component survives.
  while (true) {
    topo::LinkId victim = detail::min_bw_link(snap, mask);
    if (victim == topo::kInvalidLink) break;  // no edges left: m == 1 case
    mask[static_cast<std::size_t>(victim)] = 0;
    auto comps = topo::connected_components(snap.graph(), mask);
    auto counts = detail::eligible_counts(snap, opt, comps);
    int c = pick_from(comps, counts);
    if (c == -1) break;
    result.nodes = detail::top_m_by_cpu(
        snap, opt, detail::eligible_members(snap, opt, comps, c), m);
    ++result.iterations;
  }

  // Step 5: M is optimal; report the exact achieved figures.
  auto ev = evaluate_set(snap, result.nodes, opt);
  result.min_cpu = ev.min_cpu;
  result.min_bw_fraction = ev.min_pair_bw_fraction;
  result.objective = ev.min_pair_bw;
  return result;
}

}  // namespace netsel::select
