#include <limits>

#include "select/algorithms.hpp"
#include "select/detail.hpp"
#include "topo/connectivity.hpp"

namespace netsel::select {

SelectionResult select_max_compute(const remos::NetworkSnapshot& snap,
                                   const SelectionOptions& opt) {
  validate_options(snap, opt);
  const int m = opt.num_nodes;
  auto mask = initial_link_mask(snap, opt);
  auto comps = topo::connected_components(snap.graph(), mask);
  auto counts = detail::eligible_counts(snap, opt, comps);

  SelectionResult result;
  double best = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < comps.count; ++c) {
    if (counts[static_cast<std::size_t>(c)] < m) continue;
    auto members = detail::eligible_members(snap, opt, comps, c);
    auto chosen = detail::top_m_by_cpu(snap, opt, std::move(members), m);
    double mincpu = detail::min_cpu_of(snap, opt, chosen);
    if (mincpu > best) {
      best = mincpu;
      result.feasible = true;
      result.nodes = std::move(chosen);
      result.min_cpu = mincpu;
      result.min_bw_fraction =
          detail::min_fraction_in_component(snap, opt, comps, c, mask);
      result.objective = mincpu;
    }
  }
  if (!result.feasible) result.note = "no component with enough eligible nodes";
  return result;
}

SelectionResult select_nodes(Criterion c, const remos::NetworkSnapshot& snap,
                             const SelectionOptions& opt) {
  switch (c) {
    case Criterion::MaxCompute: return select_max_compute(snap, opt);
    case Criterion::MaxBandwidth: return select_max_bandwidth(snap, opt);
    case Criterion::Balanced: return select_balanced(snap, opt);
  }
  SelectionResult r;
  r.note = "unknown criterion";
  return r;
}

}  // namespace netsel::select
