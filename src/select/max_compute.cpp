#include <limits>

#include "obs/metrics.hpp"
#include "select/algorithms.hpp"
#include "select/bnb.hpp"
#include "select/context.hpp"
#include "select/detail.hpp"
#include "select/obs.hpp"
#include "select/prune.hpp"
#include "topo/connectivity.hpp"

namespace netsel::select {

namespace detail {
obs::Histogram& criterion_latency_hist(Criterion c) {
  // One histogram per criterion, registered on first use; the registry
  // keeps the objects alive so the references below never dangle.
  static obs::Histogram& compute = obs::Registry::global().histogram(
      "select.latency_s.max_compute", obs::exp_buckets(1e-6, 4.0, 12));
  static obs::Histogram& bandwidth = obs::Registry::global().histogram(
      "select.latency_s.max_bandwidth", obs::exp_buckets(1e-6, 4.0, 12));
  static obs::Histogram& balanced = obs::Registry::global().histogram(
      "select.latency_s.balanced", obs::exp_buckets(1e-6, 4.0, 12));
  switch (c) {
    case Criterion::MaxCompute: return compute;
    case Criterion::MaxBandwidth: return bandwidth;
    case Criterion::Balanced: return balanced;
  }
  return balanced;
}

obs::Counter& selections_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.selections");
  return c;
}
}  // namespace detail

SelectionResult select_max_compute(const SelectionContext& ctx,
                                   const SelectionOptions& opt) {
  detail::selections_counter().inc();
  obs::ScopedTimer timer(
      detail::criterion_latency_hist(Criterion::MaxCompute));
  const auto& snap = ctx.snapshot();
  validate_options(snap, opt);
  const int m = opt.num_nodes;

  // Unconstrained requests reuse the context's base decomposition; a fixed
  // bandwidth requirement changes the link set, so decompose per call.
  std::vector<char> mask = initial_link_mask(snap, opt);
  const topo::Components* comps;
  topo::Components local;
  if (opt.min_bw_bps > 0.0) {
    local = topo::connected_components(snap.graph(), mask);
    comps = &local;
  } else {
    comps = &ctx.base_components();
  }
  // Feasibility counts use the full eligible set; the ranking lists drop
  // dominated candidates (winner-preserving, see select/prune.hpp).
  auto elig = ctx.eligibility(opt);
  auto cand = dominated_candidate_mask(snap, opt, elig);
  auto counts = detail::counts_in_components(elig, *comps);

  SelectionResult result;
  double best = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < comps->count; ++c) {
    if (counts[static_cast<std::size_t>(c)] < m) continue;
    auto members = detail::members_in_component(cand, *comps, c);
    auto chosen = detail::top_m_by_cpu(snap, opt, std::move(members), m);
    double mincpu = detail::min_cpu_of(snap, opt, chosen);
    if (mincpu > best) {
      best = mincpu;
      result.feasible = true;
      result.nodes = std::move(chosen);
      result.min_cpu = mincpu;
      result.min_bw_fraction =
          detail::min_fraction_in_component(snap, opt, *comps, c, mask);
      result.objective = mincpu;
    }
  }
  if (!result.feasible) result.note = "no component with enough eligible nodes";
  return result;
}

SelectionResult select_max_compute(const remos::NetworkSnapshot& snap,
                                   const SelectionOptions& opt) {
  SelectionContext ctx(snap);
  return select_max_compute(ctx, opt);
}

SelectionResult select_nodes(Criterion c, const SelectionContext& ctx,
                             const SelectionOptions& opt) {
  // First-class exact mode: route to the branch-and-bound selector. Its
  // greedy warm start calls the concrete selectors directly, so there is
  // no recursion through this dispatch.
  if (opt.exact.enabled) return select_exact(ctx, opt, c);
  switch (c) {
    case Criterion::MaxCompute: return select_max_compute(ctx, opt);
    case Criterion::MaxBandwidth: return select_max_bandwidth(ctx, opt);
    case Criterion::Balanced: return select_balanced(ctx, opt);
  }
  SelectionResult r;
  r.note = "unknown criterion";
  return r;
}

SelectionResult select_nodes(Criterion c, const remos::NetworkSnapshot& snap,
                             const SelectionOptions& opt) {
  SelectionContext ctx(snap);
  return select_nodes(c, ctx, opt);
}

}  // namespace netsel::select
