#include "select/objective.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "select/context.hpp"

namespace netsel::select {

namespace {

/// BFS parents from src under a link mask; parent_link[v] is the link used
/// to reach v, kInvalidLink for src and unreached nodes.
std::vector<topo::LinkId> bfs_parents(const topo::TopologyGraph& g,
                                      const std::vector<char>* link_active,
                                      topo::NodeId src) {
  std::vector<topo::LinkId> parent_link(g.node_count(), topo::kInvalidLink);
  std::vector<char> seen(g.node_count(), 0);
  std::queue<topo::NodeId> q;
  q.push(src);
  seen[static_cast<std::size_t>(src)] = 1;
  while (!q.empty()) {
    topo::NodeId u = q.front();
    q.pop();
    for (topo::LinkId l : g.links_of(u)) {
      if (link_active && !(*link_active)[static_cast<std::size_t>(l)]) continue;
      topo::NodeId v = g.other_end(l, u);
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        parent_link[static_cast<std::size_t>(v)] = l;
        q.push(v);
      }
    }
  }
  return parent_link;
}

std::vector<topo::LinkId> trace_path(const topo::TopologyGraph& g,
                                     const std::vector<topo::LinkId>& parent_link,
                                     topo::NodeId src, topo::NodeId dst) {
  std::vector<topo::LinkId> path;
  topo::NodeId u = dst;
  while (u != src) {
    topo::LinkId l = parent_link[static_cast<std::size_t>(u)];
    if (l == topo::kInvalidLink) return {};  // unreachable
    path.push_back(l);
    u = g.other_end(l, u);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<topo::LinkId> bfs_path(const topo::TopologyGraph& g,
                                   topo::NodeId src, topo::NodeId dst) {
  if (src == dst) return {};
  auto parents = bfs_parents(g, nullptr, src);
  return trace_path(g, parents, src, dst);
}

std::vector<topo::LinkId> steiner_links(const topo::TopologyGraph& g,
                                        const std::vector<char>& link_active,
                                        const std::vector<topo::NodeId>& nodes) {
  std::vector<char> in_union(g.link_count(), 0);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    auto parents = bfs_parents(g, &link_active, nodes[i]);
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      for (topo::LinkId l : trace_path(g, parents, nodes[i], nodes[j]))
        in_union[static_cast<std::size_t>(l)] = 1;
    }
  }
  std::vector<topo::LinkId> out;
  for (std::size_t l = 0; l < in_union.size(); ++l)
    if (in_union[l]) out.push_back(static_cast<topo::LinkId>(l));
  return out;
}

SetEvaluation evaluate_set(const SelectionContext& ctx,
                           const std::vector<topo::NodeId>& nodes,
                           const SelectionOptions& opt) {
  const auto& snap = ctx.snapshot();
  const auto& g = ctx.graph();
  SetEvaluation ev;
  ev.connected = true;
  ev.min_cpu = std::numeric_limits<double>::infinity();
  ev.min_pair_bw = std::numeric_limits<double>::infinity();
  ev.min_pair_bw_fraction = std::numeric_limits<double>::infinity();
  if (nodes.empty()) throw std::invalid_argument("evaluate_set: empty set");
  for (topo::NodeId n : nodes) {
    if (!g.is_compute(n))
      throw std::invalid_argument("evaluate_set: non-compute node in set");
    ev.min_cpu = std::min(ev.min_cpu, node_cpu(snap, n, opt));
  }
  if (nodes.size() == 1) {
    // No pairs: report the node's NIC availability, per figure (see
    // SetEvaluation::min_pair_bw).
    double nic_bw = 0.0;
    double nic_frac = 0.0;
    for (topo::LinkId l : g.links_of(nodes[0])) {
      nic_bw = std::max(nic_bw, snap.bw(l));
      nic_frac = std::max(nic_frac, link_fraction(snap, l, opt));
    }
    ev.min_pair_bw = nic_bw;
    ev.min_pair_bw_fraction = nic_frac;
  } else {
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      const topo::BottleneckRow* row = nullptr;
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        if (nodes[i] == nodes[j]) continue;
        if (!row) row = &ctx.pair_row(nodes[i]);
        const auto v = static_cast<std::size_t>(nodes[j]);
        if (!row->reached[v]) {
          ev.connected = false;
          ev.min_pair_bw = 0.0;
          ev.min_pair_bw_fraction = 0.0;
          continue;
        }
        ev.min_pair_bw = std::min(ev.min_pair_bw, row->bottleneck[v]);
        ev.min_pair_bw_fraction = std::min(
            ev.min_pair_bw_fraction,
            SelectionContext::row_fraction(*row, nodes[j], opt));
        ev.max_pair_latency = std::max(ev.max_pair_latency, row->latency[v]);
      }
    }
  }
  ev.balanced = std::min(ev.min_cpu / opt.cpu_priority,
                         ev.min_pair_bw_fraction / opt.bw_priority);
  return ev;
}

SetEvaluation evaluate_set(const remos::NetworkSnapshot& snap,
                           const std::vector<topo::NodeId>& nodes,
                           const SelectionOptions& opt) {
  SelectionContext ctx(snap);
  return evaluate_set(ctx, nodes, opt);
}

}  // namespace netsel::select
