#pragma once
// Exact evaluation of a candidate node set against a snapshot — the ground
// truth the algorithms are judged by in tests, benches and the brute-force
// reference: minimum pairwise bottleneck bandwidth (over actual paths) and
// minimum fractional cpu.

#include <vector>

#include "remos/snapshot.hpp"
#include "select/options.hpp"
#include "topo/graph.hpp"

namespace netsel::select {

class SelectionContext;

struct SetEvaluation {
  bool connected = false;
  /// Minimum fractional cpu (reference units) among the set.
  double min_cpu = 0.0;
  /// Minimum over node pairs of the bottleneck available bandwidth along
  /// the path between them, bits/second. For a single-node set there are no
  /// pairs; by convention this is the node's NIC availability — the maximum
  /// available bandwidth over its incident links (0 for an isolated node) —
  /// so the figure is always finite and printable.
  double min_pair_bw = 0.0;
  /// Same, in fractional (reference) units per the options. The single-node
  /// convention applies per-figure: the maximum link *fraction* over the
  /// incident links, which may come from a different link than min_pair_bw.
  double min_pair_bw_fraction = 0.0;
  /// min(min_cpu / cpu_priority, min_pair_bw_fraction / bw_priority).
  double balanced = 0.0;
  /// Maximum over node pairs of the summed link latency along the path
  /// (0 for singleton sets).
  double max_pair_latency = 0.0;
};

/// Evaluate `nodes` on the full graph (paths found by BFS with the same
/// deterministic tie-break as static routing; on acyclic graphs paths are
/// unique). Single-node sets use the finite NIC-availability convention
/// documented on SetEvaluation::min_pair_bw.
SetEvaluation evaluate_set(const remos::NetworkSnapshot& snap,
                           const std::vector<topo::NodeId>& nodes,
                           const SelectionOptions& opt = {});

/// Same, against a SelectionContext: pairwise bottlenecks come from the
/// context's cached per-source rows (identical paths and values), so
/// repeated evaluations against one snapshot cost O(1) per pair after the
/// first touch of each source node.
SetEvaluation evaluate_set(const SelectionContext& ctx,
                           const std::vector<topo::NodeId>& nodes,
                           const SelectionOptions& opt = {});

/// Links on the BFS path between two nodes (empty when src == dst).
std::vector<topo::LinkId> bfs_path(const topo::TopologyGraph& g,
                                   topo::NodeId src, topo::NodeId dst);

/// Union of links on all pairwise BFS paths of the set, restricted to an
/// active-link mask (used by the Steiner-restricted Fig. 3 variant).
std::vector<topo::LinkId> steiner_links(const topo::TopologyGraph& g,
                                        const std::vector<char>& link_active,
                                        const std::vector<topo::NodeId>& nodes);

}  // namespace netsel::select
