#pragma once
// Observability hooks of the selection layer (shared by the per-criterion
// algorithm translation units). Purely observational: nothing here feeds
// back into a selection decision.

#include "obs/metrics.hpp"
#include "select/options.hpp"

namespace netsel::select::detail {

/// Wall-clock latency histogram for one criterion's selection entry point
/// (seconds, exponential buckets 1 us .. ~4 s).
obs::Histogram& criterion_latency_hist(Criterion c);

/// Total selection-algorithm invocations across criteria.
obs::Counter& selections_counter();

}  // namespace netsel::select::detail
