#include "select/options.hpp"

#include <stdexcept>

namespace netsel::select {

const char* criterion_name(Criterion c) {
  switch (c) {
    case Criterion::MaxCompute: return "max-compute";
    case Criterion::MaxBandwidth: return "max-bandwidth";
    case Criterion::Balanced: return "balanced";
  }
  return "?";
}

double link_fraction(const remos::NetworkSnapshot& snap, topo::LinkId l,
                     const SelectionOptions& opt) {
  if (opt.reference_bw > 0.0) return snap.bw_reference(l, opt.reference_bw);
  return snap.bwfactor(l);
}

double node_cpu(const remos::NetworkSnapshot& snap, topo::NodeId n,
                const SelectionOptions& opt) {
  return snap.cpu_reference(n, opt.reference_cpu_capacity);
}

bool node_eligible(const remos::NetworkSnapshot& snap, topo::NodeId n,
                   const SelectionOptions& opt) {
  if (!snap.graph().is_compute(n)) return false;
  if (!opt.eligible.empty() && !opt.eligible[static_cast<std::size_t>(n)])
    return false;
  if (opt.min_cpu_fraction > 0.0 &&
      node_cpu(snap, n, opt) < opt.min_cpu_fraction)
    return false;
  if (opt.min_free_memory_bytes > 0.0 &&
      snap.free_memory(n) < opt.min_free_memory_bytes)
    return false;
  return true;
}

std::vector<char> initial_link_mask(const remos::NetworkSnapshot& snap,
                                    const SelectionOptions& opt) {
  const auto& g = snap.graph();
  std::vector<char> mask(g.link_count(), 1);
  for (std::size_t l = 0; l < mask.size(); ++l) {
    if (g.link_removed(static_cast<topo::LinkId>(l)))
      mask[l] = 0;  // tombstoned links are never usable
    else if (opt.min_bw_bps > 0.0 &&
             snap.bw(static_cast<topo::LinkId>(l)) < opt.min_bw_bps)
      mask[l] = 0;
  }
  return mask;
}

void validate_options(const remos::NetworkSnapshot& snap,
                      const SelectionOptions& opt) {
  if (opt.num_nodes < 1)
    throw std::invalid_argument("selection: num_nodes must be >= 1");
  if (opt.cpu_priority <= 0.0 || opt.bw_priority <= 0.0)
    throw std::invalid_argument("selection: priorities must be > 0");
  if (opt.reference_cpu_capacity <= 0.0)
    throw std::invalid_argument("selection: reference cpu capacity must be > 0");
  if (opt.reference_bw < 0.0)
    throw std::invalid_argument("selection: reference_bw must be >= 0");
  if (opt.min_bw_bps < 0.0 || opt.min_cpu_fraction < 0.0 ||
      opt.min_free_memory_bytes < 0.0)
    throw std::invalid_argument("selection: requirements must be >= 0");
  if (!opt.eligible.empty() && opt.eligible.size() != snap.graph().node_count())
    throw std::invalid_argument("selection: eligibility mask size mismatch");
}

}  // namespace netsel::select
