#pragma once
// Shared types for the node-selection algorithms (paper §3).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "remos/snapshot.hpp"
#include "topo/graph.hpp"

namespace netsel::select {

/// Optimisation criterion (paper §3.2).
enum class Criterion {
  MaxCompute,    ///< maximise available computation capacity
  MaxBandwidth,  ///< maximise minimum pairwise available bandwidth (Fig. 2)
  Balanced,      ///< maximise min(fractional cpu, fractional bw) (Fig. 3)
};

const char* criterion_name(Criterion c);

/// Knobs for the exact branch-and-bound selector (select/bnb.hpp). When
/// `enabled`, select_nodes routes the criterion to the B&B search instead
/// of the greedy fast path; the search optimises the *true* pairwise
/// objective (brute-force semantics) and either proves optimality or, when
/// a budget is hit, returns the best set found plus a sound upper bound on
/// the optimum (SelectionResult::objective_bound / exact_certified).
struct ExactOptions {
  bool enabled = false;
  /// Search-node expansions before the search degrades to a certified
  /// bound. 0 = unlimited (the search runs to proof).
  std::uint64_t node_budget = 150'000;
  /// Wall-clock budget in seconds; 0 = none. Nondeterministic by nature —
  /// leave at 0 wherever bit-reproducible output matters (tests, committed
  /// benches) and bound work with node_budget instead.
  double time_budget_s = 0.0;
  /// Stop early once incumbent >= (1 - gap_tolerance) * bound; the result
  /// is then certified to be within that relative gap. 0 = prove exactly.
  double gap_tolerance = 0.0;
  /// Candidate-pool ceiling: above it the dense pairwise matrices are not
  /// built and the result degrades to the greedy incumbent with an
  /// unbounded (+inf) objective_bound.
  std::size_t max_pool = 1024;
  /// Open-list ceiling: when exceeded, the worst half of the frontier is
  /// evicted and their best bound is folded into objective_bound (the run
  /// can then no longer certify exactness, only the bound).
  std::size_t max_open = 2'000'000;
  /// Drop candidates dominated by >= m strictly-lower-id siblings on the
  /// same leaf switch (select/prune.hpp's keys, id-ordered so the
  /// brute-force lexicographic tie-break is preserved bit-exactly).
  bool prune_dominance = true;
  /// Seed the incumbent from the matching greedy selector before searching.
  bool warm_start = true;
};

struct SelectionOptions {
  /// Number of nodes required for execution (the paper's m).
  int num_nodes = 1;

  /// Prioritisation of computation vs communication (§3.3): the balanced
  /// objective becomes min(mincpu / cpu_priority, minbw / bw_priority).
  /// cpu_priority = 2 makes 50% CPU equivalent to 25% bandwidth, matching
  /// the paper's example.
  double cpu_priority = 1.0;
  double bw_priority = 1.0;

  /// Reference node type for heterogeneous systems (§3.3): fractional cpu
  /// availability is measured in units of this capacity.
  double reference_cpu_capacity = 1.0;
  /// Reference link capacity in bits/second for heterogeneous links (§3.3).
  /// 0 means "homogeneous": each link's fraction is bw/maxbw of that link.
  double reference_bw = 0.0;

  /// Fixed requirements (§3.3): links below min_bw_bps are unusable;
  /// nodes below min_cpu_fraction (in reference units) are ineligible.
  double min_bw_bps = 0.0;
  double min_cpu_fraction = 0.0;
  /// Memory requirement (§3.4 extension): nodes with less free memory are
  /// ineligible. Nodes whose topology does not model memory report 0 free
  /// and therefore never satisfy a positive requirement.
  double min_free_memory_bytes = 0.0;

  /// Optional eligibility mask over *all* node ids (empty = every compute
  /// node is eligible). Used by the application-spec layer for pinned or
  /// architecture-constrained groups.
  std::vector<char> eligible;

  /// Drop dominated degree-1 candidates before ranking (select/prune.hpp).
  /// Provably winner-preserving; exposed so benchmarks and the oracle tests
  /// can compare pruned vs unpruned runs.
  bool prune_dominated = true;

  /// Eligible-candidate count below which prune_dominated short-circuits
  /// (returns the eligibility mask unchanged — trivially winner-preserving):
  /// small selections finish in well under a millisecond, so the prune
  /// pass's own O(V + E) grouping cannot pay for itself there. 0 always
  /// prunes (the unit-test mode).
  int prune_min_candidates = 512;

  /// Ablation: compute the Fig.-3 bandwidth term over only the links on
  /// paths between the chosen nodes (a Steiner restriction) instead of all
  /// links of the surviving component as the paper specifies.
  bool steiner_restricted = false;

  /// Extension: the paper's Fig.-3 loop stops at the first iteration that
  /// brings no strict improvement, which can stall on plateaus of
  /// equal-bandwidth links. With exhaustive_balanced the sweep continues
  /// until no component with m eligible nodes remains and the best set seen
  /// is returned (same O(n^2) bound; compared in bench_ablation).
  bool exhaustive_balanced = false;

  /// Exact branch-and-bound mode (select/bnb.hpp); disabled by default, so
  /// every existing path keeps its greedy selector.
  ExactOptions exact;
};

struct SelectionResult {
  bool feasible = false;
  std::vector<topo::NodeId> nodes;
  /// Minimum fractional cpu (reference units) among the selected nodes.
  double min_cpu = 0.0;
  /// The algorithm's bandwidth figure of merit: minimum fractional
  /// available bandwidth over the relevant link set (criterion-dependent).
  double min_bw_fraction = 0.0;
  /// Criterion value the algorithm maximised.
  double objective = 0.0;
  /// Number of edge-removal iterations performed (complexity diagnostics).
  int iterations = 0;
  std::string note;
  /// Exact (B&B) mode only: sound upper bound on the optimal objective —
  /// equal to `objective` when `exact_certified` — and whether the search
  /// proved optimality before a budget hit. Greedy paths leave the
  /// defaults (0 / false).
  double objective_bound = 0.0;
  bool exact_certified = false;
};

/// Fractional availability of link `l` under the options' reference rules.
double link_fraction(const remos::NetworkSnapshot& snap, topo::LinkId l,
                     const SelectionOptions& opt);

/// Fractional cpu availability of node `n` under the reference rules.
double node_cpu(const remos::NetworkSnapshot& snap, topo::NodeId n,
                const SelectionOptions& opt);

/// True when node `n` may be selected (compute, eligible mask, min-cpu
/// requirement).
bool node_eligible(const remos::NetworkSnapshot& snap, topo::NodeId n,
                   const SelectionOptions& opt);

/// Initial link-active mask: all links with available bw >= min_bw_bps.
std::vector<char> initial_link_mask(const remos::NetworkSnapshot& snap,
                                    const SelectionOptions& opt);

/// Validate options against a snapshot; throws std::invalid_argument on
/// nonsense (m < 1, bad priorities, mask size mismatch).
void validate_options(const remos::NetworkSnapshot& snap,
                      const SelectionOptions& opt);

}  // namespace netsel::select
