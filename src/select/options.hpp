#pragma once
// Shared types for the node-selection algorithms (paper §3).

#include <string>
#include <vector>

#include "remos/snapshot.hpp"
#include "topo/graph.hpp"

namespace netsel::select {

/// Optimisation criterion (paper §3.2).
enum class Criterion {
  MaxCompute,    ///< maximise available computation capacity
  MaxBandwidth,  ///< maximise minimum pairwise available bandwidth (Fig. 2)
  Balanced,      ///< maximise min(fractional cpu, fractional bw) (Fig. 3)
};

const char* criterion_name(Criterion c);

struct SelectionOptions {
  /// Number of nodes required for execution (the paper's m).
  int num_nodes = 1;

  /// Prioritisation of computation vs communication (§3.3): the balanced
  /// objective becomes min(mincpu / cpu_priority, minbw / bw_priority).
  /// cpu_priority = 2 makes 50% CPU equivalent to 25% bandwidth, matching
  /// the paper's example.
  double cpu_priority = 1.0;
  double bw_priority = 1.0;

  /// Reference node type for heterogeneous systems (§3.3): fractional cpu
  /// availability is measured in units of this capacity.
  double reference_cpu_capacity = 1.0;
  /// Reference link capacity in bits/second for heterogeneous links (§3.3).
  /// 0 means "homogeneous": each link's fraction is bw/maxbw of that link.
  double reference_bw = 0.0;

  /// Fixed requirements (§3.3): links below min_bw_bps are unusable;
  /// nodes below min_cpu_fraction (in reference units) are ineligible.
  double min_bw_bps = 0.0;
  double min_cpu_fraction = 0.0;
  /// Memory requirement (§3.4 extension): nodes with less free memory are
  /// ineligible. Nodes whose topology does not model memory report 0 free
  /// and therefore never satisfy a positive requirement.
  double min_free_memory_bytes = 0.0;

  /// Optional eligibility mask over *all* node ids (empty = every compute
  /// node is eligible). Used by the application-spec layer for pinned or
  /// architecture-constrained groups.
  std::vector<char> eligible;

  /// Drop dominated degree-1 candidates before ranking (select/prune.hpp).
  /// Provably winner-preserving; exposed so benchmarks and the oracle tests
  /// can compare pruned vs unpruned runs.
  bool prune_dominated = true;

  /// Eligible-candidate count below which prune_dominated short-circuits
  /// (returns the eligibility mask unchanged — trivially winner-preserving):
  /// small selections finish in well under a millisecond, so the prune
  /// pass's own O(V + E) grouping cannot pay for itself there. 0 always
  /// prunes (the unit-test mode).
  int prune_min_candidates = 512;

  /// Ablation: compute the Fig.-3 bandwidth term over only the links on
  /// paths between the chosen nodes (a Steiner restriction) instead of all
  /// links of the surviving component as the paper specifies.
  bool steiner_restricted = false;

  /// Extension: the paper's Fig.-3 loop stops at the first iteration that
  /// brings no strict improvement, which can stall on plateaus of
  /// equal-bandwidth links. With exhaustive_balanced the sweep continues
  /// until no component with m eligible nodes remains and the best set seen
  /// is returned (same O(n^2) bound; compared in bench_ablation).
  bool exhaustive_balanced = false;
};

struct SelectionResult {
  bool feasible = false;
  std::vector<topo::NodeId> nodes;
  /// Minimum fractional cpu (reference units) among the selected nodes.
  double min_cpu = 0.0;
  /// The algorithm's bandwidth figure of merit: minimum fractional
  /// available bandwidth over the relevant link set (criterion-dependent).
  double min_bw_fraction = 0.0;
  /// Criterion value the algorithm maximised.
  double objective = 0.0;
  /// Number of edge-removal iterations performed (complexity diagnostics).
  int iterations = 0;
  std::string note;
};

/// Fractional availability of link `l` under the options' reference rules.
double link_fraction(const remos::NetworkSnapshot& snap, topo::LinkId l,
                     const SelectionOptions& opt);

/// Fractional cpu availability of node `n` under the reference rules.
double node_cpu(const remos::NetworkSnapshot& snap, topo::NodeId n,
                const SelectionOptions& opt);

/// True when node `n` may be selected (compute, eligible mask, min-cpu
/// requirement).
bool node_eligible(const remos::NetworkSnapshot& snap, topo::NodeId n,
                   const SelectionOptions& opt);

/// Initial link-active mask: all links with available bw >= min_bw_bps.
std::vector<char> initial_link_mask(const remos::NetworkSnapshot& snap,
                                    const SelectionOptions& opt);

/// Validate options against a snapshot; throws std::invalid_argument on
/// nonsense (m < 1, bad priorities, mask size mismatch).
void validate_options(const remos::NetworkSnapshot& snap,
                      const SelectionOptions& opt);

}  // namespace netsel::select
