#include "select/patterns.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "select/algorithms.hpp"
#include "select/detail.hpp"

namespace netsel::select {

DirectionalPathBw directional_path_bw(const remos::NetworkSnapshot& snap,
                                      topo::NodeId src, topo::NodeId dst) {
  const auto& g = snap.graph();
  if (src == dst) {
    return DirectionalPathBw{std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::infinity()};
  }
  // BFS from src recording the parent link, then walk back from dst noting
  // the direction each link is traversed in.
  std::vector<topo::LinkId> parent(g.node_count(), topo::kInvalidLink);
  std::vector<char> seen(g.node_count(), 0);
  std::queue<topo::NodeId> q;
  q.push(src);
  seen[static_cast<std::size_t>(src)] = 1;
  while (!q.empty()) {
    topo::NodeId u = q.front();
    q.pop();
    for (topo::LinkId l : g.links_of(u)) {
      topo::NodeId v = g.other_end(l, u);
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      parent[static_cast<std::size_t>(v)] = l;
      q.push(v);
    }
  }
  if (!seen[static_cast<std::size_t>(dst)]) return DirectionalPathBw{0.0, 0.0};
  DirectionalPathBw out{std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()};
  topo::NodeId u = dst;
  while (u != src) {
    topo::LinkId l = parent[static_cast<std::size_t>(u)];
    const topo::Link& lk = g.link(l);
    // The path runs  other_end -> u,  so traversal is forward iff u == b.
    bool forward = lk.b == u;
    out.available = std::min(out.available, snap.bw_dir(l, forward));
    out.peak = std::min(out.peak, forward ? lk.capacity_ab : lk.capacity_ba);
    u = g.other_end(l, u);
  }
  return out;
}

ClientServerResult select_client_server(const remos::NetworkSnapshot& snap,
                                        const ClientServerOptions& opt) {
  const auto& g = snap.graph();
  ClientServerResult result;
  if (opt.num_servers < 1 || opt.num_clients < 1)
    throw std::invalid_argument("select_client_server: need servers and clients");
  if (opt.cpu_priority <= 0.0 || opt.bw_priority <= 0.0)
    throw std::invalid_argument("select_client_server: priorities must be > 0");
  if ((!opt.server_eligible.empty() &&
       opt.server_eligible.size() != g.node_count()) ||
      (!opt.client_eligible.empty() &&
       opt.client_eligible.size() != g.node_count()))
    throw std::invalid_argument("select_client_server: mask size mismatch");

  // --- Servers: maximum available computation capacity (§3.4). ---
  SelectionOptions sopt;
  sopt.num_nodes = opt.num_servers;
  sopt.reference_cpu_capacity = opt.reference_cpu_capacity;
  sopt.reference_bw = opt.reference_bw;
  sopt.eligible = opt.server_eligible;
  auto servers = select_max_compute(snap, sopt);
  if (!servers.feasible) {
    result.note = "server group infeasible: " + servers.note;
    return result;
  }
  result.servers = servers.nodes;

  // --- Clients: top-k by min(cpu/kc, worst server->client direction/kb). --
  SelectionOptions copt;
  copt.num_nodes = opt.num_clients;
  copt.reference_cpu_capacity = opt.reference_cpu_capacity;
  copt.reference_bw = opt.reference_bw;
  copt.eligible = opt.client_eligible;

  struct Scored {
    topo::NodeId node;
    double value;
  };
  std::vector<Scored> scored;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (!node_eligible(snap, id, copt)) continue;
    if (std::find(result.servers.begin(), result.servers.end(), id) !=
        result.servers.end())
      continue;
    double worst_dir = std::numeric_limits<double>::infinity();
    for (topo::NodeId s : result.servers) {
      auto path = directional_path_bw(snap, s, id);
      // Heterogeneous-link rule (§3.3): with a reference link, the fraction
      // is availability over the reference capacity; without one, over the
      // path's own structural bottleneck.
      double fraction = opt.reference_bw > 0.0 ? path.available / opt.reference_bw
                                               : path.fraction();
      worst_dir = std::min(worst_dir, fraction);
    }
    double value = std::min(node_cpu(snap, id, copt) / opt.cpu_priority,
                            worst_dir / opt.bw_priority);
    scored.push_back({id, value});
  }
  if (static_cast<int>(scored.size()) < opt.num_clients) {
    result.note = "not enough eligible client nodes";
    return result;
  }
  std::stable_sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.value > b.value;
  });
  scored.resize(static_cast<std::size_t>(opt.num_clients));
  result.objective = scored.back().value;
  for (const Scored& s : scored) result.clients.push_back(s.node);
  std::sort(result.clients.begin(), result.clients.end());
  result.feasible = true;
  return result;
}

namespace {

void validate_pipeline_options(const remos::NetworkSnapshot& snap,
                               const PipelineOptions& opt) {
  if (opt.stage_work.size() < 2)
    throw std::invalid_argument("pipeline: need >= 2 stages");
  if (opt.transfer_bytes.size() != opt.stage_work.size() - 1)
    throw std::invalid_argument("pipeline: transfer_bytes must be stages-1");
  for (double w : opt.stage_work)
    if (w <= 0.0) throw std::invalid_argument("pipeline: stage work must be > 0");
  for (double b : opt.transfer_bytes)
    if (b < 0.0) throw std::invalid_argument("pipeline: negative transfer");
  if (opt.reference_cpu_capacity <= 0.0)
    throw std::invalid_argument("pipeline: reference capacity must be > 0");
  if (!opt.eligible.empty() &&
      opt.eligible.size() != snap.graph().node_count())
    throw std::invalid_argument("pipeline: mask size mismatch");
}

}  // namespace

double pipeline_period(const remos::NetworkSnapshot& snap,
                       const PipelineOptions& opt,
                       const std::vector<topo::NodeId>& stage_nodes) {
  if (stage_nodes.size() != opt.stage_work.size())
    throw std::invalid_argument("pipeline_period: assignment size mismatch");
  double period = 0.0;
  for (std::size_t s = 0; s < stage_nodes.size(); ++s) {
    double cpu =
        snap.cpu_reference(stage_nodes[s], opt.reference_cpu_capacity);
    if (cpu <= 0.0) return std::numeric_limits<double>::infinity();
    period = std::max(period, opt.stage_work[s] / cpu);
    if (s + 1 < stage_nodes.size() && opt.transfer_bytes[s] > 0.0 &&
        stage_nodes[s] != stage_nodes[s + 1]) {
      double bw =
          directional_path_bw(snap, stage_nodes[s], stage_nodes[s + 1]).available;
      if (bw <= 0.0) return std::numeric_limits<double>::infinity();
      period = std::max(period, opt.transfer_bytes[s] * 8.0 / bw);
    }
  }
  return period;
}

PipelineResult select_pipeline(const remos::NetworkSnapshot& snap,
                               const PipelineOptions& opt) {
  validate_pipeline_options(snap, opt);
  const auto& g = snap.graph();
  const auto m = static_cast<int>(opt.stage_work.size());

  // Candidate pool: the strongest nodes by available cpu.
  SelectionOptions eo;
  eo.eligible = opt.eligible;
  eo.reference_cpu_capacity = opt.reference_cpu_capacity;
  std::vector<topo::NodeId> pool;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    if (node_eligible(snap, id, eo)) pool.push_back(id);
  }
  PipelineResult result;
  if (static_cast<int>(pool.size()) < m) {
    result.note = "not enough eligible nodes";
    return result;
  }
  std::stable_sort(pool.begin(), pool.end(), [&](topo::NodeId a, topo::NodeId b) {
    return snap.cpu_reference(a, opt.reference_cpu_capacity) >
           snap.cpu_reference(b, opt.reference_cpu_capacity);
  });
  int pool_size = opt.candidate_pool > 0 ? opt.candidate_pool : m + 4;
  pool.resize(std::min<std::size_t>(pool.size(),
                                    static_cast<std::size_t>(
                                        std::max(pool_size, m))));

  // Rate matching: heaviest stage gets the fastest node.
  std::vector<std::size_t> stage_order(opt.stage_work.size());
  for (std::size_t s = 0; s < stage_order.size(); ++s) stage_order[s] = s;
  std::stable_sort(stage_order.begin(), stage_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return opt.stage_work[a] > opt.stage_work[b];
                   });
  std::vector<topo::NodeId> assignment(opt.stage_work.size());
  for (std::size_t rank = 0; rank < stage_order.size(); ++rank)
    assignment[stage_order[rank]] = pool[rank];

  double best = pipeline_period(snap, opt, assignment);

  // Local search: swap two stages' nodes, or replace a stage's node with an
  // unused pool node; accept strict improvements.
  std::vector<char> used(pool.size(), 0);
  auto refresh_used = [&] {
    std::fill(used.begin(), used.end(), 0);
    for (topo::NodeId n : assignment) {
      for (std::size_t p = 0; p < pool.size(); ++p)
        if (pool[p] == n) used[p] = 1;
    }
  };
  refresh_used();
  for (int pass = 0; pass < opt.max_local_search_passes; ++pass) {
    bool improved = false;
    for (std::size_t a = 0; a < assignment.size(); ++a) {
      for (std::size_t b = a + 1; b < assignment.size(); ++b) {
        std::swap(assignment[a], assignment[b]);
        double period = pipeline_period(snap, opt, assignment);
        if (period < best - 1e-15) {
          best = period;
          improved = true;
        } else {
          std::swap(assignment[a], assignment[b]);
        }
      }
      for (std::size_t p = 0; p < pool.size(); ++p) {
        if (used[p]) continue;
        topo::NodeId old = assignment[a];
        assignment[a] = pool[p];
        double period = pipeline_period(snap, opt, assignment);
        if (period < best - 1e-15) {
          best = period;
          improved = true;
          refresh_used();
        } else {
          assignment[a] = old;
        }
      }
    }
    if (!improved) break;
  }

  result.feasible = true;
  result.stage_nodes = std::move(assignment);
  result.predicted_period = best;
  return result;
}

}  // namespace netsel::select
