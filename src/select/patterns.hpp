#pragma once
// Custom execution patterns — the extension sketched in the paper's §3.4:
// "a client-server application may require that the node with the maximum
// available computation capacity be assigned to the server, and that only
// communication from the servers to the clients is significant. Our
// application interface allows description of such scenarios (and Remos has
// the relevant information), and we are currently investigating the
// algorithm extensions necessary to accurately handle a richer set of
// application patterns."
//
// select_client_server implements that extension: servers are chosen for
// maximum compute capacity; clients are then chosen by a per-node value
// combining their own cpu with the *directional* (server -> client)
// available bandwidth of their paths from every server. Because the metric
// of a client does not depend on which other clients are chosen (it is an
// availability measure, not a simultaneous-schedule measure — see the
// paper's §3.4 "Simultaneous traffic streams" limitation), picking the
// top-k clients by value is exact for this objective.

#include "remos/snapshot.hpp"
#include "select/options.hpp"

namespace netsel::select {

struct ClientServerOptions {
  int num_servers = 1;
  int num_clients = 3;
  /// Priorities applied to the client value min(cpu/kc, dir_bw/kb).
  double cpu_priority = 1.0;
  double bw_priority = 1.0;
  /// Reference normalisations as in SelectionOptions.
  double reference_cpu_capacity = 1.0;
  double reference_bw = 0.0;
  /// Optional eligibility masks (empty = all compute nodes). Servers and
  /// clients may not overlap; server nodes are removed from the client
  /// pool automatically.
  std::vector<char> server_eligible;
  std::vector<char> client_eligible;
};

struct ClientServerResult {
  bool feasible = false;
  std::vector<topo::NodeId> servers;
  std::vector<topo::NodeId> clients;
  /// min over chosen clients of min(cpu/kc, server->client dir fraction/kb).
  double objective = 0.0;
  std::string note;
};

ClientServerResult select_client_server(const remos::NetworkSnapshot& snap,
                                        const ClientServerOptions& opt);

// ---------------------------------------------------------------------------
// Pipeline pattern: a chain of stages, one node each; steady-state period
// (seconds per item) is gated by the slowest stage computation or
// inter-stage transfer. Placement must match heavy stages to fast nodes
// while keeping heavy transfers on fast directional paths.
// ---------------------------------------------------------------------------

struct PipelineOptions {
  /// Reference-CPU-seconds per item per stage (>= 2 stages).
  std::vector<double> stage_work;
  /// Bytes between consecutive stages (stages - 1 entries).
  std::vector<double> transfer_bytes;
  double reference_cpu_capacity = 1.0;
  /// Optional eligibility mask over all node ids.
  std::vector<char> eligible;
  /// Candidate nodes considered (top by cpu); 0 means stages + 4.
  int candidate_pool = 0;
  /// Hill-climbing bound; each pass tries every swap once.
  int max_local_search_passes = 20;
};

struct PipelineResult {
  bool feasible = false;
  /// Node per stage, in stage order (may repeat-free by construction).
  std::vector<topo::NodeId> stage_nodes;
  /// Predicted steady-state seconds per item at the bottleneck.
  double predicted_period = 0.0;
  std::string note;
};

/// Steady-state period of a given assignment: the maximum over stage
/// compute times (work/cpu) and transfer times (bytes*8 / directional
/// available bandwidth on the stage_i -> stage_{i+1} path).
double pipeline_period(const remos::NetworkSnapshot& snap,
                       const PipelineOptions& opt,
                       const std::vector<topo::NodeId>& stage_nodes);

/// Choose nodes and the stage assignment jointly: rate-matching start
/// (heaviest stage on the fastest node) + swap-based local search over a
/// top-cpu candidate pool. Certified near-optimal against exhaustive
/// assignment enumeration on small instances in the tests.
PipelineResult select_pipeline(const remos::NetworkSnapshot& snap,
                               const PipelineOptions& opt);

/// Bottleneck *directional* bandwidth along the static (BFS) path from src
/// to dst: current availability and structural peak, in bits/second.
struct DirectionalPathBw {
  double available = 0.0;
  double peak = 0.0;
  /// available normalised by peak (1.0 for src == dst).
  double fraction() const { return peak > 0.0 ? available / peak : 1.0; }
};
DirectionalPathBw directional_path_bw(const remos::NetworkSnapshot& snap,
                                      topo::NodeId src, topo::NodeId dst);

}  // namespace netsel::select
