#include "select/prune.hpp"

#include <algorithm>
#include <optional>

#include "obs/metrics.hpp"

namespace netsel::select {

namespace {

obs::Counter& dropped_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.prune.dropped");
  return c;
}

/// Pruning is an optimisation that is always allowed to under-prune: groups
/// larger than this skip the quadratic dominator count rather than risk
/// O(k^2) work on a 10k-host star.
constexpr std::size_t kMaxGroupSize = 4096;


struct GroupEntry {
  topo::NodeId node;
  topo::LinkId link;
  double bw;
  double frac;
  double cpu;
};

/// The top_m_by_cpu ranking order: (cpu desc, id asc).
bool rank_before(const GroupEntry& a, const GroupEntry& b) {
  return a.cpu > b.cpu || (a.cpu == b.cpu && a.node < b.node);
}

/// A's link strictly follows B's in an ascending (key, link id) deletion
/// order, i.e. A's link survives at least as long as B's.
bool outlives(double key_a, topo::LinkId la, double key_b, topo::LinkId lb) {
  return key_a > key_b || (key_a == key_b && la > lb);
}

/// Eligible degree-1 hosts bucketed by attachment node: flat
/// count/prefix/fill grouping (one contiguous entry array), shared by both
/// masks. Entries of anchor a live in entries[head[a] .. head[a+1]).
struct LeafGroups {
  std::vector<std::int32_t> head;
  std::vector<GroupEntry> entries;
};

/// Build the grouping, or return std::nullopt when no anchor holds more
/// than m (and at most kMaxGroupSize) eligible leaves — the key lookups
/// (bw/fraction/cpu) are the expensive part, so they are skipped entirely
/// in the common nothing-to-prune case.
std::optional<LeafGroups> group_eligible_leaves(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt,
    const std::vector<char>& eligible, std::size_t m) {
  const auto& g = snap.graph();
  const std::size_t V = g.node_count();
  LeafGroups groups;
  groups.head.assign(V + 1, 0);
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (!eligible[i]) continue;
    auto n = static_cast<topo::NodeId>(i);
    auto links = g.links_of(n);
    if (links.size() != 1) continue;
    ++groups.head[static_cast<std::size_t>(g.other_end(links[0], n)) + 1];
  }
  bool any_prunable = false;
  for (std::size_t a = 1; a <= V && !any_prunable; ++a) {
    const auto sz = static_cast<std::size_t>(groups.head[a]);
    any_prunable = sz > m && sz <= kMaxGroupSize;
  }
  if (!any_prunable) return std::nullopt;
  for (std::size_t a = 0; a < V; ++a) groups.head[a + 1] += groups.head[a];
  groups.entries.resize(static_cast<std::size_t>(groups.head[V]));
  std::vector<std::int32_t> cursor(groups.head.begin(), groups.head.end() - 1);
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (!eligible[i]) continue;
    auto n = static_cast<topo::NodeId>(i);
    auto links = g.links_of(n);
    if (links.size() != 1) continue;
    GroupEntry e;
    e.node = n;
    e.link = links[0];
    e.bw = snap.bw(e.link);
    e.frac = link_fraction(snap, e.link, opt);
    e.cpu = node_cpu(snap, n, opt);
    const auto anchor = static_cast<std::size_t>(g.other_end(e.link, n));
    groups.entries[static_cast<std::size_t>(cursor[anchor]++)] = e;
  }
  return groups;
}

}  // namespace

std::vector<char> dominated_candidate_mask(const remos::NetworkSnapshot& snap,
                                           const SelectionOptions& opt,
                                           const std::vector<char>& eligible) {
  std::vector<char> cand = eligible;
  if (!opt.prune_dominated || opt.num_nodes < 2) return cand;
  // Candidate-count short-circuit: below the threshold the selection is
  // already sub-millisecond, so even a perfect prune cannot pay for its own
  // O(V + E) grouping pass (BENCH_scale.json showed pruned cold 3x *slower*
  // than unpruned on the 567-node fat-tree). Nothing is dropped, so the
  // winner is trivially preserved.
  if (opt.prune_min_candidates > 0) {
    std::size_t eligible_count = 0;
    for (char e : eligible) eligible_count += e ? 1 : 0;
    if (eligible_count < static_cast<std::size_t>(opt.prune_min_candidates))
      return cand;
  }
  const auto m = static_cast<std::size_t>(opt.num_nodes);
  const std::size_t V = snap.graph().node_count();

  auto groups = group_eligible_leaves(snap, opt, eligible, m);
  if (!groups) return cand;
  const auto& head = groups->head;
  const auto& entries = groups->entries;

  std::uint64_t dropped = 0;
  std::vector<GroupEntry> ranked;
  for (std::size_t a = 0; a < V; ++a) {
    const auto lo = static_cast<std::size_t>(head[a]);
    const auto hi = static_cast<std::size_t>(head[a + 1]);
    const std::size_t size = hi - lo;
    if (size <= m || size > kMaxGroupSize) continue;
    // Rank the group once; only rank-better entries can dominate, so each
    // node scans its prefix and stops at m dominators.
    ranked.assign(entries.begin() + static_cast<std::ptrdiff_t>(lo),
                  entries.begin() + static_cast<std::ptrdiff_t>(hi));
    std::sort(ranked.begin(), ranked.end(), rank_before);
    for (std::size_t r = m; r < ranked.size(); ++r) {
      const GroupEntry& b = ranked[r];
      std::size_t dominators = 0;
      for (std::size_t q = 0; q < r && dominators < m; ++q) {
        const GroupEntry& a2 = ranked[q];
        if (outlives(a2.bw, a2.link, b.bw, b.link) &&
            outlives(a2.frac, a2.link, b.frac, b.link))
          ++dominators;
      }
      if (dominators >= m) {
        cand[static_cast<std::size_t>(b.node)] = 0;
        ++dropped;
      }
    }
  }
  if (dropped > 0) dropped_counter().inc(dropped);
  return cand;
}

std::vector<char> exact_dominated_candidate_mask(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt,
    const std::vector<char>& eligible) {
  std::vector<char> cand = eligible;
  const auto m = static_cast<std::size_t>(opt.num_nodes);
  const std::size_t V = snap.graph().node_count();

  auto groups = group_eligible_leaves(snap, opt, eligible, m);
  if (!groups) return cand;
  const auto& head = groups->head;
  const auto& entries = groups->entries;

  std::vector<GroupEntry> by_id;
  for (std::size_t a = 0; a < V; ++a) {
    const auto lo = static_cast<std::size_t>(head[a]);
    const auto hi = static_cast<std::size_t>(head[a + 1]);
    const std::size_t size = hi - lo;
    if (size <= m || size > kMaxGroupSize) continue;
    // Entries were filled in id order, so each candidate's potential
    // dominators (strictly lower id) are exactly its prefix.
    by_id.assign(entries.begin() + static_cast<std::ptrdiff_t>(lo),
                 entries.begin() + static_cast<std::ptrdiff_t>(hi));
    for (std::size_t r = m; r < by_id.size(); ++r) {
      const GroupEntry& b = by_id[r];
      std::size_t dominators = 0;
      for (std::size_t q = 0; q < r && dominators < m; ++q) {
        const GroupEntry& a2 = by_id[q];
        // Weak dominance on every objective key suffices: with a lower id
        // the swap B -> A is value-preserving *and* lexicographically
        // improving, so ties are prunable here (unlike the greedy mask).
        if (a2.cpu >= b.cpu && a2.bw >= b.bw && a2.frac >= b.frac)
          ++dominators;
      }
      if (dominators >= m) cand[static_cast<std::size_t>(b.node)] = 0;
    }
  }
  return cand;
}

}  // namespace netsel::select
