#include "select/prune.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace netsel::select {

namespace {

obs::Counter& dropped_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("select.prune.dropped");
  return c;
}

/// Pruning is an optimisation that is always allowed to under-prune: groups
/// larger than this skip the quadratic dominator count rather than risk
/// O(k^2) work on a 10k-host star.
constexpr std::size_t kMaxGroupSize = 4096;

struct GroupEntry {
  topo::NodeId node;
  topo::LinkId link;
  double bw;
  double frac;
  double cpu;
};

/// The top_m_by_cpu ranking order: (cpu desc, id asc).
bool rank_before(const GroupEntry& a, const GroupEntry& b) {
  return a.cpu > b.cpu || (a.cpu == b.cpu && a.node < b.node);
}

/// A's link strictly follows B's in an ascending (key, link id) deletion
/// order, i.e. A's link survives at least as long as B's.
bool outlives(double key_a, topo::LinkId la, double key_b, topo::LinkId lb) {
  return key_a > key_b || (key_a == key_b && la > lb);
}

}  // namespace

std::vector<char> dominated_candidate_mask(const remos::NetworkSnapshot& snap,
                                           const SelectionOptions& opt,
                                           const std::vector<char>& eligible) {
  std::vector<char> cand = eligible;
  if (!opt.prune_dominated || opt.num_nodes < 2) return cand;
  const auto& g = snap.graph();
  const auto m = static_cast<std::size_t>(opt.num_nodes);

  // Bucket eligible degree-1 hosts by their attachment node.
  std::vector<std::vector<GroupEntry>> groups(g.node_count());
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (!eligible[i]) continue;
    auto n = static_cast<topo::NodeId>(i);
    auto links = g.links_of(n);
    if (links.size() != 1) continue;
    GroupEntry e;
    e.node = n;
    e.link = links[0];
    e.bw = snap.bw(e.link);
    e.frac = link_fraction(snap, e.link, opt);
    e.cpu = node_cpu(snap, n, opt);
    groups[static_cast<std::size_t>(g.other_end(e.link, n))].push_back(e);
  }

  std::uint64_t dropped = 0;
  std::vector<GroupEntry> ranked;
  for (auto& group : groups) {
    if (group.size() <= m || group.size() > kMaxGroupSize) continue;
    // Rank the group once; only rank-better entries can dominate, so each
    // node scans its prefix and stops at m dominators.
    ranked = group;
    std::sort(ranked.begin(), ranked.end(), rank_before);
    for (std::size_t r = m; r < ranked.size(); ++r) {
      const GroupEntry& b = ranked[r];
      std::size_t dominators = 0;
      for (std::size_t q = 0; q < r && dominators < m; ++q) {
        const GroupEntry& a = ranked[q];
        if (outlives(a.bw, a.link, b.bw, b.link) &&
            outlives(a.frac, a.link, b.frac, b.link))
          ++dominators;
      }
      if (dominators >= m) {
        cand[static_cast<std::size_t>(b.node)] = 0;
        ++dropped;
      }
    }
  }
  if (dropped > 0) dropped_counter().inc(dropped);
  return cand;
}

}  // namespace netsel::select
