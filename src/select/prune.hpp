#pragma once
// Dominated-candidate pruning for the selection hot paths.
//
// On datacenter-scale topologies (topo/synthetic.hpp) most hosts hang off a
// shared leaf switch, and most of them can never be selected: a host whose
// NIC bandwidth AND fractional cpu are both dominated by >= m siblings on
// the same switch is outranked wherever it goes (Bender et al. make the
// same observation for communication-aware processor allocation — the
// search stays tractable at scale only with aggressive candidate pruning).
//
// Soundness is exact, not heuristic. Host B (eligible, degree 1, attached
// to S) is dropped from the candidate set only when at least m nodes A
// (eligible, degree 1, attached to the same S) satisfy all of
//
//   (bw_A,  link_A) >=lex (bw_B,  link_B)    -- A's link outlives B's in
//   (frac_A, link_A) >=lex (frac_B, link_B)     both deletion orders
//   cpu-rank(A) before cpu-rank(B)           -- (cpu desc, id asc), the
//                                               top_m_by_cpu order
//
// Whenever B sits in a component with >= 2 nodes, its own link is active,
// hence S and all m dominators' links are active too (their links follow
// B's in the Fig. 2 (bw, id) and Fig. 3 (fraction, id) deletion sequences),
// so the component contains m members outranking B: B can never appear in
// any top-m selection. Dominators are counted regardless of their own
// pruned status (the argument needs their presence, not their candidacy),
// and pruning is skipped entirely for m == 1 (a host can then win as a
// lone singleton component where its dominators are absent).
//
// Crucially, pruned nodes must STILL count toward per-component eligible
// totals — Fig. 2 picks the component with the most eligible nodes and
// every feasibility test compares eligible counts against m — so the
// algorithms keep their eligibility vectors intact and drop pruned nodes
// from candidate/ranking lists only. The reference implementations
// (select/reference.hpp) never prune; tests assert bit-identical winners
// on every generated topology (tests/test_select_prune.cpp).

#include <vector>

#include "remos/snapshot.hpp"
#include "select/options.hpp"

namespace netsel::select {

/// Candidate mask under `opt`: a copy of `eligible` with dominated nodes
/// cleared. Returns `eligible` unchanged when opt.prune_dominated is false
/// or opt.num_nodes < 2. `eligible` must have one entry per node (as
/// returned by SelectionContext::eligibility). Increments the
/// select.prune.dropped counter by the number of nodes cleared.
std::vector<char> dominated_candidate_mask(const remos::NetworkSnapshot& snap,
                                           const SelectionOptions& opt,
                                           const std::vector<char>& eligible);

/// Dominance mask for the *exact* selectors (brute force / select/bnb.hpp),
/// which must preserve not just the optimal objective but the brute-force
/// tie-break: among equal-objective m-subsets, the lexicographically first
/// (by node id). Same degree-1 same-anchor grouping and (bw, fraction, cpu)
/// keys as dominated_candidate_mask, but a dominator must have a *strictly
/// lower node id* and weakly dominate every key: swapping the dominated
/// host out for an unused dominator then never decreases any pairwise
/// bottleneck or the cpu minimum (the BFS paths beyond the shared switch
/// are identical) and always produces a lexicographically smaller set, so
/// the dominated host cannot appear in the exact answer. Applies for every
/// m >= 1 (subset semantics have no per-component feasibility rule), never
/// short-circuits on candidate count (the exact search is exponential, so
/// the O(V + E) pass always pays), and does not touch the
/// select.prune.dropped counter — callers report drops themselves.
std::vector<char> exact_dominated_candidate_mask(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt,
    const std::vector<char>& eligible);

}  // namespace netsel::select
