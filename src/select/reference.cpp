#include "select/reference.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "select/detail.hpp"
#include "topo/connectivity.hpp"

namespace netsel::select::detail {

namespace {

/// BFS parents from src under a link mask; parent_link[v] is the link used
/// to reach v, kInvalidLink for src and unreached nodes.
std::vector<topo::LinkId> bfs_parents(const topo::TopologyGraph& g,
                                      const std::vector<char>* link_active,
                                      topo::NodeId src) {
  std::vector<topo::LinkId> parent_link(g.node_count(), topo::kInvalidLink);
  std::vector<char> seen(g.node_count(), 0);
  std::queue<topo::NodeId> q;
  q.push(src);
  seen[static_cast<std::size_t>(src)] = 1;
  while (!q.empty()) {
    topo::NodeId u = q.front();
    q.pop();
    for (topo::LinkId l : g.links_of(u)) {
      if (link_active && !(*link_active)[static_cast<std::size_t>(l)]) continue;
      topo::NodeId v = g.other_end(l, u);
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        parent_link[static_cast<std::size_t>(v)] = l;
        q.push(v);
      }
    }
  }
  return parent_link;
}

std::vector<topo::LinkId> trace_path(
    const topo::TopologyGraph& g, const std::vector<topo::LinkId>& parent_link,
    topo::NodeId src, topo::NodeId dst) {
  std::vector<topo::LinkId> path;
  topo::NodeId u = dst;
  while (u != src) {
    topo::LinkId l = parent_link[static_cast<std::size_t>(u)];
    if (l == topo::kInvalidLink) return {};  // unreachable
    path.push_back(l);
    u = g.other_end(l, u);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

struct CandidateEval {
  std::vector<topo::NodeId> nodes;
  double mincpu = 0.0;
  double minbw = 0.0;
  double minresource = -std::numeric_limits<double>::infinity();
};

/// Evaluate the best candidate inside component `c` per Fig. 3 step 3.
CandidateEval evaluate_component(const remos::NetworkSnapshot& snap,
                                 const SelectionOptions& opt,
                                 const topo::Components& comps, int c,
                                 const std::vector<char>& mask, int m) {
  CandidateEval cand;
  cand.nodes = top_m_by_cpu(snap, opt, eligible_members(snap, opt, comps, c), m);
  cand.mincpu = min_cpu_of(snap, opt, cand.nodes);
  if (opt.steiner_restricted) {
    cand.minbw = std::numeric_limits<double>::infinity();
    for (topo::LinkId l : steiner_links(snap.graph(), mask, cand.nodes))
      cand.minbw = std::min(cand.minbw, link_fraction(snap, l, opt));
  } else {
    cand.minbw = min_fraction_in_component(snap, opt, comps, c, mask);
  }
  cand.minresource =
      std::min(cand.mincpu / opt.cpu_priority, cand.minbw / opt.bw_priority);
  return cand;
}

}  // namespace

SetEvaluation reference_evaluate_set(const remos::NetworkSnapshot& snap,
                                     const std::vector<topo::NodeId>& nodes,
                                     const SelectionOptions& opt) {
  const auto& g = snap.graph();
  SetEvaluation ev;
  ev.connected = true;
  ev.min_cpu = std::numeric_limits<double>::infinity();
  ev.min_pair_bw = std::numeric_limits<double>::infinity();
  ev.min_pair_bw_fraction = std::numeric_limits<double>::infinity();
  if (nodes.empty())
    throw std::invalid_argument("reference_evaluate_set: empty set");
  for (topo::NodeId n : nodes) {
    if (!g.is_compute(n))
      throw std::invalid_argument(
          "reference_evaluate_set: non-compute node in set");
    ev.min_cpu = std::min(ev.min_cpu, node_cpu(snap, n, opt));
  }
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    auto parents = bfs_parents(g, nullptr, nodes[i]);
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i] == nodes[j]) continue;
      auto path = trace_path(g, parents, nodes[i], nodes[j]);
      if (path.empty()) {
        ev.connected = false;
        ev.min_pair_bw = 0.0;
        ev.min_pair_bw_fraction = 0.0;
        continue;
      }
      double latency = 0.0;
      for (topo::LinkId l : path) {
        ev.min_pair_bw = std::min(ev.min_pair_bw, snap.bw(l));
        ev.min_pair_bw_fraction =
            std::min(ev.min_pair_bw_fraction, link_fraction(snap, l, opt));
        latency += g.link(l).latency;
      }
      ev.max_pair_latency = std::max(ev.max_pair_latency, latency);
    }
  }
  ev.balanced = std::min(ev.min_cpu / opt.cpu_priority,
                         ev.min_pair_bw_fraction / opt.bw_priority);
  return ev;
}

SelectionResult reference_select_max_compute(const remos::NetworkSnapshot& snap,
                                             const SelectionOptions& opt) {
  validate_options(snap, opt);
  const int m = opt.num_nodes;
  auto mask = initial_link_mask(snap, opt);
  auto comps = topo::connected_components(snap.graph(), mask);
  auto counts = eligible_counts(snap, opt, comps);

  SelectionResult result;
  double best = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < comps.count; ++c) {
    if (counts[static_cast<std::size_t>(c)] < m) continue;
    auto members = eligible_members(snap, opt, comps, c);
    auto chosen = top_m_by_cpu(snap, opt, std::move(members), m);
    double mincpu = min_cpu_of(snap, opt, chosen);
    if (mincpu > best) {
      best = mincpu;
      result.feasible = true;
      result.nodes = std::move(chosen);
      result.min_cpu = mincpu;
      result.min_bw_fraction =
          min_fraction_in_component(snap, opt, comps, c, mask);
      result.objective = mincpu;
    }
  }
  if (!result.feasible) result.note = "no component with enough eligible nodes";
  return result;
}

SelectionResult reference_select_max_bandwidth(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt) {
  validate_options(snap, opt);
  const int m = opt.num_nodes;
  auto mask = initial_link_mask(snap, opt);

  SelectionResult result;

  // Step 1: any m eligible compute nodes in one component — the component
  // with the most eligible nodes, top-m by cpu.
  auto pick_from = [&](const topo::Components& comps,
                       const std::vector<int>& counts) -> int {
    int best = -1;
    for (int c = 0; c < comps.count; ++c) {
      if (counts[static_cast<std::size_t>(c)] < m) continue;
      if (best == -1 || counts[static_cast<std::size_t>(c)] >
                            counts[static_cast<std::size_t>(best)])
        best = c;
    }
    return best;
  };

  {
    auto comps = topo::connected_components(snap.graph(), mask);
    auto counts = eligible_counts(snap, opt, comps);
    int c = pick_from(comps, counts);
    if (c == -1) {
      result.note = "no component with enough eligible nodes";
      return result;
    }
    result.nodes =
        top_m_by_cpu(snap, opt, eligible_members(snap, opt, comps, c), m);
    result.feasible = true;
  }

  // Steps 2-4: repeatedly remove the minimum-available-bandwidth edge while
  // a large-enough component survives.
  while (true) {
    topo::LinkId victim = min_bw_link(snap, mask);
    if (victim == topo::kInvalidLink) break;  // no edges left: m == 1 case
    mask[static_cast<std::size_t>(victim)] = 0;
    auto comps = topo::connected_components(snap.graph(), mask);
    auto counts = eligible_counts(snap, opt, comps);
    int c = pick_from(comps, counts);
    if (c == -1) break;
    result.nodes =
        top_m_by_cpu(snap, opt, eligible_members(snap, opt, comps, c), m);
    ++result.iterations;
  }

  // Step 5: report the exact achieved figures.
  auto ev = reference_evaluate_set(snap, result.nodes, opt);
  result.min_cpu = ev.min_cpu;
  result.min_bw_fraction = ev.min_pair_bw_fraction;
  result.objective = ev.min_pair_bw;
  return result;
}

SelectionResult reference_select_balanced(const remos::NetworkSnapshot& snap,
                                          const SelectionOptions& opt) {
  validate_options(snap, opt);
  const int m = opt.num_nodes;
  auto mask = initial_link_mask(snap, opt);

  SelectionResult result;

  // Step 1: start from the max-compute choice (best feasible component).
  CandidateEval best;
  {
    auto comps = topo::connected_components(snap.graph(), mask);
    auto counts = eligible_counts(snap, opt, comps);
    for (int c = 0; c < comps.count; ++c) {
      if (counts[static_cast<std::size_t>(c)] < m) continue;
      auto cand = evaluate_component(snap, opt, comps, c, mask, m);
      if (cand.minresource > best.minresource) best = std::move(cand);
    }
  }
  if (best.nodes.empty()) {
    result.note = "no component with enough eligible nodes";
    return result;
  }

  // Steps 2-4: remove the minimum-fractional-bandwidth edge; re-evaluate
  // every surviving component; keep going while minresource improves.
  while (true) {
    topo::LinkId victim = min_fraction_link(snap, opt, mask);
    if (victim == topo::kInvalidLink) break;
    mask[static_cast<std::size_t>(victim)] = 0;
    ++result.iterations;

    bool newsetflag = false;
    bool any_feasible = false;
    auto comps = topo::connected_components(snap.graph(), mask);
    auto counts = eligible_counts(snap, opt, comps);
    for (int c = 0; c < comps.count; ++c) {
      if (counts[static_cast<std::size_t>(c)] < m) continue;
      any_feasible = true;
      auto cand = evaluate_component(snap, opt, comps, c, mask, m);
      if (cand.minresource > best.minresource) {
        best = std::move(cand);
        newsetflag = true;
      }
    }
    // Paper-exact rule: stop on the first non-improving removal. The
    // exhaustive extension keeps sweeping while any component can still
    // host the application.
    if (opt.exhaustive_balanced ? !any_feasible : !newsetflag) break;
  }

  result.feasible = true;
  result.nodes = best.nodes;
  result.min_cpu = best.mincpu;
  result.min_bw_fraction = best.minbw;
  result.objective = best.minresource;
  return result;
}

}  // namespace netsel::select::detail
