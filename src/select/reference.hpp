#pragma once
// The pre-SelectionContext ("naive") selection paths, retained verbatim:
//
//   - the literal Fig. 2 loop (delete min-bandwidth edge, recompute
//     connected components, O(E) sweeps per deletion),
//   - the literal Fig. 3 loop (same, by fractional bandwidth, re-evaluating
//     every surviving component each iteration),
//   - the one-sweep max-compute selection,
//   - the BFS-per-pair set evaluation.
//
// They serve two purposes: (1) the golden-equivalence oracle — the
// refactored context-based algorithms must select identical node sets
// (tests/test_select_context.cpp, tests/test_select_prune.cpp) — and
// (2) the general-case fallback for inputs outside the fast kernels'
// domain (the Steiner-restricted ablation, whose bandwidth term is not a
// per-component constant).
//
// reference_evaluate_set keeps the historical single-node convention
// (min_pair_bw = +infinity); the production evaluate_set now reports the
// finite NIC-availability convention instead (see select/objective.hpp).

#include <vector>

#include "remos/snapshot.hpp"
#include "select/objective.hpp"
#include "select/options.hpp"
#include "topo/graph.hpp"

namespace netsel::select::detail {

SetEvaluation reference_evaluate_set(const remos::NetworkSnapshot& snap,
                                     const std::vector<topo::NodeId>& nodes,
                                     const SelectionOptions& opt = {});

SelectionResult reference_select_max_compute(const remos::NetworkSnapshot& snap,
                                             const SelectionOptions& opt);

SelectionResult reference_select_max_bandwidth(
    const remos::NetworkSnapshot& snap, const SelectionOptions& opt);

SelectionResult reference_select_balanced(const remos::NetworkSnapshot& snap,
                                          const SelectionOptions& opt);

}  // namespace netsel::select::detail
