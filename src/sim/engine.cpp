#include "sim/engine.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace netsel::sim {

namespace {
// One global counter across all live Simulators (concurrent trials each own
// one): total events processed by the process. Sharded — concurrent trials
// on pool workers land in distinct cache lines.
obs::Counter& events_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sim.events");
  return c;
}
}  // namespace

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_)
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  EventId id = next_seq_;
  queue_.push(Entry{t, next_seq_, id, std::move(fn)});
  ++next_seq_;
  return id;
}

EventId Simulator::schedule_after(SimTime dt, std::function<void()> fn) {
  if (dt < 0.0)
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  return schedule_at(now_ + dt, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id != kInvalidEvent) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.t;
    ++executed_;
    events_counter().inc();
    e.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime t) {
  if (t < now_)
    throw std::invalid_argument("Simulator::run_until: time in the past");
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.t > t) break;
    step();
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

std::size_t Simulator::pending_events() const {
  // cancelled_ entries may or may not still be in the queue; this count is
  // an upper bound used only for diagnostics and tests.
  return queue_.size();
}

}  // namespace netsel::sim
