#pragma once
// Discrete-event simulation core. Single-threaded, deterministic: events at
// equal timestamps fire in scheduling order. The host and network models are
// *fluid* models — resource shares change only at events (job/flow arrivals
// and departures), and state is integrated exactly between events, so there
// is no time-stepping error anywhere in the simulator.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace netsel::sim {

/// Simulation time in seconds.
using SimTime = double;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Returns a handle usable
  /// with cancel().
  EventId schedule_at(SimTime t, std::function<void()> fn);
  /// Schedule `fn` after a delay `dt` (>= 0).
  EventId schedule_after(SimTime dt, std::function<void()> fn);
  /// Cancel a pending event. Cancelling an already-fired or already
  /// cancelled event is a harmless no-op.
  void cancel(EventId id);

  /// Execute the next event. Returns false when no events remain.
  bool step();
  /// Execute all events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);
  /// Execute events until the queue drains.
  void run();

  std::size_t pending_events() const;
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace netsel::sim
