#include "sim/host.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace netsel::sim {

namespace {
/// Work below this is considered finished; guards float residue after
/// settling the finishing job to (analytically) zero.
constexpr double kWorkEps = 1e-9;
/// A job whose residual service time is below this completes immediately;
/// prevents completion deltas below the clock's floating-point resolution.
constexpr double kMinDt = 1e-9;
}  // namespace

double Host::LoadTracker::read(SimTime now, double tau) const {
  double dt = now - updated;
  if (dt <= 0.0) return value;
  double decay = std::exp(-dt / tau);
  return static_cast<double>(count) + (value - static_cast<double>(count)) * decay;
}

void Host::LoadTracker::set_count(SimTime now, double tau, int new_count) {
  value = read(now, tau);
  updated = now;
  count = new_count;
}

Host::Host(Simulator& sim, HostConfig cfg, std::string name)
    : sim_(sim), cfg_(cfg), name_(std::move(name)) {
  if (cfg_.capacity <= 0.0)
    throw std::invalid_argument("Host: capacity must be > 0");
  if (cfg_.loadavg_tau <= 0.0)
    throw std::invalid_argument("Host: loadavg_tau must be > 0");
  last_settle_ = sim_.now();
  total_load_.updated = sim_.now();
}

JobId Host::submit(double cpu_seconds, OwnerTag owner,
                   std::function<void(JobId)> on_complete) {
  return submit(cpu_seconds, 0.0, owner, std::move(on_complete));
}

JobId Host::submit(double cpu_seconds, double memory_bytes, OwnerTag owner,
                   std::function<void(JobId)> on_complete) {
  return submit_weighted(cpu_seconds, 1.0, memory_bytes, owner,
                         std::move(on_complete));
}

JobId Host::submit_weighted(double cpu_seconds, double weight,
                            double memory_bytes, OwnerTag owner,
                            std::function<void(JobId)> on_complete) {
  if (cpu_seconds <= 0.0)
    throw std::invalid_argument("Host::submit: cpu_seconds must be > 0");
  if (weight <= 0.0)
    throw std::invalid_argument("Host::submit: weight must be > 0");
  if (memory_bytes < 0.0)
    throw std::invalid_argument("Host::submit: memory must be >= 0");
  settle();
  JobId id = next_job_++;
  jobs_.emplace(id,
                Job{cpu_seconds, weight, memory_bytes, owner, std::move(on_complete)});
  memory_in_use_ += memory_bytes;
  total_weight_ += weight;
  total_load_.set_count(sim_.now(), cfg_.loadavg_tau, active_jobs());
  auto& tracker = owner_load_[owner];
  if (tracker.updated == 0.0 && tracker.count == 0 && tracker.value == 0.0)
    tracker.updated = sim_.now();
  tracker.set_count(sim_.now(), cfg_.loadavg_tau, tracker.count + 1);
  reschedule();
  return id;
}

double Host::kill(JobId id) {
  settle();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::invalid_argument("Host::kill: unknown job");
  double remaining = it->second.remaining;
  OwnerTag owner = it->second.owner;
  memory_in_use_ -= it->second.memory;
  total_weight_ -= it->second.weight;
  jobs_.erase(it);
  total_load_.set_count(sim_.now(), cfg_.loadavg_tau, active_jobs());
  owner_load_[owner].set_count(sim_.now(), cfg_.loadavg_tau,
                               owner_load_[owner].count - 1);
  reschedule();
  return remaining;
}

double Host::remaining_work(JobId id) {
  settle();
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::invalid_argument("Host::remaining_work: unknown job");
  reschedule();  // settle() reset progress baseline; keep event consistent
  return it->second.remaining;
}

int Host::active_jobs_excluding(OwnerTag owner) const {
  int c = 0;
  for (const auto& [id, j] : jobs_) {
    if (j.owner != owner) ++c;
  }
  return c;
}

double Host::current_rate_per_job() const {
  if (jobs_.empty()) return cfg_.capacity;
  return cfg_.capacity / static_cast<double>(jobs_.size());
}

double Host::job_rate(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::invalid_argument("Host::job_rate: unknown job");
  return cfg_.capacity * it->second.weight / total_weight_;
}

double Host::load_average() const {
  return total_load_.read(sim_.now(), cfg_.loadavg_tau);
}

double Host::load_average_excluding(OwnerTag owner) const {
  return load_average() - owner_load_average(owner);
}

double Host::owner_load_average(OwnerTag owner) const {
  auto it = owner_load_.find(owner);
  if (it == owner_load_.end()) return 0.0;
  return it->second.read(sim_.now(), cfg_.loadavg_tau);
}

std::vector<OwnerTag> Host::tracked_owners() const {
  std::vector<OwnerTag> out;
  out.reserve(owner_load_.size());
  for (const auto& [owner, tracker] : owner_load_) out.push_back(owner);
  return out;
}

void Host::settle() {
  double dt = sim_.now() - last_settle_;
  last_settle_ = sim_.now();
  if (dt <= 0.0 || jobs_.empty()) return;
  double per_weight = dt * cfg_.capacity / total_weight_;
  for (auto& [id, j] : jobs_) {
    j.remaining -= per_weight * j.weight;
    if (j.remaining < 0.0) j.remaining = 0.0;
  }
}

void Host::reschedule() {
  if (completion_event_ != kInvalidEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = kInvalidEvent;
  }
  if (jobs_.empty()) return;
  double dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, j] : jobs_) {
    dt = std::min(dt, j.remaining * total_weight_ / (cfg_.capacity * j.weight));
  }
  completion_event_ =
      sim_.schedule_after(dt, [this] { on_completion_event(); });
}

void Host::on_completion_event() {
  completion_event_ = kInvalidEvent;
  settle();
  // Collect all jobs that are done (ties complete together), then fire
  // callbacks after the host state is consistent — a callback may submit a
  // new job to this very host.
  std::vector<std::pair<JobId, std::function<void(JobId)>>> done;
  const double settled_weight = total_weight_;  // rates at the settle instant
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    double rate = cfg_.capacity * it->second.weight / settled_weight;
    if (it->second.remaining <= kWorkEps ||
        it->second.remaining / rate <= kMinDt) {
      owner_load_[it->second.owner].set_count(
          sim_.now(), cfg_.loadavg_tau, owner_load_[it->second.owner].count - 1);
      memory_in_use_ -= it->second.memory;
      total_weight_ -= it->second.weight;
      done.emplace_back(it->first, std::move(it->second.on_complete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  total_load_.set_count(sim_.now(), cfg_.loadavg_tau, active_jobs());
  reschedule();
  for (auto& [id, cb] : done) {
    if (cb) cb(id);
  }
}

}  // namespace netsel::sim
