#pragma once
// Processor-sharing host model.
//
// Every compute node is modelled as a processor-sharing server: the paper's
// cpu = 1/(1+loadaverage) function (§3.1) assumes "the processor will be
// equally shared by those processes and the user application process", i.e.
// equal-priority round-robin, which in the fluid limit is exactly processor
// sharing. Jobs carry an owner tag so that an application's own load can be
// separated from competing load ("the load and traffic caused by the
// application itself must be captured separately", §3.3, dynamic migration).
//
// The host also integrates a UNIX-style exponentially-damped load average,
// which is what Remos (and thus node selection) observes. Between events the
// active job count n is constant, so the ODE  L' = (n - L)/tau  has the
// exact solution  L(t) = n + (L0 - n) e^{-(t-t0)/tau}  — no sampling error.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"

namespace netsel::sim {

/// Identifies who created a job or flow. Owner 0 is reserved for background
/// (synthetic generator) activity; applications use ids > 0.
using OwnerTag = std::int32_t;
inline constexpr OwnerTag kBackgroundOwner = 0;

using JobId = std::uint64_t;

struct HostConfig {
  /// Relative computation capacity (reference node type = 1.0). A job of
  /// `w` reference-CPU-seconds takes w / capacity seconds when alone.
  double capacity = 1.0;
  /// Load-average damping time constant in seconds (UNIX uses 60 for the
  /// 1-minute average).
  double loadavg_tau = 60.0;
};

class Host {
 public:
  Host(Simulator& sim, HostConfig cfg, std::string name = {});
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Submit a job needing `cpu_seconds` of reference-node CPU time.
  /// `on_complete` fires (possibly much later) when the job's work is done.
  JobId submit(double cpu_seconds, OwnerTag owner,
               std::function<void(JobId)> on_complete = {});

  /// Submit a job that also pins `memory_bytes` of RAM for its lifetime
  /// (§3.4 memory-availability extension). Memory is not a scheduling
  /// resource here — it only drives the availability signal the monitor
  /// reports; oversubscription is allowed and simply shows as negative
  /// free memory clamped to zero.
  JobId submit(double cpu_seconds, double memory_bytes, OwnerTag owner,
               std::function<void(JobId)> on_complete = {});

  /// Weighted (generalised) processor sharing: a job progresses at
  /// capacity * weight / (sum of active weights). The paper assumes equal
  /// priority ("the processor will be equally shared", §3.1) — weight 1.0
  /// reproduces that exactly; niced background jobs (< 1.0) let an
  /// application keep more than 1/(1+loadavg), which is precisely where
  /// the paper's cpu function turns pessimistic (see bench_ablation).
  JobId submit_weighted(double cpu_seconds, double weight, double memory_bytes,
                        OwnerTag owner,
                        std::function<void(JobId)> on_complete = {});

  /// Kill a running job; its completion callback never fires. Returns the
  /// reference-CPU-seconds of work remaining (used by migration to resubmit
  /// the job elsewhere). Throws if the job is not active.
  double kill(JobId id);

  bool is_active(JobId id) const { return jobs_.count(id) > 0; }
  /// Remaining reference-CPU-seconds for an active job, settled to now.
  double remaining_work(JobId id);

  int active_jobs() const { return static_cast<int>(jobs_.size()); }
  int active_jobs_excluding(OwnerTag owner) const;

  /// Instantaneous per-job service rate (reference-CPU-seconds per second)
  /// for an equal-weight job; with weighted jobs present use job_rate().
  double current_rate_per_job() const;
  /// Instantaneous service rate of a specific active job.
  double job_rate(JobId id) const;
  /// Sum of active job weights.
  double total_weight() const { return total_weight_; }

  /// Exponentially-damped load average over all jobs, integrated to now.
  double load_average() const;
  /// Load average with the given owner's contribution removed. The per-owner
  /// counts are integrated with the same time constant, so
  /// load_average() == sum over owners of owner load averages.
  double load_average_excluding(OwnerTag owner) const;
  /// This owner's own exponentially-damped load contribution.
  double owner_load_average(OwnerTag owner) const;
  /// Owners that have ever run jobs here (monitoring enumerates these).
  std::vector<OwnerTag> tracked_owners() const;

  double capacity() const { return cfg_.capacity; }
  const std::string& name() const { return name_; }

  /// Total memory pinned by active jobs (bytes).
  double memory_in_use() const { return memory_in_use_; }

 private:
  struct Job {
    double remaining = 0.0;  // reference-CPU-seconds
    double weight = 1.0;     // generalised-PS share weight
    double memory = 0.0;     // bytes pinned while active
    OwnerTag owner = kBackgroundOwner;
    std::function<void(JobId)> on_complete;
  };

  struct LoadTracker {
    double value = 0.0;
    SimTime updated = 0.0;
    int count = 0;

    double read(SimTime now, double tau) const;
    void set_count(SimTime now, double tau, int new_count);
  };

  /// Apply elapsed progress to all jobs and update trackers; call before any
  /// state change and before any read of remaining work.
  void settle();
  /// Recompute the next completion event after a membership change.
  void reschedule();
  void on_completion_event();

  Simulator& sim_;
  HostConfig cfg_;
  std::string name_;
  std::unordered_map<JobId, Job> jobs_;
  JobId next_job_ = 1;
  SimTime last_settle_ = 0.0;
  EventId completion_event_ = kInvalidEvent;

  LoadTracker total_load_;
  std::unordered_map<OwnerTag, LoadTracker> owner_load_;
  double memory_in_use_ = 0.0;
  double total_weight_ = 0.0;
};

}  // namespace netsel::sim
