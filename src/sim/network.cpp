#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace netsel::sim {

namespace {
constexpr double kByteEps = 1e-6;
constexpr double kTimeEps = 1e-12;
/// A flow whose residual drain time is below this completes immediately.
/// Guards against completion deltas smaller than the floating-point ULP of
/// the current simulation time, which would stall the clock.
constexpr double kMinDt = 1e-6;
}  // namespace

Network::Network(Simulator& sim, const topo::TopologyGraph& g,
                 const topo::RoutingTable& routes, NetworkConfig cfg)
    : sim_(sim), graph_(&g), routes_(&routes), cfg_(cfg) {
  if (cfg_.hop_latency < 0.0)
    throw std::invalid_argument("Network: hop_latency must be >= 0");
  dir_capacity_.resize(g.link_count() * 2);
  dir_used_.assign(g.link_count() * 2, 0.0);
  dir_count_.assign(g.link_count() * 2, 0);
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    const topo::Link& lk = g.link(static_cast<topo::LinkId>(l));
    dir_capacity_[l * 2 + 0] = lk.capacity_ab;
    dir_capacity_[l * 2 + 1] = lk.capacity_ba;
  }
  last_settle_ = sim.now();
}

FlowId Network::start_flow(topo::NodeId src, topo::NodeId dst, double bytes,
                           OwnerTag owner,
                           std::function<void(FlowId)> on_complete) {
  if (bytes <= 0.0)
    throw std::invalid_argument("Network::start_flow: bytes must be > 0");
  settle();
  Flow f;
  f.owner = owner;
  f.on_complete = std::move(on_complete);
  if (src != dst) {
    auto nodes = routes_->route_nodes(src, dst);
    auto links = routes_->route(src, dst);
    f.hops.reserve(links.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      const topo::Link& lk = graph_->link(links[i]);
      f.hops.push_back(Hop{links[i], lk.a == nodes[i]});
    }
    f.remaining = bytes;
  } else {
    f.remaining = 0.0;  // local delivery: no links traversed
  }
  f.latency_left = cfg_.hop_latency * static_cast<double>(f.hops.size());
  for (const Hop& h : f.hops) f.latency_left += graph_->link(h.link).latency;
  FlowId id = next_flow_++;
  flows_.emplace(id, std::move(f));
  recompute();
  return id;
}

double Network::cancel_flow(FlowId id) {
  settle();
  auto it = flows_.find(id);
  if (it == flows_.end())
    throw std::invalid_argument("Network::cancel_flow: unknown flow");
  double remaining = it->second.remaining;
  flows_.erase(it);
  recompute();
  return remaining;
}

double Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end())
    throw std::invalid_argument("Network::flow_rate: unknown flow");
  return it->second.rate;
}

double Network::remaining_bytes(FlowId id) {
  settle();
  auto it = flows_.find(id);
  if (it == flows_.end())
    throw std::invalid_argument("Network::remaining_bytes: unknown flow");
  recompute();  // settle moved the baseline; keep the completion event valid
  return it->second.remaining;
}

double Network::link_used_bw(topo::LinkId l, bool forward) const {
  return dir_used_[dir_index(l, forward)];
}

double Network::link_used_bw_excluding(topo::LinkId l, bool forward,
                                       OwnerTag owner) const {
  double used = 0.0;
  for (const auto& [id, f] : flows_) {
    if (f.owner == owner) continue;
    for (const Hop& h : f.hops) {
      if (h.link == l && h.forward == forward) {
        used += f.rate;
        break;
      }
    }
  }
  return used;
}

double Network::link_capacity(topo::LinkId l, bool forward) const {
  return dir_capacity_[dir_index(l, forward)];
}

int Network::link_flow_count(topo::LinkId l, bool forward) const {
  return dir_count_[dir_index(l, forward)];
}

double Network::link_used_bw_by(topo::LinkId l, bool forward,
                                OwnerTag owner) const {
  return link_used_bw(l, forward) -
         link_used_bw_excluding(l, forward, owner);
}

std::vector<OwnerTag> Network::active_owners() const {
  std::vector<OwnerTag> out;
  for (const auto& [id, f] : flows_) {
    if (std::find(out.begin(), out.end(), f.owner) == out.end())
      out.push_back(f.owner);
  }
  return out;
}

void Network::settle() {
  double dt = sim_.now() - last_settle_;
  last_settle_ = sim_.now();
  if (dt <= 0.0) return;
  for (auto& [id, f] : flows_) {
    if (!f.hops.empty()) {
      f.remaining -= f.rate * dt / 8.0;
      if (f.remaining < 0.0) f.remaining = 0.0;
    }
    f.latency_left -= dt;
    if (f.latency_left < 0.0) f.latency_left = 0.0;
  }
}

void Network::recompute() {
  if (completion_event_ != kInvalidEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = kInvalidEvent;
  }
  std::fill(dir_used_.begin(), dir_used_.end(), 0.0);
  std::fill(dir_count_.begin(), dir_count_.end(), 0);
  if (flows_.empty()) return;

  // --- Progressive filling (max-min fairness). ---
  // Work on index vectors for cache friendliness; the flow set is small
  // relative to the event rate, so rebuilding per recompute is cheap.
  std::vector<Flow*> fl;
  fl.reserve(flows_.size());
  for (auto& [id, f] : flows_) fl.push_back(&f);

  std::vector<double> residual = dir_capacity_;
  std::vector<int> unfrozen_on(dir_capacity_.size(), 0);
  std::vector<char> frozen(fl.size(), 0);
  std::size_t unfrozen_total = 0;
  for (std::size_t i = 0; i < fl.size(); ++i) {
    fl[i]->rate = 0.0;
    if (fl[i]->hops.empty()) {
      // Local delivery: saturates nothing, completes on latency alone.
      frozen[i] = 1;
      fl[i]->rate = std::numeric_limits<double>::infinity();
      continue;
    }
    ++unfrozen_total;
    for (const Hop& h : fl[i]->hops) ++unfrozen_on[dir_index(h.link, h.forward)];
  }

  while (unfrozen_total > 0) {
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t d = 0; d < residual.size(); ++d) {
      if (unfrozen_on[d] > 0)
        inc = std::min(inc, residual[d] / static_cast<double>(unfrozen_on[d]));
    }
    if (!std::isfinite(inc)) break;  // defensive; cannot happen on valid routes
    if (inc < 0.0) inc = 0.0;
    // Grow every unfrozen flow by inc and drain the links they traverse.
    for (std::size_t i = 0; i < fl.size(); ++i) {
      if (frozen[i]) continue;
      fl[i]->rate += inc;
    }
    for (std::size_t d = 0; d < residual.size(); ++d)
      residual[d] -= inc * static_cast<double>(unfrozen_on[d]);
    // Freeze flows crossing any saturated direction.
    for (std::size_t i = 0; i < fl.size(); ++i) {
      if (frozen[i]) continue;
      bool saturated = false;
      for (const Hop& h : fl[i]->hops) {
        std::size_t d = dir_index(h.link, h.forward);
        if (residual[d] <= dir_capacity_[d] * 1e-12 + 1e-9) {
          saturated = true;
          break;
        }
      }
      if (saturated) {
        frozen[i] = 1;
        --unfrozen_total;
        for (const Hop& h : fl[i]->hops)
          --unfrozen_on[dir_index(h.link, h.forward)];
      }
    }
  }

  // Refresh utilisation cache and schedule the next completion.
  double next_dt = std::numeric_limits<double>::infinity();
  for (auto& [id, f] : flows_) {
    for (const Hop& h : f.hops) {
      dir_used_[dir_index(h.link, h.forward)] += f.rate;
      dir_count_[dir_index(h.link, h.forward)] += 1;
    }
    double t_bytes = 0.0;
    if (!f.hops.empty()) {
      t_bytes = f.rate > 0.0 ? f.remaining * 8.0 / f.rate
                             : std::numeric_limits<double>::infinity();
    }
    double dt = std::max(t_bytes, f.latency_left);
    next_dt = std::min(next_dt, dt);
  }
  if (std::isfinite(next_dt)) {
    completion_event_ = sim_.schedule_after(std::max(next_dt, 0.0),
                                            [this] { on_completion_event(); });
  }
}

void Network::on_completion_event() {
  completion_event_ = kInvalidEvent;
  settle();
  std::vector<std::pair<FlowId, std::function<void(FlowId)>>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& f = it->second;
    bool bytes_done =
        f.hops.empty() || f.remaining <= kByteEps ||
        (f.rate > 0.0 && f.remaining * 8.0 / f.rate <= kMinDt);
    if (bytes_done && f.latency_left <= kTimeEps) {
      done.emplace_back(it->first, std::move(f.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute();
  for (auto& [id, cb] : done) {
    if (cb) cb(id);
  }
}

}  // namespace netsel::sim
