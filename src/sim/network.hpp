#pragma once
// Fluid flow network with global max-min fair bandwidth sharing.
//
// Every active transfer (application message or background traffic stream)
// is a fluid flow along its static route. Each *direction* of each link is a
// separate resource — matching §3.3 of the paper, where a pair of nodes may
// be connected by distinct links per direction and the available capacity of
// a bidirectional link is the minimum of the two directions.
//
// Rates are recomputed by progressive filling (water-filling) whenever a
// flow starts or ends: all unfrozen flows grow at the same rate until some
// directional link saturates, flows through saturated links freeze, repeat.
// This is the standard max-min fair allocation and reproduces, at the fluid
// level, how TCP-like sharing degrades transfers on congested links — the
// phenomenon the paper's traffic generator creates on the CMU testbed.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"

namespace netsel::sim {

using FlowId = std::uint64_t;

/// One directional hop of a route: link + direction (true = a->b).
struct Hop {
  topo::LinkId link = topo::kInvalidLink;
  bool forward = true;
};

struct NetworkConfig {
  /// Fixed per-hop latency added to every transfer's completion time
  /// (models store-and-forward/propagation; the paper treats latency as
  /// future work, so the default is 0).
  double hop_latency = 0.0;
};

class Network {
 public:
  Network(Simulator& sim, const topo::TopologyGraph& g,
          const topo::RoutingTable& routes, NetworkConfig cfg = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Start a transfer of `bytes` from src to dst along the static route.
  /// `on_complete` fires when the last byte arrives.
  FlowId start_flow(topo::NodeId src, topo::NodeId dst, double bytes,
                    OwnerTag owner, std::function<void(FlowId)> on_complete = {});

  /// Abort a transfer; its callback never fires. Returns remaining bytes.
  double cancel_flow(FlowId id);

  bool is_active(FlowId id) const { return flows_.count(id) > 0; }
  /// Current max-min fair rate of a flow in bits/second.
  double flow_rate(FlowId id) const;
  /// Remaining bytes of an active flow, settled to now.
  double remaining_bytes(FlowId id);

  int active_flows() const { return static_cast<int>(flows_.size()); }

  /// Sum of the rates of flows currently using the given link direction
  /// (bits/second); what an SNMP byte counter would show as utilisation.
  double link_used_bw(topo::LinkId l, bool forward) const;
  /// Utilisation excluding flows owned by `owner` (for migration queries).
  double link_used_bw_excluding(topo::LinkId l, bool forward,
                                OwnerTag owner) const;
  /// Directional capacity of a link.
  double link_capacity(topo::LinkId l, bool forward) const;
  /// Number of flows currently traversing the given link direction.
  int link_flow_count(topo::LinkId l, bool forward) const;
  /// Bandwidth used on the direction by this owner's flows alone.
  double link_used_bw_by(topo::LinkId l, bool forward, OwnerTag owner) const;
  /// Owners of the currently active flows (deduplicated, unordered).
  std::vector<OwnerTag> active_owners() const;

  const topo::TopologyGraph& graph() const { return *graph_; }
  const topo::RoutingTable& routes() const { return *routes_; }

 private:
  struct Flow {
    std::vector<Hop> hops;
    double remaining = 0.0;  // bytes
    double rate = 0.0;       // bits/second
    OwnerTag owner = kBackgroundOwner;
    double latency_left = 0.0;  // residual path latency not yet elapsed
    std::function<void(FlowId)> on_complete;
  };

  std::size_t dir_index(topo::LinkId l, bool forward) const {
    return static_cast<std::size_t>(l) * 2 + (forward ? 0 : 1);
  }

  /// Integrate all flows' remaining bytes to now.
  void settle();
  /// Recompute max-min fair rates and the next completion event.
  void recompute();
  void on_completion_event();

  Simulator& sim_;
  const topo::TopologyGraph* graph_;
  const topo::RoutingTable* routes_;
  NetworkConfig cfg_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_ = 1;
  SimTime last_settle_ = 0.0;
  EventId completion_event_ = kInvalidEvent;
  /// Directional capacities, indexed by dir_index().
  std::vector<double> dir_capacity_;
  /// Cached per-direction used bandwidth (sum of flow rates).
  std::vector<double> dir_used_;
  /// Cached per-direction flow counts.
  std::vector<int> dir_count_;
};

}  // namespace netsel::sim
