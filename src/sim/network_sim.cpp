#include "sim/network_sim.hpp"

#include <stdexcept>

namespace netsel::sim {

NetworkSim::NetworkSim(topo::TopologyGraph topology, NetworkSimConfig cfg)
    : topology_(std::move(topology)) {
  topology_.validate();
  routes_ = std::make_unique<topo::RoutingTable>(topology_);
  network_ = std::make_unique<Network>(sim_, topology_, *routes_, cfg.network);
  hosts_.resize(topology_.node_count());
  for (std::size_t i = 0; i < topology_.node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    const topo::Node& n = topology_.node(id);
    if (n.kind != topo::NodeKind::Compute) continue;
    HostConfig hc = cfg.host;
    hc.capacity = cfg.host.capacity * n.cpu_capacity;
    hosts_[i] = std::make_unique<Host>(sim_, hc, n.name);
  }
}

Host& NetworkSim::host(topo::NodeId n) {
  auto& h = hosts_.at(static_cast<std::size_t>(n));
  if (!h) throw std::invalid_argument("NetworkSim::host: not a compute node");
  return *h;
}

const Host& NetworkSim::host(topo::NodeId n) const {
  const auto& h = hosts_.at(static_cast<std::size_t>(n));
  if (!h) throw std::invalid_argument("NetworkSim::host: not a compute node");
  return *h;
}

bool NetworkSim::has_host(topo::NodeId n) const {
  return static_cast<std::size_t>(n) < hosts_.size() &&
         hosts_[static_cast<std::size_t>(n)] != nullptr;
}

OwnerTag NetworkSim::new_owner() { return next_owner_++; }

}  // namespace netsel::sim
