#pragma once
// NetworkSim — the simulated testbed: one Simulator clock, one Host per
// compute node, one flow Network over the topology. This is the substitute
// for the paper's physical CMU testbed; everything above it (Remos monitor,
// generators, applications) interacts only through this facade.

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"

namespace netsel::sim {

struct NetworkSimConfig {
  HostConfig host;        // capacity here is a default; node cpu_capacity scales it
  NetworkConfig network;
};

class NetworkSim {
 public:
  explicit NetworkSim(topo::TopologyGraph topology, NetworkSimConfig cfg = {});
  NetworkSim(const NetworkSim&) = delete;
  NetworkSim& operator=(const NetworkSim&) = delete;

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  const topo::TopologyGraph& topology() const { return topology_; }
  const topo::RoutingTable& routes() const { return *routes_; }
  Network& network() { return *network_; }
  const Network& network() const { return *network_; }

  /// Host of a compute node; throws for network nodes.
  Host& host(topo::NodeId n);
  const Host& host(topo::NodeId n) const;
  bool has_host(topo::NodeId n) const;

  /// Allocate a fresh application owner tag (> 0).
  OwnerTag new_owner();

 private:
  topo::TopologyGraph topology_;
  Simulator sim_;
  std::unique_ptr<topo::RoutingTable> routes_;
  std::unique_ptr<Network> network_;
  /// Indexed by NodeId; null for network nodes.
  std::vector<std::unique_ptr<Host>> hosts_;
  OwnerTag next_owner_ = 1;
};

}  // namespace netsel::sim
