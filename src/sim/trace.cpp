#include "sim/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace netsel::sim {

TraceRecorder::TraceRecorder(NetworkSim& net, TraceConfig cfg)
    : net_(net), cfg_(cfg), hosts_(net.topology().compute_nodes()) {
  if (cfg_.interval <= 0.0)
    throw std::invalid_argument("TraceRecorder: interval must be > 0");
  width_ = (cfg_.hosts ? hosts_.size() : 0) +
           (cfg_.links ? net_.topology().link_count() * 2 : 0);
  if (width_ == 0)
    throw std::invalid_argument("TraceRecorder: nothing selected to record");
}

void TraceRecorder::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  sample();
  schedule_next();
}

void TraceRecorder::stop() {
  running_ = false;
  ++epoch_;
}

void TraceRecorder::schedule_next() {
  std::uint64_t my_epoch = epoch_;
  net_.sim().schedule_after(cfg_.interval, [this, my_epoch] {
    if (!running_ || epoch_ != my_epoch) return;
    sample();
    schedule_next();
  });
}

void TraceRecorder::sample() {
  times_.push_back(net_.sim().now());
  if (cfg_.hosts) {
    for (topo::NodeId n : hosts_) values_.push_back(net_.host(n).load_average());
  }
  if (cfg_.links) {
    for (std::size_t l = 0; l < net_.topology().link_count(); ++l) {
      auto id = static_cast<topo::LinkId>(l);
      values_.push_back(net_.network().link_used_bw(id, true));
      values_.push_back(net_.network().link_used_bw(id, false));
    }
  }
}

std::vector<std::string> TraceRecorder::columns() const {
  std::vector<std::string> cols{"time"};
  if (cfg_.hosts) {
    for (topo::NodeId n : hosts_)
      cols.push_back("load:" + net_.topology().node(n).name);
  }
  if (cfg_.links) {
    for (std::size_t l = 0; l < net_.topology().link_count(); ++l) {
      const auto& name = net_.topology().link(static_cast<topo::LinkId>(l)).name;
      cols.push_back("bw:" + name + ":fwd");
      cols.push_back("bw:" + name + ":rev");
    }
  }
  return cols;
}

double TraceRecorder::value(std::size_t row, std::size_t col) const {
  if (row >= times_.size() || col >= width_)
    throw std::out_of_range("TraceRecorder::value");
  return values_[row * width_ + col];
}

void TraceRecorder::write_csv(std::ostream& os) const {
  auto cols = columns();
  for (std::size_t c = 0; c < cols.size(); ++c) os << (c ? "," : "") << cols[c];
  os << "\n";
  for (std::size_t r = 0; r < times_.size(); ++r) {
    os << times_[r];
    for (std::size_t c = 0; c < width_; ++c) os << "," << values_[r * width_ + c];
    os << "\n";
  }
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace netsel::sim
