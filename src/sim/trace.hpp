#pragma once
// Periodic time-series recorder over a simulated testbed: samples host load
// averages and directional link utilisation on a fixed interval, and
// renders CSV for figure generation (benches use it to emit the series
// behind their tables). Unlike the Remos monitor this is an *observer for
// experimenters* — it reads ground truth, not measurements.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/network_sim.hpp"

namespace netsel::sim {

struct TraceConfig {
  double interval = 5.0;  ///< seconds between samples
  bool hosts = true;      ///< record per-host load averages
  bool links = true;      ///< record per-direction link utilisation (bps)
};

class TraceRecorder {
 public:
  TraceRecorder(NetworkSim& net, TraceConfig cfg = {});

  /// Begin sampling at the current simulation time (first sample now).
  void start();
  void stop();

  std::size_t samples() const { return times_.size(); }

  /// Column names in CSV order (time first).
  std::vector<std::string> columns() const;
  /// Stream the CSV (header + one row per sample: time, then host loads,
  /// then link utilisations) without materialising it — long-run traces go
  /// straight to a file instead of building one giant string.
  void write_csv(std::ostream& os) const;
  /// Convenience wrapper over write_csv for small traces.
  std::string to_csv() const;

  /// Value of column `col` (by columns() index, excluding the time column)
  /// at sample `row` — for tests and programmatic consumers.
  double value(std::size_t row, std::size_t col) const;
  double time_of(std::size_t row) const { return times_.at(row); }

 private:
  void sample();
  void schedule_next();

  NetworkSim& net_;
  TraceConfig cfg_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;
  std::vector<topo::NodeId> hosts_;
  std::vector<double> times_;
  /// Row-major: samples x columns.
  std::vector<double> values_;
  std::size_t width_ = 0;
};

}  // namespace netsel::sim
