#include "topo/connectivity.hpp"

#include <stdexcept>

namespace netsel::topo {

std::vector<NodeId> Components::members(int c) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < comp_of.size(); ++i) {
    if (comp_of[i] == c) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

Components connected_components(const TopologyGraph& g,
                                const std::vector<char>& link_active) {
  if (link_active.size() != g.link_count())
    throw std::invalid_argument("connected_components: mask size mismatch");
  Components result;
  result.comp_of.assign(g.node_count(), -1);
  std::vector<NodeId> stack;
  for (std::size_t start = 0; start < g.node_count(); ++start) {
    if (result.comp_of[start] != -1) continue;
    int c = result.count++;
    result.compute_count.push_back(0);
    result.node_count.push_back(0);
    stack.push_back(static_cast<NodeId>(start));
    result.comp_of[start] = c;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      result.node_count[static_cast<std::size_t>(c)]++;
      if (g.is_compute(u)) result.compute_count[static_cast<std::size_t>(c)]++;
      for (LinkId l : g.links_of(u)) {
        if (!link_active[static_cast<std::size_t>(l)]) continue;
        NodeId v = g.other_end(l, u);
        if (result.comp_of[static_cast<std::size_t>(v)] == -1) {
          result.comp_of[static_cast<std::size_t>(v)] = c;
          stack.push_back(v);
        }
      }
    }
  }
  return result;
}

Components connected_components(const TopologyGraph& g) {
  std::vector<char> all(g.link_count(), 1);
  return connected_components(g, all);
}

int largest_compute_component(const Components& c) {
  int best = -1;
  int best_count = 0;
  for (int i = 0; i < c.count; ++i) {
    if (c.compute_count[static_cast<std::size_t>(i)] > best_count) {
      best_count = c.compute_count[static_cast<std::size_t>(i)];
      best = i;
    }
  }
  return best;
}

}  // namespace netsel::topo
