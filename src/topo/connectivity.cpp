#include "topo/connectivity.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace netsel::topo {

std::vector<NodeId> Components::members(int c) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < comp_of.size(); ++i) {
    if (comp_of[i] == c) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

Components connected_components(const TopologyGraph& g,
                                const std::vector<char>& link_active) {
  if (link_active.size() != g.link_count())
    throw std::invalid_argument("connected_components: mask size mismatch");
  Components result;
  result.comp_of.assign(g.node_count(), -1);
  std::vector<NodeId> stack;
  for (std::size_t start = 0; start < g.node_count(); ++start) {
    if (result.comp_of[start] != -1) continue;
    int c = result.count++;
    result.compute_count.push_back(0);
    result.node_count.push_back(0);
    stack.push_back(static_cast<NodeId>(start));
    result.comp_of[start] = c;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      result.node_count[static_cast<std::size_t>(c)]++;
      if (g.is_compute(u)) result.compute_count[static_cast<std::size_t>(c)]++;
      for (LinkId l : g.links_of(u)) {
        if (!link_active[static_cast<std::size_t>(l)]) continue;
        NodeId v = g.other_end(l, u);
        if (result.comp_of[static_cast<std::size_t>(v)] == -1) {
          result.comp_of[static_cast<std::size_t>(v)] = c;
          stack.push_back(v);
        }
      }
    }
  }
  return result;
}

Components connected_components(const TopologyGraph& g) {
  std::vector<char> all(g.link_count(), 1);
  return connected_components(g, all);
}

CsrAdjacency CsrAdjacency::build(const TopologyGraph& g) {
  CsrAdjacency adj;
  const std::size_t V = g.node_count();
  const std::size_t E = g.link_count();
  adj.row_start.assign(V + 1, 0);
  adj.neighbor.reserve(2 * E);
  adj.via.reserve(2 * E);
  for (std::size_t n = 0; n < V; ++n) {
    auto id = static_cast<NodeId>(n);
    for (LinkId l : g.links_of(id)) {
      adj.neighbor.push_back(g.other_end(l, id));
      adj.via.push_back(l);
    }
    adj.row_start[n + 1] = static_cast<std::int32_t>(adj.neighbor.size());
  }
  adj.link_latency.resize(E);
  for (std::size_t l = 0; l < E; ++l)
    adj.link_latency[l] = g.link(static_cast<LinkId>(l)).latency;
  adj.is_compute.resize(V);
  for (std::size_t n = 0; n < V; ++n)
    adj.is_compute[n] = g.is_compute(static_cast<NodeId>(n)) ? 1 : 0;
  return adj;
}

void CsrAdjacency::patch_add_node(const TopologyGraph& g, NodeId n) {
  if (static_cast<std::size_t>(n) != node_count())
    throw std::invalid_argument("patch_add_node: ids must be patched in order");
  row_start.push_back(row_start.back());
  is_compute.push_back(g.is_compute(n) ? 1 : 0);
}

void CsrAdjacency::patch_add_link(const TopologyGraph& g, LinkId l) {
  if (static_cast<std::size_t>(l) != link_count())
    throw std::invalid_argument("patch_add_link: ids must be patched in order");
  const Link& lk = g.link(l);
  // add_link appends to incident_[a] then incident_[b]; insert each
  // half-edge at the end of its row so the links_of() order is preserved.
  auto insert_half = [&](NodeId at, NodeId other) {
    const auto pos = static_cast<std::size_t>(
        row_start[static_cast<std::size_t>(at) + 1]);
    neighbor.insert(neighbor.begin() + static_cast<std::ptrdiff_t>(pos), other);
    via.insert(via.begin() + static_cast<std::ptrdiff_t>(pos), l);
    for (std::size_t k = static_cast<std::size_t>(at) + 1;
         k < row_start.size(); ++k)
      ++row_start[k];
  };
  insert_half(lk.a, lk.b);
  insert_half(lk.b, lk.a);
  link_latency.push_back(lk.latency);
}

void CsrAdjacency::patch_remove_link(const TopologyGraph& g, LinkId l) {
  if (l < 0 || static_cast<std::size_t>(l) >= link_count())
    throw std::invalid_argument("patch_remove_link: link out of range");
  const Link& lk = g.link(l);  // record outlives removal
  auto erase_half = [&](NodeId at) {
    const auto lo = static_cast<std::size_t>(
        row_start[static_cast<std::size_t>(at)]);
    const auto hi = static_cast<std::size_t>(
        row_start[static_cast<std::size_t>(at) + 1]);
    for (std::size_t e = lo; e < hi; ++e) {
      if (via[e] != l) continue;
      neighbor.erase(neighbor.begin() + static_cast<std::ptrdiff_t>(e));
      via.erase(via.begin() + static_cast<std::ptrdiff_t>(e));
      for (std::size_t k = static_cast<std::size_t>(at) + 1;
           k < row_start.size(); ++k)
        --row_start[k];
      return;
    }
    throw std::invalid_argument("patch_remove_link: half-edge not found");
  };
  erase_half(lk.a);
  erase_half(lk.b);
  // The latency slot stays: link ids are never recycled, and keeping the
  // slot keeps every id-indexed weight array aligned with link_count().
}

void CsrAdjacency::patch_remove_node(NodeId n) {
  if (n < 0 || static_cast<std::size_t>(n) >= node_count())
    throw std::invalid_argument("patch_remove_node: node out of range");
  const auto lo = static_cast<std::size_t>(row_start[static_cast<std::size_t>(n)]);
  const auto hi =
      static_cast<std::size_t>(row_start[static_cast<std::size_t>(n) + 1]);
  if (lo != hi)
    throw std::invalid_argument("patch_remove_node: node still has links");
  is_compute[static_cast<std::size_t>(n)] = 0;
}

Components connected_components(const CsrAdjacency& adj,
                                const std::vector<char>& link_active) {
  if (link_active.size() != adj.link_count())
    throw std::invalid_argument("connected_components: mask size mismatch");
  Components result;
  result.comp_of.assign(adj.node_count(), -1);
  std::vector<NodeId> stack;
  for (std::size_t start = 0; start < adj.node_count(); ++start) {
    if (result.comp_of[start] != -1) continue;
    int c = result.count++;
    result.compute_count.push_back(0);
    result.node_count.push_back(0);
    stack.push_back(static_cast<NodeId>(start));
    result.comp_of[start] = c;
    while (!stack.empty()) {
      const auto iu = static_cast<std::size_t>(stack.back());
      stack.pop_back();
      result.node_count[static_cast<std::size_t>(c)]++;
      if (adj.is_compute[iu]) result.compute_count[static_cast<std::size_t>(c)]++;
      const auto lo = static_cast<std::size_t>(adj.row_start[iu]);
      const auto hi = static_cast<std::size_t>(adj.row_start[iu + 1]);
      for (std::size_t e = lo; e < hi; ++e) {
        if (!link_active[static_cast<std::size_t>(adj.via[e])]) continue;
        const auto iv = static_cast<std::size_t>(adj.neighbor[e]);
        if (result.comp_of[iv] == -1) {
          result.comp_of[iv] = c;
          stack.push_back(adj.neighbor[e]);
        }
      }
    }
  }
  return result;
}

Components connected_components(const CsrAdjacency& adj) {
  std::vector<char> all(adj.link_count(), 1);
  return connected_components(adj, all);
}

EligibleUnionFind::EligibleUnionFind(const std::vector<char>& eligible)
    : parent_(eligible.size()),
      size_(eligible.size(), 1),
      eligible_(eligible.size()),
      min_member_(eligible.size()) {
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    parent_[i] = static_cast<NodeId>(i);
    min_member_[i] = static_cast<NodeId>(i);
    eligible_[i] = eligible[i] ? 1 : 0;
    if (eligible_[i] > max_eligible_) max_eligible_ = eligible_[i];
  }
}

NodeId EligibleUnionFind::find(NodeId n) {
  // Path halving.
  while (parent_[idx(n)] != n) {
    parent_[idx(n)] = parent_[idx(parent_[idx(n)])];
    n = parent_[idx(n)];
  }
  return n;
}

NodeId EligibleUnionFind::unite(NodeId a, NodeId b) {
  NodeId ra = find(a);
  NodeId rb = find(b);
  if (ra == rb) return ra;
  if (size_[idx(ra)] < size_[idx(rb)]) std::swap(ra, rb);
  parent_[idx(rb)] = ra;
  size_[idx(ra)] += size_[idx(rb)];
  eligible_[idx(ra)] += eligible_[idx(rb)];
  if (min_member_[idx(rb)] < min_member_[idx(ra)])
    min_member_[idx(ra)] = min_member_[idx(rb)];
  if (eligible_[idx(ra)] > max_eligible_) max_eligible_ = eligible_[idx(ra)];
  return ra;
}

BottleneckRow bottleneck_row(const TopologyGraph& g, NodeId src,
                             std::span<const double> weight,
                             std::span<const double> weight2) {
  if (weight.size() != g.link_count())
    throw std::invalid_argument("bottleneck_row: weight size mismatch");
  if (!weight2.empty() && weight2.size() != g.link_count())
    throw std::invalid_argument("bottleneck_row: weight2 size mismatch");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = g.node_count();
  BottleneckRow row;
  row.bottleneck.assign(n, 0.0);
  if (!weight2.empty()) row.bottleneck2.assign(n, 0.0);
  row.latency.assign(n, 0.0);
  row.reached.assign(n, 0);
  row.bottleneck[static_cast<std::size_t>(src)] = kInf;
  if (!weight2.empty()) row.bottleneck2[static_cast<std::size_t>(src)] = kInf;
  row.reached[static_cast<std::size_t>(src)] = 1;
  row.tree_link.assign(n, kInvalidLink);
  row.order.reserve(n);
  row.order.push_back(src);
  // The FIFO order and links_of() iteration order below must match
  // select::bfs_path exactly: they define the same BFS tree, hence the same
  // deterministic paths on cyclic graphs.
  std::queue<NodeId> q;
  q.push(src);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    const auto iu = static_cast<std::size_t>(u);
    for (LinkId l : g.links_of(u)) {
      NodeId v = g.other_end(l, u);
      const auto iv = static_cast<std::size_t>(v);
      if (row.reached[iv]) continue;
      row.reached[iv] = 1;
      const auto il = static_cast<std::size_t>(l);
      row.tree_link[iv] = l;
      row.order.push_back(v);
      row.bottleneck[iv] = std::min(row.bottleneck[iu], weight[il]);
      if (!weight2.empty())
        row.bottleneck2[iv] = std::min(row.bottleneck2[iu], weight2[il]);
      row.latency[iv] = row.latency[iu] + g.link(l).latency;
      q.push(v);
    }
  }
  return row;
}

BottleneckRow bottleneck_row(const CsrAdjacency& adj, NodeId src,
                             std::span<const double> weight,
                             std::span<const double> weight2) {
  if (weight.size() != adj.link_count())
    throw std::invalid_argument("bottleneck_row: weight size mismatch");
  if (!weight2.empty() && weight2.size() != adj.link_count())
    throw std::invalid_argument("bottleneck_row: weight2 size mismatch");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = adj.node_count();
  BottleneckRow row;
  row.bottleneck.assign(n, 0.0);
  if (!weight2.empty()) row.bottleneck2.assign(n, 0.0);
  row.latency.assign(n, 0.0);
  row.reached.assign(n, 0);
  row.bottleneck[static_cast<std::size_t>(src)] = kInf;
  if (!weight2.empty()) row.bottleneck2[static_cast<std::size_t>(src)] = kInf;
  row.reached[static_cast<std::size_t>(src)] = 1;
  row.tree_link.assign(n, kInvalidLink);
  // Flat FIFO frontier: a node enters at most once, so a vector with a read
  // cursor is the same queue discipline as the graph-walking overload. The
  // frontier *is* the discovery order, recorded as row.order.
  std::vector<NodeId>& fifo = row.order;
  fifo.reserve(n);
  fifo.push_back(src);
  for (std::size_t head = 0; head < fifo.size(); ++head) {
    const auto iu = static_cast<std::size_t>(fifo[head]);
    const auto lo = static_cast<std::size_t>(adj.row_start[iu]);
    const auto hi = static_cast<std::size_t>(adj.row_start[iu + 1]);
    for (std::size_t e = lo; e < hi; ++e) {
      const auto iv = static_cast<std::size_t>(adj.neighbor[e]);
      if (row.reached[iv]) continue;
      row.reached[iv] = 1;
      const auto il = static_cast<std::size_t>(adj.via[e]);
      row.tree_link[iv] = adj.via[e];
      row.bottleneck[iv] = std::min(row.bottleneck[iu], weight[il]);
      if (!weight2.empty())
        row.bottleneck2[iv] = std::min(row.bottleneck2[iu], weight2[il]);
      row.latency[iv] = row.latency[iu] + adj.link_latency[il];
      fifo.push_back(adj.neighbor[e]);
    }
  }
  return row;
}

int largest_compute_component(const Components& c) {
  int best = -1;
  int best_count = 0;
  for (int i = 0; i < c.count; ++i) {
    if (c.compute_count[static_cast<std::size_t>(i)] > best_count) {
      best_count = c.compute_count[static_cast<std::size_t>(i)];
      best = i;
    }
  }
  return best;
}

}  // namespace netsel::topo
