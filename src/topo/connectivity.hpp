#pragma once
// Connected-component machinery used by the Fig. 2 / Fig. 3 selection
// algorithms, which repeatedly delete the minimum-bandwidth edge and re-ask
// "which components still contain at least m compute nodes?".

#include <vector>

#include "topo/graph.hpp"

namespace netsel::topo {

/// Result of a component decomposition under an edge mask.
struct Components {
  /// component id per node (dense, 0-based).
  std::vector<int> comp_of;
  /// number of components.
  int count = 0;
  /// compute-node count per component.
  std::vector<int> compute_count;
  /// total node count per component.
  std::vector<int> node_count;

  /// Nodes belonging to component c, in id order.
  std::vector<NodeId> members(int c) const;
};

/// Decompose `g` into connected components considering only links for which
/// `link_active[l]` is true. `link_active` must have size g.link_count().
Components connected_components(const TopologyGraph& g,
                                const std::vector<char>& link_active);

/// Convenience: all links active.
Components connected_components(const TopologyGraph& g);

/// Id of the component with the most compute nodes (ties broken toward the
/// lower component id, which is deterministic); -1 when there are none.
int largest_compute_component(const Components& c);

}  // namespace netsel::topo
