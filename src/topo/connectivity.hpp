#pragma once
// Connected-component machinery used by the Fig. 2 / Fig. 3 selection
// algorithms, which repeatedly delete the minimum-bandwidth edge and re-ask
// "which components still contain at least m compute nodes?".
//
// Besides the literal per-sweep decomposition the paper describes, this
// header provides the kernels the selection layer's fast paths are built on:
//   - EligibleUnionFind: offline *incremental* connectivity. The Fig. 2/3
//     edge-deletion sequence, processed in reverse, is a sequence of edge
//     *insertions*; a union-find that tracks per-component eligible-node
//     counts answers "first state with a component of >= m eligible nodes"
//     in near-linear time instead of one O(V+E) sweep per deletion.
//   - bottleneck_row: per-source widest-path/bottleneck values along the
//     deterministic BFS tree (on acyclic graphs: the unique path, hence the
//     true widest path). This is the cached kernel behind the pairwise
//     min-bandwidth objective.

#include <span>
#include <vector>

#include "topo/graph.hpp"

namespace netsel::topo {

/// Result of a component decomposition under an edge mask.
struct Components {
  /// component id per node (dense, 0-based).
  std::vector<int> comp_of;
  /// number of components.
  int count = 0;
  /// compute-node count per component.
  std::vector<int> compute_count;
  /// total node count per component.
  std::vector<int> node_count;

  /// Nodes belonging to component c, in id order.
  std::vector<NodeId> members(int c) const;
};

/// Decompose `g` into connected components considering only links for which
/// `link_active[l]` is true. `link_active` must have size g.link_count().
Components connected_components(const TopologyGraph& g,
                                const std::vector<char>& link_active);

/// Convenience: all links active.
Components connected_components(const TopologyGraph& g);

/// Compressed-sparse-row view of a TopologyGraph's adjacency, for the hot
/// traversal kernels (bottleneck_row, connected_components). The per-node
/// vector-of-vectors layout of TopologyGraph::links_of costs a pointer chase
/// and a Link lookup per edge visit; the CSR form stores (neighbor, link)
/// pairs in two flat arrays, *preserving the exact links_of() iteration
/// order* so every traversal below is bit-identical to the graph-walking
/// version. Purely structural (no bandwidths): build once per graph and
/// reuse across snapshots.
struct CsrAdjacency {
  /// row_start[n] .. row_start[n+1] indexes the half-edges of node n.
  std::vector<std::int32_t> row_start;
  /// Other endpoint of each half-edge.
  std::vector<NodeId> neighbor;
  /// Link id of each half-edge.
  std::vector<LinkId> via;
  /// Per-link one-way latency, copied out of the Link records.
  std::vector<double> link_latency;
  /// Per-node compute flag (for component compute counts).
  std::vector<char> is_compute;

  std::size_t node_count() const { return is_compute.size(); }
  std::size_t link_count() const { return link_latency.size(); }

  static CsrAdjacency build(const TopologyGraph& g);

  /// In-place structural patches, mirroring a TopologyGraph mutation so the
  /// patched CSR equals build() on the mutated graph bit for bit — half-edge
  /// order included. O(V + E) memmoves per patch instead of a full rebuild
  /// with fresh allocations. `g` must already reflect the mutation; patches
  /// must be applied in mutation order.
  void patch_add_node(const TopologyGraph& g, NodeId n);
  void patch_add_link(const TopologyGraph& g, LinkId l);
  void patch_remove_link(const TopologyGraph& g, LinkId l);
  /// Node removal only clears the compute flag (removal requires degree 0,
  /// so there are no half-edges to drop).
  void patch_remove_node(NodeId n);
};

/// connected_components over the CSR view; identical output (component
/// numbering included) to the TopologyGraph overloads.
Components connected_components(const CsrAdjacency& adj,
                                const std::vector<char>& link_active);
Components connected_components(const CsrAdjacency& adj);

/// Id of the component with the most compute nodes (ties broken toward the
/// lower component id, which is deterministic); -1 when there are none.
int largest_compute_component(const Components& c);

/// Union-find over node ids with per-component bookkeeping tailored to the
/// selection algorithms: each component tracks its *eligible*-node count
/// (eligibility is whatever mask the caller supplies — typically "compute,
/// unmasked, meets min-cpu/memory requirements") and its minimum member id
/// (the tie-break `connected_components` implies, since component ids are
/// assigned in increasing order of the smallest contained node id).
///
/// Used to process an edge-deletion sequence offline: replay the deletions
/// in reverse as unions, stopping at the first (reverse) state whose best
/// component satisfies the caller's predicate. Union by size + path halving:
/// effectively O(alpha) per operation.
class EligibleUnionFind {
 public:
  /// `eligible` must have one entry per node; true entries count toward
  /// eligible_count().
  explicit EligibleUnionFind(const std::vector<char>& eligible);

  NodeId find(NodeId n);
  /// Merge the components of a and b; returns the surviving root.
  NodeId unite(NodeId a, NodeId b);

  /// Eligible members in the component rooted at `root`.
  int eligible_count(NodeId root) { return eligible_[idx(find(root))]; }
  /// Smallest node id in the component rooted at `root` (the deterministic
  /// component ordering of connected_components).
  NodeId min_member(NodeId root) { return min_member_[idx(find(root))]; }
  /// Largest eligible count over all current components.
  int max_eligible() const { return max_eligible_; }

 private:
  static std::size_t idx(NodeId n) { return static_cast<std::size_t>(n); }
  std::vector<NodeId> parent_;
  std::vector<int> size_;
  std::vector<int> eligible_;
  std::vector<NodeId> min_member_;
  int max_eligible_ = 0;
};

/// Per-source bottleneck values along the deterministic BFS tree of `g`
/// (FIFO queue, links_of() order — the exact tie-break used by static
/// routing and by the pairwise set evaluation). `weight` and `weight2` give
/// per-link widths; the row carries, for every destination, the minimum
/// weight along the tree path, the sum of link latencies, and reachability.
/// On acyclic graphs the BFS path is the unique path, so the bottleneck
/// equals the widest-path (max-bottleneck) value.
struct BottleneckRow {
  std::vector<double> bottleneck;   ///< min weight along path; src = +inf
  std::vector<double> bottleneck2;  ///< same for weight2 (empty if not given)
  std::vector<double> latency;      ///< summed link latency along path
  std::vector<char> reached;        ///< 0 for nodes in other components
  /// BFS-tree structure, recorded so a weight-only change can be replayed
  /// in place (select::SelectionContext): the link that first reached each
  /// node (kInvalidLink for src and unreached nodes) and the discovery
  /// (FIFO) order of the reached nodes, src first. Replaying the bottleneck
  /// recurrence over `order` with updated weights is bit-identical to a
  /// rebuild, because the tree is weight-independent.
  std::vector<LinkId> tree_link;
  std::vector<NodeId> order;
};

BottleneckRow bottleneck_row(const TopologyGraph& g, NodeId src,
                             std::span<const double> weight,
                             std::span<const double> weight2 = {});

/// CSR-backed bottleneck_row: same BFS tree (CSR preserves links_of order),
/// same values, no per-edge Link lookups. This is the kernel the
/// SelectionContext row cache runs at scale.
BottleneckRow bottleneck_row(const CsrAdjacency& adj, NodeId src,
                             std::span<const double> weight,
                             std::span<const double> weight2 = {});

}  // namespace netsel::topo
