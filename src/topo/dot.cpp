#include "topo/dot.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace netsel::topo {

std::string to_dot(const TopologyGraph& g, const DotOptions& opt) {
  if (!opt.link_labels.empty() && opt.link_labels.size() != g.link_count())
    throw std::invalid_argument("to_dot: link_labels size mismatch");
  std::ostringstream os;
  os << "graph " << opt.graph_name << " {\n";
  os << "  layout=neato; overlap=false; splines=true;\n";
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (g.node_removed(static_cast<NodeId>(i))) continue;
    const Node& n = g.node(static_cast<NodeId>(i));
    bool hl = std::find(opt.highlight.begin(), opt.highlight.end(),
                        static_cast<NodeId>(i)) != opt.highlight.end();
    os << "  \"" << n.name << "\" [shape="
       << (n.kind == NodeKind::Network ? "box" : "ellipse");
    if (hl) os << ", penwidth=3, style=bold";
    os << "];\n";
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    if (g.link_removed(static_cast<LinkId>(l))) continue;
    const Link& lk = g.link(static_cast<LinkId>(l));
    std::string label;
    if (!opt.link_labels.empty() && !opt.link_labels[l].empty()) {
      label = opt.link_labels[l];
    } else {
      label = util::fmt_mbps(lk.capacity_min());
    }
    os << "  \"" << g.node(lk.a).name << "\" -- \"" << g.node(lk.b).name
       << "\" [label=\"" << label << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace netsel::topo
