#pragma once
// Graphviz DOT export of a topology graph (optionally annotated with
// availability from a snapshot), reproducing the style of the paper's
// Figure 1 Remos graph — boxes for network nodes, ellipses for compute
// nodes, links labelled with capacity.

#include <string>
#include <vector>

#include "topo/graph.hpp"

namespace netsel::topo {

struct DotOptions {
  /// Per-link label override (e.g. "42.0/100 Mbps"); empty string keeps the
  /// default capacity label. Size must be 0 or link_count().
  std::vector<std::string> link_labels;
  /// Nodes to highlight (e.g. a selected node set), drawn with bold borders
  /// like the selected nodes in the paper's Fig. 4.
  std::vector<NodeId> highlight;
  std::string graph_name = "remos";
};

std::string to_dot(const TopologyGraph& g, const DotOptions& opt = {});

}  // namespace netsel::topo
