#include "topo/flat_graph.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

namespace netsel::topo {

namespace {

std::size_t align8(std::size_t n) { return (n + 7u) & ~std::size_t{7}; }

}  // namespace

FlatGraph FlatGraph::build(const CsrAdjacency& adj, std::span<const double> bw,
                           std::span<const double> bwfactor) {
  if (bw.size() != adj.link_count() || bwfactor.size() != adj.link_count())
    throw std::invalid_argument("FlatGraph::build: weight size mismatch");
  FlatGraph g;
  g.node_count_ = adj.node_count();
  g.link_count_ = adj.link_count();
  g.half_edge_count_ = adj.neighbor.size();

  const std::size_t off_row = 0;
  const std::size_t off_nbr =
      off_row + align8((g.node_count_ + 1) * sizeof(std::int32_t));
  const std::size_t off_via =
      off_nbr + align8(g.half_edge_count_ * sizeof(NodeId));
  const std::size_t off_bw =
      off_via + align8(g.half_edge_count_ * sizeof(LinkId));
  const std::size_t off_bwf = off_bw + align8(g.link_count_ * sizeof(double));
  const std::size_t off_lat = off_bwf + align8(g.link_count_ * sizeof(double));
  const std::size_t off_cmp = off_lat + align8(g.link_count_ * sizeof(double));
  const std::size_t off_xor = off_cmp + align8(g.node_count_ * sizeof(char));
  g.arena_bytes_ = off_xor + align8(g.link_count_ * sizeof(std::int32_t));
  g.arena_ = std::make_unique<std::byte[]>(g.arena_bytes_);

  std::byte* base = g.arena_.get();
  g.row_start_ = reinterpret_cast<std::int32_t*>(base + off_row);
  g.neighbor_ = reinterpret_cast<NodeId*>(base + off_nbr);
  g.via_ = reinterpret_cast<LinkId*>(base + off_via);
  g.bw_ = reinterpret_cast<double*>(base + off_bw);
  g.bwfactor_ = reinterpret_cast<double*>(base + off_bwf);
  g.latency_ = reinterpret_cast<double*>(base + off_lat);
  g.is_compute_ = reinterpret_cast<char*>(base + off_cmp);
  g.ends_xor_ = reinterpret_cast<std::int32_t*>(base + off_xor);

  std::memcpy(g.row_start_, adj.row_start.data(),
              (g.node_count_ + 1) * sizeof(std::int32_t));
  if (g.half_edge_count_ > 0) {
    std::memcpy(g.neighbor_, adj.neighbor.data(),
                g.half_edge_count_ * sizeof(NodeId));
    std::memcpy(g.via_, adj.via.data(), g.half_edge_count_ * sizeof(LinkId));
  }
  if (g.link_count_ > 0) {
    std::memcpy(g.bw_, bw.data(), g.link_count_ * sizeof(double));
    std::memcpy(g.bwfactor_, bwfactor.data(), g.link_count_ * sizeof(double));
    std::memcpy(g.latency_, adj.link_latency.data(),
                g.link_count_ * sizeof(double));
  }
  if (g.node_count_ > 0)
    std::memcpy(g.is_compute_, adj.is_compute.data(),
                g.node_count_ * sizeof(char));
  // Each link appears as two half-edges (u->v and v->u); both assignments
  // store the same symmetric value. Tombstoned link ids keep 0.
  std::memset(g.ends_xor_, 0, g.link_count_ * sizeof(std::int32_t));
  for (std::size_t u = 0; u < g.node_count_; ++u) {
    const auto lo = static_cast<std::size_t>(g.row_start_[u]);
    const auto hi = static_cast<std::size_t>(g.row_start_[u + 1]);
    for (std::size_t e = lo; e < hi; ++e)
      g.ends_xor_[static_cast<std::size_t>(g.via_[e])] =
          static_cast<std::int32_t>(static_cast<std::uint32_t>(u) ^
                                    static_cast<std::uint32_t>(g.neighbor_[e]));
  }
  return g;
}

BottleneckRow bottleneck_row(const FlatGraph& g, NodeId src) {
  if (src < 0 || static_cast<std::size_t>(src) >= g.node_count())
    throw std::invalid_argument("bottleneck_row: source out of range");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = g.node_count();
  const auto row_start = g.row_start();
  const auto neighbor = g.neighbor();
  const auto via = g.via();
  const auto bw = g.link_bw();
  const auto bwfactor = g.link_bwfactor();
  const auto latency = g.link_latency();

  BottleneckRow row;
  row.bottleneck.assign(n, 0.0);
  row.bottleneck2.assign(n, 0.0);
  row.latency.assign(n, 0.0);
  row.reached.assign(n, 0);
  row.bottleneck[static_cast<std::size_t>(src)] = kInf;
  row.bottleneck2[static_cast<std::size_t>(src)] = kInf;
  row.reached[static_cast<std::size_t>(src)] = 1;
  row.tree_link.assign(n, kInvalidLink);
  // Same flat-FIFO frontier as the CsrAdjacency kernel: the discovery order
  // IS the queue, recorded as row.order.
  std::vector<NodeId>& fifo = row.order;
  fifo.reserve(n);
  fifo.push_back(src);
  for (std::size_t head = 0; head < fifo.size(); ++head) {
    const auto iu = static_cast<std::size_t>(fifo[head]);
    const auto lo = static_cast<std::size_t>(row_start[iu]);
    const auto hi = static_cast<std::size_t>(row_start[iu + 1]);
    for (std::size_t e = lo; e < hi; ++e) {
      const auto iv = static_cast<std::size_t>(neighbor[e]);
      if (row.reached[iv]) continue;
      row.reached[iv] = 1;
      const auto il = static_cast<std::size_t>(via[e]);
      row.tree_link[iv] = via[e];
      row.bottleneck[iv] = std::min(row.bottleneck[iu], bw[il]);
      row.bottleneck2[iv] = std::min(row.bottleneck2[iu], bwfactor[il]);
      row.latency[iv] = row.latency[iu] + latency[il];
      fifo.push_back(neighbor[e]);
    }
  }
  return row;
}

void batched_bottleneck_rows(const FlatGraph& g,
                             std::span<const NodeId> sources,
                             std::span<BottleneckRow> out,
                             BatchStats* stats) {
  if (sources.size() > 64)
    throw std::invalid_argument("batched_bottleneck_rows: > 64 sources");
  if (out.size() != sources.size())
    throw std::invalid_argument("batched_bottleneck_rows: out size mismatch");
  const std::size_t n = g.node_count();
  const std::size_t W = sources.size();
  if (W == 0) return;
  for (NodeId s : sources)
    if (s < 0 || static_cast<std::size_t>(s) >= n)
      throw std::invalid_argument("batched_bottleneck_rows: source range");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto row_start = g.row_start();
  const auto neighbor = g.neighbor();
  const auto via = g.via();
  const auto bw = g.link_bw();
  const auto bwfactor = g.link_bwfactor();
  const auto latency = g.link_latency();

  // Per-node 64-bit masks: bit i belongs to sources[i]. `seen` is cumulative
  // reachability; `visit` is the current level; `next` accumulates the next
  // one. First-wins within the in-id-order level scan, exactly like the
  // scalar FIFO when the per-level ascending-discovery check holds.
  //
  // The traversal itself (phase 1) touches only these masks and appends one
  // compact record per discovery edge; the 64 output rows are then filled
  // one at a time (phase 2) by replaying that stream. Writing the rows
  // during the traversal instead — the obvious formulation — scatters every
  // discovery across 64 rows x 6 arrays (tens of MB of random stores) and
  // runs DRAM-bound, several times *slower* than 64 scalar BFS passes whose
  // per-row working set stays cache-resident. The event stream keeps both
  // phases resident: records are appended sequentially, and each replay
  // touches a single row.
  std::vector<std::uint64_t> seen(n, 0), visit(n, 0), next(n, 0);

  // One 8-byte record per (lane, child) discovery, bucketed per lane at
  // append time so each replay reads only its own ~reach-sized stream
  // instead of filtering the union. The parent is not stored: it is the
  // link's other endpoint (ends_xor). Append order == BFS level order, so
  // a parent's row entries are final before any of its children replay
  // (parents are discovered a level earlier).
  //
  // The buffer is one flat allocation with lane i's region at [i*n, (i+1)*n)
  // (a lane discovers at most n-1 nodes) and a cursor per lane — 64 active
  // sequential write streams, so appends stay cache-resident where growing
  // per-lane vectors or direct row writes would not. It is thread_local so
  // repeated calls (the warm_rows batching loop) pay its page faults once;
  // oversized graphs release it at the end of the call rather than pinning
  // hundreds of MB per thread.
  struct Disc {
    NodeId child;
    LinkId link;
  };
  static thread_local std::unique_ptr<Disc[]> disc_buf;
  static thread_local std::size_t disc_cap = 0;
  const std::size_t disc_need = W * n;
  if (disc_cap < disc_need) {
    disc_buf = std::make_unique_for_overwrite<Disc[]>(disc_need);
    disc_cap = disc_need;
  }
  Disc* const buf = disc_buf.get();
  std::size_t cur[64];
  for (std::size_t i = 0; i < W; ++i) cur[i] = i * n;
  std::vector<NodeId> frontier, next_frontier;
  frontier.reserve(W);
  for (std::size_t i = 0; i < W; ++i) {
    const auto is = static_cast<std::size_t>(sources[i]);
    if (seen[is] == 0) frontier.push_back(sources[i]);
    seen[is] |= std::uint64_t{1} << i;
    visit[is] |= std::uint64_t{1} << i;
  }
  std::sort(frontier.begin(), frontier.end());

  // Discovery-order verification state: last node id each source discovered
  // in the current level (reset per level), and the set of sources whose
  // sequence inverted somewhere — those fall back to the scalar kernel.
  NodeId last_disc[64];
  std::uint64_t bad = 0;
  std::uint64_t words = 0, passes = 0;

  while (!frontier.empty()) {
    ++passes;
    next_frontier.clear();
    for (std::size_t i = 0; i < W; ++i) last_disc[i] = kInvalidNode;
    for (NodeId v : frontier) {
      const auto iv = static_cast<std::size_t>(v);
      const std::uint64_t vb = visit[iv];
      visit[iv] = 0;
      const auto lo = static_cast<std::size_t>(row_start[iv]);
      const auto hi = static_cast<std::size_t>(row_start[iv + 1]);
      words += hi - lo;
      for (std::size_t e = lo; e < hi; ++e) {
        const auto iw = static_cast<std::size_t>(neighbor[e]);
        std::uint64_t fresh = vb & ~seen[iw];
        if (!fresh) continue;
        seen[iw] |= fresh;
        if (next[iw] == 0) next_frontier.push_back(neighbor[e]);
        next[iw] |= fresh;
        do {
          const auto i = static_cast<std::size_t>(std::countr_zero(fresh));
          fresh &= fresh - 1;
          buf[cur[i]++] = {neighbor[e], via[e]};
          if (neighbor[e] < last_disc[i])
            bad |= std::uint64_t{1} << i;
          else
            last_disc[i] = neighbor[e];
        } while (fresh);
      }
    }
    // Next level, in ascending id order (the FIFO-equivalence requirement).
    std::sort(next_frontier.begin(), next_frontier.end());
    frontier.swap(next_frontier);
    for (NodeId v : frontier) std::swap(visit[static_cast<std::size_t>(v)],
                                        next[static_cast<std::size_t>(v)]);
  }

  // Phase 2: fill each row by replaying the lane's slice of the stream.
  std::uint64_t fallbacks = 0;
  for (std::size_t i = 0; i < W; ++i) {
    if (bad & (std::uint64_t{1} << i)) {
      // The in-level inversion means the id-order scan may have diverged
      // from this source's FIFO order one level later: rebuild exactly.
      out[i] = bottleneck_row(g, sources[i]);
      ++fallbacks;
      continue;
    }
    BottleneckRow& row = out[i];
    // Replay overwrites every reached entry, so a row that is already sized
    // (the warm-cache refresh pattern: the caller reuses last epoch's rows)
    // needs no blanket re-zeroing — only entries this lane did NOT reach
    // must be reset to defaults, and on a connected graph that is nothing.
    // Unsized rows take the ordinary assign path.
    const std::size_t reach = cur[i] - i * n + 1;  // discoveries + source
    const bool sized = row.bottleneck.size() == n &&
                       row.bottleneck2.size() == n &&
                       row.latency.size() == n && row.reached.size() == n &&
                       row.tree_link.size() == n;
    if (!sized) {
      row.bottleneck.assign(n, 0.0);
      row.bottleneck2.assign(n, 0.0);
      row.latency.assign(n, 0.0);
      row.reached.assign(n, 0);
      row.tree_link.assign(n, kInvalidLink);
    } else if (reach < n) {
      const std::uint64_t lane = std::uint64_t{1} << i;
      for (std::size_t j = 0; j < n; ++j) {
        if (seen[j] & lane) continue;
        row.bottleneck[j] = 0.0;
        row.bottleneck2[j] = 0.0;
        row.latency[j] = 0.0;
        row.reached[j] = 0;
        row.tree_link[j] = kInvalidLink;
      }
    }
    const auto is = static_cast<std::size_t>(sources[i]);
    row.bottleneck[is] = kInf;
    row.bottleneck2[is] = kInf;
    row.latency[is] = 0.0;
    row.reached[is] = 1;
    row.tree_link[is] = kInvalidLink;
    // The discovery order is the source followed by the lane's record
    // children verbatim — filled as its own strided-copy loop (no per-event
    // capacity check in the replay below).
    row.order.resize(reach);
    NodeId* const od = row.order.data();
    od[0] = sources[i];
    {
      std::size_t k = 1;
      for (std::size_t p = i * n; p < cur[i]; ++p) od[k++] = buf[p].child;
    }
    for (std::size_t p = i * n; p < cur[i]; ++p) {
      const Disc d = buf[p];
      const auto iw = static_cast<std::size_t>(d.child);
      const auto il = static_cast<std::size_t>(d.link);
      const auto iv = static_cast<std::size_t>(g.link_other(d.link, d.child));
      row.tree_link[iw] = d.link;
      row.reached[iw] = 1;
      row.bottleneck[iw] = std::min(row.bottleneck[iv], bw[il]);
      row.bottleneck2[iw] = std::min(row.bottleneck2[iv], bwfactor[il]);
      row.latency[iw] = row.latency[iv] + latency[il];
    }
  }
  // Keep the scratch for the next call at normal sizes, but do not pin a
  // huge-graph buffer (64 lanes x 1M nodes is half a GB) to this thread.
  if (disc_cap > (std::size_t{1} << 23)) {
    disc_buf.reset();
    disc_cap = 0;
  }
  if (stats) {
    stats->passes += passes;
    stats->frontier_words += words;
    stats->batched_rows += W - fallbacks;
    stats->scalar_fallback_rows += fallbacks;
  }
}

}  // namespace netsel::topo
