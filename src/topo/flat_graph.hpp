#pragma once
// topo::FlatGraph: a single-allocation arena view of a topology plus its
// per-link weights, for the selection hot kernels.
//
// The SelectionContext's cached state — CSR adjacency, available-bandwidth
// and bwfactor arrays, per-node compute flags — lives in five separate
// heap-allocated std::vectors. Each BFS edge visit therefore touches up to
// four unrelated cache-line streams, and a 64-row warm pass re-streams them
// all per source. FlatGraph packs the same data into ONE contiguous arena
// (8-byte-aligned sections, built with a single allocation) so a traversal
// walks a compact, prefetch-friendly footprint and the whole structure can
// be accounted for with one arena_bytes() figure.
//
// Layout (sections in allocation order, each 8-byte aligned):
//   row_start    int32[V+1]   CSR offsets (same half-edge order as the
//   neighbor     int32[2E]    CsrAdjacency it is built from — which itself
//   via          int32[2E]    preserves TopologyGraph::links_of order, so
//                             every kernel below is bit-identical to the
//                             graph-walking versions)
//   link_bw      double[E]    available bandwidth per link id
//   link_bwfactor double[E]   fraction-of-peak per link id
//   link_latency double[E]    one-way latency per link id
//   is_compute   char[V]      per-node compute flag
//   ends_xor     int32[E]     XOR of the two endpoint ids per link id —
//                             given one endpoint, the other is one XOR
//                             (lets the batched kernel store 8-byte
//                             {child, link} discovery records)
//
// Mutability contract: the structure (offsets/neighbors/via) is immutable;
// the weight sections may be patched in place (set_link_bw /
// set_link_bwfactor) by the SelectionContext delta path — a link-bandwidth
// delta is a two-double write instead of a rebuild. Structural deltas drop
// the arena (the owner rebuilds lazily); rebuilding costs one allocation
// plus memcpys.
//
// batched_bottleneck_rows is the multi-source companion of
// bottleneck_row: one adjacency sweep serves up to 64 sources via
// word-parallel uint64_t reachability masks, with a per-level discovery-
// order check that guarantees bit-identical output (including tree links
// and FIFO discovery order) to the scalar kernel — sources the check
// rejects are transparently rebuilt scalar, so callers always observe
// scalar-identical rows.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "topo/connectivity.hpp"
#include "topo/graph.hpp"

namespace netsel::topo {

class FlatGraph {
 public:
  FlatGraph() = default;
  FlatGraph(FlatGraph&&) = default;
  FlatGraph& operator=(FlatGraph&&) = default;
  FlatGraph(const FlatGraph&) = delete;
  FlatGraph& operator=(const FlatGraph&) = delete;

  /// Pack `adj` and the two weight arrays (indexed by link id, one entry
  /// per link id including tombstoned slots) into a fresh arena.
  /// `bw`/`bwfactor` must have adj.link_count() entries.
  static FlatGraph build(const CsrAdjacency& adj, std::span<const double> bw,
                         std::span<const double> bwfactor);

  std::size_t node_count() const { return node_count_; }
  std::size_t link_count() const { return link_count_; }
  /// Total bytes of the single arena allocation.
  std::size_t arena_bytes() const { return arena_bytes_; }

  std::span<const std::int32_t> row_start() const {
    return {row_start_, node_count_ + 1};
  }
  std::span<const NodeId> neighbor() const {
    return {neighbor_, half_edge_count_};
  }
  std::span<const LinkId> via() const { return {via_, half_edge_count_}; }
  std::span<const double> link_bw() const { return {bw_, link_count_}; }
  std::span<const double> link_bwfactor() const {
    return {bwfactor_, link_count_};
  }
  std::span<const double> link_latency() const {
    return {latency_, link_count_};
  }
  std::span<const char> is_compute() const {
    return {is_compute_, node_count_};
  }
  /// The endpoint of link `l` opposite `from` (which must be one of its
  /// endpoints).
  NodeId link_other(LinkId l, NodeId from) const {
    return static_cast<NodeId>(
        static_cast<std::uint32_t>(ends_xor_[static_cast<std::size_t>(l)]) ^
        static_cast<std::uint32_t>(from));
  }

  /// In-place weight patches (the delta fast path). The structure sections
  /// are never written after build.
  void set_link_bw(LinkId l, double v) {
    bw_[static_cast<std::size_t>(l)] = v;
  }
  void set_link_bwfactor(LinkId l, double v) {
    bwfactor_[static_cast<std::size_t>(l)] = v;
  }

 private:
  std::unique_ptr<std::byte[]> arena_;
  std::size_t arena_bytes_ = 0;
  std::size_t node_count_ = 0;
  std::size_t link_count_ = 0;
  std::size_t half_edge_count_ = 0;
  std::int32_t* row_start_ = nullptr;
  NodeId* neighbor_ = nullptr;
  LinkId* via_ = nullptr;
  double* bw_ = nullptr;
  double* bwfactor_ = nullptr;
  double* latency_ = nullptr;
  char* is_compute_ = nullptr;
  std::int32_t* ends_xor_ = nullptr;
};

/// Scalar per-source bottleneck row over the arena: bit-identical (values,
/// tree links, FIFO discovery order) to
/// bottleneck_row(CsrAdjacency, src, bw, bwfactor) on the arrays the arena
/// was built from. bottleneck2 is always populated (the arena always
/// carries both weights).
BottleneckRow bottleneck_row(const FlatGraph& g, NodeId src);

/// Observability of one batched call, summed across levels; the caller
/// folds these into its metric counters.
struct BatchStats {
  /// Level-synchronous passes over the frontier (all sources share passes).
  std::uint64_t passes = 0;
  /// uint64_t frontier-mask words combined across all half-edge visits —
  /// the unit of word-parallel work (one word serves up to 64 sources).
  std::uint64_t frontier_words = 0;
  /// Rows served by the batched sweep.
  std::uint64_t batched_rows = 0;
  /// Rows the discovery-order check rejected and rebuilt scalar.
  std::uint64_t scalar_fallback_rows = 0;
};

/// Build bottleneck rows for up to 64 sources in one word-parallel
/// multi-source BFS. `out` must have sources.size() entries; out[i] receives
/// the row for sources[i], bit-identical to bottleneck_row(g, sources[i])
/// in every field (bottleneck, bottleneck2, latency, reached, tree_link,
/// order). Rows may hold arbitrary prior content (e.g. last epoch's rows
/// being refreshed in place): rows already sized to node_count() are
/// overwritten without an intermediate re-zeroing pass — the replay writes
/// every reached entry and only the lane's unreached entries are reset —
/// which is what lets a warm refresh run at memory speed.
///
/// Identity argument: the batched sweep is level-synchronous and scans each
/// level's frontier in ascending node-id order. By induction, if every
/// level's discovery sequence for a source comes out ascending by id, the
/// id-order scan IS that source's FIFO order, so parents, values and the
/// recorded discovery order all coincide with the scalar kernel's. The
/// sweep verifies exactly that per source per level; a source with an
/// inverted discovery (possible on cyclic graphs whose adjacency does not
/// enumerate in id order, and on trees with out-of-order children) is
/// flagged and rebuilt with the scalar kernel before returning. Throws
/// std::invalid_argument for more than 64 sources or out-of-range ids.
void batched_bottleneck_rows(const FlatGraph& g,
                             std::span<const NodeId> sources,
                             std::span<BottleneckRow> out,
                             BatchStats* stats = nullptr);

}  // namespace netsel::topo
