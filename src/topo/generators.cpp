#include "topo/generators.hpp"

#include <stdexcept>
#include <string>

namespace netsel::topo {

TopologyGraph testbed() {
  TopologyGraph g;
  NodeId panama = g.add_network("panama");
  NodeId gibraltar = g.add_network("gibraltar");
  NodeId suez = g.add_network("suez");
  g.add_link(panama, gibraltar, k100Mbps, k100Mbps, "panama--gibraltar");
  g.add_link(gibraltar, suez, k155Mbps, k155Mbps, "gibraltar--suez(ATM)");
  auto attach = [&](NodeId router, int first, int last) {
    for (int i = first; i <= last; ++i) {
      NodeId h = g.add_compute("m-" + std::to_string(i), 1.0, {"alpha"});
      g.add_link(router, h, k100Mbps);
    }
  };
  attach(panama, 1, 6);
  attach(gibraltar, 7, 12);
  attach(suez, 13, 18);
  g.validate();
  return g;
}

TopologyGraph star(int hosts, double host_bw) {
  if (hosts < 1) throw std::invalid_argument("star: need at least 1 host");
  TopologyGraph g;
  NodeId sw = g.add_network("sw0");
  for (int i = 0; i < hosts; ++i) {
    NodeId h = g.add_compute("h" + std::to_string(i));
    g.add_link(sw, h, host_bw);
  }
  g.validate();
  return g;
}

TopologyGraph dumbbell(int left, int right, double host_bw,
                       double bottleneck_bw) {
  if (left < 1 || right < 1)
    throw std::invalid_argument("dumbbell: need hosts on both sides");
  TopologyGraph g;
  NodeId swl = g.add_network("swL");
  NodeId swr = g.add_network("swR");
  g.add_link(swl, swr, bottleneck_bw, bottleneck_bw, "bottleneck");
  for (int i = 0; i < left; ++i) {
    NodeId h = g.add_compute("L" + std::to_string(i));
    g.add_link(swl, h, host_bw);
  }
  for (int i = 0; i < right; ++i) {
    NodeId h = g.add_compute("R" + std::to_string(i));
    g.add_link(swr, h, host_bw);
  }
  g.validate();
  return g;
}

TopologyGraph two_level_tree(int switches, int hosts_per_switch,
                             double host_bw, double trunk_bw) {
  if (switches < 1 || hosts_per_switch < 1)
    throw std::invalid_argument("two_level_tree: bad shape");
  TopologyGraph g;
  NodeId root = g.add_network("root");
  for (int s = 0; s < switches; ++s) {
    NodeId sw = g.add_network("sw" + std::to_string(s));
    g.add_link(root, sw, trunk_bw);
    for (int h = 0; h < hosts_per_switch; ++h) {
      NodeId host =
          g.add_compute("h" + std::to_string(s) + "_" + std::to_string(h));
      g.add_link(sw, host, host_bw);
    }
  }
  g.validate();
  return g;
}

TopologyGraph random_tree(util::Rng& rng, const RandomTreeOptions& opt) {
  if (opt.compute_nodes < 1)
    throw std::invalid_argument("random_tree: need compute nodes");
  if (opt.hosts_are_leaves && opt.network_nodes < 1)
    throw std::invalid_argument(
        "random_tree: hosts_are_leaves requires a network backbone");
  if (opt.min_bw <= 0.0 || opt.max_bw < opt.min_bw)
    throw std::invalid_argument("random_tree: bad bandwidth range");
  TopologyGraph g;
  auto draw_bw = [&]() { return rng.uniform(opt.min_bw, opt.max_bw); };

  if (opt.hosts_are_leaves) {
    // Grow a random backbone tree over the network nodes, then hang each
    // compute node off a uniformly random backbone node.
    std::vector<NodeId> backbone;
    backbone.reserve(static_cast<std::size_t>(opt.network_nodes));
    for (int i = 0; i < opt.network_nodes; ++i) {
      NodeId s = g.add_network("sw" + std::to_string(i));
      if (!backbone.empty()) {
        NodeId parent = backbone[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(backbone.size()) - 1))];
        g.add_link(parent, s, draw_bw());
      }
      backbone.push_back(s);
    }
    for (int i = 0; i < opt.compute_nodes; ++i) {
      NodeId h = g.add_compute("h" + std::to_string(i));
      NodeId parent = backbone[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(backbone.size()) - 1))];
      g.add_link(parent, h, draw_bw());
    }
  } else {
    // Random recursive tree over a random interleaving of all nodes.
    int total = opt.compute_nodes + opt.network_nodes;
    int remaining_compute = opt.compute_nodes;
    int remaining_network = opt.network_nodes;
    std::vector<NodeId> added;
    added.reserve(static_cast<std::size_t>(total));
    for (int i = 0; i < total; ++i) {
      bool make_compute =
          remaining_network == 0 ||
          (remaining_compute > 0 &&
           rng.uniform() < static_cast<double>(remaining_compute) /
                               static_cast<double>(remaining_compute +
                                                   remaining_network));
      NodeId id;
      if (make_compute) {
        id = g.add_compute("h" + std::to_string(opt.compute_nodes -
                                                remaining_compute));
        --remaining_compute;
      } else {
        id = g.add_network("sw" + std::to_string(opt.network_nodes -
                                                 remaining_network));
        --remaining_network;
      }
      if (!added.empty()) {
        NodeId parent = added[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(added.size()) - 1))];
        g.add_link(parent, id, draw_bw());
      }
      added.push_back(id);
    }
  }
  g.validate();
  return g;
}

}  // namespace netsel::topo
