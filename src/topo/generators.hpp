#pragma once
// Topology generators: the paper's Fig. 4 CMU testbed plus parametric
// families (star, dumbbell, two-level trees, random acyclic graphs) used by
// tests and by the algorithm-scaling benchmarks.

#include "topo/graph.hpp"
#include "util/rng.hpp"

namespace netsel::topo {

inline constexpr double kMbps = 1e6;
inline constexpr double k100Mbps = 100e6;
inline constexpr double k155Mbps = 155e6;

/// The Fig. 4 IP testbed: DEC Alpha compute nodes m-1 .. m-18 attached to
/// Cisco routers panama, gibraltar and suez. All links are 100 Mbps
/// Ethernet, except the gibraltar--suez link which is 155 Mbps ATM.
/// Attachment (the figure shows three similar-size groups):
///   panama:    m-1 .. m-6
///   gibraltar: m-7 .. m-12
///   suez:      m-13 .. m-18
/// Router backbone: panama--gibraltar (100 Mbps), gibraltar--suez (155 Mbps).
TopologyGraph testbed();

/// A single switch with `hosts` compute nodes, each attached at `host_bw`.
TopologyGraph star(int hosts, double host_bw = k100Mbps);

/// Two stars of `left` and `right` hosts joined by a bottleneck link.
TopologyGraph dumbbell(int left, int right, double host_bw = k100Mbps,
                       double bottleneck_bw = k100Mbps);

/// A two-level tree: `switches` leaf switches under one root switch, each
/// leaf switch serving `hosts_per_switch` compute nodes.
TopologyGraph two_level_tree(int switches, int hosts_per_switch,
                             double host_bw = k100Mbps,
                             double trunk_bw = k100Mbps);

struct RandomTreeOptions {
  int compute_nodes = 16;
  int network_nodes = 4;
  double min_bw = 10 * kMbps;
  double max_bw = k100Mbps;
  /// When true, compute nodes are always leaves (hosts hang off switches,
  /// as in real LANs). When false, any topology position is allowed.
  bool hosts_are_leaves = true;
};

/// A uniformly random acyclic connected topology (a tree). Network nodes
/// form the backbone; compute nodes attach to random backbone nodes when
/// hosts_are_leaves, otherwise the tree is grown over all nodes in random
/// order. Link capacities are uniform in [min_bw, max_bw].
TopologyGraph random_tree(util::Rng& rng, const RandomTreeOptions& opt = {});

}  // namespace netsel::topo
