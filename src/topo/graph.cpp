#include "topo/graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace netsel::topo {

bool Node::has_tag(std::string_view t) const {
  return std::find(tags.begin(), tags.end(), t) != tags.end();
}

NodeId TopologyGraph::add_node(Node n) {
  if (n.name.empty()) throw std::invalid_argument("node name must be non-empty");
  if (name_index_.contains(n.name))
    throw std::invalid_argument("duplicate node name: " + n.name);
  auto id = static_cast<NodeId>(nodes_.size());
  name_index_.emplace(n.name, id);
  nodes_.push_back(std::move(n));
  incident_.emplace_back();
  return id;
}

NodeId TopologyGraph::add_compute(std::string name, double cpu_capacity,
                                  std::vector<std::string> tags) {
  if (cpu_capacity <= 0.0)
    throw std::invalid_argument("cpu_capacity must be > 0 for " + name);
  Node n;
  n.name = std::move(name);
  n.kind = NodeKind::Compute;
  n.cpu_capacity = cpu_capacity;
  n.tags = std::move(tags);
  return add_node(std::move(n));
}

void TopologyGraph::set_memory(NodeId n, double bytes) {
  if (n < 0 || static_cast<std::size_t>(n) >= nodes_.size())
    throw std::invalid_argument("set_memory: node out of range");
  if (nodes_[static_cast<std::size_t>(n)].kind != NodeKind::Compute)
    throw std::invalid_argument("set_memory: not a compute node");
  if (bytes < 0.0) throw std::invalid_argument("set_memory: bytes must be >= 0");
  nodes_[static_cast<std::size_t>(n)].memory_bytes = bytes;
}

NodeId TopologyGraph::add_network(std::string name) {
  Node n;
  n.name = std::move(name);
  n.kind = NodeKind::Network;
  n.cpu_capacity = 0.0;
  return add_node(std::move(n));
}

LinkId TopologyGraph::add_link(NodeId a, NodeId b, double capacity_bps) {
  return add_link(a, b, capacity_bps, capacity_bps);
}

LinkId TopologyGraph::add_link(NodeId a, NodeId b, LinkSpec spec) {
  if (spec.latency < 0.0)
    throw std::invalid_argument("add_link: latency must be >= 0");
  LinkId id = add_link(a, b, spec.capacity_ab,
                       spec.capacity_ba > 0.0 ? spec.capacity_ba : spec.capacity_ab,
                       std::move(spec.name));
  links_[static_cast<std::size_t>(id)].latency = spec.latency;
  return id;
}

LinkId TopologyGraph::add_link(NodeId a, NodeId b, double capacity_ab,
                               double capacity_ba, std::string name) {
  auto valid = [&](NodeId x) {
    return x >= 0 && static_cast<std::size_t>(x) < nodes_.size();
  };
  if (!valid(a) || !valid(b))
    throw std::invalid_argument("add_link: endpoint out of range");
  if (a == b) throw std::invalid_argument("add_link: self loops not allowed");
  if (capacity_ab <= 0.0 || capacity_ba <= 0.0)
    throw std::invalid_argument("add_link: capacities must be > 0");
  Link l;
  l.a = a;
  l.b = b;
  l.capacity_ab = capacity_ab;
  l.capacity_ba = capacity_ba;
  if (name.empty()) {
    l.name = nodes_[static_cast<std::size_t>(a)].name + "--" +
             nodes_[static_cast<std::size_t>(b)].name;
  } else {
    l.name = std::move(name);
  }
  links_.push_back(std::move(l));
  auto id = static_cast<LinkId>(links_.size() - 1);
  incident_[static_cast<std::size_t>(a)].push_back(id);
  incident_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

void TopologyGraph::remove_link(LinkId l) {
  if (l < 0 || static_cast<std::size_t>(l) >= links_.size())
    throw std::invalid_argument("remove_link: link out of range");
  if (link_removed(l)) throw std::invalid_argument("remove_link: already removed");
  const Link& lk = links_[static_cast<std::size_t>(l)];
  // Erase from both incident lists preserving the relative order of the
  // survivors: links_of() order defines the deterministic BFS trees, and the
  // incremental caches rely on removal not reshuffling them.
  for (NodeId end : {lk.a, lk.b}) {
    auto& inc = incident_[static_cast<std::size_t>(end)];
    inc.erase(std::remove(inc.begin(), inc.end(), l), inc.end());
  }
  if (link_removed_.size() < links_.size()) link_removed_.resize(links_.size(), 0);
  link_removed_[static_cast<std::size_t>(l)] = 1;
}

void TopologyGraph::remove_node(NodeId n) {
  if (n < 0 || static_cast<std::size_t>(n) >= nodes_.size())
    throw std::invalid_argument("remove_node: node out of range");
  if (node_removed(n)) throw std::invalid_argument("remove_node: already removed");
  if (!incident_[static_cast<std::size_t>(n)].empty())
    throw std::invalid_argument("remove_node: remove incident links first");
  if (node_removed_.size() < nodes_.size()) node_removed_.resize(nodes_.size(), 0);
  node_removed_[static_cast<std::size_t>(n)] = 1;
  name_index_.erase(nodes_[static_cast<std::size_t>(n)].name);
}

std::span<const LinkId> TopologyGraph::links_of(NodeId n) const {
  return incident_.at(static_cast<std::size_t>(n));
}

NodeId TopologyGraph::other_end(LinkId l, NodeId n) const {
  const Link& lk = link(l);
  if (lk.a == n) return lk.b;
  if (lk.b == n) return lk.a;
  throw std::invalid_argument("other_end: node is not an endpoint of link");
}

std::optional<NodeId> TopologyGraph::find_node(std::string_view name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> TopologyGraph::compute_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (is_compute(static_cast<NodeId>(i))) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::size_t TopologyGraph::compute_node_count() const {
  std::size_t c = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (is_compute(static_cast<NodeId>(i))) ++c;
  return c;
}

void TopologyGraph::validate() const {
  if (nodes_.empty()) throw std::invalid_argument("topology: empty graph");
  if (compute_node_count() == 0)
    throw std::invalid_argument("topology: no compute nodes");
  // Connectivity via BFS from the first present node; removed (tombstoned)
  // nodes are not expected to be reachable.
  std::size_t present = 0;
  NodeId start = kInvalidNode;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (node_removed(static_cast<NodeId>(i))) continue;
    ++present;
    if (start == kInvalidNode) start = static_cast<NodeId>(i);
  }
  if (start == kInvalidNode) throw std::invalid_argument("topology: empty graph");
  std::vector<char> seen(nodes_.size(), 0);
  std::queue<NodeId> q;
  q.push(start);
  seen[static_cast<std::size_t>(start)] = 1;
  std::size_t reached = 1;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (LinkId l : links_of(u)) {
      NodeId v = other_end(l, u);
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++reached;
        q.push(v);
      }
    }
  }
  if (reached != present) {
    std::ostringstream os;
    os << "topology: graph is disconnected (" << reached << " of " << present
       << " nodes reachable from "
       << nodes_[static_cast<std::size_t>(start)].name << ")";
    throw std::invalid_argument(os.str());
  }
}

bool TopologyGraph::is_acyclic() const {
  // A connected undirected graph is acyclic iff |E| = |V| - 1; for possibly
  // disconnected graphs, acyclic iff |E| = |V| - #components. Use union-find.
  std::vector<NodeId> parent(nodes_.size());
  for (std::size_t i = 0; i < parent.size(); ++i)
    parent[i] = static_cast<NodeId>(i);
  auto find = [&](NodeId x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (link_removed(static_cast<LinkId>(i))) continue;
    const Link& l = links_[i];
    NodeId ra = find(l.a), rb = find(l.b);
    if (ra == rb) return false;  // this edge closes a cycle
    parent[static_cast<std::size_t>(ra)] = rb;
  }
  return true;
}

}  // namespace netsel::topo
