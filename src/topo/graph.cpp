#include "topo/graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace netsel::topo {

bool Node::has_tag(std::string_view t) const {
  return std::find(tags.begin(), tags.end(), t) != tags.end();
}

NodeId TopologyGraph::add_node(Node n) {
  if (n.name.empty()) throw std::invalid_argument("node name must be non-empty");
  if (name_index_.contains(n.name))
    throw std::invalid_argument("duplicate node name: " + n.name);
  auto id = static_cast<NodeId>(nodes_.size());
  name_index_.emplace(n.name, id);
  nodes_.push_back(std::move(n));
  incident_.emplace_back();
  return id;
}

NodeId TopologyGraph::add_compute(std::string name, double cpu_capacity,
                                  std::vector<std::string> tags) {
  if (cpu_capacity <= 0.0)
    throw std::invalid_argument("cpu_capacity must be > 0 for " + name);
  Node n;
  n.name = std::move(name);
  n.kind = NodeKind::Compute;
  n.cpu_capacity = cpu_capacity;
  n.tags = std::move(tags);
  return add_node(std::move(n));
}

void TopologyGraph::set_memory(NodeId n, double bytes) {
  if (n < 0 || static_cast<std::size_t>(n) >= nodes_.size())
    throw std::invalid_argument("set_memory: node out of range");
  if (nodes_[static_cast<std::size_t>(n)].kind != NodeKind::Compute)
    throw std::invalid_argument("set_memory: not a compute node");
  if (bytes < 0.0) throw std::invalid_argument("set_memory: bytes must be >= 0");
  nodes_[static_cast<std::size_t>(n)].memory_bytes = bytes;
}

NodeId TopologyGraph::add_network(std::string name) {
  Node n;
  n.name = std::move(name);
  n.kind = NodeKind::Network;
  n.cpu_capacity = 0.0;
  return add_node(std::move(n));
}

LinkId TopologyGraph::add_link(NodeId a, NodeId b, double capacity_bps) {
  return add_link(a, b, capacity_bps, capacity_bps);
}

LinkId TopologyGraph::add_link(NodeId a, NodeId b, LinkSpec spec) {
  if (spec.latency < 0.0)
    throw std::invalid_argument("add_link: latency must be >= 0");
  LinkId id = add_link(a, b, spec.capacity_ab,
                       spec.capacity_ba > 0.0 ? spec.capacity_ba : spec.capacity_ab,
                       std::move(spec.name));
  links_[static_cast<std::size_t>(id)].latency = spec.latency;
  return id;
}

LinkId TopologyGraph::add_link(NodeId a, NodeId b, double capacity_ab,
                               double capacity_ba, std::string name) {
  auto valid = [&](NodeId x) {
    return x >= 0 && static_cast<std::size_t>(x) < nodes_.size();
  };
  if (!valid(a) || !valid(b))
    throw std::invalid_argument("add_link: endpoint out of range");
  if (a == b) throw std::invalid_argument("add_link: self loops not allowed");
  if (capacity_ab <= 0.0 || capacity_ba <= 0.0)
    throw std::invalid_argument("add_link: capacities must be > 0");
  Link l;
  l.a = a;
  l.b = b;
  l.capacity_ab = capacity_ab;
  l.capacity_ba = capacity_ba;
  if (name.empty()) {
    l.name = nodes_[static_cast<std::size_t>(a)].name + "--" +
             nodes_[static_cast<std::size_t>(b)].name;
  } else {
    l.name = std::move(name);
  }
  links_.push_back(std::move(l));
  auto id = static_cast<LinkId>(links_.size() - 1);
  incident_[static_cast<std::size_t>(a)].push_back(id);
  incident_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

std::span<const LinkId> TopologyGraph::links_of(NodeId n) const {
  return incident_.at(static_cast<std::size_t>(n));
}

NodeId TopologyGraph::other_end(LinkId l, NodeId n) const {
  const Link& lk = link(l);
  if (lk.a == n) return lk.b;
  if (lk.b == n) return lk.a;
  throw std::invalid_argument("other_end: node is not an endpoint of link");
}

std::optional<NodeId> TopologyGraph::find_node(std::string_view name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> TopologyGraph::compute_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::Compute) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::size_t TopologyGraph::compute_node_count() const {
  std::size_t c = 0;
  for (const auto& n : nodes_)
    if (n.kind == NodeKind::Compute) ++c;
  return c;
}

void TopologyGraph::validate() const {
  if (nodes_.empty()) throw std::invalid_argument("topology: empty graph");
  if (compute_node_count() == 0)
    throw std::invalid_argument("topology: no compute nodes");
  // Connectivity via BFS from node 0.
  std::vector<char> seen(nodes_.size(), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  std::size_t reached = 1;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (LinkId l : links_of(u)) {
      NodeId v = other_end(l, u);
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++reached;
        q.push(v);
      }
    }
  }
  if (reached != nodes_.size()) {
    std::ostringstream os;
    os << "topology: graph is disconnected (" << reached << " of "
       << nodes_.size() << " nodes reachable from " << nodes_[0].name << ")";
    throw std::invalid_argument(os.str());
  }
}

bool TopologyGraph::is_acyclic() const {
  // A connected undirected graph is acyclic iff |E| = |V| - 1; for possibly
  // disconnected graphs, acyclic iff |E| = |V| - #components. Use union-find.
  std::vector<NodeId> parent(nodes_.size());
  for (std::size_t i = 0; i < parent.size(); ++i)
    parent[i] = static_cast<NodeId>(i);
  auto find = [&](NodeId x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const auto& l : links_) {
    NodeId ra = find(l.a), rb = find(l.b);
    if (ra == rb) return false;  // this edge closes a cycle
    parent[static_cast<std::size_t>(ra)] = rb;
  }
  return true;
}

}  // namespace netsel::topo
