#pragma once
// Logical network topology graph (paper §3.1).
//
// A node is either a *compute node* (a processor available for computation)
// or a *network node* (a router/switch used for routing). Edges are
// communication links with a peak capacity per direction; the paper's
// `maxbw(i,j)` is a static property stored here, while the dynamically
// varying `bw(i,j)` lives in remos::NetworkSnapshot.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace netsel::topo {

using NodeId = std::int32_t;
using LinkId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind : std::uint8_t { Compute, Network };

struct Node {
  std::string name;
  NodeKind kind = NodeKind::Compute;
  /// Relative computation capacity; the reference node type is 1.0
  /// (paper §3.3, "Heterogeneous links and nodes"). Ignored for network
  /// nodes.
  double cpu_capacity = 1.0;
  /// Physical memory in bytes (paper §3.4 lists "memory and disk
  /// availability on the compute nodes" as future factors; the
  /// memory-aware extension consumes this). 0 means "not modelled".
  double memory_bytes = 0.0;
  /// Free-form attribute tags, used by placement constraints in the
  /// application specification interface (e.g. "alpha", "gpu").
  std::vector<std::string> tags;

  bool has_tag(std::string_view t) const;
};

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  /// Peak bandwidth (bits/second) in the a->b direction.
  double capacity_ab = 0.0;
  /// Peak bandwidth in the b->a direction. Equal to capacity_ab for the
  /// shared-fabric links of §3.1; may differ for the independent
  /// bidirectional links of §3.3.
  double capacity_ba = 0.0;
  /// One-way propagation latency in seconds (paper §3.4 lists latency as a
  /// factor for future work; the latency-aware extension consumes this).
  double latency = 0.0;
  std::string name;

  /// Peak capacity used for selection: the paper takes the minimum of the
  /// two directions for bidirectional links (§3.3).
  double capacity_min() const { return capacity_ab < capacity_ba ? capacity_ab : capacity_ba; }
};

/// An immutable-after-build undirected multigraph. Nodes and links are
/// referenced by dense integer ids so per-node/per-link state elsewhere
/// (simulator, snapshots) is stored in flat arrays.
class TopologyGraph {
 public:
  /// Add a compute node. Names must be unique across the graph.
  NodeId add_compute(std::string name, double cpu_capacity = 1.0,
                     std::vector<std::string> tags = {});
  /// Set a compute node's physical memory (bytes; §3.4 extension).
  void set_memory(NodeId n, double bytes);
  /// Add a network (router/switch) node.
  NodeId add_network(std::string name);
  /// Add an undirected link with symmetric capacity (bits/second).
  LinkId add_link(NodeId a, NodeId b, double capacity_bps);
  /// Add a link with distinct per-direction capacities.
  LinkId add_link(NodeId a, NodeId b, double capacity_ab, double capacity_ba,
                  std::string name = {});

  /// Full link specification for heterogeneous links.
  struct LinkSpec {
    double capacity_ab = 0.0;
    double capacity_ba = 0.0;  ///< 0 means "same as capacity_ab"
    double latency = 0.0;      ///< one-way seconds
    std::string name;
  };
  LinkId add_link(NodeId a, NodeId b, LinkSpec spec);

  /// Remove a link. Ids are never recycled: the Link record stays readable
  /// (endpoints, capacities) and keeps its slot in link_count(), but the
  /// link disappears from links_of()/degree() and link_removed() turns true.
  /// Live NetworkSnapshots must be told via notify_link_removed().
  void remove_link(LinkId l);
  bool link_removed(LinkId l) const {
    return static_cast<std::size_t>(l) < link_removed_.size() &&
           link_removed_[static_cast<std::size_t>(l)];
  }

  /// Remove a node. Only degree-0 nodes may be removed (remove the incident
  /// links first), so traversals need no per-edge check. The id stays
  /// allocated; is_compute() turns false and the name becomes reusable.
  void remove_node(NodeId n);
  bool node_removed(NodeId n) const {
    return static_cast<std::size_t>(n) < node_removed_.size() &&
           node_removed_[static_cast<std::size_t>(n)];
  }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const Link& link(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }

  /// Ids of links incident to `n`.
  std::span<const LinkId> links_of(NodeId n) const;
  /// The node at the other end of link `l` from node `n`; throws if `n` is
  /// not an endpoint of `l`.
  NodeId other_end(LinkId l, NodeId n) const;

  std::optional<NodeId> find_node(std::string_view name) const;
  /// All compute-node ids, in id order.
  std::vector<NodeId> compute_nodes() const;
  std::size_t compute_node_count() const;

  bool is_compute(NodeId n) const {
    return node(n).kind == NodeKind::Compute && !node_removed(n);
  }

  /// Degree (number of incident links).
  std::size_t degree(NodeId n) const { return links_of(n).size(); }

  /// Throws std::invalid_argument if the graph is empty, disconnected, has
  /// duplicate names, or has a link with non-positive capacity. Call after
  /// building.
  void validate() const;

  /// True if the graph contains no cycle (the baseline assumption of §3.2).
  bool is_acyclic() const;

 private:
  NodeId add_node(Node n);

  /// Heterogeneous string hashing so find_node(string_view) needs no
  /// temporary std::string.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_;
  /// Tombstones; empty (all-present) until the first removal, so the
  /// append-only fast paths allocate nothing.
  std::vector<char> link_removed_;
  std::vector<char> node_removed_;
  /// name -> id. Keeps graph construction O(V + E) — the synthetic
  /// datacenter generators build 10k+-node graphs, where the linear-scan
  /// lookup add_node used for duplicate detection was quadratic.
  std::unordered_map<std::string, NodeId, NameHash, std::equal_to<>> name_index_;
};

}  // namespace netsel::topo
